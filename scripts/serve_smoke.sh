#!/bin/sh
# End-to-end smoke test for the profile service: start smokescreend on an
# ephemeral port, request one tiny profile through the CLI's -remote path
# (which fails unless the daemon answers 200 with profile JSON), assert
# the rendered tradeoff curve is well-formed, then SIGTERM the daemon and
# require a clean drain.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d)
ADDR_FILE="$WORKDIR/addr"
STORE_DIR="$WORKDIR/store"
DAEMON_LOG="$WORKDIR/daemon.log"
CURVE_OUT="$WORKDIR/curve.out"

cleanup() {
    status=$?
    if [ -n "${DAEMON_PID:-}" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "serve-smoke: FAILED (daemon log follows)" >&2
        cat "$DAEMON_LOG" >&2 || true
    fi
    rm -rf "$WORKDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
$GO build -o "$WORKDIR/smokescreend" ./cmd/smokescreend
$GO build -o "$WORKDIR/smokescreen" ./cmd/smokescreen

echo "serve-smoke: starting daemon"
"$WORKDIR/smokescreend" -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
    -store "$STORE_DIR" -workers 1 >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# The daemon writes its bound address only once the socket is live.
i=0
while [ ! -s "$ADDR_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never bound" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "serve-smoke: daemon died" >&2; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$ADDR_FILE")
echo "serve-smoke: daemon at $ADDR"

echo "serve-smoke: requesting a tiny profile end-to-end"
"$WORKDIR/smokescreen" profile -remote "http://$ADDR" -step 0.05 -max-fraction 0.1 \
    "SELECT AVG(count(car)) FROM small" | tee "$CURVE_OUT"

# Well-formed curve: the artifact key line plus at least one bound point.
grep -q '^artifact key:' "$CURVE_OUT"
grep -q 'f=.*err<=' "$CURVE_OUT"

# A second request must be a pure store hit (no new generation job).
"$WORKDIR/smokescreen" profile -remote "http://$ADDR" -step 0.05 -max-fraction 0.1 \
    "SELECT AVG(count(car)) FROM small" >/dev/null
generations=$(grep -c 'generating key' "$DAEMON_LOG" || true)
if [ "$generations" -ne 1 ]; then
    echo "serve-smoke: expected 1 generation, daemon ran $generations" >&2
    exit 1
fi

echo "serve-smoke: draining daemon with SIGTERM"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
grep -q 'drained cleanly' "$DAEMON_LOG"

echo "serve-smoke: OK"
