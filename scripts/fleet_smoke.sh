#!/bin/sh
# End-to-end smoke test for the smokescreend fleet: three REAL daemons
# sharing a consistent-hash ring, driven through smokeload's urls mode.
#
#   1. herd: concurrent POSTs of one query across all three entry nodes
#      must all succeed with exactly ONE generation fleet-wide (the logs
#      are the ground truth — forwarding, leases, and singleflight each
#      absorb a layer of the herd).
#   2. kill -9 the node that generated, then re-herd the SAME query
#      against the survivors: every request succeeds with ZERO new
#      generations (replication preserved the artifact), and a NEW query
#      still generates on a survivor (the fleet keeps working degraded).
#   3. SIGTERM the survivors and require clean drains.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d)

cleanup() {
    status=$?
    for pid in ${PIDS:-}; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    if [ "$status" -ne 0 ]; then
        echo "fleet-smoke: FAILED (daemon logs follow)" >&2
        for i in 1 2 3; do
            echo "--- node $i ---" >&2
            cat "$WORKDIR/node$i.log" >&2 2>/dev/null || true
        done
    fi
    rm -rf "$WORKDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building binaries"
$GO build -o "$WORKDIR/smokescreend" ./cmd/smokescreend
$GO build -o "$WORKDIR/smokeload" ./cmd/smokeload

# Start a 3-node fleet on ports derived from our PID, retrying with a
# different base if a port is taken (daemons exit on a failed bind, so a
# missing addr-file inside the timeout means "try other ports").
start_fleet() {
    base=$1
    P1=$base; P2=$((base + 1)); P3=$((base + 2))
    RING="127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3"
    PIDS=""
    for i in 1 2 3; do
        eval "port=\$P$i"
        rm -f "$WORKDIR/addr$i"
        "$WORKDIR/smokescreend" -addr "127.0.0.1:$port" \
            -addr-file "$WORKDIR/addr$i" -store "$WORKDIR/store$i" \
            -workers 1 -fleet-nodes "$RING" -fleet-lease-ttl 2s \
            >"$WORKDIR/node$i.log" 2>&1 &
        PIDS="$PIDS $!"
    done
    for i in 1 2 3; do
        n=0
        while [ ! -s "$WORKDIR/addr$i" ]; do
            n=$((n + 1))
            if [ "$n" -gt 100 ]; then
                return 1
            fi
            sleep 0.1
        done
    done
    return 0
}

attempt=0
until start_fleet $((20000 + ($$ + attempt * 131) % 20000)); do
    attempt=$((attempt + 1))
    if [ "$attempt" -ge 5 ]; then
        echo "fleet-smoke: could not bind a port triple after $attempt attempts" >&2
        exit 1
    fi
    for pid in $PIDS; do
        kill -KILL "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
done
URLS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
echo "fleet-smoke: fleet up at $URLS"

gen_count() {
    total=0
    for i in 1 2 3; do
        c=$(grep -c 'generating key' "$WORKDIR/node$i.log" 2>/dev/null) || c=0
        total=$((total + c))
    done
    echo "$total"
}

QUERY="SELECT AVG(count(car)) FROM small"

echo "fleet-smoke: hot-key herd across all nodes"
"$WORKDIR/smokeload" -mode urls -urls "$URLS" -scenario herd -clients 6 \
    -query "$QUERY" -step 0.05 -max-fraction 0.1
gens=$(gen_count)
if [ "$gens" -ne 1 ]; then
    echo "fleet-smoke: herd cost $gens generations fleet-wide, want exactly 1" >&2
    exit 1
fi

# Find and kill -9 the node that generated: its replicas must carry on.
VICTIM=""
for i in 1 2 3; do
    if grep -q 'generating key' "$WORKDIR/node$i.log"; then
        VICTIM=$i
        break
    fi
done
[ -n "$VICTIM" ] || { echo "fleet-smoke: no generator found in logs" >&2; exit 1; }
eval "victim_port=\$P$VICTIM"
echo "fleet-smoke: kill -9 node $VICTIM (127.0.0.1:$victim_port, the generator)"
set -- $PIDS
victim_pid=$(eval "echo \$$VICTIM")
kill -KILL "$victim_pid"
wait "$victim_pid" 2>/dev/null || true

SURVIVOR_URLS=""
SURVIVOR_PIDS=""
for i in 1 2 3; do
    [ "$i" = "$VICTIM" ] && continue
    eval "port=\$P$i"
    SURVIVOR_URLS="$SURVIVOR_URLS,http://127.0.0.1:$port"
    SURVIVOR_PIDS="$SURVIVOR_PIDS $(eval "echo \$$i")"
done
SURVIVOR_URLS=${SURVIVOR_URLS#,}

echo "fleet-smoke: re-herd the same query against survivors (replica serving)"
"$WORKDIR/smokeload" -mode urls -urls "$SURVIVOR_URLS" -scenario herd -clients 4 \
    -query "$QUERY" -step 0.05 -max-fraction 0.1
gens=$(gen_count)
if [ "$gens" -ne 1 ]; then
    echo "fleet-smoke: replicated artifact was regenerated ($gens generations, want 1)" >&2
    exit 1
fi

echo "fleet-smoke: new query must still generate on a survivor"
"$WORKDIR/smokeload" -mode urls -urls "$SURVIVOR_URLS" -scenario herd -clients 4 \
    -query "SELECT AVG(count(person)) FROM small" -step 0.05 -max-fraction 0.1
gens=$(gen_count)
if [ "$gens" -ne 2 ]; then
    echo "fleet-smoke: degraded fleet ran $gens total generations, want 2" >&2
    exit 1
fi

echo "fleet-smoke: draining survivors with SIGTERM"
for pid in $SURVIVOR_PIDS; do
    kill -TERM "$pid"
done
for pid in $SURVIVOR_PIDS; do
    wait "$pid" 2>/dev/null || true
done
PIDS=""
for i in 1 2 3; do
    [ "$i" = "$VICTIM" ] && continue
    grep -q 'drained cleanly' "$WORKDIR/node$i.log" || {
        echo "fleet-smoke: node $i did not drain cleanly" >&2
        exit 1
    }
done

echo "fleet-smoke: OK"
