#!/bin/sh
# End-to-end smoke test for the streaming-ingest subsystem: start
# smokescreend on an ephemeral port, run a camera stream through the
# daemon's stream API (POST /v1/streams drives internal/camera over an
# in-process pipe into the stream.Receiver), watch several windows
# complete with their any-time bounds, then start an unbounded stream
# and cancel it mid-flight — the cancel must stop detector work without
# persisting a partial window. Finally SIGTERM the daemon and require a
# clean drain.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d)
ADDR_FILE="$WORKDIR/addr"
STORE_DIR="$WORKDIR/store"
DAEMON_LOG="$WORKDIR/daemon.log"
STREAM_OUT="$WORKDIR/stream.out"
CANCEL_OUT="$WORKDIR/cancel.out"

cleanup() {
    status=$?
    if [ -n "${WATCH_PID:-}" ] && kill -0 "$WATCH_PID" 2>/dev/null; then
        kill "$WATCH_PID" 2>/dev/null || true
        wait "$WATCH_PID" 2>/dev/null || true
    fi
    if [ -n "${DAEMON_PID:-}" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "stream-smoke: FAILED (daemon log follows)" >&2
        cat "$DAEMON_LOG" >&2 || true
    fi
    rm -rf "$WORKDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "stream-smoke: building binaries"
$GO build -o "$WORKDIR/smokescreend" ./cmd/smokescreend
$GO build -o "$WORKDIR/smokescreen" ./cmd/smokescreen

echo "stream-smoke: starting daemon"
"$WORKDIR/smokescreend" -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
    -store "$STORE_DIR" -workers 1 >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

i=0
while [ ! -s "$ADDR_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "stream-smoke: daemon never bound" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "stream-smoke: daemon died" >&2; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$ADDR_FILE")
echo "stream-smoke: daemon at $ADDR"

echo "stream-smoke: streaming two corpus passes in tumbling windows"
"$WORKDIR/smokescreen" stream -remote "http://$ADDR" -dataset small \
    -window 200 -loops 2 -sample 0.15 -resolution 160 | tee "$STREAM_OUT"

# Twelve windows (2 x 1200 frames / 200) with any-time bounds. The
# watcher polls, so it may print fewer than 12 window lines when the
# stream outpaces it — the final summary and the daemon log carry the
# authoritative count.
grep -q '^window ' "$STREAM_OUT"
grep -q 'err <=' "$STREAM_OUT"
grep -q '12 windows from' "$STREAM_OUT"
grep -q 'done (12 windows)' "$DAEMON_LOG"

echo "stream-smoke: cancelling an unbounded stream mid-flight"
"$WORKDIR/smokescreen" stream -remote "http://$ADDR" -dataset small \
    -window 200 -loops 1000 -sample 0.15 -resolution 160 -no-drift >"$CANCEL_OUT" 2>&1 &
WATCH_PID=$!
# Wait for the first completed window, then interrupt the watcher: it
# DELETEs the stream job, which must tear down promptly.
i=0
while ! grep -q '^window ' "$CANCEL_OUT" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "stream-smoke: unbounded stream produced no window" >&2
        exit 1
    fi
    kill -0 "$WATCH_PID" 2>/dev/null || { echo "stream-smoke: watcher died early" >&2; cat "$CANCEL_OUT" >&2; exit 1; }
    sleep 0.1
done
kill -INT "$WATCH_PID"
wait "$WATCH_PID" || { echo "stream-smoke: watcher failed after cancel" >&2; cat "$CANCEL_OUT" >&2; exit 1; }
WATCH_PID=""
grep -q '^canceled: state canceled' "$CANCEL_OUT"
grep -q 'canceled: context canceled' "$DAEMON_LOG"

echo "stream-smoke: draining daemon with SIGTERM"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
grep -q 'drained cleanly' "$DAEMON_LOG"

echo "stream-smoke: OK"
