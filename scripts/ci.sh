#!/bin/sh
# ci.sh — the full CI gate: build, lint (go vet + smokevet + optional
# staticcheck), tests, race coverage, and the fuzz smoke pass, with
# per-stage wall-clock timing so regressions in gate latency are visible
# in the CI log. Fails fast on the first broken stage.
set -eu

cd "$(dirname "$0")/.."

total_start=$(date +%s)

run_stage() {
    name=$1
    shift
    echo "==> $name"
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    echo "==> $name: ok ($((end - start))s)"
    echo
}

run_stage build      make build
run_stage lint       make lint
# The ratchet: smokevet against the committed lint-baseline.json, failing
# only on findings not grandfathered there. Runs right after lint so a
# regression names the new finding while the full-lint log is still on
# screen; its stage timing also isolates the analyzer suite's own cost
# from go vet and staticcheck in the lint stage above.
run_stage lint-ratchet make lint-ratchet
run_stage test       make test
run_stage test-race  make test-race
run_stage fuzz-smoke make fuzz-smoke
# One short-mode pass over the Figure 4 and ladder benchmarks: the
# pattern matches both accelerated variants (quantized + delta detection
# on) and their Baseline twins (both off), so each CI run exercises the
# A/B accelerator configs — including ladder-tier view generation — end
# to end without paying full benchmark time.
run_stage bench-smoke go test -run '^$' -bench 'Figure4|Ladder' -benchtime=1x -short .
# Live streaming ingest end to end: camera -> daemon, windowed profiles,
# mid-flight cancel, clean drain (scripts/stream_smoke.sh).
run_stage stream-smoke make stream-smoke
# Fleet end to end: three real daemons on a shared ring, hot-key herd
# with exactly one generation fleet-wide, kill -9 of the generating node
# with replica serving after, clean drain (scripts/fleet_smoke.sh).
run_stage fleet-smoke make fleet-smoke

total_end=$(date +%s)
echo "ci: all stages passed in $((total_end - total_start))s"
