package smokescreen_test

import (
	"math"
	"testing"

	"smokescreen"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow: parse a
// query, generate profiles, choose a tradeoff, execute it — entirely
// through the public surface.
func TestPublicAPIEndToEnd(t *testing.T) {
	sys := smokescreen.New(
		smokescreen.WithSeed(7),
		smokescreen.WithFractionCandidates(0.02, 0.1),
		smokescreen.WithCorrectionLimit(0.1),
	)
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small")
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := sys.GenerateProfiles(q)
	if err != nil {
		t.Fatal(err)
	}
	setting, err := sys.ChooseTradeoff(profiles, smokescreen.Preferences{MaxError: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	result, err := sys.ExecuteSetting(q, setting)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sys.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 || result.Estimate.Value <= 0 {
		t.Fatalf("degenerate answers: truth %v, estimate %v", truth, result.Estimate.Value)
	}
	trueErr := math.Abs(result.Estimate.Value-truth) / truth
	if trueErr > result.Estimate.ErrBound {
		t.Fatalf("bound %v below true error %v", result.Estimate.ErrBound, trueErr)
	}
}

func TestDatasetsListed(t *testing.T) {
	names := smokescreen.Datasets()
	want := map[string]bool{"night-street": true, "ua-detrac": true, "small": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing datasets: %v (have %v)", want, names)
	}
}

func TestDefaultParams(t *testing.T) {
	p := smokescreen.DefaultParams()
	if p.Delta != 0.05 || p.R != 0.99 {
		t.Fatalf("defaults %+v", p)
	}
}

func TestModelConstructors(t *testing.T) {
	if smokescreen.YOLOv4Sim().NativeInput != 608 {
		t.Fatal("YOLOv4Sim wrong")
	}
	if smokescreen.MaskRCNNSim().NativeInput != 640 {
		t.Fatal("MaskRCNNSim wrong")
	}
	if !smokescreen.MTCNNSim().CanDetect(smokescreen.Face) {
		t.Fatal("MTCNNSim wrong")
	}
}
