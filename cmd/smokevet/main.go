// Command smokevet runs the repo's custom invariant analyzers
// (internal/analysis) over a set of packages and reports findings in the
// familiar file:line:col form. It is the `make lint` gate that turns the
// codebase's load-bearing conventions — deterministic generation paths,
// pooled-scratch hygiene, end-to-end context flow, atomic-only counters —
// into mechanically enforced rules (DESIGN.md §10).
//
// Usage:
//
//	go run ./cmd/smokevet ./...            # whole repo (what make lint runs)
//	go run ./cmd/smokevet ./internal/raster/   # one package
//	go run ./cmd/smokevet -a determinism ./internal/profile/
//	go run ./cmd/smokevet -list
//
// smokevet is a standalone loader rather than a `go vet -vettool`
// plugin: the vettool protocol requires golang.org/x/tools/go/analysis,
// which hermetic builders cannot fetch, so the suite loads and
// type-checks packages itself with the standard library. Findings are
// suppressed line-by-line with `//smokevet:ignore <reason>` (optionally
// `//smokevet:ignore <analyzer>: <reason>`); a suppression without a
// reason is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smokescreen/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		only = flag.String("a", "", "comma-separated analyzer names to run (default all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: smokevet [-list] [-a name,name] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "smokevet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokevet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokevet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "smokevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
