// Command smokevet runs the repo's custom invariant analyzers
// (internal/analysis) over a set of packages and reports findings in the
// familiar file:line:col form. It is the `make lint` gate that turns the
// codebase's load-bearing conventions — deterministic generation paths,
// pooled-scratch hygiene, end-to-end context flow, atomic-only counters,
// goroutine accounting, lock ordering, axis-registry exhaustiveness, and
// error contracts — into mechanically enforced rules (DESIGN.md §10, §15).
//
// Usage:
//
//	go run ./cmd/smokevet ./...            # whole repo (what make lint runs)
//	go run ./cmd/smokevet ./internal/raster/   # one package
//	go run ./cmd/smokevet -a determinism ./internal/profile/
//	go run ./cmd/smokevet -json ./...          # machine-readable findings
//	go run ./cmd/smokevet -baseline lint-baseline.json ./...   # ratchet mode
//	go run ./cmd/smokevet -write-baseline lint-baseline.json ./...
//	go run ./cmd/smokevet -list
//
// smokevet is a standalone loader rather than a `go vet -vettool`
// plugin: the vettool protocol requires golang.org/x/tools/go/analysis,
// which hermetic builders cannot fetch, so the suite loads and
// type-checks packages itself with the standard library. Findings are
// suppressed line-by-line with `//smokevet:ignore <reason>` (optionally
// `//smokevet:ignore <analyzer>: <reason>`); a suppression without a
// reason is itself a finding, and a suppression that silences nothing is
// reported as stale unless the audit is disabled with -audit=false.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"smokescreen/internal/analysis"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	var (
		list          = flag.Bool("list", false, "list analyzers and exit")
		only          = flag.String("a", "", "comma-separated analyzer names to run (default all)")
		verbose       = flag.Bool("v", false, "print per-analyzer timing to stderr")
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		baselinePath  = flag.String("baseline", "", "ratchet mode: fail only on findings not in this baseline file")
		writeBaseline = flag.String("write-baseline", "", "write the run's findings to this baseline file and exit clean")
		audit         = flag.Bool("audit", true, "report stale smokevet:ignore suppressions (forced off with -a)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: smokevet [-list] [-a name,name] [-v] [-json] [-baseline file | -write-baseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "smokevet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
		// With a filtered roster every suppression for an excluded
		// analyzer would look stale, so the audit only runs on full suites.
		*audit = false
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokevet:", err)
		os.Exit(2)
	}
	res, err := analysis.RunSuite(pkgs, analyzers, analysis.RunOptions{AuditSuppressions: *audit})
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokevet:", err)
		os.Exit(2)
	}
	diags := res.Diagnostics

	if *verbose {
		for _, t := range res.Timings {
			fmt.Fprintf(os.Stderr, "smokevet: %-14s %8.1fms\n", t.Name, float64(t.Duration.Microseconds())/1000)
		}
	}

	// Baseline paths are keyed relative to the working directory, which
	// is the module root under `make lint-ratchet`.
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokevet:", err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smokevet:", err)
			os.Exit(2)
		}
		b := analysis.NewBaseline(root, diags)
		if err := analysis.WriteBaseline(f, b); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smokevet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "smokevet: wrote %d baseline entr%s (%d finding(s)) to %s\n",
			len(b.Entries), plural(len(b.Entries), "y", "ies"), len(diags), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smokevet:", err)
			os.Exit(2)
		}
		b, err := analysis.LoadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "smokevet:", err)
			os.Exit(2)
		}
		fresh, stale := b.Apply(root, diags)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "smokevet: stale baseline entry (%d unused): %s [%s] %s — regenerate with -write-baseline to ratchet down\n",
				e.Count, e.File, e.Analyzer, e.Message)
		}
		diags = fresh
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "smokevet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if *baselinePath != "" {
			fmt.Fprintf(os.Stderr, "smokevet: %d finding(s) not in baseline %s\n", len(diags), *baselinePath)
		} else {
			fmt.Fprintf(os.Stderr, "smokevet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
