// Command videogen materialises a synthetic corpus to a Smokescreen
// frame-store file (.smkv): ground-truth annotations per frame, optionally
// with rasterised pixel planes at a chosen resolution.
//
// Usage:
//
//	videogen -dataset small -out small.smkv
//	videogen -dataset night-street -out ns.smkv -rasters -resolution 128 -frames 200
//	videogen -dataset small -png previews/ -frames 10 -boxes
//
// Raster output is large; combine -rasters with -frames to materialise a
// preview slice. The -png mode writes one grayscale PNG per frame for
// human inspection, optionally with detection boxes overlaid.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smokescreen/internal/codec"
	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

func main() {
	var (
		name       = flag.String("dataset", "small", "dataset to materialise (see `smokescreen datasets`)")
		out        = flag.String("out", "", "output .smkv path")
		pngDir     = flag.String("png", "", "write per-frame PNG previews into this directory instead")
		boxes      = flag.Bool("boxes", false, "overlay YOLOv4Sim detections on PNG previews")
		rasters    = flag.Bool("rasters", false, "include rasterised pixel planes")
		resolution = flag.Int("resolution", 0, "raster resolution (0 = native)")
		frames     = flag.Int("frames", 0, "limit the number of frames (0 = all)")
	)
	flag.Parse()
	if *out == "" && *pngDir == "" {
		fmt.Fprintln(os.Stderr, "videogen: one of -out or -png is required")
		os.Exit(2)
	}

	v, err := dataset.Load(*name)
	if err != nil {
		fatal(err)
	}
	total := v.NumFrames()
	if *frames > 0 && *frames < total {
		total = *frames
	}
	p := v.Config.Width
	if *resolution > 0 {
		p = *resolution
	}

	if *pngDir != "" {
		if err := writePNGs(v, *pngDir, total, p, *boxes); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	w, err := codec.NewWriter(f, codec.Metadata{
		Name:      v.Config.Name,
		Width:     v.Config.Width,
		Height:    v.Config.Height,
		NumFrames: total,
		Seed:      v.Config.Seed,
	})
	if err != nil {
		fatal(err)
	}
	for i := 0; i < total; i++ {
		record := &codec.FrameRecord{Index: i, Objects: v.Frame(i).Objects}
		if *rasters {
			img := v.RenderNative(i)
			if p != v.Config.Width {
				img = raster.Downsample(img, p, p)
			}
			record.Raster = img
		}
		if err := w.WriteFrame(record); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d frames of %s (%d bytes)\n", *out, total, *name, info.Size())
}

// writePNGs exports per-frame grayscale previews, optionally with
// YOLOv4Sim detection boxes overlaid at the preview resolution.
func writePNGs(v *scene.Video, dir string, total, p int, boxes bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	model := detect.YOLOv4Sim()
	for i := 0; i < total; i++ {
		img := v.RenderNative(i)
		if p != v.Config.Width {
			img = raster.Downsample(img, p, p)
		}
		if boxes {
			if !model.ValidResolution(p) {
				return fmt.Errorf("videogen: -boxes requires a resolution %s accepts (multiple of %d <= %d)",
					model.Name, model.InputMultiple, model.NativeInput)
			}
			for _, d := range model.DetectFrame(v, i, p) {
				img.DrawBox(d.BBox, 1)
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%05d.png", v.Config.Name, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := raster.EncodePNG(f, img); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d PNG previews to %s\n", total, dir)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "videogen:", err)
	os.Exit(1)
}
