// Command smokeload drives load scenarios against a smokescreend fleet
// and reports throughput, latency percentiles, and the fleet's dedup and
// coordination counters as JSON.
//
// Two modes:
//
//	-mode inprocess (default) stands up an N-node in-process fleet on
//	loopback listeners with the synthetic generator — the same harness
//	the BenchmarkFleetServe* family uses — and runs the requested
//	scenarios against it. The generator's invocation counters give
//	ground truth for the dedup invariants (a hot-key herd must cost
//	exactly one generation fleet-wide), and violations exit non-zero.
//
//	-mode urls drives REAL daemons (started elsewhere, e.g. by
//	scripts/fleet_smoke.sh) listed in -urls. It runs the herd and
//	steady shapes with a real query and reports client-side results
//	plus fleet metric deltas scraped from each node's /metrics.
//
// Usage:
//
//	smokeload [-mode inprocess] [-scenario all|herd|kill|cancel|steady]
//	          [-nodes 3] [-clients 32] [-keys 16] [-requests 50]
//	          [-gen-delay 20ms] [-payload 4096] [-lease-ttl 250ms]
//	          [-json]
//	smokeload -mode urls -urls http://h1:p1,http://h2:p2 [-scenario herd]
//	          [-clients 8] [-query "SELECT ..."] [-step 0.05]
//	          [-max-fraction 0.1] [-json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"smokescreen/internal/fleetd"
	"smokescreen/internal/server"
)

func main() {
	mode := flag.String("mode", "inprocess", "inprocess (harness fleet) or urls (real daemons)")
	scenario := flag.String("scenario", "all", "herd, kill, cancel, steady, or all")
	nodes := flag.Int("nodes", 3, "inprocess: fleet size")
	clients := flag.Int("clients", 32, "concurrent clients for herd/steady")
	keys := flag.Int("keys", 16, "steady: key population")
	requests := flag.Int("requests", 50, "steady: requests per client")
	genDelay := flag.Duration("gen-delay", 20*time.Millisecond, "inprocess: synthetic generation hold time")
	payload := flag.Int("payload", 4096, "inprocess: synthetic artifact bytes")
	leaseTTL := flag.Duration("lease-ttl", 250*time.Millisecond, "inprocess: generation lease TTL")
	claimPoll := flag.Duration("claim-poll", 10*time.Millisecond, "inprocess: denied-claim poll interval")
	urls := flag.String("urls", "", "urls mode: comma-separated daemon base URLs")
	query := flag.String("query", "SELECT AVG(count(car)) FROM small", "urls mode: profile query")
	step := flag.Float64("step", 0.05, "urls mode: profile step")
	maxFraction := flag.Float64("max-fraction", 0.1, "urls mode: profile max fraction")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	asJSON := flag.Bool("json", false, "emit results as a JSON array instead of text")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var results []fleetd.LoadResult
	var err error
	switch *mode {
	case "inprocess":
		results, err = runInprocess(ctx, inprocessOpts{
			scenario: *scenario, nodes: *nodes, clients: *clients,
			keys: *keys, requests: *requests, genDelay: *genDelay,
			payload: *payload, leaseTTL: *leaseTTL, claimPoll: *claimPoll,
		})
	case "urls":
		results, err = runURLs(ctx, urlsOpts{
			scenario: *scenario, urls: fleetd.ParseNodes(*urls),
			clients: *clients, keys: *keys, requests: *requests,
			query: *query, step: *step, maxFraction: *maxFraction,
		})
	default:
		fmt.Fprintf(os.Stderr, "smokeload: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	emit(results, *asJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smokeload: %v\n", err)
		os.Exit(1)
	}
}

func emit(results []fleetd.LoadResult, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(results)
		return
	}
	for _, r := range results {
		fmt.Printf("%-7s %6d req %3d err %8.1f req/s  p50 %7.2fms  p99 %7.2fms  gen %d  fwd %d coalesced %d local %d repairs %d expiries %d\n",
			r.Scenario, r.Requests, r.Errors, r.RequestsPerSec,
			r.P50Millis, r.P99Millis, r.Generations,
			r.Forwards, r.Coalesced, r.LocalRequests, r.Repairs, r.LeaseExpiries)
	}
}

type inprocessOpts struct {
	scenario                string
	nodes, clients          int
	keys, requests, payload int
	genDelay                time.Duration
	leaseTTL, claimPoll     time.Duration
}

func runInprocess(ctx context.Context, o inprocessOpts) ([]fleetd.LoadResult, error) {
	dir, err := os.MkdirTemp("", "smokeload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	h, err := fleetd.StartHarness(fleetd.HarnessConfig{
		Nodes:        o.nodes,
		LeaseTTL:     o.leaseTTL,
		ClaimPoll:    o.claimPoll,
		GenDelay:     o.genDelay,
		PayloadBytes: o.payload,
		Dir:          dir,
	})
	if err != nil {
		return nil, err
	}
	defer h.Close()

	want := func(name string) bool { return o.scenario == "all" || o.scenario == name }
	var results []fleetd.LoadResult
	add := func(res fleetd.LoadResult, err error) error {
		results = append(results, res)
		return err
	}
	if want("herd") {
		res, err := h.RunHotKeyHerd(ctx, o.clients, "herd-hot-key")
		if err := add(res, err); err != nil {
			return results, err
		}
		if res.Generations != 1 {
			return results, fmt.Errorf("herd: %d generations fleet-wide, want exactly 1", res.Generations)
		}
	}
	if want("steady") {
		res, err := h.RunSteady(ctx, o.clients, o.keys, o.requests, "steady")
		if err := add(res, err); err != nil {
			return results, err
		}
		if res.Generations != o.keys {
			return results, fmt.Errorf("steady: %d generations for %d keys, want one each", res.Generations, o.keys)
		}
	}
	// Disruption scenarios run LAST: kill shrinks the fleet.
	if want("cancel") {
		if err := add(h.RunCancelPropagation(ctx)); err != nil {
			return results, err
		}
	}
	if want("kill") {
		res, err := h.RunKillDuringGeneration(ctx)
		if err := add(res, err); err != nil {
			return results, err
		}
		if res.LeaseExpiries == 0 {
			return results, fmt.Errorf("kill: recovery completed without a lease expiry")
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("unknown -scenario %q", o.scenario)
	}
	return results, nil
}

type urlsOpts struct {
	scenario                string
	urls                    []string
	clients, keys, requests int
	query                   string
	step, maxFraction       float64
}

// runURLs drives real daemons. No ground-truth generation counters here —
// the daemons are separate processes — so the report carries client-side
// results plus /metrics deltas; scripts assert on those.
func runURLs(ctx context.Context, o urlsOpts) ([]fleetd.LoadResult, error) {
	if len(o.urls) == 0 {
		return nil, fmt.Errorf("urls mode requires -urls")
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}}
	defer client.CloseIdleConnections()
	d := &urlDriver{client: client, urls: o.urls}

	want := func(name string) bool { return o.scenario == "all" || o.scenario == name }
	var results []fleetd.LoadResult
	if want("herd") {
		res, err := d.herd(ctx, o.clients, server.GenRequest{Query: o.query, Step: o.step, MaxFraction: o.maxFraction})
		results = append(results, res)
		if err != nil {
			return results, err
		}
	}
	if want("steady") {
		res, err := d.steady(ctx, o)
		results = append(results, res)
		if err != nil {
			return results, err
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("urls mode supports -scenario herd, steady, or all (got %q)", o.scenario)
	}
	return results, nil
}

type urlDriver struct {
	client *http.Client
	urls   []string
}

func (d *urlDriver) post(ctx context.Context, base string, genReq server.GenRequest) (int, string, error) {
	body, err := json.Marshal(genReq)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/profiles", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<26))
	return resp.StatusCode, resp.Header.Get("X-Smokescreen-Key"), nil
}

func (d *urlDriver) get(ctx context.Context, base, key string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/profiles/"+key, nil)
	if err != nil {
		return 0, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<26))
	return resp.StatusCode, nil
}

func (d *urlDriver) scrape(ctx context.Context) map[string]int64 {
	totals := make(map[string]int64)
	for _, base := range d.urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := d.client.Do(req)
		if err != nil {
			continue
		}
		m, err := fleetd.ParseMetrics(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			continue
		}
		for name, v := range m {
			totals[name] += v
		}
	}
	return totals
}

type urlRun struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    int64
}

func (r *urlRun) record(d time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latencies = append(r.latencies, d)
	if !ok {
		r.errors++
	}
}

func (r *urlRun) percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

func (d *urlDriver) finish(ctx context.Context, res *fleetd.LoadResult, run *urlRun, start time.Time, before map[string]int64) {
	elapsed := time.Since(start)
	res.DurationMillis = float64(elapsed) / float64(time.Millisecond)
	res.Errors = run.errors
	res.P50Millis = float64(run.percentile(0.50)) / float64(time.Millisecond)
	res.P99Millis = float64(run.percentile(0.99)) / float64(time.Millisecond)
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Requests) / elapsed.Seconds()
	}
	after := d.scrape(ctx)
	delta := func(name string) int64 { return after[name] - before[name] }
	res.Forwards = delta("smokescreend_fleet_forwards_total")
	res.Coalesced = delta("smokescreend_fleet_forwards_coalesced_total")
	res.LocalRequests = delta("smokescreend_fleet_local_requests_total")
	res.Repairs = delta("smokescreend_fleet_repairs_total")
	res.LeaseExpiries = delta("smokescreend_fleet_lease_expiries_total")
	res.LeaseWaits = delta("smokescreend_fleet_lease_waits_total")
	// Generation count from the inner server's own counter: for the herd
	// invariant against real daemons, the generations delta is visible in
	// smokescreend_jobs_done_total growth — reported via metrics only.
	res.Generations = int(delta("smokescreend_generations_total"))
}

func (d *urlDriver) herd(ctx context.Context, clients int, genReq server.GenRequest) (fleetd.LoadResult, error) {
	if clients <= 0 {
		clients = 8
	}
	before := d.scrape(ctx)
	res := fleetd.LoadResult{Scenario: "herd", Requests: int64(clients)}
	run := &urlRun{}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t0 := time.Now()
			status, _, err := d.post(ctx, d.urls[c%len(d.urls)], genReq)
			run.record(time.Since(t0), err == nil && status == http.StatusOK)
		}(c)
	}
	wg.Wait()
	d.finish(ctx, &res, run, start, before)
	if run.errors > 0 {
		return res, fmt.Errorf("herd: %d/%d requests failed", run.errors, clients)
	}
	return res, nil
}

func (d *urlDriver) steady(ctx context.Context, o urlsOpts) (fleetd.LoadResult, error) {
	clients, requests := o.clients, o.requests
	if clients <= 0 {
		clients = 4
	}
	if requests <= 0 {
		requests = 20
	}
	before := d.scrape(ctx)
	res := fleetd.LoadResult{Scenario: "steady"}
	run := &urlRun{}
	start := time.Now()

	// Warm one key, learn its id, then hammer GETs with periodic re-POSTs.
	genReq := server.GenRequest{Query: o.query, Step: o.step, MaxFraction: o.maxFraction}
	status, key, err := d.post(ctx, d.urls[0], genReq)
	res.Requests++
	if err != nil || status != http.StatusOK || key == "" {
		d.finish(ctx, &res, run, start, before)
		return res, fmt.Errorf("steady: warm POST returned %d key %q (%v)", status, key, err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < requests; j++ {
				base := d.urls[(c+j)%len(d.urls)]
				t0 := time.Now()
				var status int
				var err error
				if j%8 == 7 {
					status, _, err = d.post(ctx, base, genReq)
				} else {
					status, err = d.get(ctx, base, key)
				}
				run.record(time.Since(t0), err == nil && status == http.StatusOK)
			}
		}(c)
	}
	wg.Wait()
	res.Requests += int64(clients * requests)
	d.finish(ctx, &res, run, start, before)
	if run.errors > 0 {
		return res, fmt.Errorf("steady: %d requests failed", run.errors)
	}
	return res, nil
}
