package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/evaluate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// cmdAccuracy reports a detector's inherent accuracy (precision / recall /
// F1 against simulator ground truth) across its candidate resolutions —
// the number an administrator folds into the error threshold when reading
// a profile (paper Section 2.3):
//
//	smokescreen accuracy -dataset small -model yolov4 -class car
func cmdAccuracy(args []string) {
	fs := flag.NewFlagSet("accuracy", flag.ExitOnError)
	var (
		datasetName = fs.String("dataset", "small", "corpus to evaluate on")
		modelName   = fs.String("model", "yolov4", "detector to evaluate")
		className   = fs.String("class", "car", "object class")
		iou         = fs.Float64("iou", 0.3, "IoU threshold for a match")
		fraction    = fs.Float64("fraction", 0.2, "fraction of frames to evaluate")
		seed        = fs.Uint64("seed", 1, "randomness seed for the frame subset")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	v, err := dataset.Load(*datasetName)
	if err != nil {
		fatal(err)
	}
	model, err := detect.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	class, err := scene.ParseClass(strings.ToLower(*className))
	if err != nil {
		fatal(err)
	}
	if !model.CanDetect(class) {
		fatal(fmt.Errorf("model %s cannot detect %v", model.Name, class))
	}
	if *fraction <= 0 || *fraction > 1 {
		fatal(fmt.Errorf("fraction %v out of (0,1]", *fraction))
	}

	n := v.NumFrames()
	sub := int(float64(n) * *fraction)
	if sub < 1 {
		sub = 1
	}
	frames := stats.NewStream(*seed).SampleWithoutReplacement(n, sub)

	fmt.Printf("inherent accuracy of %s on %s (%v, IoU >= %.2f, %d frames)\n\n",
		model.Name, v.Config.Name, class, *iou, sub)
	fmt.Println("resolution  precision  recall   F1")
	for _, point := range evaluate.ResolutionSweep(v, model, class, frames, *iou) {
		m := point.Metrics
		fmt.Printf("%-11s %.4f     %.4f   %.4f\n",
			fmt.Sprintf("%dx%d", point.Resolution, point.Resolution),
			m.Precision(), m.Recall(), m.F1())
	}
}
