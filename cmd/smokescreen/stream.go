package main

import (
	"flag"
	"fmt"
	"net"
	"strings"

	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

// cmdStream runs a complete camera-to-processor session over a real TCP
// loopback connection: the camera degrades on-device and transmits, the
// central processor detects on the received pixels, and both sides'
// accounting is printed. This is the deployment topology of the paper's
// system model, runnable end to end:
//
//	smokescreen stream -dataset small -sample 0.05 -resolution 160 -remove face
func cmdStream(args []string) {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	var (
		datasetName = fs.String("dataset", "small", "corpus to stream")
		sample      = fs.Float64("sample", 0.05, "frame-sampling fraction")
		resolution  = fs.Int("resolution", 0, "transmission resolution (0 = native)")
		remove      = fs.String("remove", "", "comma-separated restricted classes")
		noise       = fs.Float64("noise", 0, "added capture noise sigma")
		seed        = fs.Uint64("seed", 1, "randomness seed")
		addr        = fs.String("addr", "127.0.0.1:0", "TCP address to rendezvous on")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	setting := degrade.Setting{SampleFraction: *sample, Resolution: *resolution, NoiseSigma: *noise}
	if *remove != "" {
		for _, name := range strings.Split(*remove, ",") {
			c, err := scene.ParseClass(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			setting.Restricted = append(setting.Restricted, c)
		}
	}

	v, err := dataset.Load(*datasetName)
	if err != nil {
		fatal(err)
	}
	model := detect.YOLOv4Sim()
	node := &camera.Node{Video: v, Model: model, Setting: setting, Energy: camera.DefaultEnergyModel()}

	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	defer listener.Close()
	fmt.Printf("processor listening on %s\n", listener.Addr())

	type streamResult struct {
		report camera.Report
		err    error
	}
	cameraDone := make(chan streamResult, 1)
	go func() {
		conn, err := net.Dial("tcp", listener.Addr().String())
		if err != nil {
			cameraDone <- streamResult{err: err}
			return
		}
		defer conn.Close()
		report, err := node.Stream(transport.New(conn), stats.NewStream(*seed))
		cameraDone <- streamResult{report: report, err: err}
	}()

	serverConn, err := listener.Accept()
	if err != nil {
		fatal(err)
	}
	defer serverConn.Close()

	var totalCars, frames int
	var estimator *estimate.StreamingEstimator
	session, err := camera.Receive(transport.New(serverConn), func(s *camera.Session, fr camera.ReceivedFrame) error {
		if estimator == nil {
			// Any-time mode: the operator watches the running bound, so
			// every reported bound must hold simultaneously.
			var err error
			estimator, err = estimate.NewStreamingEstimator(estimate.AVG, s.Config.TotalFrames, estimate.DefaultParams(), true)
			if err != nil {
				return err
			}
		}
		cars := detect.CountClass(s.Detect(model, fr), scene.Car)
		totalCars += cars
		frames++
		est := estimator.Observe(float64(cars))
		if frames%10 == 0 {
			fmt.Printf("  after %3d frames: running mean %.3f, conservative estimate %.3f (err <= %.3f, any-time)\n",
				frames, float64(totalCars)/float64(frames), est.Value, est.ErrBound)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	result := <-cameraDone
	if result.err != nil {
		fatal(result.err)
	}

	fmt.Printf("camera:     %s (%s)\n", v.Config.Name, setting)
	fmt.Printf("transmitted %d frames, %d bytes\n", result.report.FramesTransmitted, result.report.BytesTransmitted)
	fmt.Printf("energy:     capture %.3f J + compute %.3f J + radio %.3f J = %.3f J\n",
		result.report.CaptureJoules, result.report.ComputeJoules, result.report.TransmitJoules, result.report.TotalJoules())
	fmt.Printf("processor:  received %d frames at %dx%d\n", frames, session.Config.Resolution, session.Config.Resolution)
	if frames > 0 {
		fmt.Printf("detected:   %.3f cars per transmitted frame\n", float64(totalCars)/float64(frames))
	}
}
