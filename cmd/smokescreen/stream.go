package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"strings"
	"time"

	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/server"
	"smokescreen/internal/stats"
	"smokescreen/internal/stream"
	"smokescreen/internal/transport"
)

// cmdStream runs camera-to-processor streaming over a real TCP loopback
// connection: the camera degrades on-device and transmits, the central
// processor detects on what arrives. Two modes:
//
//   - One-shot (default): a single session with a running any-time
//     estimate and the camera's byte/energy accounting.
//
//     smokescreen stream -dataset small -sample 0.05 -resolution 160 -remove face
//
//   - Windowed (-window W): the live-ingest subsystem — the camera loops
//     its corpus -loops times (unbounded video), the receiver maintains
//     windowed profiles with incremental refresh and flags drift against
//     the profiled corpus baseline. ^C cancels cleanly: in-flight
//     detection stops and no partial window is reported.
//
//     smokescreen stream -dataset small -window 300 -stride 150 -loops 3 -sample 0.2
//
// With -remote the windowed mode runs inside a smokescreend daemon
// instead (POST /v1/streams), and this command just watches it.
func cmdStream(args []string) {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	var (
		datasetName = fs.String("dataset", "small", "corpus to stream")
		sample      = fs.Float64("sample", 0.05, "frame-sampling fraction")
		resolution  = fs.Int("resolution", 0, "transmission resolution (0 = native)")
		remove      = fs.String("remove", "", "comma-separated restricted classes")
		noise       = fs.Float64("noise", 0, "added capture noise sigma")
		seed        = fs.Uint64("seed", 1, "randomness seed")
		addr        = fs.String("addr", "127.0.0.1:0", "TCP address to rendezvous on")
		window      = fs.Int("window", 0, "windowed mode: window span in stream positions (0 = one-shot session)")
		stride      = fs.Int("stride", 0, "windowed mode: distance between window starts (0 = tumbling)")
		loops       = fs.Int("loops", 1, "windowed mode: camera sessions replaying the corpus back to back")
		class       = fs.String("class", "car", "windowed mode: object class to count")
		agg         = fs.String("agg", "avg", "windowed mode: per-window aggregate (avg, sum, count)")
		driftThresh = fs.Float64("drift-threshold", 0, "windowed mode: total-variation drift trigger (0 = default)")
		noDrift     = fs.Bool("no-drift", false, "windowed mode: skip the corpus baseline and drift detection")
		wirePixels  = fs.Bool("wire-pixels", false, "windowed mode: detect on received rasters instead of the replay backend")
		remote      = fs.String("remote", "", "windowed mode: smokescreend base URL; run the stream in the daemon and watch it")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	if *remote != "" {
		remoteStream(strings.TrimRight(*remote, "/"), server.StreamRequest{
			Dataset:        *datasetName,
			Class:          *class,
			Agg:            *agg,
			Window:         *window,
			Stride:         *stride,
			Sample:         *sample,
			Resolution:     *resolution,
			Loops:          *loops,
			Seed:           *seed,
			DriftThreshold: *driftThresh,
			DisableDrift:   *noDrift,
			WirePixels:     *wirePixels,
		})
		return
	}

	setting := degrade.Setting{SampleFraction: *sample, Resolution: *resolution, NoiseSigma: *noise}
	if *remove != "" {
		for _, name := range strings.Split(*remove, ",") {
			c, err := scene.ParseClass(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			setting.Restricted = append(setting.Restricted, c)
		}
	}

	v, err := dataset.Load(*datasetName)
	if err != nil {
		fatal(err)
	}
	model := detect.YOLOv4Sim()
	node := &camera.Node{Video: v, Model: model, Setting: setting, Energy: camera.DefaultEnergyModel()}

	if *window > 0 {
		windowedStream(node, windowedOpts{
			window: *window, stride: *stride, loops: *loops,
			class: *class, agg: *agg, seed: *seed, addr: *addr,
			driftThresh: *driftThresh, noDrift: *noDrift, wirePixels: *wirePixels,
		})
		return
	}
	oneShotStream(node, *seed, *addr)
}

type windowedOpts struct {
	window, stride, loops int
	class, agg            string
	seed                  uint64
	addr                  string
	driftThresh           float64
	noDrift               bool
	wirePixels            bool
}

// windowedStream runs the live-ingest subsystem locally: camera and
// receiver in one process, joined by TCP loopback.
func windowedStream(node *camera.Node, opts windowedOpts) {
	class, err := scene.ParseClass(opts.class)
	if err != nil {
		fatal(err)
	}
	agg, err := estimate.ParseAgg(opts.agg)
	if err != nil {
		fatal(err)
	}
	cfg := stream.Config{
		Model:          node.Model,
		Class:          class,
		Agg:            agg,
		WindowSpan:     opts.window,
		WindowStride:   opts.stride,
		Sources:        []*scene.Video{node.Video},
		WirePixels:     opts.wirePixels,
		DriftThreshold: opts.driftThresh,
		OnWindow: func(res stream.WindowResult) {
			drift := ""
			if res.Drifted {
				drift = "  << DRIFT"
			}
			fmt.Printf("window %3d [%6d,%6d): %s = %.3f (err <= %.3f, %d/%d frames, divergence %.3f)%s\n",
				res.Seq, res.Lo, res.Hi, opts.agg, res.Estimate.Value, res.Estimate.ErrBound,
				res.Frames, res.Estimate.N, res.Divergence, drift)
		},
		OnDrift: func(ev stream.DriftEvent) {
			fmt.Println("  " + ev.String())
		},
	}
	recv, err := stream.New(cfg)
	if err != nil {
		fatal(err)
	}

	ctx, cancel := interruptCtx()
	defer cancel()

	if !opts.noDrift && !opts.wirePixels {
		p := node.Setting.ResolveResolution(node.Model)
		fmt.Printf("building corpus drift baseline (%s at %dx%d)...\n", node.Video.Config.Name, p, p)
		base, err := stream.CorpusBaseline(ctx, node.Video, node.Model, class, p)
		if err != nil {
			fatal(err)
		}
		recv.SetBaseline(base)
		fmt.Printf("baseline mean %.3f over %d distinct values\n", base.Mean, len(base.Values))
	}

	listener, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fatal(err)
	}
	defer listener.Close()
	fmt.Printf("processor listening on %s (window %d, stride %d, %d sessions)\n",
		listener.Addr(), opts.window, max(opts.stride, 0), opts.loops)

	cameraErr := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", listener.Addr().String())
		if err != nil {
			cameraErr <- err
			return
		}
		defer conn.Close()
		tconn := transport.New(conn)
		var report camera.Report
		for i := 0; i < opts.loops; i++ {
			r, err := node.StreamCtx(ctx, tconn, stats.NewStream(opts.seed+uint64(i)))
			if err != nil {
				cameraErr <- err
				return
			}
			report.FramesCaptured += r.FramesCaptured
			report.FramesTransmitted += r.FramesTransmitted
		}
		fmt.Printf("camera done: %d frames captured, %d transmitted, %d bytes\n",
			report.FramesCaptured, report.FramesTransmitted, tconn.BytesSent())
		cameraErr <- nil
	}()

	serverConn, err := listener.Accept()
	if err != nil {
		fatal(err)
	}
	// The receiver's cancellation contract: a ^C must also close the
	// connection so a blocked transport read unwinds.
	go func() {
		<-ctx.Done()
		serverConn.Close()
	}()
	runErr := recv.Run(ctx, transport.New(serverConn))
	serverConn.Close()
	if err := <-cameraErr; err != nil && !errors.Is(err, context.Canceled) && runErr == nil {
		fatal(err)
	}

	st := recv.Status()
	switch {
	case runErr == nil:
		fmt.Printf("stream ended cleanly: %d windows from %d frames (%d late), %d drift events\n",
			st.Windows, st.Frames, st.Late, st.Drifts)
	case errors.Is(runErr, context.Canceled):
		fmt.Printf("canceled: %d complete windows reported, partial window discarded\n", st.Windows)
	default:
		fatal(runErr)
	}
}

// remoteStream starts a stream job in a smokescreend daemon and watches
// it, polling the status endpoint; ^C cancels the remote job.
func remoteStream(baseURL string, req server.StreamRequest) {
	if req.Window <= 0 {
		fatal(errors.New("remote streaming requires -window"))
	}
	ctx, cancel := interruptCtx()
	defer cancel()
	client := &server.Client{BaseURL: baseURL}
	status, err := client.StartStream(ctx, req)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream %s started on %s (%s, window %d, %d sessions)\n",
		status.ID, baseURL, req.Dataset, req.Window, status.Loops)

	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	lastWindows := -1
	for {
		select {
		case <-ctx.Done():
			// ^C: cancel the remote job (with a fresh context — ours is
			// already done) and report its final state.
			stopCtx, stopCancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer stopCancel()
			if _, err := client.CancelStream(stopCtx, status.ID); err != nil {
				fatal(err)
			}
			final, err := client.AwaitStream(stopCtx, status.ID)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("canceled: state %s, %d complete windows, %d drift events\n",
				final.State, final.Stream.Windows, final.Stream.Drifts)
			return
		case <-ticker.C:
		}
		st, err := client.Stream(ctx, status.ID)
		if err != nil {
			if ctx.Err() != nil {
				continue // the ^C branch will handle it
			}
			fatal(err)
		}
		if st.Stream.Windows != lastWindows && st.Stream.LastWindow != nil {
			lw := st.Stream.LastWindow
			fmt.Printf("window %3d [%6d,%6d): %.3f (err <= %.3f, %d frames, divergence %.3f, lag %d, drifts %d)\n",
				lw.Seq, lw.Lo, lw.Hi, lw.Estimate.Value, lw.Estimate.ErrBound,
				lw.Frames, lw.Divergence, st.Stream.WindowLag, st.Stream.Drifts)
			lastWindows = st.Stream.Windows
		}
		if st.State != server.JobRunning {
			fmt.Printf("stream %s: %s — %d windows from %d frames, %d drift events\n",
				st.ID, st.State, st.Stream.Windows, st.Stream.Frames, st.Stream.Drifts)
			if st.Error != "" {
				fatal(errors.New(st.Error))
			}
			return
		}
	}
}

// oneShotStream is the original single-session mode: per-frame running
// estimates and the camera's accounting.
func oneShotStream(node *camera.Node, seed uint64, addr string) {
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	defer listener.Close()
	fmt.Printf("processor listening on %s\n", listener.Addr())

	type streamResult struct {
		report camera.Report
		err    error
	}
	cameraDone := make(chan streamResult, 1)
	go func() {
		conn, err := net.Dial("tcp", listener.Addr().String())
		if err != nil {
			cameraDone <- streamResult{err: err}
			return
		}
		defer conn.Close()
		report, err := node.Stream(transport.New(conn), stats.NewStream(seed))
		cameraDone <- streamResult{report: report, err: err}
	}()

	serverConn, err := listener.Accept()
	if err != nil {
		fatal(err)
	}
	defer serverConn.Close()

	var totalCars, frames int
	var estimator *estimate.StreamingEstimator
	session, err := camera.Receive(transport.New(serverConn), func(s *camera.Session, fr camera.ReceivedFrame) error {
		if estimator == nil {
			// Any-time mode: the operator watches the running bound, so
			// every reported bound must hold simultaneously.
			var err error
			estimator, err = estimate.NewStreamingEstimator(estimate.AVG, s.Config.TotalFrames, estimate.DefaultParams(), true)
			if err != nil {
				return err
			}
		}
		cars := detect.CountClass(s.Detect(node.Model, fr), scene.Car)
		totalCars += cars
		frames++
		est := estimator.Observe(float64(cars))
		if frames%10 == 0 {
			fmt.Printf("  after %3d frames: running mean %.3f, conservative estimate %.3f (err <= %.3f, any-time)\n",
				frames, float64(totalCars)/float64(frames), est.Value, est.ErrBound)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	result := <-cameraDone
	if result.err != nil {
		fatal(result.err)
	}

	fmt.Printf("camera:     %s (%s)\n", node.Video.Config.Name, node.Setting)
	fmt.Printf("transmitted %d frames, %d bytes\n", result.report.FramesTransmitted, result.report.BytesTransmitted)
	fmt.Printf("energy:     capture %.3f J + compute %.3f J + radio %.3f J = %.3f J\n",
		result.report.CaptureJoules, result.report.ComputeJoules, result.report.TransmitJoules, result.report.TotalJoules())
	fmt.Printf("processor:  received %d frames at %dx%d\n", frames, session.Config.Resolution, session.Config.Resolution)
	if frames > 0 {
		fmt.Printf("detected:   %.3f cars per transmitted frame\n", float64(totalCars)/float64(frames))
	}
}
