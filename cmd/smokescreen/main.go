// Command smokescreen is the interactive front door to the Smokescreen
// system: run analytical queries under destructive interventions, generate
// degradation-accuracy profiles, and choose tradeoffs.
//
// Usage:
//
//	smokescreen query   [-seed S] "SELECT AVG(count(car)) FROM night-street SAMPLE 0.1"
//	smokescreen profile [-seed S] [-max-err E] [-step F] [-max-fraction F] "SELECT ..."
//	smokescreen curve   [-seed S] [-resolution P] [-remove c1,c2] [-noise S] [-blur L] [-quantize Q] [-occlude D] "SELECT ..."
//	smokescreen ladder  [-seed S] [-name default] "SELECT ..."
//	smokescreen datasets
//
// The query subcommand executes the query under its own interventions and
// prints the approximate answer with its error bound. The profile
// subcommand runs the full profile-generation stage, prints the three
// loosest hypercube slices (the administrator's starting view, Section
// 3.1) and, when -max-err is given, the chosen tradeoff. The curve
// subcommand prints a single fraction-axis tradeoff curve.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smokescreen"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/server"
	"smokescreen/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "query":
		cmdQuery(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "curve":
		cmdCurve(os.Args[2:])
	case "ladder":
		cmdLadder(os.Args[2:])
	case "choose":
		cmdChoose(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "accuracy":
		cmdAccuracy(os.Args[2:])
	case "stream":
		cmdStream(os.Args[2:])
	case "datasets":
		cmdDatasets()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "smokescreen: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  smokescreen query    "SELECT AVG(count(car)) FROM night-street SAMPLE 0.1"
  smokescreen profile  -max-err 0.1 "SELECT AVG(count(car)) FROM ua-detrac"
  smokescreen profile  -remote http://127.0.0.1:8040 "SELECT AVG(count(car)) FROM small"
  smokescreen curve    [-resolution P] [-remove c] [-noise S] [-blur L] [-quantize Q] [-occlude D] "SELECT AVG(count(car)) FROM small"
  smokescreen ladder   [-name default] "SELECT AVG(count(car)) FROM small"
  smokescreen choose   -load cube.json -max-err 0.1
  smokescreen explain  "SELECT AVG(count(car)) FROM small RESOLUTION 160"
  smokescreen accuracy -dataset small -model yolov4 -class car
  smokescreen stream   -dataset small -sample 0.05 -resolution 160 -remove face
  smokescreen stream   -dataset small -window 300 -stride 150 -loops 3 -sample 0.2
  smokescreen stream   -remote http://127.0.0.1:8040 -dataset small -window 300
  smokescreen datasets
`)
	os.Exit(2)
}

// interruptCtx returns a context canceled on SIGINT/SIGTERM: ^C during a
// long generation stops detector work mid-plan through the pipeline's
// cancellation path instead of killing the process between frames.
func interruptCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func parseQueryArg(fs *flag.FlagSet, args []string) *smokescreen.Query {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "smokescreen: exactly one query string expected")
		os.Exit(2)
	}
	q, err := smokescreen.ParseQuery(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	return q
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "randomness seed")
	truth := fs.Bool("truth", false, "also compute the exact answer (touches the whole corpus!)")
	until := fs.Float64("until", 0, "adaptive mode: sample until the error bound reaches this target")
	budget := fs.Float64("budget", 0.5, "adaptive mode: largest corpus fraction that may be touched")
	q := parseQueryArg(fs, args)

	ctx, cancel := interruptCtx()
	defer cancel()
	sys := smokescreen.New(smokescreen.WithSeed(*seed))
	if *until > 0 {
		res, err := sys.ExecuteUntilCtx(ctx, q, *until, *budget)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query:      %s (adaptive, target err <= %.4g)\n", q, *until)
		fmt.Printf("answer:     %.6g\n", res.Estimate.Value)
		fmt.Printf("error <=    %.4f (any-time bound)\n", res.Estimate.ErrBound)
		fmt.Printf("frames:     %d of %d (target met: %v)\n", res.FramesUsed, res.Estimate.N, res.Met)
		return
	}
	res, err := sys.ExecuteCtx(ctx, q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query:      %s\n", q)
	fmt.Printf("setting:    %s\n", res.Setting)
	fmt.Printf("answer:     %.6g\n", res.Estimate.Value)
	fmt.Printf("error <=    %.4f (with %.0f%% confidence)\n", res.Estimate.ErrBound, (1-q.Delta)*100)
	fmt.Printf("frames:     %d of %d\n", res.Estimate.Sample, res.Estimate.N)
	if res.Repaired {
		fmt.Println("repair:     bound corrected with a correction set (non-random interventions)")
	}
	if *truth {
		exact, err := sys.GroundTruth(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact:      %.6g (true error %.4f)\n", exact, math.Abs(res.Estimate.Value-exact)/math.Abs(exact))
	}
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "randomness seed")
	maxErr := fs.Float64("max-err", 0, "public preference: maximum analytical error (0 = only print profiles)")
	step := fs.Float64("step", 0.01, "sample-fraction candidate interval")
	maxFraction := fs.Float64("max-fraction", 0.2, "largest sample-fraction candidate")
	save := fs.String("save", "", "archive the generated hypercube as JSON at this path")
	earlyStop := fs.Float64("early-stop", 0, "stop each sweep when the bound improves by less than this (0 = off)")
	remote := fs.String("remote", "", "smokescreend base URL (e.g. http://127.0.0.1:8040): fetch the tradeoff curve from the profile service instead of generating locally")
	timeout := fs.Duration("timeout", 5*time.Minute, "remote mode: total request timeout")
	q := parseQueryArg(fs, args)

	ctx, cancel := interruptCtx()
	defer cancel()

	if *remote != "" {
		remoteProfile(ctx, *remote, *timeout, server.GenRequest{
			Query:       q.String(),
			Seed:        *seed,
			Step:        *step,
			MaxFraction: *maxFraction,
			EarlyStop:   *earlyStop,
		})
		return
	}

	sys := smokescreen.New(
		smokescreen.WithSeed(*seed),
		smokescreen.WithFractionCandidates(*step, *maxFraction),
		smokescreen.WithEarlyStop(*earlyStop),
	)
	profiles, err := sys.GenerateProfilesCtx(ctx, q)
	if err != nil {
		fatal(err)
	}
	cube := profiles.Cube
	fmt.Printf("profile generation: %s, %d model invocations, correction set %.0f%% of corpus\n\n",
		profiles.Elapsed.Round(1e6), profiles.ModelInvocations, profiles.Correction.Fraction*100)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := profile.SaveHypercube(f, cube); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("hypercube archived to %s\n\n", *save)
	}

	// The administrator's initial view: three slices with the unseen
	// dimensions fixed to their loosest values (Section 3.1).
	fmt.Println("slice 1: error bound vs sample fraction (resolution native, no removal)")
	printFractionSlice(cube, 0, 0)
	fmt.Println("\nslice 2: error bound vs resolution (loosest profiled fraction, no removal)")
	printResolutionSlice(cube, 0, len(cube.Fractions)-1)
	fmt.Println("\nslice 3: error bound vs restricted classes (resolution native, loosest fraction)")
	printComboSlice(cube, 0, len(cube.Fractions)-1)

	if *maxErr > 0 {
		setting, err := sys.ChooseTradeoff(profiles, smokescreen.Preferences{MaxError: *maxErr})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nchosen tradeoff for max error %.4g: %s\n", *maxErr, setting)
		res, err := sys.ExecuteSettingCtx(ctx, q, setting)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("answer under chosen setting: %.6g (error <= %.4f)\n", res.Estimate.Value, res.Estimate.ErrBound)
	}
}

// remoteProfile fetches a fraction-axis tradeoff curve from a running
// smokescreend and renders it like cmdCurve. The daemon serves the
// artifact from its content-addressed store, generating it (once, however
// many clients ask) on a miss.
func remoteProfile(parent context.Context, baseURL string, timeout time.Duration, req server.GenRequest) {
	ctx, cancel := context.WithTimeout(parent, timeout)
	defer cancel()
	client := &server.Client{BaseURL: strings.TrimRight(baseURL, "/")}
	prof, key, err := client.Generate(ctx, req)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profile service %s\n", baseURL)
	fmt.Printf("artifact key:   %s\n", key)
	fmt.Printf("tradeoff curve for %s (video %s, model %s)\n", req.Query, prof.VideoName, prof.ModelName)
	for _, pt := range prof.Points {
		bar := strings.Repeat("#", int(math.Min(pt.Estimate.ErrBound, 1)*50))
		fmt.Printf("  f=%-6.3g err<=%-7.4f %s\n", pt.Setting.SampleFraction, pt.Estimate.ErrBound, bar)
	}
}

func printFractionSlice(cube *smokescreen.Hypercube, ci, ri int) {
	bounds := cube.SliceByFraction(ci, ri)
	for fi, f := range cube.Fractions {
		fmt.Printf("  f=%-6.3g err<=%s\n", f, fmtBound(bounds[fi]))
	}
}

func printResolutionSlice(cube *smokescreen.Hypercube, ci, fi int) {
	bounds := cube.SliceByResolution(ci, fi)
	for ri, p := range cube.Resolutions {
		fmt.Printf("  p=%-9s err<=%s\n", fmt.Sprintf("%dx%d", p, p), fmtBound(bounds[ri]))
	}
}

func printComboSlice(cube *smokescreen.Hypercube, ri, fi int) {
	for ci, combo := range cube.Combos {
		label := "none"
		if len(combo) > 0 {
			names := make([]string, len(combo))
			for i, c := range combo {
				names[i] = c.String()
			}
			label = strings.Join(names, "+")
		}
		fmt.Printf("  c=%-12s err<=%s\n", label, fmtBound(cube.Bounds[ci][ri][fi]))
	}
}

func fmtBound(v float64) string {
	if math.IsNaN(v) {
		return "infeasible (sample exceeds admissible pool)"
	}
	return fmt.Sprintf("%.4f", v)
}

func cmdCurve(args []string) {
	fs := flag.NewFlagSet("curve", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "randomness seed")
	resolution := fs.Int("resolution", 0, "fix the resolution axis (0 = native)")
	remove := fs.String("remove", "", "comma-separated restricted classes")
	noise := fs.Float64("noise", 0, "fix the sensor-noise axis (sigma in [0,0.5])")
	blur := fs.Int("blur", 0, "fix the motion-blur axis (kernel length, 0 = off)")
	quantize := fs.Int("quantize", 0, "fix the quantization axis (intensity levels, 0 = off)")
	occlude := fs.Float64("occlude", 0, "fix the occlusion axis (scratch/dirt density in [0,0.5])")
	q := parseQueryArg(fs, args)

	var restricted []scene.Class
	if *remove != "" {
		for _, name := range strings.Split(*remove, ",") {
			c, err := scene.ParseClass(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			restricted = append(restricted, c)
		}
	}
	setting := degrade.Setting{
		Resolution: *resolution,
		Restricted: restricted,
		NoiseSigma: *noise,
		MotionBlur: *blur,
		Quantize:   *quantize,
		Occlusion:  *occlude,
	}
	ctx, cancel := interruptCtx()
	defer cancel()
	sys := smokescreen.New(smokescreen.WithSeed(*seed))
	fractions := make([]float64, 20)
	for i := range fractions {
		fractions[i] = 0.01 * float64(i+1)
	}
	opts := profile.SweepOptions{Fractions: fractions, Setting: setting}
	spec, err := sys.Resolve(q)
	if err != nil {
		fatal(err)
	}
	probe := setting
	probe.SampleFraction = fractions[0]
	if err := probe.Validate(spec.Model); err != nil {
		fatal(err)
	}
	if !probe.IsRandomOnly(spec.Model) {
		// Non-random axes need a correction set; generate one first.
		corr, err := profile.ConstructCorrectionCtx(ctx, spec, 0.2, stats.NewStream(*seed))
		if err != nil {
			fatal(err)
		}
		opts.Correction = corr.Correction
	}
	prof, err := sys.SweepProfileCtx(ctx, q, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tradeoff curve for %s\n", q)
	for _, pt := range prof.Points {
		bar := strings.Repeat("#", int(math.Min(pt.Estimate.ErrBound, 1)*50))
		fmt.Printf("  f=%-6.3g err<=%-7.4f %s\n", pt.Setting.SampleFraction, pt.Estimate.ErrBound, bar)
	}
}

// cmdLadder generates the fidelity-ladder profile of a query: one
// tradeoff point per tier of the named ladder, loosest first, with every
// non-random tier's bound repaired through the correction set.
func cmdLadder(args []string) {
	fs := flag.NewFlagSet("ladder", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "randomness seed")
	name := fs.String("name", "default", "ladder to evaluate")
	q := parseQueryArg(fs, args)

	ctx, cancel := interruptCtx()
	defer cancel()
	sys := smokescreen.New(smokescreen.WithSeed(*seed))
	spec, err := sys.Resolve(q)
	if err != nil {
		fatal(err)
	}
	ladder, err := plan.LadderByName(*name, spec.Model)
	if err != nil {
		fatal(err)
	}
	opts := profile.LadderOptions{}
	for _, tier := range ladder.Tiers {
		if !tier.Setting.IsRandomOnly(spec.Model) {
			corr, err := profile.ConstructCorrectionCtx(ctx, spec, 0.2, stats.NewStream(*seed))
			if err != nil {
				fatal(err)
			}
			opts.Correction = corr.Correction
			break
		}
	}
	prof, err := sys.LadderProfileCtx(ctx, q, ladder, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fidelity ladder %q for %s\n", ladder.Name, q)
	for _, pt := range prof.Points {
		repaired := ""
		if pt.Repaired {
			repaired = " (repaired)"
		}
		fmt.Printf("  %-10s %-40s err<=%-7.4f%s\n", pt.Tier, pt.Setting, pt.Estimate.ErrBound, repaired)
	}
}

// cmdExplain resolves a query without executing it: which corpus and
// model will run, how the interventions classify (random vs non-random),
// how many frames the plan touches, and whether profile repair applies.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "randomness seed")
	q := parseQueryArg(fs, args)

	sys := smokescreen.New(smokescreen.WithSeed(*seed))
	spec, err := sys.Resolve(q)
	if err != nil {
		fatal(err)
	}
	n := spec.Video.NumFrames()
	fmt.Printf("query:        %s\n", q)
	fmt.Printf("dataset:      %s (%d frames, %dx%d native)\n",
		spec.Video.Config.Name, n, spec.Video.Config.Width, spec.Video.Config.Height)
	fmt.Printf("model:        %s (input <= %d, multiples of %d, threshold %.1f)\n",
		spec.Model.Name, spec.Model.NativeInput, spec.Model.InputMultiple, spec.Model.Threshold)
	fmt.Printf("aggregate:    %s over count(%s), delta=%.3g, r=%.3g\n", q.Agg, spec.Class, q.Delta, q.R)

	setting := q.Setting
	if err := setting.Validate(spec.Model); err != nil {
		fatal(err)
	}
	kind := "random only (sound bounds without a correction set)"
	if !setting.IsRandomOnly(spec.Model) {
		kind = "non-random (bounds will be repaired with a correction set)"
	}
	fmt.Printf("interventions: %s — %s\n", setting, kind)
	admissible := degrade.AdmissibleFrames(spec.Video, setting.Restricted)
	want := int(float64(n)*setting.SampleFraction + 0.5)
	fmt.Printf("plan:          sample %d of %d admissible frames (corpus %d) at %dx%d\n",
		want, len(admissible), n, setting.ResolveResolution(spec.Model), setting.ResolveResolution(spec.Model))
	if want > len(admissible) {
		fmt.Println("warning:       the sample exceeds the admissible pool; execution will fail — lower SAMPLE")
	}
}

// cmdChoose re-runs the choosing-a-tradeoff stage on an archived
// hypercube, without touching any video: the cheap second half of the
// administration procedure.
func cmdChoose(args []string) {
	fs := flag.NewFlagSet("choose", flag.ExitOnError)
	load := fs.String("load", "", "hypercube JSON produced by `smokescreen profile -save` (required)")
	maxErr := fs.Float64("max-err", 0.1, "public preference: maximum analytical error")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *load == "" {
		fmt.Fprintln(os.Stderr, "smokescreen: choose requires -load")
		os.Exit(2)
	}
	f, err := os.Open(*load)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	cube, err := profile.LoadHypercube(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hypercube: %s / %s / %s(count(%s))\n", cube.VideoName, cube.ModelName, cube.Agg, cube.Class)
	setting, ok := cube.ChooseTradeoff(*maxErr)
	if !ok {
		fatal(fmt.Errorf("no intervention candidate satisfies max error %v", *maxErr))
	}
	fmt.Printf("chosen tradeoff for max error %.4g: %s\n", *maxErr, setting)
}

func cmdDatasets() {
	for _, name := range dataset.Names() {
		info, err := dataset.Describe(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s %s\n", name, info.Description)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smokescreen:", err)
	os.Exit(1)
}
