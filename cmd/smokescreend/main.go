// Command smokescreend is the Smokescreen profile service daemon: it
// serves degradation-accuracy profiles over HTTP from a content-addressed
// on-disk store, generating missing ones asynchronously on the parallel
// profile engine with request coalescing and bounded-queue backpressure.
//
// Usage:
//
//	smokescreend [-addr :8040] [-store DIR] [-workers N] [-parallelism N]
//	             [-queue N] [-cache-mb N] [-render-cache-mb N]
//	             [-kernel-parallelism N] [-detect-dedup=true|false]
//	             [-quantized-rasters=true|false]
//	             [-delta-detect off|exact|bounded] [-delta-tolerance T]
//	             [-request-timeout D] [-job-timeout D] [-addr-file PATH]
//	             [-fleet-nodes H1:P1,H2:P2,...] [-fleet-self H:P]
//	             [-fleet-replicas R] [-fleet-vnodes V] [-fleet-lease-ttl D]
//
// Endpoints: POST /v1/profiles, GET /v1/profiles/{key}, GET /v1/jobs/{id},
// DELETE /v1/jobs/{id}, GET /healthz, GET /metrics. SIGINT/SIGTERM drain
// gracefully: intake stops, in-flight generations finish, the store stays
// consistent.
//
// With -fleet-nodes (or SMOKESCREEND_FLEET_NODES), the daemon joins an
// N-node fleet: profile keys are placed on a consistent-hash ring,
// requests are forwarded to a replica over pooled keep-alive connections,
// artifacts fan out to R replicas with read-repair, and generation dedup
// is coordinated by TTL leases (see DESIGN.md §13). Fleet mode adds
// GET /v1/ring plus internal replication and lease endpoints, and
// smokescreend_fleet_* counters on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smokescreen/internal/detect"
	"smokescreen/internal/fleetd"
	"smokescreen/internal/outputs"
	"smokescreen/internal/raster"
	"smokescreen/internal/server"
	"smokescreen/internal/store"
)

func main() {
	addr := flag.String("addr", ":8040", "listen address (host:port; port 0 picks an ephemeral port)")
	storeDir := flag.String("store", ".smokescreen-store", "profile store root directory")
	workers := flag.Int("workers", 2, "concurrent generation jobs")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per generation (0 = one per CPU)")
	queueDepth := flag.Int("queue", 16, "queued generation jobs before POST returns 429")
	cacheMB := flag.Int64("cache-mb", 64, "in-memory profile cache budget in MiB (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute, "synchronous POST wait before degrading to 202")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "cap on one generation job")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "cap on graceful shutdown")
	correctionLimit := flag.Float64("correction-limit", 0.2, "correction-set fraction cap")
	renderCacheMB := flag.Int64("render-cache-mb", 64, "degraded-frame render cache budget in MiB (0 disables, -1 unbounded)")
	kernelParallelism := flag.Int("kernel-parallelism", 1, "worker goroutines per raster kernel (1 sequential, 0 = one per CPU)")
	detectDedup := flag.Bool("detect-dedup", true, "share detector outputs across classes in the column store (false = legacy per-class detection)")
	quantizedRasters := flag.Bool("quantized-rasters", false, "run patch detection on the quantized uint8 pixel pipeline")
	deltaDetect := flag.String("delta-detect", "off", "temporal delta detection: off, exact (byte-identical reuse) or bounded (tolerance-gated splicing)")
	deltaTolerance := flag.Float64("delta-tolerance", 0.1, "bounded delta detection: worst-case mean-contrast perturbation admitted when splicing prior-frame detections")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	fleetNodes := flag.String("fleet-nodes", os.Getenv("SMOKESCREEND_FLEET_NODES"), "comma-separated fleet member host:ports; empty runs single-node (env SMOKESCREEND_FLEET_NODES)")
	fleetSelf := flag.String("fleet-self", "", "this node's identity within -fleet-nodes (default: the bound address)")
	fleetVNodes := flag.Int("fleet-vnodes", 0, "virtual nodes per fleet member on the placement ring (0 = default)")
	fleetReplicas := flag.Int("fleet-replicas", 0, "replicas per profile key (0 = default 2)")
	fleetLeaseTTL := flag.Duration("fleet-lease-ttl", 3*time.Second, "generation lease TTL (a dead node's work is re-claimable after this)")
	flag.Parse()

	if *renderCacheMB < 0 {
		detect.SetRenderCacheBudget(-1)
	} else {
		detect.SetRenderCacheBudget(*renderCacheMB << 20)
	}
	raster.SetParallelism(*kernelParallelism)
	outputs.SetSharing(*detectDedup)
	detect.SetQuantized(*quantizedRasters)
	mode, err := detect.ParseDeltaMode(*deltaDetect)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	detect.SetDeltaMode(mode)
	detect.SetDeltaTolerance(*deltaTolerance)

	logger := log.New(os.Stderr, "smokescreend: ", log.LstdFlags|log.Lmsgprefix)
	if err := run(runConfig{
		addr: *addr, storeDir: *storeDir, workers: *workers,
		parallelism: *parallelism, queueDepth: *queueDepth, cacheMB: *cacheMB,
		requestTimeout: *requestTimeout, jobTimeout: *jobTimeout,
		drainTimeout: *drainTimeout, correctionLimit: *correctionLimit,
		addrFile:   *addrFile,
		fleetNodes: *fleetNodes, fleetSelf: *fleetSelf,
		fleetVNodes: *fleetVNodes, fleetReplicas: *fleetReplicas,
		fleetLeaseTTL: *fleetLeaseTTL,
	}, logger); err != nil {
		logger.Fatal(err)
	}
}

type runConfig struct {
	addr, storeDir, addrFile   string
	workers, parallelism       int
	queueDepth                 int
	cacheMB                    int64
	requestTimeout, jobTimeout time.Duration
	drainTimeout               time.Duration
	correctionLimit            float64

	fleetNodes, fleetSelf      string
	fleetVNodes, fleetReplicas int
	fleetLeaseTTL              time.Duration
}

func run(cfg runConfig, logger *log.Logger) error {
	st, err := store.Open(cfg.storeDir, store.WithCacheBudget(cfg.cacheMB<<20))
	if err != nil {
		return err
	}
	keys, corrupt := st.Keys()
	logger.Printf("store %s: %d profiles", cfg.storeDir, len(keys))
	for _, err := range corrupt {
		logger.Printf("store warning: %v (will regenerate on demand)", err)
	}

	// Listen before assembling the service: in fleet mode the node's ring
	// identity defaults to the bound address, which only exists once the
	// socket is live.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	logger.Printf("listening on %s", bound)

	generator := &server.SystemGenerator{
		CorrectionLimit: cfg.correctionLimit,
		Parallelism:     cfg.parallelism,
	}
	serverCfg := server.Config{
		Store:          st,
		Generator:      generator,
		Workers:        cfg.workers,
		QueueDepth:     cfg.queueDepth,
		RequestTimeout: cfg.requestTimeout,
		JobTimeout:     cfg.jobTimeout,
		Logf:           logger.Printf,
	}

	// handler/drain abstract over the two shapes: a bare single-process
	// daemon, or that same daemon wrapped in a fleetd node (ring routing,
	// replication, lease coordination).
	var handler http.Handler
	var drain func(context.Context) error
	if cfg.fleetNodes != "" {
		self := cfg.fleetSelf
		if self == "" {
			self = bound
		}
		node, err := fleetd.NewNode(fleetd.Config{
			Self:      self,
			Nodes:     fleetd.ParseNodes(cfg.fleetNodes),
			VNodes:    cfg.fleetVNodes,
			Replicas:  cfg.fleetReplicas,
			LeaseTTL:  cfg.fleetLeaseTTL,
			Store:     st,
			Generator: generator,
			Server:    serverCfg,
			Logf:      logger.Printf,
		})
		if err != nil {
			ln.Close()
			return err
		}
		logger.Printf("fleet member %s of %s (replicas=%d)", self, cfg.fleetNodes, node.Ring().ReplicaCount())
		handler = node.Handler()
		drain = node.Drain
	} else {
		svc, err := server.New(serverCfg)
		if err != nil {
			ln.Close()
			return err
		}
		handler = svc.Handler()
		drain = svc.Drain
	}

	if cfg.addrFile != "" {
		// Written after the socket is live, so scripts can poll the file
		// and connect without races.
		if err := os.WriteFile(cfg.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Printf("received %v, draining", sig)
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Stop accepting connections and let in-flight handlers finish, then
	// drain the job queue; store writes are atomic throughout.
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := drain(ctx); err != nil {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
