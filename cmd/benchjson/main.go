// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, the repo's benchmark-regression artifact
// (BENCH_*.json). It reads the benchmark output on stdin and writes one
// JSON document containing every benchmark line's iteration count and
// metric values (ns/op, B/op, allocs/op, plus custom b.ReportMetric units
// such as invocations/op), together with the host facts `go test` prints.
// Benchmarks that report the plan/execute pipeline's per-stage metrics
// (plan-ns/op, detect-ns/op, estimate-ns/op, invocations/op,
// dedup-saved-frames/op) additionally get a structured "stages" object so
// regression tooling can diff the stage split directly.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x | benchjson -out BENCH_PR1.json
//
// Lines that are not benchmark results or host facts are ignored, so the
// full `go test` output can be piped through unfiltered. The tool exits
// non-zero if no benchmark lines are found (a guard against piping in a
// failed run).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed result line.
type benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped;
	// Procs carries it separately so names compare across hosts.
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Stages is the plan/execute pipeline breakdown, present when the
	// benchmark reports per-stage metrics (the Hypercube benches do).
	Stages *stageBreakdown `json:"stages,omitempty"`
}

// stageBreakdown lifts the pipeline's stage metrics out of the generic
// metric map into named fields, so regression tooling can diff the
// plan/detect/estimate split and the detector-invocation count without
// matching metric-name strings. Values remain per benchmark op.
type stageBreakdown struct {
	PlanNS           float64 `json:"plan_ns"`
	DetectNS         float64 `json:"detect_ns"`
	EstimateNS       float64 `json:"estimate_ns"`
	Invocations      float64 `json:"invocations,omitempty"`
	DedupSavedFrames float64 `json:"dedup_saved_frames,omitempty"`
}

// stagesOf builds the stage breakdown when any per-stage timing metric is
// present. Plain invocation counts without stage timings stay in the
// generic metric map only.
func stagesOf(metrics map[string]float64) *stageBreakdown {
	_, hasPlan := metrics["plan-ns/op"]
	_, hasDetect := metrics["detect-ns/op"]
	_, hasEstimate := metrics["estimate-ns/op"]
	if !hasPlan && !hasDetect && !hasEstimate {
		return nil
	}
	return &stageBreakdown{
		PlanNS:           metrics["plan-ns/op"],
		DetectNS:         metrics["detect-ns/op"],
		EstimateNS:       metrics["estimate-ns/op"],
		Invocations:      metrics["invocations/op"],
		DedupSavedFrames: metrics["dedup-saved-frames/op"],
	}
}

// report is the JSON document.
type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := &report{}
	// A duplicate (pkg, name, procs) result means two runs were piped into
	// one artifact (e.g. a re-run appended to a stale bench.tmp); the JSON
	// would silently carry both and regression diffs would pick one at
	// random, so reject the input instead.
	pkg := ""
	seen := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			pkg = rep.Pkg
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				key := fmt.Sprintf("%s\x00%s\x00%d", pkg, b.Name, b.Procs)
				if seen[key] {
					return nil, fmt.Errorf("duplicate benchmark %s-%d in pkg %q: input mixes two runs, regenerate it from one `go test -bench` pass", b.Name, b.Procs, pkg)
				}
				seen[key] = true
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   	     100	  11234 ns/op	  2048 B/op	  12 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	b.Stages = stagesOf(b.Metrics)
	return b, len(b.Metrics) > 0
}

// splitProcs strips the trailing -P GOMAXPROCS suffix `go test` appends.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs < 1 {
		return name, 1
	}
	return name[:i], procs
}
