// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, the repo's benchmark-regression artifact
// (BENCH_*.json). It reads the benchmark output on stdin and writes one
// JSON document containing every benchmark line's iteration count and
// metric values (ns/op, B/op, allocs/op, plus custom b.ReportMetric units
// such as invocations/op), together with the host facts `go test` prints.
// Benchmarks that report the plan/execute pipeline's per-stage metrics
// (plan-ns/op, detect-ns/op, estimate-ns/op, invocations/op,
// dedup-saved-frames/op) additionally get a structured "stages" object so
// regression tooling can diff the stage split directly.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x | benchjson -out BENCH_PR1.json
//	benchjson -diff BENCH_PR4.json BENCH_PR6.json [-max-regress 0.25]
//
// Lines that are not benchmark results or host facts are ignored, so the
// full `go test` output can be piped through unfiltered. The tool exits
// non-zero if no benchmark lines are found (a guard against piping in a
// failed run).
//
// Diff mode compares two artifacts benchmark by benchmark, printing the
// old and new ns/op, B/op and allocs/op with relative deltas, and exits
// non-zero when any benchmark's ns/op regressed by more than -max-regress
// (a fraction; 0.25 means 25% slower). Benchmarks present in only one
// artifact are listed but never fail the gate, so adding or retiring a
// bench does not break regression CI; benchmarks under -min-ns in both
// artifacts (default 1ms) are likewise listed but not gated, because a
// single -benchtime=1x sample of a microsecond-scale benchmark measures
// scheduler jitter, not the code.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed result line.
type benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped;
	// Procs carries it separately so names compare across hosts.
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Stages is the plan/execute pipeline breakdown, present when the
	// benchmark reports per-stage metrics (the Hypercube benches do).
	Stages *stageBreakdown `json:"stages,omitempty"`
}

// stageBreakdown lifts the pipeline's stage metrics out of the generic
// metric map into named fields, so regression tooling can diff the
// plan/detect/estimate split and the detector-invocation count without
// matching metric-name strings. Values remain per benchmark op.
type stageBreakdown struct {
	PlanNS           float64 `json:"plan_ns"`
	DetectNS         float64 `json:"detect_ns"`
	EstimateNS       float64 `json:"estimate_ns"`
	Invocations      float64 `json:"invocations,omitempty"`
	DedupSavedFrames float64 `json:"dedup_saved_frames,omitempty"`
}

// stagesOf builds the stage breakdown when any per-stage timing metric is
// present. Plain invocation counts without stage timings stay in the
// generic metric map only.
func stagesOf(metrics map[string]float64) *stageBreakdown {
	_, hasPlan := metrics["plan-ns/op"]
	_, hasDetect := metrics["detect-ns/op"]
	_, hasEstimate := metrics["estimate-ns/op"]
	if !hasPlan && !hasDetect && !hasEstimate {
		return nil
	}
	return &stageBreakdown{
		PlanNS:           metrics["plan-ns/op"],
		DetectNS:         metrics["detect-ns/op"],
		EstimateNS:       metrics["estimate-ns/op"],
		Invocations:      metrics["invocations/op"],
		DedupSavedFrames: metrics["dedup-saved-frames/op"],
	}
}

// report is the JSON document.
type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two BENCH_*.json artifacts: benchjson -diff old.json new.json")
	maxRegress := flag.Float64("max-regress", 0.25, "diff mode: fail when any ns/op regresses by more than this fraction")
	minNs := flag.Float64("min-ns", 1e6, "diff mode: report but do not gate benchmarks under this ns/op in both artifacts (single-shot sub-millisecond timings are scheduler noise)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two artifacts: old.json new.json")
			os.Exit(2)
		}
		failed, err := diffReports(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegress, *minNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := &report{}
	// A duplicate (pkg, name, procs) result means two runs were piped into
	// one artifact (e.g. a re-run appended to a stale bench.tmp); the JSON
	// would silently carry both and regression diffs would pick one at
	// random, so reject the input instead.
	pkg := ""
	seen := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			pkg = rep.Pkg
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				key := fmt.Sprintf("%s\x00%s\x00%d", pkg, b.Name, b.Procs)
				if seen[key] {
					return nil, fmt.Errorf("duplicate benchmark %s-%d in pkg %q: input mixes two runs, regenerate it from one `go test -bench` pass", b.Name, b.Procs, pkg)
				}
				seen[key] = true
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   	     100	  11234 ns/op	  2048 B/op	  12 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	b.Stages = stagesOf(b.Metrics)
	return b, len(b.Metrics) > 0
}

// loadReport reads one BENCH_*.json artifact.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return rep, nil
}

// diffMetrics are the per-benchmark metrics diff mode reports, in print
// order. ns/op gates the regression threshold; the allocation metrics are
// informational.
var diffMetrics = []string{"ns/op", "B/op", "allocs/op"}

// diffReports prints a per-benchmark comparison of two artifacts and
// reports whether any benchmark's ns/op regressed past maxRegress.
// Benchmarks under minNs in both artifacts are exempt from the gate — at
// -benchtime=1x a sub-millisecond benchmark is a single timing sample, so
// its ratio is scheduler noise — but the exemption is printed, never
// silent.
func diffReports(w io.Writer, oldPath, newPath string, maxRegress, minNs float64) (failed bool, err error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := map[string]benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]benchmark{}
	names := make([]string, 0, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b
		names = append(names, b.Name)
	}

	fmt.Fprintf(w, "benchjson diff: %s -> %s (max ns/op regression %.0f%%, noise floor %s ns)\n",
		oldPath, newPath, maxRegress*100, formatValue(minNs))
	var regressed, noisy []string
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "  %-40s new benchmark: %s\n", name, formatMetrics(nb.Metrics))
			continue
		}
		cells := make([]string, 0, len(diffMetrics))
		for _, metric := range diffMetrics {
			ov, haveOld := ob.Metrics[metric]
			nv, haveNew := nb.Metrics[metric]
			if !haveOld || !haveNew {
				continue
			}
			cells = append(cells, fmt.Sprintf("%s %s -> %s (%+.1f%%)",
				metric, formatValue(ov), formatValue(nv), relDelta(ov, nv)*100))
			if metric == "ns/op" && relDelta(ov, nv) > maxRegress {
				if ov < minNs && nv < minNs {
					noisy = append(noisy, name)
					cells = append(cells, "[under noise floor, not gated]")
				} else {
					regressed = append(regressed, name)
				}
			}
		}
		fmt.Fprintf(w, "  %-40s %s\n", name, strings.Join(cells, "  "))
	}
	for _, b := range oldRep.Benchmarks {
		if _, ok := newBy[b.Name]; !ok {
			fmt.Fprintf(w, "  %-40s removed (was %s)\n", b.Name, formatMetrics(b.Metrics))
		}
	}
	if len(noisy) > 0 {
		fmt.Fprintf(w, "note: %d sub-floor benchmark(s) moved past %.0f%% but are not gated: %s\n",
			len(noisy), maxRegress*100, strings.Join(noisy, ", "))
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed past %.0f%%: %s\n",
			len(regressed), maxRegress*100, strings.Join(regressed, ", "))
		return true, nil
	}
	fmt.Fprintln(w, "PASS: no ns/op regression past the threshold")
	return false, nil
}

// relDelta returns (new-old)/old, treating a zero old value as no change.
func relDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// formatValue renders a metric value compactly (integers without noise).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// formatMetrics renders the standard metrics of a one-sided benchmark.
func formatMetrics(m map[string]float64) string {
	parts := make([]string, 0, len(diffMetrics))
	for _, metric := range diffMetrics {
		if v, ok := m[metric]; ok {
			parts = append(parts, fmt.Sprintf("%s %s", metric, formatValue(v)))
		}
	}
	return strings.Join(parts, "  ")
}

// splitProcs strips the trailing -P GOMAXPROCS suffix `go test` appends.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs < 1 {
		return name, 1
	}
	return name[:i], procs
}
