package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: smokescreen
cpu: Some CPU @ 2.40GHz
BenchmarkEstimateAVG-8         	   10000	     11234 ns/op	    2048 B/op	      12 allocs/op
BenchmarkHypercubeSequential   	       1	 912345678 ns/op	 5120 invocations/op	 1048576 B/op	    9999 allocs/op
BenchmarkHypercubeFigure6Dedup 	       1	2282019290 ns/op	       384.0 dedup-saved-frames/op	 874579245 detect-ns/op	    384049 estimate-ns/op	      4444 invocations/op	1403605443 plan-ns/op
--- BENCH: BenchmarkIgnored
PASS
ok  	smokescreen	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "smokescreen" {
		t.Fatalf("host facts wrong: %+v", rep)
	}
	if rep.CPU != "Some CPU @ 2.40GHz" {
		t.Fatalf("cpu %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks", len(rep.Benchmarks))
	}
	avg := rep.Benchmarks[0]
	if avg.Name != "BenchmarkEstimateAVG" || avg.Procs != 8 || avg.Iterations != 10000 {
		t.Fatalf("first benchmark: %+v", avg)
	}
	if avg.Metrics["ns/op"] != 11234 || avg.Metrics["B/op"] != 2048 || avg.Metrics["allocs/op"] != 12 {
		t.Fatalf("first metrics: %+v", avg.Metrics)
	}
	cube := rep.Benchmarks[1]
	if cube.Name != "BenchmarkHypercubeSequential" || cube.Procs != 1 {
		t.Fatalf("second benchmark: %+v", cube)
	}
	if cube.Metrics["invocations/op"] != 5120 {
		t.Fatalf("custom metric lost: %+v", cube.Metrics)
	}
	if cube.Stages != nil {
		t.Fatalf("stage breakdown fabricated without stage timings: %+v", cube.Stages)
	}
	fig6 := rep.Benchmarks[2]
	if fig6.Name != "BenchmarkHypercubeFigure6Dedup" {
		t.Fatalf("third benchmark: %+v", fig6)
	}
	if fig6.Stages == nil {
		t.Fatalf("stage metrics not lifted: %+v", fig6.Metrics)
	}
	want := stageBreakdown{
		PlanNS:           1403605443,
		DetectNS:         874579245,
		EstimateNS:       384049,
		Invocations:      4444,
		DedupSavedFrames: 384,
	}
	if *fig6.Stages != want {
		t.Fatalf("stage breakdown %+v, want %+v", *fig6.Stages, want)
	}
}

func TestParseRejectsDuplicateBenchmarks(t *testing.T) {
	// The same (pkg, name, procs) twice means two runs were piped into one
	// artifact; regression diffs would pick one at random.
	dup := `pkg: smokescreen
BenchmarkEstimateAVG-8   	   10000	     11234 ns/op
BenchmarkEstimateAVG-8   	   10000	     99999 ns/op
`
	if _, err := parse(bufio.NewScanner(strings.NewReader(dup))); err == nil {
		t.Fatal("duplicate benchmark accepted")
	} else if !strings.Contains(err.Error(), "duplicate benchmark BenchmarkEstimateAVG-8") {
		t.Fatalf("unhelpful duplicate error: %v", err)
	}

	// Same name at different GOMAXPROCS is a legitimate -cpu sweep.
	procs := `pkg: smokescreen
BenchmarkEstimateAVG-4   	   10000	     11234 ns/op
BenchmarkEstimateAVG-8   	   10000	      9876 ns/op
`
	if _, err := parse(bufio.NewScanner(strings.NewReader(procs))); err != nil {
		t.Fatalf("-cpu sweep rejected: %v", err)
	}

	// Same name in different packages is a legitimate multi-package run.
	pkgs := `pkg: smokescreen/internal/raster
BenchmarkKernel-8   	   10000	     11234 ns/op
pkg: smokescreen/internal/detect
BenchmarkKernel-8   	   10000	      9876 ns/op
`
	if _, err := parse(bufio.NewScanner(strings.NewReader(pkgs))); err != nil {
		t.Fatalf("multi-package run rejected: %v", err)
	}
}

func TestParseEmptyFails(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok\n"))); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDiffGate(t *testing.T) {
	// Two artifacts: one macro benchmark regressing past the threshold
	// (must fail the gate), one micro benchmark regressing even harder but
	// under the noise floor in both artifacts (reported, not gated), and
	// one well-behaved macro benchmark.
	writeArtifact := func(name, body string) string {
		rep, err := parse(bufio.NewScanner(strings.NewReader(body)))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeArtifact("old.json", `pkg: smokescreen
BenchmarkMacroSlow   	       1	 2000000000 ns/op
BenchmarkMicro       	       1	     100000 ns/op
BenchmarkMacroFine   	       1	 1000000000 ns/op
`)
	newPath := writeArtifact("new.json", `pkg: smokescreen
BenchmarkMacroSlow   	       1	 3000000000 ns/op
BenchmarkMicro       	       1	     400000 ns/op
BenchmarkMacroFine   	       1	 1100000000 ns/op
`)

	var buf strings.Builder
	failed, err := diffReports(&buf, oldPath, newPath, 0.25, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !failed {
		t.Fatalf("50%% macro regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "FAIL: 1 benchmark(s) regressed past 25%: BenchmarkMacroSlow") {
		t.Fatalf("macro regression not singled out:\n%s", out)
	}
	if !strings.Contains(out, "not gated: BenchmarkMicro") {
		t.Fatalf("noise-floor exemption not reported:\n%s", out)
	}

	// With only the micro benchmark moving, the gate passes but still
	// mentions the exemption.
	samePath := writeArtifact("same.json", `pkg: smokescreen
BenchmarkMacroSlow   	       1	 2000000000 ns/op
BenchmarkMicro       	       1	     400000 ns/op
BenchmarkMacroFine   	       1	 1000000000 ns/op
`)
	buf.Reset()
	failed, err = diffReports(&buf, oldPath, samePath, 0.25, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if failed {
		t.Fatalf("sub-floor movement failed the gate:\n%s", out)
	}
	if !strings.Contains(out, "[under noise floor, not gated]") {
		t.Fatalf("sub-floor line not annotated:\n%s", out)
	}

	// A floor of zero restores strict gating: the micro regression fails.
	buf.Reset()
	failed, err = diffReports(&buf, oldPath, samePath, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("min-ns 0 did not gate the micro regression:\n%s", buf.String())
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Fatalf("splitProcs(%q) = %q, %d", c.in, name, procs)
		}
	}
}
