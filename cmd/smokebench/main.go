// Command smokebench regenerates the paper's evaluation artifacts: one
// text report per figure/claim of Section 5, written to stdout or to a
// directory of per-experiment files.
//
// Usage:
//
//	smokebench [-quick] [-trials N] [-seed S] [-out DIR] [experiment...]
//
// With no experiment arguments every registered experiment runs in
// presentation order. Use -quick for a fast smoke run (fewer trials and
// sweep points); EXPERIMENTS.md is produced from a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smokescreen/internal/dataset"
	"smokescreen/internal/experiments"
	"smokescreen/internal/outputs"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "reduced trials and sweep points")
		trials = flag.Int("trials", 0, "trials per measurement point (default: 100, or 8 with -quick)")
		seed   = flag.Uint64("seed", 20220612, "root randomness seed")
		outDir = flag.String("out", "", "write one report file per experiment into this directory")
		format = flag.String("format", "text", "output format: text or csv")
		cache  = flag.String("cache", "", "warm/save detector output series in this directory across runs")
	)
	flag.Parse()

	if *format != "text" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (text or csv)", *format))
	}
	render := func(report *experiments.Report, w *os.File) error {
		if *format == "csv" {
			return report.RenderCSV(w)
		}
		return report.Render(w)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *trials > 0 {
		cfg.Trials = *trials
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	if *cache != "" {
		warmAll(*cache)
		defer saveAll(*cache)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...\n", id)
		report, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Fprintf(os.Stderr, "  done in %s\n", time.Since(start).Round(time.Millisecond))
		if *outDir == "" {
			if err := render(report, os.Stdout); err != nil {
				fatal(err)
			}
			continue
		}
		ext := ".txt"
		if *format == "csv" {
			ext = ".csv"
		}
		path := filepath.Join(*outDir, id+ext)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := render(report, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
	}
}

// warmAll loads persisted detector output series for every built-in
// corpus, so full-scale reruns skip the simulated-inference cost.
func warmAll(dir string) {
	for _, name := range dataset.Names() {
		v, err := dataset.Load(name)
		if err != nil {
			fatal(err)
		}
		loaded, skipped, err := outputs.WarmOutputs(v, dir)
		if err != nil {
			fatal(err)
		}
		if loaded+skipped > 0 {
			fmt.Fprintf(os.Stderr, "cache: %s: %d series warmed, %d skipped\n", name, loaded, skipped)
		}
	}
}

// saveAll persists the output series computed during this run.
func saveAll(dir string) {
	total := 0
	for _, name := range dataset.Names() {
		v, err := dataset.Load(name)
		if err != nil {
			fatal(err)
		}
		n, err := outputs.SaveOutputs(v, dir)
		if err != nil {
			fatal(err)
		}
		total += n
	}
	fmt.Fprintf(os.Stderr, "cache: saved %d series to %s\n", total, dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smokebench:", err)
	os.Exit(1)
}
