// Package stats provides the statistical machinery that Smokescreen's
// estimators are built on: deterministic splittable random streams,
// sampling without replacement, concentration inequalities (Hoeffding,
// Hoeffding–Serfling, empirical Bernstein), normal-distribution quantiles,
// and moments plus a normal approximation for the hypergeometric
// distribution.
//
// Everything in this package is deterministic given a seed. Experiments in
// the repository are reproducible bit-for-bit because all randomness flows
// through Stream values derived from a root seed.
package stats

import "math"

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is the standard SplitMix64 generator (Steele et al., OOPSLA 2014),
// used both as the PRNG core and as the stream-splitting hash.
func splitmix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream. Unlike math/rand.Rand it
// is splittable: Child derives an independent stream from a label, so a
// simulation tree (dataset -> frame -> object) can hand out reproducible
// randomness without any global sequencing requirement.
//
// A Stream must not be shared between goroutines without synchronization;
// derive one child per goroutine instead.
type Stream struct {
	state uint64
}

// NewStream returns a stream seeded with seed.
func NewStream(seed uint64) *Stream {
	// One warm-up step decorrelates small adjacent seeds.
	s := &Stream{state: seed}
	s.Uint64()
	return s
}

// Child derives an independent stream keyed by label. Two children with
// different labels produce uncorrelated sequences; the parent stream is not
// advanced.
func (s *Stream) Child(label uint64) *Stream {
	// Mix the parent's state with the label through two rounds so that
	// Child(1).Child(2) differs from Child(2).Child(1).
	_, h1 := splitmix64(s.state ^ 0xa5a5a5a5deadbeef)
	_, h2 := splitmix64(h1 ^ label)
	return NewStream(h2)
}

// ChildN derives an independent stream keyed by a sequence of labels.
func (s *Stream) ChildN(labels ...uint64) *Stream {
	c := s
	for _, l := range labels {
		c = c.Child(l)
	}
	return c
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	var out uint64
	s.state, out = splitmix64(s.state)
	return out
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b, returning high and low
// words. Implemented portably so the package has no architecture deps.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's multiplication method; for large means a normal
// approximation with continuity correction keeps it O(1).
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*s.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n), in random order. It panics if k > n or k < 0. The implementation
// is a partial Fisher–Yates shuffle over a sparse map, costing O(k) time
// and space regardless of n.
func (s *Stream) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement with k out of range")
	}
	swapped := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swapped[j] = vi
		// swapped[i] is never read again (i strictly increases), but keep
		// the map consistent in case j == i on a later draw.
		swapped[i] = vj
	}
	return out
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Stream) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
