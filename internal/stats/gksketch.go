package stats

import (
	"fmt"
	"math"
)

// GKSketch is a Greenwald–Khanna epsilon-approximate quantile summary
// (SIGMOD 2001) — the summary-based approach to holistic aggregation the
// paper's related work contrasts with its sampling-based estimators
// ("these estimation algorithms mainly rely on summary statistics",
// Section 6). A sketch answers any quantile query within epsilon*N rank
// error while storing O((1/epsilon) log(epsilon N)) tuples, but it must
// OBSERVE EVERY value — which is exactly what intentional degradation
// forbids. The sketch exists here as the full-access comparator: the
// ablation experiments use it to show what rank accuracy would cost in
// frame access.
type GKSketch struct {
	epsilon float64
	n       int
	tuples  []gkTuple
}

// gkTuple is one summary entry: value v seen with rank uncertainty
// [rmin, rmin+g+delta], where rmin is the sum of g over the prefix.
type gkTuple struct {
	v     float64
	g     int
	delta int
}

// NewGKSketch creates a sketch with the given rank-error fraction.
func NewGKSketch(epsilon float64) (*GKSketch, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("stats: GK epsilon %v out of (0,1)", epsilon)
	}
	return &GKSketch{epsilon: epsilon}, nil
}

// Count returns the number of observed values.
func (s *GKSketch) Count() int { return s.n }

// Size returns the number of stored tuples (the space cost).
func (s *GKSketch) Size() int { return len(s.tuples) }

// Insert observes one value.
func (s *GKSketch) Insert(v float64) {
	// Find insertion position: first tuple with value >= v.
	pos := len(s.tuples)
	for i := range s.tuples {
		if s.tuples[i].v >= v {
			pos = i
			break
		}
	}
	delta := 0
	if pos != 0 && pos != len(s.tuples) {
		delta = int(2*s.epsilon*float64(s.n)) - 1
		if delta < 0 {
			delta = 0
		}
	}
	tuple := gkTuple{v: v, g: 1, delta: delta}
	s.tuples = append(s.tuples, gkTuple{})
	copy(s.tuples[pos+1:], s.tuples[pos:])
	s.tuples[pos] = tuple
	s.n++

	// Periodic compression keeps the summary at its space bound.
	if s.n%int(math.Max(1, 1/(2*s.epsilon))) == 0 {
		s.compress()
	}
}

// compress merges tuples whose combined uncertainty stays within the
// 2*epsilon*n budget.
func (s *GKSketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	budget := int(2 * s.epsilon * float64(s.n))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		last := &out[len(out)-1]
		// Merge the previous tuple into this one when allowed; the first
		// tuple is never merged away (it anchors the minimum).
		if len(out) > 1 && last.g+t.g+t.delta < budget {
			t.g += last.g
			out = out[:len(out)-1]
		}
		out = append(out, t)
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Quantile returns a value whose rank is within epsilon*N of the q-th
// quantile's rank. It panics on an empty sketch.
func (s *GKSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		panic("stats: Quantile of empty GK sketch")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(s.n)))
	bound := int(s.epsilon * float64(s.n))
	rmin := 0
	for i := range s.tuples {
		rmin += s.tuples[i].g
		rmax := rmin + s.tuples[i].delta
		if target-rmin <= bound && rmax-target <= bound {
			return s.tuples[i].v
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// MergeSorted folds all values of another slice into the sketch (a
// convenience for batch loading).
func (s *GKSketch) InsertAll(values []float64) {
	for _, v := range values {
		s.Insert(v)
	}
}
