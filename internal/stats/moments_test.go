package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Var, 2.5, 1e-12) {
		t.Fatalf("Var = %v, want 2.5", s.Var)
	}
	if s.Range() != 4 {
		t.Fatalf("Range = %v, want 4", s.Range())
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Var != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Var != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeMatchesNaive(t *testing.T) {
	property := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes moderate so the naive two-pass formula is
			// itself accurate enough to compare against.
			xs = append(xs, math.Mod(v, 1000))
		}
		if len(xs) < 2 {
			return true
		}
		s := Summarize(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return almostEqual(s.Mean, mean, 1e-9*(1+math.Abs(mean))) &&
			almostEqual(s.Var, variance, 1e-9*(1+variance))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
}

func TestQuantileDefinition(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMatchesCumulativeFrequency(t *testing.T) {
	// Property: Quantile(xs, q) is the smallest distinct value whose
	// cumulative frequency is >= q — the paper's definition.
	property := func(raw []uint8, qRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v % 16)
		}
		q := (float64(qRaw%999) + 1) / 1000
		got := Quantile(xs, q)
		values, freqs := DistinctFrequencies(xs)
		cum := 0.0
		for i, f := range freqs {
			cum += f
			if cum >= q-1e-12 {
				return got == values[i]
			}
		}
		return got == values[len(values)-1]
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestRank(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 5}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {1, 1}, {2, 3}, {2.5, 3}, {5, 5}, {9, 5},
	}
	for _, c := range cases {
		if got := Rank(xs, c.v); got != c.want {
			t.Fatalf("Rank(%v) = %d, want %d", c.v, got, c.want)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if got := RankSorted(sorted, c.v); got != c.want {
			t.Fatalf("RankSorted(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRankAgreesWithRankSorted(t *testing.T) {
	property := func(raw []uint8, vRaw uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v % 32)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		v := float64(vRaw % 40)
		return Rank(xs, v) == RankSorted(sorted, v)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v", got)
	}
	if got := RelativeError(-11, -10); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("RelativeError negative = %v", got)
	}
}

func TestDistinctFrequencies(t *testing.T) {
	values, freqs := DistinctFrequencies([]float64{2, 1, 2, 3, 2, 1})
	wantValues := []float64{1, 2, 3}
	wantFreqs := []float64{2.0 / 6, 3.0 / 6, 1.0 / 6}
	if len(values) != 3 {
		t.Fatalf("values = %v", values)
	}
	for i := range wantValues {
		if values[i] != wantValues[i] || !almostEqual(freqs[i], wantFreqs[i], 1e-12) {
			t.Fatalf("DistinctFrequencies = %v %v", values, freqs)
		}
	}
	var sum float64
	for _, f := range freqs {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("frequencies sum to %v", sum)
	}
}

func TestDistinctFrequenciesEmpty(t *testing.T) {
	values, freqs := DistinctFrequencies(nil)
	if values != nil || freqs != nil {
		t.Fatal("expected nil results for empty input")
	}
}
