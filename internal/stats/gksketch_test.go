package stats

import (
	"math"
	"sort"
	"testing"
)

func TestGKSketchValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		if _, err := NewGKSketch(eps); err == nil {
			t.Fatalf("epsilon %v accepted", eps)
		}
	}
	s, err := NewGKSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty quantile did not panic")
		}
	}()
	s.Quantile(0.5)
}

func TestGKSketchRankAccuracy(t *testing.T) {
	const (
		n   = 20000
		eps = 0.01
	)
	stream := NewStream(401)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(stream.Poisson(6)) + stream.Float64()
	}
	s, err := NewGKSketch(eps)
	if err != nil {
		t.Fatal(err)
	}
	s.InsertAll(values)
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(q)
		rank := RankSorted(sorted, got)
		target := q * float64(n)
		if math.Abs(float64(rank)-target) > 2*eps*float64(n)+1 {
			t.Fatalf("q=%v: rank %d, target %.0f, tolerance %.0f", q, rank, target, 2*eps*float64(n))
		}
	}
}

func TestGKSketchSpaceBound(t *testing.T) {
	const (
		n   = 50000
		eps = 0.02
	)
	stream := NewStream(403)
	s, _ := NewGKSketch(eps)
	for i := 0; i < n; i++ {
		s.Insert(stream.Float64() * 100)
	}
	// O((1/eps) * log(eps*n)) with a generous constant.
	limit := int(20 / eps * math.Log2(eps*float64(n)+2))
	if s.Size() > limit {
		t.Fatalf("sketch holds %d tuples, budget %d (n=%d)", s.Size(), limit, n)
	}
	if s.Size() >= n/4 {
		t.Fatalf("sketch barely compressed: %d tuples for %d values", s.Size(), n)
	}
}

func TestGKSketchExtremes(t *testing.T) {
	s, _ := NewGKSketch(0.05)
	for i := 1; i <= 100; i++ {
		s.Insert(float64(i))
	}
	if got := s.Quantile(0); got > 6 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := s.Quantile(1); got < 95 {
		t.Fatalf("Quantile(1) = %v", got)
	}
	if got := s.Quantile(-2); got > 6 {
		t.Fatalf("clamped low quantile = %v", got)
	}
	if got := s.Quantile(2); got < 95 {
		t.Fatalf("clamped high quantile = %v", got)
	}
}

func TestGKSketchSortedAndReversedInput(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(10000 - i) },
		"constant":   func(i int) float64 { return 7 },
	} {
		s, _ := NewGKSketch(0.02)
		const n = 10000
		for i := 0; i < n; i++ {
			s.Insert(gen(i))
		}
		med := s.Quantile(0.5)
		switch name {
		case "ascending":
			if med < float64(n)*0.46 || med > float64(n)*0.54 {
				t.Fatalf("%s: median %v", name, med)
			}
		case "descending":
			if med < float64(n)*0.46 || med > float64(n)*0.54 {
				t.Fatalf("%s: median %v", name, med)
			}
		case "constant":
			if med != 7 {
				t.Fatalf("%s: median %v", name, med)
			}
		}
	}
}
