package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.841344746, 1.0},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-4) {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("NormalQuantile endpoints not infinite")
	}
}

func TestZScore(t *testing.T) {
	if got := ZScore(0.05); !almostEqual(got, 1.959964, 1e-4) {
		t.Fatalf("ZScore(0.05) = %v", got)
	}
	if got := ZScore(0.01); !almostEqual(got, 2.575829, 1e-4) {
		t.Fatalf("ZScore(0.01) = %v", got)
	}
}

func TestNormalCDFInvertsQuantile(t *testing.T) {
	property := func(raw uint16) bool {
		p := (float64(raw%9998) + 1) / 10000
		return almostEqual(NormalCDF(NormalQuantile(p)), p, 1e-9)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSerflingRho(t *testing.T) {
	// Mid-stream the (1-(n-1)/N) branch is smaller for n large; near the
	// start the other branch wins. Check both against direct evaluation.
	for _, c := range []struct{ n, N int }{{1, 10}, {5, 10}, {9, 10}, {100, 10000}} {
		a := 1 - float64(c.n-1)/float64(c.N)
		b := (1 - float64(c.n)/float64(c.N)) * (1 + 1/float64(c.n))
		want := math.Min(a, b)
		if got := SerflingRho(c.n, c.N); got != want {
			t.Fatalf("SerflingRho(%d,%d) = %v, want %v", c.n, c.N, got, want)
		}
	}
}

func TestSerflingRhoShrinksWithN(t *testing.T) {
	// Sampling a larger share of the population should never increase rho.
	const N = 1000
	prev := math.Inf(1)
	for n := 1; n <= N; n++ {
		rho := SerflingRho(n, N)
		if rho > prev+1e-12 {
			t.Fatalf("rho increased at n=%d: %v -> %v", n, prev, rho)
		}
		if rho < 0 || rho > 1+1e-12 {
			t.Fatalf("rho out of range at n=%d: %v", n, rho)
		}
		prev = rho
	}
	if got := SerflingRho(N, N); !almostEqual(got, 0, 1e-3) {
		t.Fatalf("rho at full sample = %v, want ~0", got)
	}
}

func TestHoeffdingSerflingTighterThanHoeffding(t *testing.T) {
	// Because rho_n <= 1, the Serfling half width never exceeds Hoeffding's.
	property := func(seedN, seedn uint16, rRaw uint8) bool {
		N := int(seedN)%5000 + 2
		n := int(seedn)%N + 1
		R := float64(rRaw) + 1
		hs := HoeffdingSerflingHalfWidth(R, n, N, 0.05)
		h := HoeffdingHalfWidth(R, n, 0.05)
		return hs <= h+1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// coverage empirically checks that halfWidth covers the true mean deviation
// with frequency at least 1-delta (minus binomial slack).
func coverage(t *testing.T, name string, halfWidth func(sample []float64, n, N int) float64) {
	t.Helper()
	const (
		N      = 2000
		n      = 60
		trials = 400
		delta  = 0.05
	)
	stream := NewStream(1234)
	population := make([]float64, N)
	for i := range population {
		// Skewed non-negative population similar to per-frame car counts.
		population[i] = float64(stream.Poisson(2.5))
	}
	mu := Mean(population)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		s := stream.Child(uint64(trial))
		idx := s.SampleWithoutReplacement(N, n)
		sample := make([]float64, n)
		for i, j := range idx {
			sample[i] = population[j]
		}
		I := halfWidth(sample, n, N)
		if math.Abs(Mean(sample)-mu) <= I {
			covered++
		}
	}
	rate := float64(covered) / trials
	// Allow three binomial standard deviations of slack below 1-delta.
	slack := 3 * math.Sqrt(delta*(1-delta)/trials)
	if rate < 1-delta-slack {
		t.Fatalf("%s coverage = %.3f, want >= %.3f", name, rate, 1-delta-slack)
	}
}

func TestHoeffdingSerflingCoverage(t *testing.T) {
	coverage(t, "Hoeffding-Serfling", func(sample []float64, n, N int) float64 {
		s := Summarize(sample)
		return HoeffdingSerflingHalfWidth(s.Range(), n, N, 0.05)
	})
}

func TestHoeffdingCoverage(t *testing.T) {
	coverage(t, "Hoeffding", func(sample []float64, n, N int) float64 {
		s := Summarize(sample)
		return HoeffdingHalfWidth(s.Range(), n, 0.05)
	})
}

func TestEmpiricalBernsteinCoverage(t *testing.T) {
	coverage(t, "empirical Bernstein", func(sample []float64, n, N int) float64 {
		s := Summarize(sample)
		return EmpiricalBernsteinHalfWidth(math.Sqrt(s.Var), s.Range(), n, 0.05)
	})
}

func TestEBGSLooserThanEmpiricalBernstein(t *testing.T) {
	// EBGS spends risk across all prefix lengths, so at any fixed n its
	// half width must exceed the plain empirical Bernstein width.
	property := func(nRaw uint16, sdRaw, rRaw uint8) bool {
		n := int(nRaw)%2000 + 2
		sd := float64(sdRaw) / 16
		R := sd*4 + 1
		return EBGSHalfWidth(sd, R, n, 0.05) >= EmpiricalBernsteinHalfWidth(sd, R, n, 0.05)-1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCLTUndercoversAtSmallN(t *testing.T) {
	// The CLT interval with sample standard deviation is known to
	// undercover for skewed data at very small n — the effect Figure 5 of
	// the paper documents. This test asserts the qualitative fact that CLT
	// coverage is lower than Hoeffding–Serfling coverage at n = 5.
	const (
		N      = 2000
		n      = 5
		trials = 2000
	)
	stream := NewStream(77)
	population := make([]float64, N)
	for i := range population {
		population[i] = float64(stream.Poisson(0.7))
	}
	mu := Mean(population)
	cltCovered, hsCovered := 0, 0
	for trial := 0; trial < trials; trial++ {
		s := stream.Child(uint64(trial))
		idx := s.SampleWithoutReplacement(N, n)
		sample := make([]float64, n)
		for i, j := range idx {
			sample[i] = population[j]
		}
		sum := Summarize(sample)
		dev := math.Abs(sum.Mean - mu)
		if dev <= CLTHalfWidth(math.Sqrt(sum.Var), n, 0.05) {
			cltCovered++
		}
		if dev <= HoeffdingSerflingHalfWidth(sum.Range(), n, N, 0.05) {
			hsCovered++
		}
	}
	if cltCovered >= hsCovered {
		t.Fatalf("CLT coverage %d not below Hoeffding-Serfling coverage %d", cltCovered, hsCovered)
	}
	if float64(cltCovered)/trials >= 0.95 {
		t.Fatalf("CLT coverage %.3f unexpectedly met the nominal level at n=5", float64(cltCovered)/trials)
	}
}

func TestHalfWidthPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"serfling-zero":  func() { SerflingRho(0, 10) },
		"serfling-over":  func() { SerflingRho(11, 10) },
		"hoeffding-zero": func() { HoeffdingHalfWidth(1, 0, 0.05) },
		"eb-zero":        func() { EmpiricalBernsteinHalfWidth(1, 1, 0, 0.05) },
		"clt-zero":       func() { CLTHalfWidth(1, 0, 0.05) },
		"ebgs-zero":      func() { EBGSHalfWidth(1, 1, 0, 0.05) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHypergeometricMoments(t *testing.T) {
	h := NewHypergeometric(100, 30, 20)
	if got := h.Mean(); !almostEqual(got, 6, 1e-12) {
		t.Fatalf("Mean = %v, want 6", got)
	}
	want := 20.0 * 0.3 * 0.7 * 80 / 99
	if got := h.Variance(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestHypergeometricEmpirical(t *testing.T) {
	// Simulate draws and compare empirical mean/variance to the formulas.
	const (
		N, K, n = 500, 120, 60
		trials  = 20000
	)
	h := NewHypergeometric(N, K, n)
	stream := NewStream(99)
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		s := stream.Child(uint64(trial))
		hits := 0
		for _, idx := range s.SampleWithoutReplacement(N, n) {
			if idx < K {
				hits++
			}
		}
		sum += float64(hits)
		sumSq += float64(hits) * float64(hits)
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-h.Mean())/h.Mean() > 0.02 {
		t.Fatalf("empirical mean %v vs %v", mean, h.Mean())
	}
	if math.Abs(variance-h.Variance())/h.Variance() > 0.08 {
		t.Fatalf("empirical variance %v vs %v", variance, h.Variance())
	}
}

func TestHypergeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid hypergeometric did not panic")
		}
	}()
	NewHypergeometric(10, 11, 5)
}

func TestFPCFactor(t *testing.T) {
	if got := FPCFactor(0, 10); got != 0 {
		t.Fatalf("FPCFactor(0,10) = %v", got)
	}
	if got := FPCFactor(10, 10); got != 0 {
		t.Fatalf("full sample FPC = %v, want 0", got)
	}
	want := math.Sqrt(90.0 / (10 * 99))
	if got := FPCFactor(10, 100); !almostEqual(got, want, 1e-12) {
		t.Fatalf("FPCFactor(10,100) = %v, want %v", got, want)
	}
}

func TestFrequencyDeviationClamps(t *testing.T) {
	if got := FrequencyDeviation(-0.5, 10, 100, 0.05); got != 0 {
		t.Fatalf("negative f should clamp to zero deviation, got %v", got)
	}
	if got := FrequencyDeviation(1.5, 10, 100, 0.05); got != 0 {
		t.Fatalf("f > 1 should clamp to zero deviation, got %v", got)
	}
	mid := FrequencyDeviation(0.5, 10, 100, 0.05)
	edge := FrequencyDeviation(0.99, 10, 100, 0.05)
	if mid <= edge {
		t.Fatalf("deviation should be maximal at f=0.5: mid=%v edge=%v", mid, edge)
	}
}

func TestFrequencyDeviationCoverage(t *testing.T) {
	// The sampled cumulative frequency should stay within the deviation
	// bound with frequency ~1-delta.
	const (
		N, K, n = 2000, 1960, 100 // f close to 1, as in MAX estimation
		trials  = 2000
		delta   = 0.05
	)
	f := float64(K) / N
	stream := NewStream(55)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		s := stream.Child(uint64(trial))
		hits := 0
		for _, idx := range s.SampleWithoutReplacement(N, n) {
			if idx < K {
				hits++
			}
		}
		fhat := float64(hits) / n
		if math.Abs(fhat-f) <= FrequencyDeviation(f, n, N, delta) {
			covered++
		}
	}
	rate := float64(covered) / trials
	slack := 3 * math.Sqrt(delta*(1-delta)/trials)
	if rate < 1-delta-slack {
		t.Fatalf("frequency deviation coverage = %.3f", rate)
	}
}
