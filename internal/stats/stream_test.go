package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestChildIndependence(t *testing.T) {
	root := NewStream(7)
	c1 := root.Child(1)
	c2 := root.Child(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced identical output")
	}
	// Deriving a child must not advance the parent.
	p1 := NewStream(7)
	p2 := NewStream(7)
	p2.Child(99)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("deriving a child advanced the parent stream")
	}
}

func TestChildOrderMatters(t *testing.T) {
	root := NewStream(7)
	a := root.ChildN(1, 2).Uint64()
	b := root.ChildN(2, 1).Uint64()
	if a == b {
		t.Fatal("ChildN(1,2) and ChildN(2,1) produced identical output")
	}
}

func TestIntnRange(t *testing.T) {
	s := NewStream(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewStream(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewStream(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.3, 2, 8, 50} {
		s := NewStream(17)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%v) empirical mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := NewStream(1)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	property := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%500 + 1
		k := int(kRaw) % (n + 1)
		s := NewStream(seed)
		idx := s.SampleWithoutReplacement(n, k)
		if len(idx) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range idx {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each of the n items should appear in the sample with probability k/n.
	const n, k, trials = 20, 5, 40000
	s := NewStream(23)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleWithoutReplacement(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("item %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	s := NewStream(29)
	idx := s.SampleWithoutReplacement(10, 10)
	seen := make([]bool, 10)
	for _, v := range idx {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("full sample missing index %d", i)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	NewStream(1).SampleWithoutReplacement(3, 4)
}

func TestBernoulliProbability(t *testing.T) {
	s := NewStream(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", got)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := NewStream(37)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if got := sum / n; math.Abs(got-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
