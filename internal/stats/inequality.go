package stats

import "math"

// This file implements the concentration inequalities that back every
// error-bound estimator in Smokescreen and its baselines (paper Section 3.2
// and Section 5.1 "Baselines").
//
// All half-width functions return the two-sided deviation I such that
// |mean(sample) - mean(population)| <= I with probability at least 1-delta
// under the inequality's assumptions.

// NormalQuantile returns the p-quantile of the standard normal
// distribution, i.e. z such that P(Z <= z) = p.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// ZScore returns the two-sided critical value phi_{delta/2}: the z such
// that P(|Z| > z) = delta for a standard normal Z. This is the phi symbol
// used in the paper's Algorithm 2.
func ZScore(delta float64) float64 {
	return NormalQuantile(1 - delta/2)
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SerflingRho returns the rho_n factor from the Hoeffding–Serfling
// inequality for a sample of size n drawn without replacement from a
// population of size N:
//
//	rho_n = min{ 1 - (n-1)/N , (1 - n/N)(1 + 1/n) }.
//
// It panics when n <= 0 or n > N.
func SerflingRho(n, N int) float64 {
	if n <= 0 || n > N {
		panic("stats: SerflingRho with n out of range")
	}
	a := 1 - float64(n-1)/float64(N)
	b := (1 - float64(n)/float64(N)) * (1 + 1/float64(n))
	return math.Min(a, b)
}

// HoeffdingSerflingHalfWidth returns the two-sided 1-delta deviation bound
// for the mean of n observations sampled *without replacement* from a
// population of N values with range R (Bardenet & Maillard, 2015):
//
//	I = R * sqrt( rho_n * log(2/delta) / (2n) ).
//
// This is line 4 of the paper's Algorithm 1.
func HoeffdingSerflingHalfWidth(R float64, n, N int, delta float64) float64 {
	rho := SerflingRho(n, N)
	return R * math.Sqrt(rho*math.Log(2/delta)/(2*float64(n)))
}

// HoeffdingHalfWidth returns the classic two-sided Hoeffding deviation
// bound for n i.i.d. observations with range R:
//
//	I = R * sqrt( log(2/delta) / (2n) ).
func HoeffdingHalfWidth(R float64, n int, delta float64) float64 {
	if n <= 0 {
		panic("stats: HoeffdingHalfWidth with non-positive n")
	}
	return R * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// EmpiricalBernsteinHalfWidth returns the two-sided empirical Bernstein
// deviation bound (Audibert, Munos & Szepesvári, 2007) for n i.i.d.
// observations with sample standard deviation sd and range R:
//
//	I = sd * sqrt( 2 log(3/delta) / n ) + 3 R log(3/delta) / n.
//
// It adapts to low-variance data but carries a heavier additive tail term
// than Hoeffding–Serfling, which is why the paper replaces it.
func EmpiricalBernsteinHalfWidth(sd, R float64, n int, delta float64) float64 {
	if n <= 0 {
		panic("stats: EmpiricalBernsteinHalfWidth with non-positive n")
	}
	l := math.Log(3 / delta)
	return sd*math.Sqrt(2*l/float64(n)) + 3*R*l/float64(n)
}

// CLTHalfWidth returns the central-limit-theorem deviation estimate used by
// online aggregation: z_{1-delta/2} * sd / sqrt(n). It is not a guaranteed
// bound — at small n it undercovers, which is exactly the brittleness
// Figure 5 of the paper documents.
func CLTHalfWidth(sd float64, n int, delta float64) float64 {
	if n <= 0 {
		panic("stats: CLTHalfWidth with non-positive n")
	}
	return ZScore(delta) * sd / math.Sqrt(float64(n))
}

// EBGSHalfWidth returns the deviation bound used by the empirical Bernstein
// stopping baseline (Mnih, Szepesvári & Audibert, 2008). EBGS must hold
// simultaneously for every prefix length t, so it spends its risk budget
// over an infinite schedule d_t = c / t^p with p = 1.1 and
// c = delta*(p-1)/p, then applies the empirical Bernstein inequality at
// level d_n. The union-bound schedule is what makes it looser than
// Smokescreen's single-n construction.
func EBGSHalfWidth(sd, R float64, n int, delta float64) float64 {
	if n <= 0 {
		panic("stats: EBGSHalfWidth with non-positive n")
	}
	const p = 1.1
	c := delta * (p - 1) / p
	dn := c / math.Pow(float64(n), p)
	if dn >= 1 {
		dn = 0.999999
	}
	l := math.Log(3 / dn)
	return sd*math.Sqrt(2*l/float64(n)) + 3*R*l/float64(n)
}

// Hypergeometric describes sampling n items without replacement from a
// population of N items of which K are "successes".
type Hypergeometric struct {
	N int // population size
	K int // successes in the population
	n int // sample size
}

// NewHypergeometric validates and constructs a hypergeometric description.
// It panics on invalid parameters.
func NewHypergeometric(N, K, n int) Hypergeometric {
	if N <= 0 || K < 0 || K > N || n < 0 || n > N {
		panic("stats: invalid hypergeometric parameters")
	}
	return Hypergeometric{N: N, K: K, n: n}
}

// Mean returns the expected number of successes in the sample, n*K/N.
func (h Hypergeometric) Mean() float64 {
	return float64(h.n) * float64(h.K) / float64(h.N)
}

// Variance returns the variance of the number of successes:
// n * K/N * (1-K/N) * (N-n)/(N-1).
func (h Hypergeometric) Variance() float64 {
	if h.N == 1 {
		return 0
	}
	p := float64(h.K) / float64(h.N)
	fpc := float64(h.N-h.n) / float64(h.N-1)
	return float64(h.n) * p * (1 - p) * fpc
}

// FPCFactor returns sqrt((N-n)/(n*(N-1))), the finite-population scaling
// that appears in the paper's Algorithm 2. It is the standard deviation of
// the sampled cumulative frequency divided by sqrt(F(1-F)).
func FPCFactor(n, N int) float64 {
	if n <= 0 || N <= 1 || n > N {
		return 0
	}
	return math.Sqrt(float64(N-n) / (float64(n) * float64(N-1)))
}

// FrequencyDeviation returns the 1-delta two-sided deviation bound for a
// sampled cumulative frequency with population frequency approximately f,
// using the normal approximation to the hypergeometric distribution
// (Nicholson 1956; Feller vol. 2):
//
//	phi_{delta/2} * sqrt(f*(1-f)) * sqrt((N-n)/(n*(N-1))).
//
// The caller clamps f into [0, 1]; the variance term is maximal at 1/2.
func FrequencyDeviation(f float64, n, N int, delta float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return ZScore(delta) * math.Sqrt(f*(1-f)) * FPCFactor(n, N)
}
