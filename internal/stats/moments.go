package stats

import (
	"math"
	"sort"
)

// Summary holds the sample moments the estimators consume. Range-based
// inequalities (Hoeffding, Hoeffding–Serfling) use Range; variance-based
// ones (CLT, empirical Bernstein) use Var.
type Summary struct {
	N    int     // number of observations
	Mean float64 // sample mean
	Var  float64 // unbiased sample variance (0 when N < 2)
	Min  float64 // smallest observation (0 when N == 0)
	Max  float64 // largest observation (0 when N == 0)
}

// Range returns Max - Min, the observed sample range.
func (s Summary) Range() float64 { return s.Max - s.Min }

// Summarize computes the sample moments of xs in a single pass using
// Welford's algorithm, which is numerically stable for long, nearly
// constant series such as per-frame car counts.
func Summarize(xs []float64) Summary {
	var sum Summary
	var m2 float64
	for i, x := range xs {
		if i == 0 {
			sum.Min, sum.Max = x, x
		} else {
			if x < sum.Min {
				sum.Min = x
			}
			if x > sum.Max {
				sum.Max = x
			}
		}
		sum.N++
		delta := x - sum.Mean
		sum.Mean += delta / float64(sum.N)
		m2 += delta * (x - sum.Mean)
	}
	if sum.N > 1 {
		sum.Var = m2 / float64(sum.N-1)
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the empirical q-quantile of xs using the same
// definition as the paper's Algorithm 2: the smallest value whose
// cumulative frequency reaches q. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	// Smallest index i with (i+1)/n >= q, i.e. cumulative frequency >= q.
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Rank returns the rank (1-based) of value v in the population xs:
// the number of observations <= v. This is the rank notion used by the
// MAX/MIN error metric |rank(Yapprox)-rank(Ytrue)| / rank(Ytrue).
func Rank(xs []float64, v float64) int {
	r := 0
	for _, x := range xs {
		if x <= v {
			r++
		}
	}
	return r
}

// RankSorted is Rank for an ascending-sorted slice, in O(log n).
func RankSorted(sorted []float64, v float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
}

// RelativeError returns |approx-truth| / |truth|. When truth is zero it
// returns 0 if approx is also zero and +Inf otherwise, matching how the
// paper treats degenerate true answers.
func RelativeError(approx, truth float64) float64 {
	if truth == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-truth) / math.Abs(truth)
}

// DistinctFrequencies computes the sorted distinct values of xs and the
// frequency of each (count / len(xs)). It is the (s_i, F_i) decomposition
// from Section 3.2.4 of the paper.
func DistinctFrequencies(xs []float64) (values []float64, freqs []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		values = append(values, sorted[i])
		freqs = append(freqs, float64(j-i)/n)
		i = j
	}
	return values, freqs
}
