package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"
)

// frameBytes renders one well-formed wire frame, independently of Send,
// so fuzz verification cannot share a bug with the sender.
func frameBytes(msgType byte, payload []byte) []byte {
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	hdr[n] = msgType
	return append(append([]byte(nil), hdr[:n+1]...), payload...)
}

// FuzzReceive drives the receiver over arbitrary byte streams. The
// framing contract under hostile input:
//
//   - Receive never panics: it returns a valid (type, payload) or an
//     error, and io.EOF only at a clean frame boundary.
//   - A successful Receive consumed exactly one well-formed frame:
//     re-framing the returned message reproduces the consumed bytes.
//   - The loop always makes progress (consumes input or stops), so a
//     malicious peer cannot wedge the receiver.
func FuzzReceive(f *testing.F) {
	f.Add(frameBytes(MsgConfig, []byte("camera=small;w=320")))
	f.Add(frameBytes(MsgEnd, nil))
	f.Add(append(frameBytes(MsgFrame, bytes.Repeat([]byte{0x7f}, 300)), frameBytes(MsgEnd, nil)...))
	f.Add([]byte{})
	f.Add([]byte{0x00})                                                       // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge varint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // varint overflow
	f.Add([]byte{0x80})                                                       // truncated varint
	f.Add([]byte{0x05, MsgFrame, 0x01})                                       // truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := bytes.NewBuffer(append([]byte(nil), data...))
		c := New(readWriter{buf})
		for {
			remaining := buf.Len()
			msgType, payload, err := c.Receive()
			consumed := remaining - buf.Len()
			if err != nil {
				if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && consumed != 0 {
					t.Fatalf("clean EOF after consuming %d bytes", consumed)
				}
				return
			}
			if consumed <= 0 {
				t.Fatalf("successful Receive consumed %d bytes", consumed)
			}
			start := len(data) - remaining
			if want := frameBytes(msgType, payload); !bytes.Equal(want, data[start:start+consumed]) {
				t.Fatalf("consumed bytes %x do not re-frame message type %d payload %x",
					data[start:start+consumed], msgType, payload)
			}
		}
	})
}

func TestCorruptLengthDoesNotPreallocate(t *testing.T) {
	// A frame declaring a near-limit body with almost no data behind it
	// must fail after allocating memory proportional to the bytes
	// delivered, not to the declared 48 MiB.
	var wire bytes.Buffer
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], 48<<20)
	wire.Write(hdr[:n])
	wire.Write([]byte{MsgFrame, 0xde, 0xad})
	c := New(readWriter{&wire})

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := c.Receive()
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated near-limit frame accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 4<<20 {
		t.Fatalf("receive of truncated 48 MiB claim allocated %d bytes", grew)
	}
}

func TestLargeGenuineMessageStillDelivered(t *testing.T) {
	// The bounded-allocation path must not break genuinely large frames:
	// a multi-chunk payload round-trips intact.
	payload := bytes.Repeat([]byte{0xC3}, 3*receiveChunk+17)
	var wire bytes.Buffer
	c := New(readWriter{&wire})
	if err := c.Send(MsgFrame, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := c.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgFrame || !bytes.Equal(got, payload) {
		t.Fatalf("large payload corrupted: type %d, %d bytes", msgType, len(got))
	}
}
