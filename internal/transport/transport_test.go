package transport

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendReceiveRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	a := New(client)
	b := New(server)

	done := make(chan error, 1)
	go func() {
		done <- a.Send(MsgFrame, []byte("hello"))
	}()
	msgType, payload, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if msgType != MsgFrame || string(payload) != "hello" {
		t.Fatalf("got %d %q", msgType, payload)
	}
	if a.BytesSent() != b.BytesReceived() {
		t.Fatalf("accounting mismatch: sent %d received %d", a.BytesSent(), b.BytesReceived())
	}
	if a.MessagesSent() != 1 {
		t.Fatalf("messages sent = %d", a.MessagesSent())
	}
}

func TestEmptyPayload(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	a, b := New(client), New(server)
	go func() { _ = a.Send(MsgEnd, nil) }()
	msgType, payload, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgEnd || len(payload) != 0 {
		t.Fatalf("got %d %v", msgType, payload)
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	a, b := New(client), New(server)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(MsgFrame, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		_, payload, err := b.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if payload[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, payload[0])
		}
	}
	wg.Wait()
}

func TestReceiveEOFOnClose(t *testing.T) {
	client, server := net.Pipe()
	b := New(server)
	client.Close()
	defer server.Close()
	if _, _, err := b.Receive(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	// A huge varint length must be rejected, not allocated.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	c := New(readWriter{&buf})
	if _, _, err := c.Receive(); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestOversizedSendRejected(t *testing.T) {
	c := New(readWriter{&bytes.Buffer{}})
	if err := c.Send(MsgFrame, make([]byte, maxMessageSize+1)); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	property := func(msgType byte, payload []byte) bool {
		if msgType == 0 {
			msgType = 1
		}
		var buf bytes.Buffer
		c := New(readWriter{&buf})
		if err := c.Send(msgType, payload); err != nil {
			return false
		}
		gotType, gotPayload, err := c.Receive()
		if err != nil {
			return false
		}
		return gotType == msgType && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// readWriter joins a buffer into a ReadWriter for loopback tests.
type readWriter struct{ buf *bytes.Buffer }

func (rw readWriter) Read(p []byte) (int, error)  { return rw.buf.Read(p) }
func (rw readWriter) Write(p []byte) (int, error) { return rw.buf.Write(p) }

func TestSnapshotRaceSafe(t *testing.T) {
	// Snapshot must be readable from any goroutine while a sender and a
	// receiver are both active; run under -race (make test-race) this
	// pins the counters as atomics, not plain ints.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	a, b := New(client), New(server)

	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		payload := bytes.Repeat([]byte{0xAB}, 64)
		for i := 0; i < n; i++ {
			if err := a.Send(MsgFrame, payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, _, err := b.Receive(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sa, sb := a.Snapshot(), b.Snapshot()
			if sa.BytesSent < 0 || sb.BytesReceived < 0 {
				t.Error("negative counter")
				return
			}
			_ = Totals()
		}
	}()
	wg.Wait()
	close(stop)
	snaps.Wait()

	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.BytesSent != sb.BytesReceived {
		t.Fatalf("accounting mismatch: sent %d received %d", sa.BytesSent, sb.BytesReceived)
	}
	if sa.MessagesSent != n || sb.MessagesReceived != n {
		t.Fatalf("message counts: sent %d received %d, want %d", sa.MessagesSent, sb.MessagesReceived, n)
	}
	totals := Totals()
	if totals.BytesSent < sa.BytesSent || totals.MessagesReceived < sb.MessagesReceived {
		t.Fatalf("process totals %+v below connection totals", totals)
	}
}
