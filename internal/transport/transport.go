// Package transport implements the byte-accounted wire protocol between
// the simulated cameras and the central video query processor. It is a
// minimal length-prefixed message framing over any io.ReadWriter (net.Pipe
// for in-process experiments, TCP for distributed ones), with per-
// direction byte counters that feed the bandwidth and energy accounting of
// the camera package — the paper's "system requirements" motivation made
// measurable.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Message types carried on the wire.
const (
	// MsgConfig announces the camera's capture spec and intervention
	// setting; always the first message of a stream.
	MsgConfig byte = iota + 1
	// MsgBackground carries the static background raster at transmission
	// resolution, used by the receiver's detector.
	MsgBackground
	// MsgFrame carries one degraded frame (codec frame record).
	MsgFrame
	// MsgEnd terminates a stream.
	MsgEnd
)

// maxMessageSize bounds a single message; a full 640x640 uncompressed
// frame is ~400 KiB, so 64 MiB leaves ample slack while still catching
// corrupt length prefixes.
const maxMessageSize = 64 << 20

// Conn is a framed, byte-accounted connection. Send and Receive are each
// safe for one concurrent caller (one sender goroutine, one receiver
// goroutine), matching the camera/processor topology. All counters are
// atomics, so Snapshot and the accessor methods are safe to call from any
// goroutine while Send/Receive are in flight.
type Conn struct {
	sendMu sync.Mutex
	recvMu sync.Mutex
	rw     io.ReadWriter

	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	messagesSent  atomic.Int64
	messagesRecv  atomic.Int64
}

// Counters is a point-in-time snapshot of per-direction transfer totals.
type Counters struct {
	BytesSent        int64
	BytesReceived    int64
	MessagesSent     int64
	MessagesReceived int64
}

// globals accumulate transfer totals across every Conn in the process, so
// a daemon can export fleet-wide bandwidth without tracking connections.
var (
	globalBytesSent     atomic.Int64
	globalBytesReceived atomic.Int64
	globalMessagesSent  atomic.Int64
	globalMessagesRecv  atomic.Int64
)

// New wraps a bidirectional stream in a framed connection.
func New(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw}
}

// Send writes one framed message: varint length, type byte, payload.
func (c *Conn) Send(msgType byte, payload []byte) error {
	if len(payload) > maxMessageSize {
		return fmt.Errorf("transport: message of %d bytes exceeds limit", len(payload))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	hdr[n] = msgType
	n++
	if _, err := c.rw.Write(hdr[:n]); err != nil {
		return fmt.Errorf("transport: send header: %w", err)
	}
	// Skip empty writes: net.Pipe blocks even on zero-byte writes, which
	// would deadlock the final MsgEnd once the receiver has returned.
	if len(payload) > 0 {
		if _, err := c.rw.Write(payload); err != nil {
			return fmt.Errorf("transport: send payload: %w", err)
		}
	}
	c.bytesSent.Add(int64(n + len(payload)))
	c.messagesSent.Add(1)
	globalBytesSent.Add(int64(n + len(payload)))
	globalMessagesSent.Add(1)
	return nil
}

// Receive reads the next framed message. It returns io.EOF when the peer
// closed the stream cleanly before a header.
func (c *Conn) Receive() (byte, []byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	br := byteReader{r: c.rw}
	length, err := binary.ReadUvarint(&br)
	if err != nil {
		if errors.Is(err, io.EOF) && br.n == 0 {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("transport: receive header: %w", err)
	}
	if length == 0 || length > maxMessageSize {
		return 0, nil, fmt.Errorf("transport: corrupt message length %d", length)
	}
	var canon [binary.MaxVarintLen64]byte
	if br.n != binary.PutUvarint(canon[:], length) {
		// Send always emits the minimal varint; a padded encoding is not
		// a frame any peer of ours produced.
		return 0, nil, fmt.Errorf("transport: non-canonical length prefix (%d bytes for %d)", br.n, length)
	}
	body, err := readBody(c.rw, int64(length))
	if err != nil {
		return 0, nil, fmt.Errorf("transport: receive payload: %w", err)
	}
	c.bytesReceived.Add(int64(br.n) + int64(length))
	c.messagesRecv.Add(1)
	globalBytesReceived.Add(int64(br.n) + int64(length))
	globalMessagesRecv.Add(1)
	return body[0], body[1:], nil
}

// BytesSent returns the total bytes written, including framing.
func (c *Conn) BytesSent() int64 { return c.bytesSent.Load() }

// BytesReceived returns the total bytes read, including framing.
func (c *Conn) BytesReceived() int64 { return c.bytesReceived.Load() }

// MessagesSent returns the number of messages written.
func (c *Conn) MessagesSent() int64 { return c.messagesSent.Load() }

// Snapshot returns the connection's cumulative per-direction transfer
// counters. It is race-safe against concurrent Send and Receive; each
// counter is read atomically, so a snapshot taken mid-message may see a
// message counted whose peer-side bytes are still in flight, but never a
// torn counter value.
func (c *Conn) Snapshot() Counters {
	return Counters{
		BytesSent:        c.bytesSent.Load(),
		BytesReceived:    c.bytesReceived.Load(),
		MessagesSent:     c.messagesSent.Load(),
		MessagesReceived: c.messagesRecv.Load(),
	}
}

// Totals returns process-wide cumulative transfer counters summed over
// every Conn ever created, for export by long-running daemons.
func Totals() Counters {
	return Counters{
		BytesSent:        globalBytesSent.Load(),
		BytesReceived:    globalBytesReceived.Load(),
		MessagesSent:     globalMessagesSent.Load(),
		MessagesReceived: globalMessagesRecv.Load(),
	}
}

// receiveChunk caps the upfront body allocation. A declared length at or
// below the chunk is trusted (legitimate control messages and frame
// records are small, and the cost of being wrong is bounded by the
// chunk); larger bodies grow as bytes actually arrive, so a corrupt or
// hostile length prefix costs at most one chunk of memory, not
// maxMessageSize.
const receiveChunk = 64 << 10

// readBody reads exactly length bytes. Allocation tracks the data
// actually delivered (bytes.Buffer growth under a LimitReader), never
// the declared length, except for the trusted small-message fast path.
func readBody(r io.Reader, length int64) ([]byte, error) {
	var buf bytes.Buffer
	if length <= receiveChunk {
		buf.Grow(int(length))
	}
	if _, err := io.CopyN(&buf, r, length); err != nil {
		if errors.Is(err, io.EOF) {
			// Match io.ReadFull's contract for a truncated body.
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// byteReader adapts an io.Reader to io.ByteReader while counting bytes.
type byteReader struct {
	r io.Reader
	n int
}

func (b *byteReader) ReadByte() (byte, error) {
	var buf [1]byte
	if _, err := io.ReadFull(b.r, buf[:]); err != nil {
		return 0, err
	}
	b.n++
	return buf[0], nil
}
