package estimate

import (
	"fmt"
	"sort"
)

// Window maintains a bounded-duration estimate over an unbounded stream:
// the Privid-style query model where an aggregate is answered per window
// of W consecutive frames rather than over the whole (endless) video.
// The population for the bound is the window span — a window that
// observed k of its W frames is a k-of-W sample with the usual
// Hoeffding-Serfling machinery — and sliding is incremental: advancing
// evicts only the departed frames' contributions (ForgetFrame) instead
// of rebuilding the estimator.
//
// Frame keys are absolute stream positions (monotone, unbounded); the
// window covers [Lo, Lo+Span). Observations below Lo are stale and
// rejected; observations at or beyond Lo+Span first advance the window
// so that the new frame is its last element (the sliding-ingest
// behaviour — tumbling windows are driven externally via Advance).
//
// Any-time validity note: with anyTime set, the bounds reported while
// one window fills hold simultaneously for that window's prefix
// sequence; bounds from different windows are each valid at their own
// confidence but are not jointly corrected across windows.
type Window struct {
	est  *StreamingEstimator
	span int
	lo   int
}

// NewWindow builds a windowed estimator with the given span (the
// bounded duration W, in frames). The window initially covers
// [0, span).
func NewWindow(agg Agg, span int, p Params, anyTime bool) (*Window, error) {
	est, err := NewStreamingEstimator(agg, span, p, anyTime)
	if err != nil {
		return nil, err
	}
	est.unboundedFrames = true
	return &Window{est: est, span: span}, nil
}

// Span returns the window span W.
func (w *Window) Span() int { return w.span }

// Lo returns the lowest frame position the window covers; the window is
// [Lo, Lo+Span).
func (w *Window) Lo() int { return w.lo }

// Count returns the number of distinct frames currently folded in.
func (w *Window) Count() int { return w.est.Count() }

// ObserveFrame folds in the sampled output of the frame at absolute
// stream position frame. Stale frames (below the window) are dropped
// and reported false; duplicates are suppressed like
// StreamingEstimator.ObserveFrame. A frame at or beyond the window's
// upper bound slides the window forward just enough to include it,
// evicting departed frames.
func (w *Window) ObserveFrame(frame int, x float64) bool {
	if frame < 0 {
		panic("estimate: negative stream position")
	}
	if frame < w.lo {
		return false
	}
	if frame >= w.lo+w.span {
		w.Advance(frame - w.span + 1)
	}
	if _, dup := w.est.seen[frame]; dup {
		return false
	}
	w.est.ObserveFrame(frame, x)
	return true
}

// Advance slides the window's lower bound forward to lo, evicting every
// observation that falls below it, and returns the number evicted.
// Moving backwards is a programming error and panics. Advancing by the
// full span (or more) is the tumbling-window reset — every observation
// is evicted and the estimator returns exactly to its empty state.
func (w *Window) Advance(lo int) int {
	if lo < w.lo {
		panic(fmt.Sprintf("estimate: window cannot move backwards (%d -> %d)", w.lo, lo))
	}
	if lo == w.lo {
		return 0
	}
	var departed []int
	for frame := range w.est.seen {
		if frame < lo {
			departed = append(departed, frame)
		}
	}
	// Evict in frame order: floating-point subtraction is not
	// associative, so a deterministic order keeps window state
	// reproducible across runs (and keeps the determinism analyzer's
	// map-iteration rule satisfied).
	sort.Ints(departed)
	for _, frame := range departed {
		w.est.ForgetFrame(frame)
	}
	w.lo = lo
	return len(departed)
}

// Current returns the running bounded-duration estimate for the current
// window: N is the span, Sample the frames observed so far.
func (w *Window) Current() Estimate { return w.est.Current() }

// Snapshot returns the window's surviving observations in frame order —
// the (positions, values) pair a full recomputation would consume. Used
// by equivalence checks (incremental window state vs a fresh estimator
// over the same frames) and drift summaries.
func (w *Window) Snapshot() (frames []int, values []float64) {
	frames = make([]int, 0, len(w.est.seen))
	for frame := range w.est.seen {
		frames = append(frames, frame)
	}
	sort.Ints(frames)
	values = make([]float64, len(frames))
	for i, frame := range frames {
		values[i] = w.est.seen[frame]
	}
	return frames, values
}
