package estimate

import (
	"fmt"
	"math"
	"sort"

	"smokescreen/internal/stats"
)

// This file implements Algorithm 3: profile repair. When non-random
// interventions (reduced resolution, image removal) bias the sampled
// outputs, the basic bounds can undershoot the true error. A correction
// set — m outputs from frames degraded ONLY by random interventions —
// anchors the bound: the degraded answer is compared against the
// correction set's answer, whose own error bound is valid by Theorem
// 3.1/3.2, and the triangle inequality yields a corrected bound that holds
// with probability at least 1-delta with NO distributional assumption on
// the non-randomly degraded outputs.

// Correction is a correction set prepared for bound repair: the sampled
// outputs (random interventions only) plus their Smokescreen estimate.
type Correction struct {
	Sample   []float64 // v_1..v_m, outputs on the correction frames
	Estimate Estimate  // Smokescreen estimate computed from the sample
	sorted   []float64 // lazily built for rank queries
}

// NewCorrection builds a correction set for the aggregate from m outputs
// sampled without replacement out of the N-frame corpus.
func NewCorrection(agg Agg, sample []float64, N int, p Params) (*Correction, error) {
	est, err := Smokescreen(agg, sample, N, p)
	if err != nil {
		return nil, fmt.Errorf("estimate: building correction set: %w", err)
	}
	return &Correction{Sample: sample, Estimate: est}, nil
}

// Size returns m, the number of frames in the correction set.
func (c *Correction) Size() int { return len(c.Sample) }

// rank returns the sampled cumulative frequency of value v in the
// correction set: rank(v)/m.
func (c *Correction) rank(v float64) float64 {
	if c.sorted == nil {
		c.sorted = append([]float64(nil), c.Sample...)
		sort.Float64s(c.sorted)
	}
	return float64(stats.RankSorted(c.sorted, v)) / float64(len(c.sorted))
}

// Repair corrects the error bound of a degraded estimate using the
// correction set (Algorithm 3). For AVG/SUM/COUNT:
//
//	err_b = (1+err_v) * |Y - Y_v| / |Y_v| + err_v,
//
// and for MAX/MIN the value difference is replaced by the rank difference
// of the two answers within the correction set, divided by r. The repaired
// bound holds with probability at least 1-delta because it inherits the
// correction estimate's guarantee.
func (c *Correction) Repair(agg Agg, degraded Estimate, p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	errV := c.Estimate.ErrBound
	if agg.IsExtremum() {
		r := p.rFor(agg)
		rankY := c.rank(degraded.Value)
		rankV := c.rank(c.Estimate.Value)
		return math.Abs(rankY-rankV)/r + errV, nil
	}
	yV := c.Estimate.Value
	if yV == 0 {
		// The correction answer carries no scale information; the relative
		// error of the degraded answer cannot be bounded.
		if degraded.Value == 0 {
			return errV, nil
		}
		return math.Inf(1), nil
	}
	// SUM/COUNT values are scaled by N on both sides, so the ratio form is
	// identical for all mean-type aggregates.
	return (1+errV)*math.Abs(degraded.Value-yV)/math.Abs(yV) + errV, nil
}

// Repaired combines a degraded estimate with the correction set: the error
// bound is repaired, and for random-only interventions callers may instead
// take the tighter of the two bounds (paper Section 5.2.2, "when there is
// only the random intervention, the tighter of the error bounds with and
// without the correction set is used").
func (c *Correction) Repaired(agg Agg, degraded Estimate, p Params, randomOnly bool) (Estimate, error) {
	repaired, err := c.Repair(agg, degraded, p)
	if err != nil {
		return Estimate{}, err
	}
	out := degraded
	if randomOnly && degraded.ErrBound < repaired {
		out.ErrBound = degraded.ErrBound
		return out, nil
	}
	out.ErrBound = repaired
	return out, nil
}
