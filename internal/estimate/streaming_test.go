package estimate

import (
	"math"
	"testing"

	"smokescreen/internal/stats"
)

func TestStreamingValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := NewStreamingEstimator(MAX, 100, p, false); err == nil {
		t.Fatal("MAX streaming accepted")
	}
	if _, err := NewStreamingEstimator(VAR, 100, p, false); err == nil {
		t.Fatal("VAR streaming accepted")
	}
	if _, err := NewStreamingEstimator(AVG, 0, p, false); err == nil {
		t.Fatal("zero population accepted")
	}
	if _, err := NewStreamingEstimator(AVG, 100, Params{Delta: 0, R: 0.5}, false); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestStreamingMatchesBatchPointwise(t *testing.T) {
	// After observing exactly the sample, the pointwise streaming estimate
	// must equal the batch Algorithm 1 estimate.
	pop := carLikePopulation(2000, 2.5, 201)
	sample := sampleFrom(pop, 200, stats.NewStream(203))
	p := DefaultParams()
	batch, err := Smokescreen(AVG, sample, len(pop), p)
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := NewStreamingEstimator(AVG, len(pop), p, false)
	if err != nil {
		t.Fatal(err)
	}
	var last Estimate
	for _, x := range sample {
		last = streaming.Observe(x)
	}
	if math.Abs(last.Value-batch.Value) > 1e-12 || math.Abs(last.ErrBound-batch.ErrBound) > 1e-12 {
		t.Fatalf("streaming %+v != batch %+v", last, batch)
	}
	if streaming.Count() != 200 {
		t.Fatalf("Count = %d", streaming.Count())
	}
}

func TestStreamingBoundsTighten(t *testing.T) {
	pop := carLikePopulation(2000, 2.5, 207)
	p := DefaultParams()
	streaming, _ := NewStreamingEstimator(AVG, len(pop), p, false)
	s := stats.NewStream(209)
	var at10, at100, at1000 float64
	for i, idx := range s.SampleWithoutReplacement(len(pop), 1000) {
		est := streaming.Observe(pop[idx])
		switch i + 1 {
		case 10:
			at10 = est.ErrBound
		case 100:
			at100 = est.ErrBound
		case 1000:
			at1000 = est.ErrBound
		}
	}
	if !(at10 > at100 && at100 > at1000) {
		t.Fatalf("bounds did not tighten: %v, %v, %v", at10, at100, at1000)
	}
}

func TestStreamingAnyTimeLooserPointwiseAtFixedN(t *testing.T) {
	pop := carLikePopulation(2000, 2.5, 211)
	sample := sampleFrom(pop, 300, stats.NewStream(213))
	p := DefaultParams()
	pointwise, _ := NewStreamingEstimator(AVG, len(pop), p, false)
	anytime, _ := NewStreamingEstimator(AVG, len(pop), p, true)
	var pw, at Estimate
	for _, x := range sample {
		pw = pointwise.Observe(x)
		at = anytime.Observe(x)
	}
	if at.ErrBound <= pw.ErrBound {
		t.Fatalf("any-time bound %v not looser than pointwise %v", at.ErrBound, pw.ErrBound)
	}
}

func TestStreamingAnyTimeUniformCoverage(t *testing.T) {
	// The any-time bound must cover the true error at EVERY prefix length
	// simultaneously in at least ~1-delta of trials. Like every
	// sample-range-based bound (including the paper's Algorithm 1), the
	// guarantee is conditional on the observed range approximating the
	// population range, which fails at tiny prefixes — so coverage is
	// checked from prefix length 10 onward, where the range has settled.
	const (
		popSize = 1500
		steps   = 150
		warmup  = 10
		trials  = 200
	)
	pop := carLikePopulation(popSize, 2.0, 217)
	truth := stats.Mean(pop)
	p := DefaultParams()
	root := stats.NewStream(219)
	allCovered := 0
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		streaming, _ := NewStreamingEstimator(AVG, popSize, p, true)
		ok := true
		for step, idx := range s.SampleWithoutReplacement(popSize, steps) {
			est := streaming.Observe(pop[idx])
			if step+1 < warmup {
				continue
			}
			if stats.RelativeError(est.Value, truth) > est.ErrBound {
				ok = false
				break
			}
		}
		if ok {
			allCovered++
		}
	}
	rate := float64(allCovered) / trials
	slack := 3 * math.Sqrt(0.05*0.95/trials)
	if rate < 0.95-slack {
		t.Fatalf("any-time uniform coverage = %.3f", rate)
	}
}

func TestStreamingCountKnownRange(t *testing.T) {
	// A COUNT stream of all-ones must stay bounded (indicator range floor).
	p := DefaultParams()
	streaming, _ := NewStreamingEstimator(COUNT, 1000, p, false)
	var est Estimate
	for i := 0; i < 50; i++ {
		est = streaming.Observe(1)
	}
	if est.ErrBound >= 1 || est.ErrBound <= 0 {
		t.Fatalf("constant COUNT stream bound %v", est.ErrBound)
	}
	if est.Value <= 0 || est.Value > 1000 {
		t.Fatalf("COUNT value %v", est.Value)
	}
}

// frameSample draws k distinct frame indices from a population and pairs
// them with their outputs, the shape ObserveFrame consumes.
type frameObs struct {
	frame int
	x     float64
}

func frameSample(pop []float64, k int, s *stats.Stream) []frameObs {
	obs := make([]frameObs, 0, k)
	for _, idx := range s.SampleWithoutReplacement(len(pop), k) {
		obs = append(obs, frameObs{frame: idx, x: pop[idx]})
	}
	return obs
}

// estimatesMatch compares two estimates at the package's standard 1e-12
// tolerance: the estimator state is order-independent up to float addition
// reassociation, which perturbs the running sum in its last bits.
func estimatesMatch(a, b Estimate) bool {
	return math.Abs(a.Value-b.Value) <= 1e-12 &&
		math.Abs(a.ErrBound-b.ErrBound) <= 1e-12 &&
		a.Sample == b.Sample && a.N == b.N
}

// batchOf runs the batch Algorithm 1 estimator over the same sample.
func batchOf(t *testing.T, obs []frameObs, n int, p Params) Estimate {
	t.Helper()
	xs := make([]float64, len(obs))
	for i, o := range obs {
		xs[i] = o.x
	}
	est, err := Smokescreen(AVG, xs, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestStreamingFrameDedupOutOfOrderMatchesBatch(t *testing.T) {
	// Property: a frame-keyed stream with redelivered duplicates in an
	// arbitrary order matches the batch estimator on the clean sample.
	// Duplicates are dropped and the state is order-independent, so the
	// only slack is float summation order.
	pop := carLikePopulation(2000, 2.5, 221)
	p := DefaultParams()
	obs := frameSample(pop, 200, stats.NewStream(223))
	batch := batchOf(t, obs, len(pop), p)

	// Deliver every observation twice, in a shuffled order.
	deliveries := append(append([]frameObs(nil), obs...), obs...)
	shuffled := make([]frameObs, 0, len(deliveries))
	for _, i := range stats.NewStream(227).SampleWithoutReplacement(len(deliveries), len(deliveries)) {
		shuffled = append(shuffled, deliveries[i])
	}

	streaming, err := NewStreamingEstimator(AVG, len(pop), p, false)
	if err != nil {
		t.Fatal(err)
	}
	var last Estimate
	for _, o := range shuffled {
		last = streaming.ObserveFrame(o.frame, o.x)
	}
	if streaming.Count() != len(obs) {
		t.Fatalf("Count = %d after duplicate deliveries, want %d", streaming.Count(), len(obs))
	}
	if !estimatesMatch(last, batch) {
		t.Fatalf("deduplicated stream %+v != batch %+v", last, batch)
	}
}

func TestStreamingMergeShardsMatchBatch(t *testing.T) {
	// Property: sharding a frame stream across estimators (with overlap,
	// as in redundant shard assignment) and merging reproduces the batch
	// estimate, regardless of shard boundaries.
	pop := carLikePopulation(1500, 2.0, 229)
	p := DefaultParams()
	obs := frameSample(pop, 300, stats.NewStream(231))
	batch := batchOf(t, obs, len(pop), p)

	const shards = 3
	ests := make([]*StreamingEstimator, shards)
	for i := range ests {
		e, err := NewStreamingEstimator(AVG, len(pop), p, false)
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = e
	}
	for i, o := range obs {
		ests[i%shards].ObserveFrame(o.frame, o.x)
		// Overlap: every fifth observation is also assigned to the next
		// shard, so merged shards carry cross-shard duplicates.
		if i%5 == 0 {
			ests[(i+1)%shards].ObserveFrame(o.frame, o.x)
		}
	}
	merged := ests[0]
	for _, e := range ests[1:] {
		if err := merged.Merge(e); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != len(obs) {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), len(obs))
	}
	got := merged.Current()
	if !estimatesMatch(got, batch) {
		t.Fatalf("merged shards %+v != batch %+v", got, batch)
	}
}

func TestStreamingMergeValidation(t *testing.T) {
	p := DefaultParams()
	base, _ := NewStreamingEstimator(AVG, 100, p, false)
	base.ObserveFrame(1, 0.5)

	var nilOther *StreamingEstimator
	if err := base.Merge(nilOther); err == nil {
		t.Fatal("merged a nil estimator")
	}
	otherAgg, _ := NewStreamingEstimator(SUM, 100, p, false)
	if err := base.Merge(otherAgg); err == nil {
		t.Fatal("merged across aggregates")
	}
	otherN, _ := NewStreamingEstimator(AVG, 200, p, false)
	if err := base.Merge(otherN); err == nil {
		t.Fatal("merged across population sizes")
	}
	otherMode, _ := NewStreamingEstimator(AVG, 100, p, true)
	if err := base.Merge(otherMode); err == nil {
		t.Fatal("merged across guarantee modes")
	}

	// Untracked observations (plain Observe) cannot be merged soundly.
	untracked, _ := NewStreamingEstimator(AVG, 100, p, false)
	untracked.Observe(0.25)
	if err := base.Merge(untracked); err == nil {
		t.Fatal("merged an estimator with untracked observations")
	}
	if err := untracked.Merge(base); err == nil {
		t.Fatal("untracked estimator accepted a merge")
	}

	// Out-of-range frames panic like over-observing does.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range frame did not panic")
			}
		}()
		base.ObserveFrame(100, 1.0)
	}()
}

func TestStreamingEmptyAndOverflow(t *testing.T) {
	p := DefaultParams()
	streaming, _ := NewStreamingEstimator(AVG, 3, p, false)
	if got := streaming.Current(); got.ErrBound != 1 {
		t.Fatalf("empty stream bound %v", got.ErrBound)
	}
	streaming.Observe(1)
	streaming.Observe(2)
	streaming.Observe(3)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	streaming.Observe(4)
}
