package estimate

import (
	"math"
	"testing"

	"smokescreen/internal/stats"
)

func TestVarParseAndString(t *testing.T) {
	if VAR.String() != "VAR" {
		t.Fatalf("VAR.String() = %q", VAR.String())
	}
	agg, err := ParseAgg("VAR")
	if err != nil || agg != VAR {
		t.Fatalf("ParseAgg(VAR) = %v, %v", agg, err)
	}
	if VAR.IsExtremum() {
		t.Fatal("VAR flagged as extremum")
	}
}

func TestVarFullSampleNearExact(t *testing.T) {
	pop := carLikePopulation(800, 2.5, 91)
	est, err := Smokescreen(VAR, pop, len(pop), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	truth := trueVariance(pop)
	if math.Abs(est.Value-truth)/truth > 0.01 {
		t.Fatalf("full-sample VAR = %v, truth %v", est.Value, truth)
	}
	if est.ErrBound > 0.02 {
		t.Fatalf("full-sample VAR bound = %v", est.ErrBound)
	}
}

func TestVarDegenerateConstantSample(t *testing.T) {
	est, err := Smokescreen(VAR, []float64{3, 3, 3, 3}, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// A constant sample carries no variance information beyond "the ranges
	// collapse": the value is 0 with a degenerate bound.
	if est.Value != 0 {
		t.Fatalf("constant-sample VAR = %v", est.Value)
	}
}

func TestVarCoverage(t *testing.T) {
	const (
		popSize = 3000
		n       = 150
		trials  = 400
		delta   = 0.05
	)
	pop := carLikePopulation(popSize, 2.2, 93)
	truth := trueVariance(pop)
	if truth <= 0 {
		t.Fatal("degenerate population")
	}
	p := DefaultParams()
	root := stats.NewStream(97)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		sample := sampleFrom(pop, n, root.Child(uint64(trial)))
		est, err := Smokescreen(VAR, sample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelativeError(est.Value, truth) <= est.ErrBound {
			covered++
		}
	}
	rate := float64(covered) / trials
	slack := 3 * math.Sqrt(delta*(1-delta)/trials)
	if rate < 1-delta-slack {
		t.Fatalf("VAR coverage = %.3f", rate)
	}
}

func TestVarBoundShrinksWithSampleSize(t *testing.T) {
	pop := carLikePopulation(5000, 2.2, 101)
	p := DefaultParams()
	root := stats.NewStream(103)
	var prev float64 = math.Inf(1)
	// Variance bounds are range-hungry: they only leave the degenerate
	// err=1 regime at substantial sample fractions (see variance.go).
	for _, n := range []int{1000, 2000, 3500, 5000} {
		var sum float64
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			sample := sampleFrom(pop, n, root.ChildN(uint64(n), uint64(trial)))
			est, err := Smokescreen(VAR, sample, len(pop), p)
			if err != nil {
				t.Fatal(err)
			}
			sum += est.ErrBound
		}
		mean := sum / trials
		if mean >= prev {
			t.Fatalf("VAR bound did not shrink at n=%d: %v -> %v", n, prev, mean)
		}
		prev = mean
	}
}

func TestVarTrueAnswer(t *testing.T) {
	pop := []float64{1, 2, 3, 4}
	got, err := TrueAnswer(VAR, pop, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("TrueAnswer(VAR) = %v, want 1.25 (population variance)", got)
	}
}

func TestVarUnsupportedByBaselines(t *testing.T) {
	for _, b := range []Baseline{EBGS, Hoeffding, HoeffdingSerfling, CLT, Stein} {
		if b.Supports(VAR) {
			t.Fatalf("%v claims VAR support", b)
		}
	}
	if _, err := BaselineEstimate(CLT, VAR, []float64{1, 2}, 10, DefaultParams()); err == nil {
		t.Fatal("baseline accepted VAR")
	}
}

func TestVarRepairWorks(t *testing.T) {
	// Profile repair generalises to VAR untouched: the corrected bound
	// covers the true error under a systematic bias.
	const popSize = 3000
	pop := carLikePopulation(popSize, 3, 107)
	truth := trueVariance(pop)
	p := DefaultParams()
	root := stats.NewStream(109)
	covered := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		degradedSample := biasedSample(pop, 400, 0.6, s)
		degraded, err := Smokescreen(VAR, degradedSample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := NewCorrection(VAR, sampleFrom(pop, 400, s.Child(1)), popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := corr.Repair(VAR, degraded, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelativeError(degraded.Value, truth) <= bound {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.9 {
		t.Fatalf("repaired VAR coverage = %.3f", rate)
	}
}
