package estimate

import (
	"smokescreen/internal/stats"
)

// This file implements the VAR aggregate, the extension the paper's
// Section 7 names first among future work ("more aggregate types can be
// explored, such as VAR"). The construction stays in the spirit of
// Algorithm 1 but avoids the hopeless E[X^2]-E[X]^2 interval arithmetic
// (whose X^2 range makes bounds vacuous at realistic sample sizes) by
// working on *centred squares*:
//
//	Z_i = (X_i - mean(sample))^2.
//
// The population mean of Z equals Var(X) + (mu - mean(sample))^2, so with
// a Hoeffding-Serfling interval I_Z for mean(Z) at risk delta/2 and an
// interval I_m for the sample mean at risk delta/2:
//
//	UB = mean(Z) + I_Z                      (mean(Z)'s target >= Var)
//	LB = mean(Z) - I_Z - I_m^2              (target <= Var + I_m^2)
//
// and the answer/bound pair follows the paper's harmonic form. The centred
// Z_i depend on the sample mean, which perturbs the exchangeability
// assumption behind Hoeffding-Serfling by an O(I_m^2) term that the LB
// correction absorbs; the empirical-coverage property test verifies the
// 1-delta guarantee holds in practice. Variance estimation remains
// range-hungry: at small sample fractions the bound degenerates to 1,
// which is itself useful information on a tradeoff curve.

// varEstimate computes the VAR estimate from a without-replacement sample.
func varEstimate(sample []float64, N int, delta float64) Estimate {
	n := len(sample)
	est := Estimate{N: N, Sample: n}

	s := stats.Summarize(sample)
	centred := make([]float64, n)
	for i, x := range sample {
		d := x - s.Mean
		centred[i] = d * d
	}
	z := stats.Summarize(centred)

	half := delta / 2
	iMean := stats.HoeffdingSerflingHalfWidth(s.Range(), n, N, half)
	iZ := stats.HoeffdingSerflingHalfWidth(z.Range(), n, N, half)

	ub := z.Mean + iZ
	lb := z.Mean - iZ - iMean*iMean
	if lb < 0 {
		lb = 0
	}
	if ub <= 0 {
		// Constant sample: no spread, no interval.
		est.Value = 0
		est.ErrBound = 0
		return est
	}
	if lb == 0 {
		est.Value = 0
		est.ErrBound = 1
		return est
	}
	est.Value = 2 * ub * lb / (ub + lb)
	est.ErrBound = (ub - lb) / (ub + lb)
	return est
}

// trueVariance is the exact population variance (biased/population form,
// matching the estimator's target).
func trueVariance(population []float64) float64 {
	mean := stats.Mean(population)
	var sum float64
	for _, x := range population {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(population))
}
