// Package estimate implements Smokescreen's query-answer and error-bound
// estimators (paper Section 3.2) and the baselines it is evaluated against
// (Section 5.1):
//
//   - Algorithm 1: AVG under random frame sampling — an improved empirical
//     Bernstein stopping construction using the Hoeffding–Serfling
//     inequality and a single-sample-size confidence interval;
//   - SUM and COUNT by reduction to AVG;
//   - Algorithm 2: MAX/MIN via extreme r-th quantiles with a normal
//     approximation to the hypergeometric distribution of sampled
//     cumulative frequencies, under a rank-relative error metric;
//   - Algorithm 3: profile repair — correcting possibly biased bounds with
//     a correction set degraded only by random interventions;
//   - baselines: EBGS, Hoeffding, Hoeffding–Serfling, CLT (for AVG-like
//     aggregates) and Stein (for MAX).
//
// Every bound holds with probability at least 1-delta under its stated
// assumptions; the property tests in this package verify coverage
// empirically, and Figure 5 of the paper (reproduced in
// internal/experiments) shows how the CLT baseline fails that guarantee.
package estimate

import (
	"fmt"
	"math"
	"sort"

	"smokescreen/internal/stats"
)

// Agg identifies an aggregate function over per-frame model outputs.
type Agg int

// Supported aggregate functions (paper Section 3.2). Deduplicated
// aggregates are out of scope, as in the paper.
const (
	AVG Agg = iota
	SUM
	COUNT
	MAX
	MIN
	// VAR is the population-variance aggregate — the paper's first-named
	// future-work extension (Section 7), implemented in variance.go.
	VAR
)

// String returns the SQL-style name of the aggregate.
func (a Agg) String() string {
	switch a {
	case AVG:
		return "AVG"
	case SUM:
		return "SUM"
	case COUNT:
		return "COUNT"
	case MAX:
		return "MAX"
	case MIN:
		return "MIN"
	case VAR:
		return "VAR"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// ParseAgg converts an aggregate name (case-sensitive SQL style).
func ParseAgg(s string) (Agg, error) {
	switch s {
	case "AVG", "avg":
		return AVG, nil
	case "SUM", "sum":
		return SUM, nil
	case "COUNT", "count":
		return COUNT, nil
	case "MAX", "max":
		return MAX, nil
	case "MIN", "min":
		return MIN, nil
	case "VAR", "var":
		return VAR, nil
	}
	return 0, fmt.Errorf("estimate: unknown aggregate %q", s)
}

// IsExtremum reports whether the aggregate is MAX or MIN (rank-error
// metric, Algorithm 2) rather than AVG/SUM/COUNT (value-error metric,
// Algorithm 1).
func (a Agg) IsExtremum() bool { return a == MAX || a == MIN }

// Estimate is an approximate query answer with its error upper bound.
type Estimate struct {
	Value    float64 // Y_approx
	ErrBound float64 // err_b: upper bound on the relative error, >= 0
	N        int     // population size the estimate refers to
	Sample   int     // sample size n used
}

// Params carries the estimator knobs shared across aggregates.
type Params struct {
	// Delta is the risk: bounds hold with probability >= 1-Delta.
	// The paper's experiments use 0.05 (95% confidence).
	Delta float64
	// R is the extreme quantile used to approximate MAX (close to 1) and
	// MIN (close to 0). The paper uses 0.99 for MAX.
	R float64
}

// DefaultParams returns the paper's experimental defaults: delta = 0.05,
// r = 0.99.
func DefaultParams() Params { return Params{Delta: 0.05, R: 0.99} }

func (p Params) validate() error {
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("estimate: delta %v out of (0,1)", p.Delta)
	}
	if p.R <= 0 || p.R >= 1 {
		return fmt.Errorf("estimate: quantile r %v out of (0,1)", p.R)
	}
	return nil
}

// rFor returns the quantile used for the aggregate: R for MAX, 1-R for
// MIN (so R=0.99 means the 0.01 quantile approximates the minimum).
func (p Params) rFor(a Agg) float64 {
	if a == MIN {
		return 1 - p.R
	}
	return p.R
}

// Smokescreen computes the paper's estimate for the given aggregate from a
// random (without replacement) sample of n of the N per-frame outputs.
// COUNT expects the predicate indicators (0/1) as the sample values.
func Smokescreen(agg Agg, sample []float64, N int, p Params) (Estimate, error) {
	if err := p.validate(); err != nil {
		return Estimate{}, err
	}
	if len(sample) == 0 {
		return Estimate{}, fmt.Errorf("estimate: empty sample")
	}
	if len(sample) > N {
		return Estimate{}, fmt.Errorf("estimate: sample of %d exceeds population %d", len(sample), N)
	}
	switch agg {
	case AVG:
		return avg(sample, N, p.Delta, 0), nil
	case SUM, COUNT:
		// COUNT works on predicate indicators whose range is known a
		// priori to be 1, so the bound survives constant samples (all
		// frames matching) where the observed range collapses to zero.
		e := avg(sample, N, p.Delta, rangeFloor(agg))
		e.Value *= float64(N)
		return e, nil
	case MAX, MIN:
		return quantile(agg, sample, N, p.rFor(agg), p.Delta), nil
	case VAR:
		return varEstimate(sample, N, p.Delta), nil
	default:
		return Estimate{}, fmt.Errorf("estimate: unsupported aggregate %v", agg)
	}
}

// rangeFloor returns the a-priori known output range for an aggregate:
// COUNT indicators live in [0,1]; other aggregates have no known range
// and rely on the observed sample range.
func rangeFloor(agg Agg) float64 {
	if agg == COUNT {
		return 1
	}
	return 0
}

// avg is Algorithm 1. It builds the Hoeffding–Serfling confidence interval
// for the population mean at the single observed sample size (the paper's
// relaxation of the EBGS any-time construction), then derives the
// harmonic-mean style answer whose relative error is (UB-LB)/(UB+LB).
// floor is an a-priori lower bound on the output range (see rangeFloor).
func avg(sample []float64, N int, delta, floor float64) Estimate {
	n := len(sample)
	s := stats.Summarize(sample)
	r := math.Max(s.Range(), floor)
	if r == 0 && n < N {
		// A constant partial sample with no a-priori range carries no
		// information about the deviation; the relative error cannot be
		// bounded (a full sample, by contrast, is exact).
		return Estimate{Value: s.Mean, ErrBound: 1, N: N, Sample: n}
	}
	I := stats.HoeffdingSerflingHalfWidth(r, n, N, delta)
	ub := math.Abs(s.Mean) + I
	lb := math.Max(0, math.Abs(s.Mean)-I)
	est := Estimate{N: N, Sample: n}
	if ub == 0 {
		// All-zero sample with zero range: the interval collapses to 0.
		est.Value = 0
		est.ErrBound = 0
		return est
	}
	if lb == 0 {
		est.Value = 0
		est.ErrBound = 1
		return est
	}
	est.Value = sgn(s.Mean) * 2 * ub * lb / (ub + lb)
	est.ErrBound = (ub - lb) / (ub + lb)
	return est
}

// quantile is Algorithm 2: the r-th quantile of the sample approximates
// the extremum, with a hypergeometric normal-approximation bound on the
// rank-relative error.
func quantile(agg Agg, sample []float64, N int, r, delta float64) Estimate {
	n := len(sample)
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	value := stats.QuantileSorted(sorted, r)

	// F^_k^: the sampled frequency of the approximate quantile value.
	count := 0
	for _, x := range sorted {
		if x == value {
			count++
		}
	}
	fHat := float64(count) / float64(n)

	var dev float64
	if agg == MAX {
		dev = stats.FrequencyDeviation(r, n, N, delta)
	} else {
		dev = stats.FrequencyDeviation(r+fHat, n, N, delta)
	}
	// err_b = ((dev + F^)/F^ + 1) * F^/r, simplified to (dev + 2F^)/r.
	errB := (dev + 2*fHat) / r
	return Estimate{Value: value, ErrBound: errB, N: N, Sample: n}
}

func sgn(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// TrueAnswer computes the exact aggregate over the full population of
// per-frame outputs. COUNT expects indicator values.
func TrueAnswer(agg Agg, population []float64, p Params) (float64, error) {
	if len(population) == 0 {
		return 0, fmt.Errorf("estimate: empty population")
	}
	switch agg {
	case AVG:
		return stats.Mean(population), nil
	case SUM, COUNT:
		return stats.Mean(population) * float64(len(population)), nil
	case MAX, MIN:
		// The paper approximates MAX by the 0.99 quantile even for the true
		// answer ("our system estimates 0.99 quantile as an approximation
		// of the maximum value"), so the reference uses the same r.
		return stats.Quantile(population, p.rFor(agg)), nil
	case VAR:
		return trueVariance(population), nil
	default:
		return 0, fmt.Errorf("estimate: unsupported aggregate %v", agg)
	}
}

// TrueError computes the paper's accuracy metric for an approximate
// answer: relative value error for AVG/SUM/COUNT, and relative *rank*
// error for MAX/MIN (|rank(Yapprox) - rank(Ytrue)| / rank(Ytrue), with
// ranks taken in the full population).
func TrueError(agg Agg, approx float64, population []float64, p Params) (float64, error) {
	truth, err := TrueAnswer(agg, population, p)
	if err != nil {
		return 0, err
	}
	if !agg.IsExtremum() {
		return stats.RelativeError(approx, truth), nil
	}
	sorted := append([]float64(nil), population...)
	sort.Float64s(sorted)
	rApprox := stats.RankSorted(sorted, approx)
	rTrue := stats.RankSorted(sorted, truth)
	if rTrue == 0 {
		if rApprox == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Abs(float64(rApprox-rTrue)) / float64(rTrue), nil
}
