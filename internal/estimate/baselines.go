package estimate

import (
	"fmt"
	"math"
	"sort"

	"smokescreen/internal/stats"
)

// Baseline identifies one of the competing estimators from the paper's
// Section 5.1. EBGS, Hoeffding, HoeffdingSerfling and CLT apply to
// AVG/SUM/COUNT; Stein applies to MAX/MIN.
type Baseline int

// The five baselines evaluated in Figure 4.
const (
	EBGS Baseline = iota
	Hoeffding
	HoeffdingSerfling
	CLT
	Stein
)

// String returns the baseline's display name as used in the paper's plots.
func (b Baseline) String() string {
	switch b {
	case EBGS:
		return "EBGS"
	case Hoeffding:
		return "Hoeffding"
	case HoeffdingSerfling:
		return "Hoeffding-Serfling"
	case CLT:
		return "CLT"
	case Stein:
		return "Stein"
	default:
		return fmt.Sprintf("Baseline(%d)", int(b))
	}
}

// MeanBaselines lists the baselines applicable to AVG/SUM/COUNT.
func MeanBaselines() []Baseline {
	return []Baseline{EBGS, Hoeffding, HoeffdingSerfling, CLT}
}

// ExtremumBaselines lists the baselines applicable to MAX/MIN.
func ExtremumBaselines() []Baseline { return []Baseline{Stein} }

// Supports reports whether the baseline handles the aggregate. No
// baseline implements VAR: it is this reproduction's extension beyond the
// paper's comparison set.
func (b Baseline) Supports(agg Agg) bool {
	if agg == VAR {
		return false
	}
	if agg.IsExtremum() {
		return b == Stein
	}
	return b != Stein
}

// BaselineEstimate runs the baseline estimator on the sample. The sample
// must be drawn uniformly without replacement (except for EBGS, Hoeffding
// and CLT, which *assume* with-replacement sampling — applying them to the
// same sample mirrors the paper's comparison). COUNT expects indicator
// values.
func BaselineEstimate(b Baseline, agg Agg, sample []float64, N int, p Params) (Estimate, error) {
	if err := p.validate(); err != nil {
		return Estimate{}, err
	}
	if len(sample) == 0 {
		return Estimate{}, fmt.Errorf("estimate: empty sample")
	}
	if !b.Supports(agg) {
		return Estimate{}, fmt.Errorf("estimate: baseline %v does not support %v", b, agg)
	}
	if agg.IsExtremum() {
		return stein(agg, sample, N, p), nil
	}
	// Range-based baselines share the a-priori COUNT indicator range so
	// the comparison with Smokescreen stays apples-to-apples.
	floor := rangeFloor(agg)
	var e Estimate
	switch b {
	case EBGS:
		e = ebgs(sample, N, p.Delta, floor)
	case Hoeffding:
		e = meanWithHalfWidth(sample, N, func(s stats.Summary, n int) float64 {
			return stats.HoeffdingHalfWidth(math.Max(s.Range(), floor), n, p.Delta)
		})
	case HoeffdingSerfling:
		e = meanWithHalfWidth(sample, N, func(s stats.Summary, n int) float64 {
			return stats.HoeffdingSerflingHalfWidth(math.Max(s.Range(), floor), n, N, p.Delta)
		})
	case CLT:
		e = meanWithHalfWidth(sample, N, func(s stats.Summary, n int) float64 {
			return stats.CLTHalfWidth(math.Sqrt(s.Var), n, p.Delta)
		})
	default:
		return Estimate{}, fmt.Errorf("estimate: unknown baseline %v", b)
	}
	if agg == SUM || agg == COUNT {
		e.Value *= float64(N)
	}
	return e, nil
}

// meanWithHalfWidth is the classic online-aggregation construction: the
// estimate is the sample mean, and the relative-error bound divides the
// absolute deviation bound by the lower bound of the query result (paper
// Section 5.1). When the interval crosses zero the bound is unbounded,
// reported as +Inf.
func meanWithHalfWidth(sample []float64, N int, halfWidth func(stats.Summary, int) float64) Estimate {
	n := len(sample)
	s := stats.Summarize(sample)
	I := halfWidth(s, n)
	est := Estimate{Value: s.Mean, N: N, Sample: n}
	lb := math.Abs(s.Mean) - I
	if lb <= 0 {
		if I == 0 && s.Mean == 0 {
			est.ErrBound = 0
			return est
		}
		est.ErrBound = math.Inf(1)
		return est
	}
	est.ErrBound = I / lb
	return est
}

// ebgs is the empirical Bernstein stopping baseline (Mnih et al. 2008),
// used as an estimator rather than a stopping rule, per the paper: the
// any-time union-bound schedule supplies the deviation bound, the estimate
// is the interval midpoint and the relative-error bound follows from the
// half width against the interval's lower bound.
func ebgs(sample []float64, N int, delta, floor float64) Estimate {
	n := len(sample)
	s := stats.Summarize(sample)
	eps := stats.EBGSHalfWidth(math.Sqrt(s.Var), math.Max(s.Range(), floor), n, delta)
	ub := math.Abs(s.Mean) + eps
	lb := math.Max(0, math.Abs(s.Mean)-eps)
	est := Estimate{N: N, Sample: n}
	if ub == 0 {
		return est
	}
	est.Value = sgn(s.Mean) * (ub + lb) / 2
	if lb == 0 {
		est.ErrBound = math.Inf(1)
		return est
	}
	est.ErrBound = (ub - lb) / (2 * lb)
	return est
}

// stein is the extremum baseline from Manku, Rajagopalan & Lindsay (1999):
// a with-replacement Hoeffding bound on the sampled cumulative frequency
// (their Stein's-lemma sample-size bound, inverted to a deviation at the
// observed n), with the same quantile estimate as Algorithm 2.
func stein(agg Agg, sample []float64, N int, p Params) Estimate {
	n := len(sample)
	r := p.rFor(agg)
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	value := stats.QuantileSorted(sorted, r)
	count := 0
	for _, x := range sorted {
		if x == value {
			count++
		}
	}
	fHat := float64(count) / float64(n)
	dev := math.Sqrt(math.Log(2/p.Delta) / (2 * float64(n)))
	errB := (dev + 2*fHat) / r
	return Estimate{Value: value, ErrBound: errB, N: N, Sample: n}
}
