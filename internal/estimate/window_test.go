package estimate

import (
	"math"
	"testing"

	"smokescreen/internal/stats"
)

// freshOver builds a brand-new estimator and feeds it exactly the
// window's surviving observations in frame order — the from-scratch
// recomputation the incremental window must match.
func freshOver(t *testing.T, w *Window, agg Agg, p Params, anyTime bool) *StreamingEstimator {
	t.Helper()
	fresh, err := NewStreamingEstimator(agg, w.Span(), p, anyTime)
	if err != nil {
		t.Fatal(err)
	}
	fresh.unboundedFrames = true
	frames, values := w.Snapshot()
	for i, frame := range frames {
		fresh.ObserveFrame(frame, values[i])
	}
	return fresh
}

// intOutput is a deterministic integer-valued detector-output stand-in
// (counts per frame), the common case where eviction is bit-exact.
func intOutput(frame int) float64 { return float64((frame*7919 + 3) % 13) }

func TestWindowSlidingMatchesFreshBitExact(t *testing.T) {
	// Property: after any amount of sliding, the window's incremental
	// state equals a fresh estimator over the same surviving frame set
	// — bit-identical for integer-valued observations, where float64
	// addition and subtraction are exact.
	const span = 64
	p := DefaultParams()
	w, err := NewWindow(COUNT, span, p, true)
	if err != nil {
		t.Fatal(err)
	}
	for frame := 0; frame < 1000; frame++ {
		w.ObserveFrame(frame, intOutput(frame))
		if frame%37 != 0 {
			continue
		}
		fresh := freshOver(t, w, COUNT, p, true)
		if w.est.sum != fresh.sum || w.est.min != fresh.min || w.est.max != fresh.max || w.est.count != fresh.count {
			t.Fatalf("frame %d: window state (sum=%v min=%v max=%v n=%d) != fresh (sum=%v min=%v max=%v n=%d)",
				frame, w.est.sum, w.est.min, w.est.max, w.est.count,
				fresh.sum, fresh.min, fresh.max, fresh.count)
		}
		got, want := w.Current(), fresh.Current()
		if got != want {
			t.Fatalf("frame %d: window estimate %+v != fresh %+v", frame, got, want)
		}
	}
	if w.Lo() != 1000-span {
		t.Fatalf("Lo = %d, want %d", w.Lo(), 1000-span)
	}
	if w.Count() != span {
		t.Fatalf("Count = %d, want %d", w.Count(), span)
	}
}

func TestWindowSlidingMatchesFreshFractional(t *testing.T) {
	// Fractional observations: eviction subtracts what was added, so the
	// running sum can drift from the fresh sum only in the last bits of
	// float cancellation. 1e-9 is orders of magnitude above that drift
	// and orders below any detector-output scale.
	const span = 48
	p := DefaultParams()
	w, err := NewWindow(AVG, span, p, false)
	if err != nil {
		t.Fatal(err)
	}
	for frame := 0; frame < 600; frame++ {
		x := math.Sin(float64(frame)*0.7)*2.5 + 3
		w.ObserveFrame(frame, x)
		if frame%31 != 0 {
			continue
		}
		got, want := w.Current(), freshOver(t, w, AVG, p, false).Current()
		if math.Abs(got.Value-want.Value) > 1e-9 || math.Abs(got.ErrBound-want.ErrBound) > 1e-9 ||
			got.Sample != want.Sample || got.N != want.N {
			t.Fatalf("frame %d: window estimate %+v != fresh %+v", frame, got, want)
		}
	}
}

func TestWindowSparseSampleMatchesFresh(t *testing.T) {
	// Degraded streams deliver only a sampled subset of each window's
	// frames; the bound must reflect k-of-W and eviction must work over
	// gaps. Observe a pseudo-random ~40% of positions.
	const span = 100
	p := DefaultParams()
	w, err := NewWindow(AVG, span, p, true)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.NewStream(241)
	kept := map[int]bool{}
	for _, i := range s.SampleWithoutReplacement(800, 320) {
		kept[i] = true
	}
	for frame := 0; frame < 800; frame++ {
		if kept[frame] {
			w.ObserveFrame(frame, intOutput(frame))
		} else {
			// Unobserved positions still advance the window bound: the
			// stream moved on even if the plan skipped the frame.
			w.Advance(maxInt(0, frame-span+1))
		}
		if frame%53 != 0 {
			continue
		}
		got, want := w.Current(), freshOver(t, w, AVG, p, true).Current()
		if got != want {
			t.Fatalf("frame %d: sparse window estimate %+v != fresh %+v", frame, got, want)
		}
		if got.N != span {
			t.Fatalf("frame %d: N = %d, want span %d", frame, got.N, span)
		}
		if got.Sample != w.Count() || got.Sample > span {
			t.Fatalf("frame %d: Sample = %d, Count = %d", frame, got.Sample, w.Count())
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestWindowTumblingResetIsEmptyState(t *testing.T) {
	// Advancing past every held frame (the tumbling reset) must return
	// the estimator to exactly its empty state: the next window's
	// estimates are bit-identical to a brand-new window's.
	const span = 32
	p := DefaultParams()
	w, err := NewWindow(AVG, span, p, false)
	if err != nil {
		t.Fatal(err)
	}
	for frame := 0; frame < span; frame++ {
		w.ObserveFrame(frame, math.Sqrt(float64(frame)+2))
	}
	if evicted := w.Advance(span); evicted != span {
		t.Fatalf("tumbling advance evicted %d, want %d", evicted, span)
	}
	if w.Count() != 0 {
		t.Fatalf("Count = %d after tumble", w.Count())
	}
	if got := w.Current(); got.ErrBound != 1 || got.Sample != 0 {
		t.Fatalf("post-tumble estimate %+v not empty", got)
	}
	if w.est.sum != 0 || w.est.min != 0 || w.est.max != 0 {
		t.Fatalf("post-tumble state not reset: sum=%v min=%v max=%v", w.est.sum, w.est.min, w.est.max)
	}

	clean, err := NewWindow(AVG, span, p, false)
	if err != nil {
		t.Fatal(err)
	}
	clean.Advance(span)
	for frame := span; frame < 2*span; frame++ {
		x := math.Sqrt(float64(frame) + 2)
		w.ObserveFrame(frame, x)
		clean.ObserveFrame(frame, x)
		if got, want := w.Current(), clean.Current(); got != want {
			t.Fatalf("frame %d: tumbled window %+v != clean window %+v", frame, got, want)
		}
	}
}

func TestWindowStaleAndDuplicateRejection(t *testing.T) {
	const span = 16
	p := DefaultParams()
	w, err := NewWindow(COUNT, span, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if !w.ObserveFrame(40, 2) {
		t.Fatal("fresh frame rejected")
	}
	if w.Lo() != 40-span+1 {
		t.Fatalf("Lo = %d after frame 40", w.Lo())
	}
	if w.ObserveFrame(40, 2) {
		t.Fatal("duplicate frame accepted")
	}
	if w.ObserveFrame(10, 1) {
		t.Fatal("stale frame accepted")
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d", w.Count())
	}
	// A late-but-in-window frame is accepted out of order.
	if !w.ObserveFrame(30, 1) {
		t.Fatal("in-window late frame rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Advance did not panic")
		}
	}()
	w.Advance(w.Lo() - 1)
}

func TestForgetFrameValidation(t *testing.T) {
	p := DefaultParams()
	e, _ := NewStreamingEstimator(AVG, 100, p, false)
	e.ObserveFrame(3, 1.5)
	e.ObserveFrame(7, 4.5)
	e.ObserveFrame(9, 0.5)
	if e.ForgetFrame(50) {
		t.Fatal("forgot a never-observed frame")
	}
	// Evicting the max must rescan the surviving range.
	if !e.ForgetFrame(7) {
		t.Fatal("observed frame not forgotten")
	}
	if e.min != 0.5 || e.max != 1.5 || e.count != 2 {
		t.Fatalf("post-forget state min=%v max=%v count=%d", e.min, e.max, e.count)
	}
	e.ForgetFrame(3)
	e.ForgetFrame(9)
	if e.count != 0 || e.sum != 0 || e.min != 0 || e.max != 0 {
		t.Fatalf("forget-to-empty state count=%d sum=%v min=%v max=%v", e.count, e.sum, e.min, e.max)
	}
	if got := e.Current(); got.ErrBound != 1 || got.Sample != 0 {
		t.Fatalf("empty estimate %+v", got)
	}

	untracked, _ := NewStreamingEstimator(AVG, 100, p, false)
	untracked.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("untracked ForgetFrame did not panic")
		}
	}()
	untracked.ForgetFrame(0)
}
