package estimate

import (
	"math"
	"testing"

	"smokescreen/internal/stats"
)

// biasedSample simulates a non-random intervention: outputs systematically
// undercounted by the given factor (what low resolution does to detector
// counts).
func biasedSample(population []float64, n int, factor float64, s *stats.Stream) []float64 {
	sample := sampleFrom(population, n, s)
	for i := range sample {
		sample[i] = math.Floor(sample[i] * factor)
	}
	return sample
}

func TestUncorrectedBoundFailsUnderBias(t *testing.T) {
	// Without repair, the Algorithm 1 bound computed from systematically
	// biased outputs undershoots the true error — the failure mode circled
	// in red in the paper's Figure 6.
	const popSize = 3000
	pop := carLikePopulation(popSize, 3, 41)
	p := DefaultParams()
	root := stats.NewStream(43)
	failures := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		sample := biasedSample(pop, 400, 0.6, root.Child(uint64(trial)))
		est, err := Smokescreen(AVG, sample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		trueErr, _ := TrueError(AVG, est.Value, pop, p)
		if trueErr > est.ErrBound {
			failures++
		}
	}
	if failures < trials/2 {
		t.Fatalf("uncorrected bound failed only %d/%d times; bias simulation too weak", failures, trials)
	}
}

func TestRepairedBoundHoldsUnderBias(t *testing.T) {
	// With a correction set the repaired bound must cover the true error
	// with probability >= 1-delta even under systematic bias.
	const (
		popSize = 3000
		m       = 300
		trials  = 300
	)
	pop := carLikePopulation(popSize, 3, 47)
	p := DefaultParams()
	root := stats.NewStream(53)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		degradedSample := biasedSample(pop, 400, 0.6, s)
		degraded, err := Smokescreen(AVG, degradedSample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		corrSample := sampleFrom(pop, m, s.Child(1))
		corr, err := NewCorrection(AVG, corrSample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := corr.Repair(AVG, degraded, p)
		if err != nil {
			t.Fatal(err)
		}
		trueErr, _ := TrueError(AVG, degraded.Value, pop, p)
		if trueErr <= bound {
			covered++
		}
	}
	rate := float64(covered) / trials
	slack := 3 * math.Sqrt(0.05*0.95/trials)
	if rate < 0.95-slack {
		t.Fatalf("repaired coverage = %.3f", rate)
	}
}

func TestRepairedQuantileBoundHoldsUnderBias(t *testing.T) {
	const (
		popSize = 3000
		m       = 400
		trials  = 300
	)
	pop := carLikePopulation(popSize, 4, 59)
	p := DefaultParams()
	root := stats.NewStream(61)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		degradedSample := biasedSample(pop, 400, 0.7, s)
		degraded, err := Smokescreen(MAX, degradedSample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		corrSample := sampleFrom(pop, m, s.Child(1))
		corr, err := NewCorrection(MAX, corrSample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := corr.Repair(MAX, degraded, p)
		if err != nil {
			t.Fatal(err)
		}
		trueErr, _ := TrueError(MAX, degraded.Value, pop, p)
		if trueErr <= bound {
			covered++
		}
	}
	rate := float64(covered) / trials
	slack := 3 * math.Sqrt(0.05*0.95/trials)
	if rate < 0.95-slack {
		t.Fatalf("repaired MAX coverage = %.3f", rate)
	}
}

func TestRepairedPicksTighterForRandomOnly(t *testing.T) {
	// For random-only interventions Repaired takes the tighter of the two
	// bounds; for non-random it must always use the repaired one.
	pop := carLikePopulation(2000, 2, 67)
	p := DefaultParams()
	s := stats.NewStream(71)
	// Large unbiased sample: its own bound is tight.
	degraded, err := Smokescreen(AVG, sampleFrom(pop, 800, s), len(pop), p)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny correction set: loose bound.
	corr, err := NewCorrection(AVG, sampleFrom(pop, 20, s.Child(1)), len(pop), p)
	if err != nil {
		t.Fatal(err)
	}
	randomOnly, err := corr.Repaired(AVG, degraded, p, true)
	if err != nil {
		t.Fatal(err)
	}
	if randomOnly.ErrBound != degraded.ErrBound {
		t.Fatalf("random-only did not keep the tighter own bound: %v vs %v", randomOnly.ErrBound, degraded.ErrBound)
	}
	nonRandom, err := corr.Repaired(AVG, degraded, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if nonRandom.ErrBound <= degraded.ErrBound {
		t.Fatal("non-random repair should not silently keep the unsafe bound")
	}
}

func TestCorrectionImprovesSmallRandomSamples(t *testing.T) {
	// Paper Section 5.2.2 (first row of Figure 6): when the correction set
	// is much larger than the degraded sample, the repaired bound is
	// tighter even for random interventions.
	pop := carLikePopulation(3000, 2.5, 73)
	p := DefaultParams()
	root := stats.NewStream(79)
	improved := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		// A moderate degraded sample: large enough that its interval does
		// not collapse to [0, UB] (a collapsed estimate reports Y=0 and
		// err=1, which no correction can improve), small enough that the
		// much larger correction set carries more information.
		degraded, err := Smokescreen(AVG, sampleFrom(pop, 40, s), len(pop), p)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := NewCorrection(AVG, sampleFrom(pop, 800, s.Child(1)), len(pop), p)
		if err != nil {
			t.Fatal(err)
		}
		repaired, err := corr.Repaired(AVG, degraded, p, true)
		if err != nil {
			t.Fatal(err)
		}
		if repaired.ErrBound < degraded.ErrBound {
			improved++
		}
	}
	if improved < trials/2 {
		t.Fatalf("large correction set improved only %d/%d small-sample bounds", improved, trials)
	}
}

func TestRepairDegenerateCorrection(t *testing.T) {
	p := DefaultParams()
	corr, err := NewCorrection(AVG, []float64{0, 0, 0}, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	// Zero correction answer with zero degraded answer: bound = err_v.
	b, err := corr.Repair(AVG, Estimate{Value: 0}, p)
	if err != nil {
		t.Fatal(err)
	}
	if b != corr.Estimate.ErrBound {
		t.Fatalf("bound = %v, want err_v", b)
	}
	// Zero correction answer with nonzero degraded answer: unbounded.
	b, err = corr.Repair(AVG, Estimate{Value: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(b, 1) {
		t.Fatalf("bound = %v, want +Inf", b)
	}
}

func TestCorrectionSize(t *testing.T) {
	corr, err := NewCorrection(AVG, []float64{1, 2, 3}, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if corr.Size() != 3 {
		t.Fatalf("Size = %d", corr.Size())
	}
}

func TestNewCorrectionRejectsEmpty(t *testing.T) {
	if _, err := NewCorrection(AVG, nil, 100, DefaultParams()); err == nil {
		t.Fatal("empty correction set accepted")
	}
}
