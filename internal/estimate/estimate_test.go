package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"smokescreen/internal/stats"
)

// carLikePopulation builds a skewed, autocorrelated count series similar
// to per-frame detector outputs.
func carLikePopulation(n int, mean float64, seed uint64) []float64 {
	s := stats.NewStream(seed)
	out := make([]float64, n)
	current := s.Poisson(mean)
	for i := range out {
		if s.Bernoulli(0.3) {
			current = s.Poisson(mean)
		}
		out[i] = float64(current)
	}
	return out
}

func sampleFrom(population []float64, n int, s *stats.Stream) []float64 {
	idx := s.SampleWithoutReplacement(len(population), n)
	out := make([]float64, n)
	for i, j := range idx {
		out[i] = population[j]
	}
	return out
}

func TestAggString(t *testing.T) {
	names := map[Agg]string{AVG: "AVG", SUM: "SUM", COUNT: "COUNT", MAX: "MAX", MIN: "MIN"}
	for agg, want := range names {
		if agg.String() != want {
			t.Fatalf("%v.String() = %q", agg, agg.String())
		}
		back, err := ParseAgg(want)
		if err != nil || back != agg {
			t.Fatalf("ParseAgg(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseAgg("MEDIAN"); err == nil {
		t.Fatal("ParseAgg accepted unsupported aggregate")
	}
}

func TestIsExtremum(t *testing.T) {
	if AVG.IsExtremum() || SUM.IsExtremum() || COUNT.IsExtremum() {
		t.Fatal("mean aggregates flagged as extremum")
	}
	if !MAX.IsExtremum() || !MIN.IsExtremum() {
		t.Fatal("MAX/MIN not flagged as extremum")
	}
}

func TestParamsValidation(t *testing.T) {
	pop := []float64{1, 2, 3}
	if _, err := Smokescreen(AVG, pop, 3, Params{Delta: 0, R: 0.99}); err == nil {
		t.Fatal("delta 0 accepted")
	}
	if _, err := Smokescreen(AVG, pop, 3, Params{Delta: 0.05, R: 1}); err == nil {
		t.Fatal("r = 1 accepted")
	}
	if _, err := Smokescreen(AVG, nil, 3, DefaultParams()); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Smokescreen(AVG, pop, 2, DefaultParams()); err == nil {
		t.Fatal("sample larger than population accepted")
	}
}

func TestAvgFullSampleIsExact(t *testing.T) {
	// Sampling the whole population drives rho_N to 0: the bound collapses
	// and the estimate equals the true mean.
	pop := carLikePopulation(500, 2, 1)
	est, err := Smokescreen(AVG, pop, len(pop), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	truth := stats.Mean(pop)
	if math.Abs(est.Value-truth) > 1e-9 {
		t.Fatalf("full-sample AVG = %v, want %v", est.Value, truth)
	}
	if est.ErrBound > 1e-9 {
		t.Fatalf("full-sample bound = %v, want ~0", est.ErrBound)
	}
}

func TestAvgDegenerateSamples(t *testing.T) {
	// A constant *partial* sample carries no range information: the bound
	// honestly degenerates to 1 (the unseen frames could be anything).
	est, err := Smokescreen(AVG, []float64{0, 0, 0}, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if est.ErrBound != 1 {
		t.Fatalf("constant partial sample: %+v", est)
	}
	// A constant FULL sample is exact.
	est, err = Smokescreen(AVG, []float64{2, 2, 2}, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 2 || est.ErrBound != 0 {
		t.Fatalf("constant full sample: %+v", est)
	}
	// Small noisy sample whose interval crosses zero: LB = 0 => err = 1.
	est, err = Smokescreen(AVG, []float64{0, 0, 0, 5}, 10000, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 || est.ErrBound != 1 {
		t.Fatalf("zero-crossing interval: %+v", est)
	}
}

func TestSumScalesAvg(t *testing.T) {
	pop := carLikePopulation(2000, 3, 2)
	s := stats.NewStream(3)
	sample := sampleFrom(pop, 200, s)
	a, _ := Smokescreen(AVG, sample, len(pop), DefaultParams())
	sum, _ := Smokescreen(SUM, sample, len(pop), DefaultParams())
	if math.Abs(sum.Value-a.Value*float64(len(pop))) > 1e-9 {
		t.Fatalf("SUM = %v, want AVG*N = %v", sum.Value, a.Value*float64(len(pop)))
	}
	if sum.ErrBound != a.ErrBound {
		t.Fatal("SUM bound must equal AVG bound")
	}
}

func TestCountOnIndicators(t *testing.T) {
	// COUNT over predicate indicators equals SUM of 0/1.
	pop := make([]float64, 1000)
	for i := range pop {
		if i%3 == 0 {
			pop[i] = 1
		}
	}
	est, err := Smokescreen(COUNT, pop, len(pop), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-334) > 1e-9 {
		t.Fatalf("COUNT = %v, want 334", est.Value)
	}
}

// coverageTest empirically verifies P(true error <= bound) >= 1-delta.
func coverageTest(t *testing.T, agg Agg, estimator func(sample []float64, N int) (Estimate, error)) {
	t.Helper()
	const (
		popSize = 3000
		n       = 80
		trials  = 400
		delta   = 0.05
	)
	pop := carLikePopulation(popSize, 1.8, 11)
	p := DefaultParams()
	root := stats.NewStream(13)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		sample := sampleFrom(pop, n, root.Child(uint64(trial)))
		est, err := estimator(sample, popSize)
		if err != nil {
			t.Fatal(err)
		}
		trueErr, err := TrueError(agg, est.Value, pop, p)
		if err != nil {
			t.Fatal(err)
		}
		if trueErr <= est.ErrBound {
			covered++
		}
	}
	rate := float64(covered) / trials
	slack := 3 * math.Sqrt(delta*(1-delta)/trials)
	if rate < 1-delta-slack {
		t.Fatalf("%v coverage = %.3f, want >= %.3f", agg, rate, 1-delta-slack)
	}
}

func TestSmokescreenCoverageAVG(t *testing.T) {
	coverageTest(t, AVG, func(sample []float64, N int) (Estimate, error) {
		return Smokescreen(AVG, sample, N, DefaultParams())
	})
}

func TestSmokescreenCoverageSUM(t *testing.T) {
	coverageTest(t, SUM, func(sample []float64, N int) (Estimate, error) {
		return Smokescreen(SUM, sample, N, DefaultParams())
	})
}

func TestSmokescreenCoverageMAX(t *testing.T) {
	coverageTest(t, MAX, func(sample []float64, N int) (Estimate, error) {
		return Smokescreen(MAX, sample, N, DefaultParams())
	})
}

func TestSmokescreenCoverageMIN(t *testing.T) {
	coverageTest(t, MIN, func(sample []float64, N int) (Estimate, error) {
		return Smokescreen(MIN, sample, N, DefaultParams())
	})
}

func TestBaselineCoverage(t *testing.T) {
	for _, b := range []Baseline{EBGS, Hoeffding, HoeffdingSerfling} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			coverageTest(t, AVG, func(sample []float64, N int) (Estimate, error) {
				return BaselineEstimate(b, AVG, sample, N, DefaultParams())
			})
		})
	}
	t.Run("Stein", func(t *testing.T) {
		coverageTest(t, MAX, func(sample []float64, N int) (Estimate, error) {
			return BaselineEstimate(Stein, MAX, sample, N, DefaultParams())
		})
	})
}

func TestSmokescreenTighterThanSafeBaselines(t *testing.T) {
	// On the same samples, the Smokescreen bound must be tighter (on
	// average) than every safe baseline — the paper's Figure 4 ordering.
	const (
		popSize = 3000
		trials  = 100
	)
	pop := carLikePopulation(popSize, 1.8, 17)
	p := DefaultParams()
	root := stats.NewStream(19)
	for _, n := range []int{30, 100, 300} {
		var ours, hs, hoef, ebgsSum float64
		for trial := 0; trial < trials; trial++ {
			sample := sampleFrom(pop, n, root.ChildN(uint64(n), uint64(trial)))
			e, _ := Smokescreen(AVG, sample, popSize, p)
			ours += e.ErrBound
			for _, b := range []Baseline{HoeffdingSerfling, Hoeffding, EBGS} {
				be, _ := BaselineEstimate(b, AVG, sample, popSize, p)
				v := be.ErrBound
				if math.IsInf(v, 1) {
					v = 10 // cap unbounded baselines for averaging
				}
				switch b {
				case HoeffdingSerfling:
					hs += v
				case Hoeffding:
					hoef += v
				case EBGS:
					ebgsSum += v
				}
			}
		}
		if !(ours < hs && hs < hoef) {
			t.Fatalf("n=%d: bound ordering violated: ours %v, HS %v, Hoeffding %v", n, ours, hs, hoef)
		}
		if ours >= ebgsSum {
			t.Fatalf("n=%d: ours %v not tighter than EBGS %v", n, ours, ebgsSum)
		}
	}
}

func TestCLTUndercoverage(t *testing.T) {
	// CLT must fail the 95% guarantee at small n — the behaviour Figure 5
	// documents. The dominant failure mechanism on video workloads is a
	// (near-)constant sample: COUNT indicators over dense traffic are
	// almost always 1, so a small sample often has zero variance, the CLT
	// interval collapses to a point, and the bound undershoots whenever
	// the true indicator fraction is below 1. Range-based bounds cannot
	// collapse this way.
	const (
		popSize = 15000
		n       = 45 // f = 0.003 on a UA-DETRAC-sized corpus
		trials  = 800
	)
	pop := make([]float64, popSize)
	s := stats.NewStream(23)
	for i := range pop {
		if !s.Bernoulli(0.03) { // 97% of frames contain a car
			pop[i] = 1
		}
	}
	p := DefaultParams()
	root := stats.NewStream(29)
	cltCovered, oursCovered := 0, 0
	for trial := 0; trial < trials; trial++ {
		sample := sampleFrom(pop, n, root.Child(uint64(trial)))
		clt, err := BaselineEstimate(CLT, COUNT, sample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := Smokescreen(COUNT, sample, popSize, p)
		if err != nil {
			t.Fatal(err)
		}
		if e, _ := TrueError(COUNT, clt.Value, pop, p); e <= clt.ErrBound {
			cltCovered++
		}
		if e, _ := TrueError(COUNT, ours.Value, pop, p); e <= ours.ErrBound {
			oursCovered++
		}
	}
	cltRate := float64(cltCovered) / trials
	oursRate := float64(oursCovered) / trials
	if cltRate >= 0.95 {
		t.Fatalf("CLT coverage %.3f did not undershoot at n=%d", cltRate, n)
	}
	if oursRate < 0.95-3*math.Sqrt(0.05*0.95/trials) {
		t.Fatalf("Smokescreen coverage %.3f fell with CLT's", oursRate)
	}
}

func TestSteinLooserThanSmokescreenAtSmallFractions(t *testing.T) {
	const popSize = 5000
	pop := carLikePopulation(popSize, 4, 31)
	p := DefaultParams()
	root := stats.NewStream(37)
	for _, n := range []int{50, 150} {
		var ours, steins float64
		for trial := 0; trial < 50; trial++ {
			sample := sampleFrom(pop, n, root.ChildN(uint64(n), uint64(trial)))
			a, _ := Smokescreen(MAX, sample, popSize, p)
			b, _ := BaselineEstimate(Stein, MAX, sample, popSize, p)
			if a.Value != b.Value {
				t.Fatal("MAX estimates should coincide (same quantile estimator)")
			}
			ours += a.ErrBound
			steins += b.ErrBound
		}
		if ours >= steins {
			t.Fatalf("n=%d: our MAX bound %v not tighter than Stein %v", n, ours, steins)
		}
	}
}

func TestQuantileValueDefinition(t *testing.T) {
	sample := []float64{1, 2, 2, 3, 9}
	est, err := Smokescreen(MAX, sample, 1000, Params{Delta: 0.05, R: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 9 {
		t.Fatalf("0.99-quantile of small sample = %v, want 9", est.Value)
	}
	est, err = Smokescreen(MIN, sample, 1000, Params{Delta: 0.05, R: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 1 {
		t.Fatalf("0.01-quantile = %v, want 1", est.Value)
	}
}

func TestTrueAnswer(t *testing.T) {
	pop := []float64{1, 2, 3, 4}
	p := DefaultParams()
	if v, _ := TrueAnswer(AVG, pop, p); v != 2.5 {
		t.Fatalf("AVG = %v", v)
	}
	if v, _ := TrueAnswer(SUM, pop, p); v != 10 {
		t.Fatalf("SUM = %v", v)
	}
	if v, _ := TrueAnswer(MAX, pop, p); v != 4 {
		t.Fatalf("MAX = %v", v)
	}
	if v, _ := TrueAnswer(MIN, pop, p); v != 1 {
		t.Fatalf("MIN = %v", v)
	}
	if _, err := TrueAnswer(AVG, nil, p); err == nil {
		t.Fatal("empty population accepted")
	}
}

func TestTrueErrorRankMetric(t *testing.T) {
	pop := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	p := Params{Delta: 0.05, R: 0.99}
	// True MAX (0.99 quantile) = 10, rank 10. Approx 8 has rank 8.
	got, err := TrueError(MAX, 8, pop, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("rank error = %v, want 0.2", got)
	}
	// Value metric for AVG.
	got, _ = TrueError(AVG, 6.05, pop, p)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("value error = %v, want 0.1", got)
	}
}

func TestBaselineSupportMatrix(t *testing.T) {
	for _, b := range MeanBaselines() {
		if !b.Supports(AVG) || b.Supports(MAX) {
			t.Fatalf("%v support matrix wrong", b)
		}
	}
	if !Stein.Supports(MAX) || Stein.Supports(AVG) {
		t.Fatal("Stein support matrix wrong")
	}
	if _, err := BaselineEstimate(Stein, AVG, []float64{1}, 10, DefaultParams()); err == nil {
		t.Fatal("Stein on AVG accepted")
	}
	if _, err := BaselineEstimate(CLT, MAX, []float64{1}, 10, DefaultParams()); err == nil {
		t.Fatal("CLT on MAX accepted")
	}
}

func TestSumEqualsAvgTimesNProperty(t *testing.T) {
	property := func(raw []uint8, nRaw uint16) bool {
		if len(raw) < 2 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v % 16)
		}
		N := len(sample) + int(nRaw)%5000
		p := DefaultParams()
		a, errA := Smokescreen(AVG, sample, N, p)
		s, errS := Smokescreen(SUM, sample, N, p)
		if errA != nil || errS != nil {
			return false
		}
		return math.Abs(s.Value-a.Value*float64(N)) < 1e-9*(1+math.Abs(s.Value)) &&
			s.ErrBound == a.ErrBound
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSmokescreenBoundsAlwaysNonNegativeProperty(t *testing.T) {
	property := func(raw []uint8, aggRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v % 32)
		}
		agg := Agg(aggRaw % 6)
		est, err := Smokescreen(agg, sample, len(sample)+100, DefaultParams())
		if err != nil {
			return false
		}
		return est.ErrBound >= 0 && !math.IsNaN(est.ErrBound) && !math.IsNaN(est.Value)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
