package estimate

import (
	"fmt"
	"math"

	"smokescreen/internal/stats"
)

// Streaming estimation: the online-aggregation usage pattern (Hellerstein
// et al., the paper's [30]) on top of Smokescreen's bounds. As degraded
// frames arrive from a camera, the estimator maintains a running answer
// and error bound.
//
// Two guarantee modes exist, mirroring the paper's Section 3.2.1
// discussion:
//
//   - Pointwise: the single-n construction of Algorithm 1. Each reported
//     bound holds at 1-delta *for that n* — the right choice when the
//     stopping point is fixed in advance (the paper's setting, where the
//     administrator chose f before streaming).
//   - AnyTime: the EBGS-style risk schedule d_n = delta*(p-1)/p / n^p
//     applied to the Hoeffding-Serfling inequality, so ALL reported bounds
//     hold simultaneously at 1-delta — the right choice when the operator
//     watches the stream and stops adaptively ("stop when the bound is
//     small enough"), where reusing the pointwise bound would be invalid.
//
// Like every sample-range-based bound (including the paper's Algorithm 1),
// validity is conditional on the observed range approximating the
// population range; at very small prefixes (roughly the first ten
// observations) the reported bound can undershoot.
type StreamingEstimator struct {
	agg     Agg
	n       int // population size N
	params  Params
	anyTime bool

	count int
	sum   float64
	min   float64
	max   float64

	// seen records frame-keyed observations (ObserveFrame), enabling
	// duplicate suppression, cross-shard Merge, and windowed eviction
	// (ForgetFrame). nil until the first ObserveFrame; plain Observe
	// leaves it nil (untracked observations cannot be merged,
	// deduplicated, or forgotten).
	seen map[int]float64

	// unboundedFrames relaxes ObserveFrame's [0, N) index check: set by
	// the Window wrapper, whose population is a window span but whose
	// frame keys are absolute positions of an unbounded stream. The
	// sample-size invariant (count <= n) still holds — Window evicts
	// before it observes.
	unboundedFrames bool
}

// NewStreamingEstimator builds a streaming estimator over a population of
// N frames. Only mean-type aggregates stream (AVG, SUM, COUNT); extremum
// rank bounds need the full sample.
func NewStreamingEstimator(agg Agg, N int, p Params, anyTime bool) (*StreamingEstimator, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if agg.IsExtremum() || agg == VAR {
		return nil, fmt.Errorf("estimate: %v does not support streaming estimation", agg)
	}
	if N <= 0 {
		return nil, fmt.Errorf("estimate: population size %d invalid", N)
	}
	return &StreamingEstimator{agg: agg, n: N, params: p, anyTime: anyTime}, nil
}

// Observe folds in the next sampled output (already predicate-transformed
// for COUNT) and returns the running estimate. Observing more values than
// the population holds is a programming error and panics.
func (e *StreamingEstimator) Observe(x float64) Estimate {
	if e.count >= e.n {
		panic("estimate: observed more values than the population size")
	}
	if e.count == 0 {
		e.min, e.max = x, x
	} else {
		if x < e.min {
			e.min = x
		}
		if x > e.max {
			e.max = x
		}
	}
	e.count++
	e.sum += x
	return e.Current()
}

// Count returns the number of observations folded in so far.
func (e *StreamingEstimator) Count() int { return e.count }

// ObserveFrame folds in the sampled output of one identified frame.
// Unlike Observe it is idempotent per frame: cameras and relays redeliver
// (at-least-once transports, overlapping shard assignments), and a
// duplicate frame must not be double-counted — the running estimate is
// returned unchanged. The estimate itself is order-independent, so
// out-of-order delivery is harmless. Frames outside [0, N) panic, like
// over-observing does.
func (e *StreamingEstimator) ObserveFrame(frame int, x float64) Estimate {
	if frame < 0 || (frame >= e.n && !e.unboundedFrames) {
		panic("estimate: frame index outside the population")
	}
	if e.seen == nil {
		e.seen = make(map[int]float64)
	}
	if _, dup := e.seen[frame]; dup {
		return e.Current()
	}
	e.seen[frame] = x
	return e.Observe(x)
}

// Merge folds other's frame-keyed observations into e, skipping frames e
// has already seen — the shard-combination path for estimators fed from
// disjoint (or overlapping) partitions of one stream. Both estimators
// must be configured identically and built exclusively with ObserveFrame;
// untracked Observe calls on either side make deduplication unsound and
// are rejected. other is not modified.
func (e *StreamingEstimator) Merge(other *StreamingEstimator) error {
	if other == nil {
		return fmt.Errorf("estimate: merging a nil estimator")
	}
	if e.agg != other.agg || e.n != other.n || e.params != other.params || e.anyTime != other.anyTime {
		return fmt.Errorf("estimate: merging incompatible estimators")
	}
	if e.count != len(e.seen) || other.count != len(other.seen) {
		return fmt.Errorf("estimate: merge requires frame-tracked observations (use ObserveFrame)")
	}
	for frame, x := range other.seen {
		e.ObserveFrame(frame, x)
	}
	return nil
}

// ForgetFrame evicts one frame's observation — the windowed-ingest
// primitive: as a window slides, departed frames' contributions are
// subtracted instead of rebuilding the estimator from scratch. It
// reports whether the frame had been observed. Like Merge, it requires
// a frame-tracked estimator (built exclusively with ObserveFrame);
// untracked Observe calls make eviction unsound and panic.
//
// The running sum is adjusted exactly when observations are
// integer-valued (detector outputs are counts, so the common case is
// bit-exact); the observed min/max are rescanned only when the evicted
// value sat on a boundary. Forgetting the last observation resets the
// estimator to its empty state.
func (e *StreamingEstimator) ForgetFrame(frame int) bool {
	if e.count != len(e.seen) {
		panic("estimate: ForgetFrame requires frame-tracked observations (use ObserveFrame)")
	}
	x, ok := e.seen[frame]
	if !ok {
		return false
	}
	delete(e.seen, frame)
	e.count--
	if e.count == 0 {
		e.sum, e.min, e.max = 0, 0, 0
		return true
	}
	e.sum -= x
	if x == e.min || x == e.max {
		first := true
		for _, y := range e.seen {
			// Range rescan: min/max are order-independent, so map
			// iteration order cannot leak into the estimate.
			if first {
				e.min, e.max = y, y
				first = false
				continue
			}
			if y < e.min {
				e.min = y
			}
			if y > e.max {
				e.max = y
			}
		}
	}
	return true
}

// Current returns the running estimate without observing anything new.
func (e *StreamingEstimator) Current() Estimate {
	est := Estimate{N: e.n, Sample: e.count}
	if e.count == 0 {
		est.ErrBound = 1
		return est
	}
	mean := e.sum / float64(e.count)
	r := math.Max(e.max-e.min, rangeFloor(e.agg))
	if r == 0 && e.count < e.n {
		// Constant prefix with no a-priori range: uninformative (see avg).
		est.Value = mean
		if e.agg == SUM || e.agg == COUNT {
			est.Value *= float64(e.n)
		}
		est.ErrBound = 1
		return est
	}
	delta := e.params.Delta
	if e.anyTime {
		// Risk schedule over all prefix lengths (see EBGSHalfWidth).
		const p = 1.1
		c := e.params.Delta * (p - 1) / p
		delta = c / math.Pow(float64(e.count), p)
		if delta >= 1 {
			delta = 0.999999
		}
	}
	I := stats.HoeffdingSerflingHalfWidth(r, e.count, e.n, delta)
	ub := math.Abs(mean) + I
	lb := math.Max(0, math.Abs(mean)-I)
	switch {
	case ub == 0:
		est.Value, est.ErrBound = 0, 0
	case lb == 0:
		est.Value, est.ErrBound = 0, 1
	default:
		est.Value = sgn(mean) * 2 * ub * lb / (ub + lb)
		est.ErrBound = (ub - lb) / (ub + lb)
	}
	if e.agg == SUM || e.agg == COUNT {
		est.Value *= float64(e.n)
	}
	return est
}
