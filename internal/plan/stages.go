package plan

import (
	"sync/atomic"
	"time"

	"smokescreen/internal/detect"
)

// Cumulative per-stage accounting for the plan/execute pipeline. The
// executor (internal/profile) attributes wall time to the three stages —
// planning (enumeration, permutations, presence scans), detection
// (materialising deduplicated units in the column store), and estimation
// (computing bounds from stored columns) — and the daemon's /metrics and
// the benchmarks read the totals. Everything is atomic: stages run inside
// worker pools.
var (
	planNS     atomic.Int64
	detectNS   atomic.Int64
	estimateNS atomic.Int64

	tasksPlanned     atomic.Int64
	unitsPlanned     atomic.Int64
	dedupSavedFrames atomic.Int64
)

// stageTimer starts a wall-clock span and returns the stop function that
// credits the elapsed nanoseconds to c. These two reads are the
// generation pipeline's only sanctioned wall-clock access: stage
// accounting feeds /metrics and the BENCH_*.json artifacts, never
// profile bytes, which is what makes the determinism suppressions below
// sound. Everything else in the generation paths is flagged by the
// smokevet determinism analyzer.
func stageTimer(c *atomic.Int64) func() {
	t0 := time.Now() //smokevet:ignore determinism: stage accounting only; durations feed /metrics and BENCH artifacts, never profile bytes
	return func() {
		c.Add(int64(time.Since(t0))) //smokevet:ignore determinism: duration accounting only, never profile bytes
	}
}

// PlanTimer starts a span attributed to the plan stage; call the returned
// stop function when the span ends (or defer it).
func PlanTimer() func() { return stageTimer(&planNS) }

// DetectTimer starts a span attributed to the detect stage.
func DetectTimer() func() { return stageTimer(&detectNS) }

// EstimateTimer starts a span attributed to the estimate stage.
func EstimateTimer() func() { return stageTimer(&estimateNS) }

// StageStats is a snapshot of the pipeline's cumulative stage accounting.
type StageStats struct {
	// PlanNS/DetectNS/EstimateNS are cumulative wall nanoseconds spent in
	// each stage. Stages inside concurrent cells overlap, so these measure
	// attributed work, not elapsed time.
	PlanNS     int64
	DetectNS   int64
	EstimateNS int64
	// Tasks counts planned profile-point evaluations; Units counts
	// deduplicated physical work units; DedupSavedFrames counts frame
	// evaluations the plan-level dedup avoided (requested minus unique).
	Tasks            int64
	Units            int64
	DedupSavedFrames int64
	// DeltaTilesReused / DeltaCandidatesReused mirror the temporal
	// delta-detection effectiveness counters (detect.DeltaCounters) at
	// snapshot time, so one Stages read gives the bench harness and
	// /metrics the full work-avoidance picture: plan-level dedup plus
	// frame-level temporal reuse.
	DeltaTilesReused      int64
	DeltaCandidatesReused int64
}

// Stages snapshots the cumulative stage counters.
func Stages() StageStats {
	dc := detect.DeltaCounters()
	return StageStats{
		PlanNS:                planNS.Load(),
		DetectNS:              detectNS.Load(),
		EstimateNS:            estimateNS.Load(),
		Tasks:                 tasksPlanned.Load(),
		Units:                 unitsPlanned.Load(),
		DedupSavedFrames:      dedupSavedFrames.Load(),
		DeltaTilesReused:      dc.TilesReused,
		DeltaCandidatesReused: dc.CandidatesReused,
	}
}

// ResetStages zeroes the stage counters (benchmarks isolate runs with it).
func ResetStages() {
	planNS.Store(0)
	detectNS.Store(0)
	estimateNS.Store(0)
	tasksPlanned.Store(0)
	unitsPlanned.Store(0)
	dedupSavedFrames.Store(0)
}
