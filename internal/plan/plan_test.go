package plan

import (
	"context"
	"testing"
	"testing/quick"

	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func TestCandidateFractions(t *testing.T) {
	fs := CandidateFractions(0.01, 0.1)
	if len(fs) != 10 {
		t.Fatalf("got %d fractions: %v", len(fs), fs)
	}
	if fs[0] != 0.01 {
		t.Fatalf("first fraction %v", fs[0])
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatal("fractions not ascending")
		}
	}
	if CandidateFractions(0, 1) != nil || CandidateFractions(0.01, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestCandidateFractionsProperty(t *testing.T) {
	property := func(stepRaw, maxRaw uint8) bool {
		step := (float64(stepRaw%50) + 1) / 1000
		max := (float64(maxRaw%100) + 1) / 100
		fs := CandidateFractions(step, max)
		for _, f := range fs {
			if f <= 0 || f > max+1e-9 {
				return false
			}
		}
		return len(fs) == int(max/step+1e-9)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassCombos(t *testing.T) {
	combos := ClassCombos()
	if len(combos) != 4 {
		t.Fatalf("got %d combos", len(combos))
	}
	if combos[0] != nil {
		t.Fatal("first combo should be the loosest (no removal)")
	}
}

func TestCandidateSettings(t *testing.T) {
	m := detect.YOLOv4Sim()
	fractions := []float64{0.05, 0.1}
	settings := CandidateSettings(m, fractions)
	want := 4 * 10 * 2
	if len(settings) != want {
		t.Fatalf("got %d settings, want %d", len(settings), want)
	}
	for _, s := range settings {
		if err := s.Validate(m); err != nil {
			t.Fatalf("generated invalid setting %v: %v", s, err)
		}
	}
}

// TestBuildSweepMatchesApply verifies the planner reproduces the exact
// frame sets degrade.Apply draws: a sweep task's sample is the prefix of
// the same stream permutation, so plan-first execution is bit-identical to
// the legacy apply-per-point path.
func TestBuildSweepMatchesApply(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	fractions := []float64{0.01, 0.02, 0.05}

	sw, err := BuildSweep(context.Background(), v, m, SweepSpec{Fractions: fractions}, stats.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Tasks) != len(fractions) {
		t.Fatalf("planned %d tasks, want %d", len(sw.Tasks), len(fractions))
	}
	if !sw.RandomOnly {
		t.Fatal("pure sampling sweep should be random-only")
	}

	// Nesting: every task's sample is a prefix of the next task's.
	for i := 1; i < len(sw.Tasks); i++ {
		prev, cur := sw.Tasks[i-1].Plan.Sampled, sw.Tasks[i].Plan.Sampled
		if len(prev) > len(cur) {
			t.Fatalf("task %d sample shrank: %d -> %d", i, len(prev), len(cur))
		}
		for j := range prev {
			if prev[j] != cur[j] {
				t.Fatalf("task %d not nested at position %d", i, j)
			}
		}
	}
	last := sw.Frames()
	if len(last) != len(sw.Tasks[len(sw.Tasks)-1].Plan.Sampled) {
		t.Fatal("Frames() is not the largest task's sample")
	}
}

func TestBuildSweepInfeasibleFractions(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	// The small corpus is dense daytime traffic: restricting "person"
	// leaves a small admissible pool, so large fractions are infeasible.
	sw, err := BuildSweep(context.Background(), v, m, SweepSpec{
		Fractions: []float64{0.01, 0.9},
		Base:      degrade.Setting{Restricted: []scene.Class{scene.Person}},
	}, stats.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Tasks) >= 2 {
		t.Fatalf("infeasible fraction planned: %d tasks over pool %d", len(sw.Tasks), len(sw.Admissible))
	}
	for _, task := range sw.Tasks {
		if len(task.Plan.Sampled) > len(sw.Admissible) {
			t.Fatal("task samples beyond the admissible pool")
		}
	}
}

func TestBuildHypercubeCellStreams(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	fractions := []float64{0.01, 0.02}
	stream := stats.NewStream(11)

	h, err := BuildHypercube(context.Background(), v, m, fractions, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Cells) != len(h.Combos)*len(h.Resolutions) {
		t.Fatalf("got %d cells, want %d", len(h.Cells), len(h.Combos)*len(h.Resolutions))
	}
	// Each cell's sample must match a sweep planned directly from the same
	// grid-coordinate child stream — the legacy per-cell derivation.
	for ci := range h.Combos {
		for ri := range h.Resolutions {
			cell := h.CellAt(ci, ri)
			want, err := BuildSweep(context.Background(), v, m, SweepSpec{
				Fractions: fractions,
				Base: degrade.Setting{
					Resolution: h.Resolutions[ri],
					Restricted: h.Combos[ci],
				},
			}, stream.ChildN(uint64(ci), uint64(ri)))
			if err != nil {
				t.Fatal(err)
			}
			if cell.Sweep == nil {
				if len(want.Tasks) != 0 {
					t.Fatalf("cell (%d,%d) dropped a feasible sweep", ci, ri)
				}
				continue
			}
			if len(cell.Sweep.Tasks) != len(want.Tasks) {
				t.Fatalf("cell (%d,%d): %d tasks, want %d", ci, ri, len(cell.Sweep.Tasks), len(want.Tasks))
			}
			for i := range want.Tasks {
				got, exp := cell.Sweep.Tasks[i].Plan.Sampled, want.Tasks[i].Plan.Sampled
				if len(got) != len(exp) {
					t.Fatalf("cell (%d,%d) task %d: sample size %d, want %d", ci, ri, i, len(got), len(exp))
				}
				for j := range exp {
					if got[j] != exp[j] {
						t.Fatalf("cell (%d,%d) task %d diverges at %d", ci, ri, i, j)
					}
				}
			}
		}
	}
}

// TestHypercubeUnitsDedup verifies the plan-level dedup: class combos that
// share a resolution contribute to one work unit, and the unit's frame set
// is the sorted union — strictly smaller than the sum of the cells' frame
// sets whenever cells overlap.
func TestHypercubeUnitsDedup(t *testing.T) {
	ResetStages()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	h, err := BuildHypercube(context.Background(), v, m, []float64{0.01, 0.03}, stats.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	units := h.Units()
	if len(units) != len(h.Resolutions) {
		t.Fatalf("got %d units, want one per resolution (%d)", len(units), len(h.Resolutions))
	}
	var requested, unique int
	seen := map[int]bool{}
	for _, u := range units {
		if seen[u.Resolution] {
			t.Fatalf("duplicate unit for resolution %d", u.Resolution)
		}
		seen[u.Resolution] = true
		for i := 1; i < len(u.Frames); i++ {
			if u.Frames[i] <= u.Frames[i-1] {
				t.Fatalf("unit frames not sorted-unique at resolution %d", u.Resolution)
			}
		}
		unique += len(u.Frames)
	}
	for i := range h.Cells {
		if sw := h.Cells[i].Sweep; sw != nil {
			requested += len(sw.Frames())
		}
	}
	if unique >= requested {
		t.Fatalf("dedup saved nothing: %d unique of %d requested", unique, requested)
	}
	st := Stages()
	if st.DedupSavedFrames != int64(requested-unique) {
		t.Fatalf("stage counter recorded %d saved frames, want %d", st.DedupSavedFrames, requested-unique)
	}
	if st.Units != int64(len(units)) || st.Tasks == 0 {
		t.Fatalf("stage counters inconsistent: %+v", st)
	}
}

func TestBuildSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)
	_, err := BuildSweep(ctx, v, m, SweepSpec{
		Fractions: []float64{0.01},
		Base:      degrade.Setting{Restricted: []scene.Class{scene.Face}},
	}, stats.NewStream(1))
	if err == nil {
		t.Fatal("cancelled planning should fail (presence protocol runs under ctx)")
	}
}
