package plan

import (
	"context"
	"strings"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func TestDefaultLadderValidates(t *testing.T) {
	m := detect.YOLOv4Sim()
	l := DefaultLadder(m)
	if err := l.Validate(m); err != nil {
		t.Fatalf("built-in ladder invalid: %v", err)
	}
	if len(l.Tiers) != 4 {
		t.Fatalf("default ladder has %d tiers", len(l.Tiers))
	}
	if byName, err := LadderByName("", m); err != nil || byName.Name != "default" {
		t.Fatalf("LadderByName(\"\") = %v, %v", byName.Name, err)
	}
	if _, err := LadderByName("nope", m); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown ladder error = %v", err)
	}
}

// TestLadderMonotonicity: loosening any single axis on the lower rung is
// rejected, and the error names the axis and the offending tiers.
func TestLadderMonotonicity(t *testing.T) {
	m := detect.YOLOv4Sim()
	strict := degrade.Setting{
		SampleFraction: 0.1, Resolution: 320,
		Restricted: []scene.Class{scene.Person, scene.Face},
		NoiseSigma: 0.1, MotionBlur: 9, Quantize: 16, Occlusion: 0.2,
	}
	loosen := map[string]func(*degrade.Setting){
		"fraction":   func(s *degrade.Setting) { s.SampleFraction = 0.5 },
		"resolution": func(s *degrade.Setting) { s.Resolution = m.NativeInput },
		"removal":    func(s *degrade.Setting) { s.Restricted = []scene.Class{scene.Person} },
		"noise":      func(s *degrade.Setting) { s.NoiseSigma = 0.01 },
		"blur":       func(s *degrade.Setting) { s.MotionBlur = 3 },
		"quantize":   func(s *degrade.Setting) { s.Quantize = 64 },
		"occlusion":  func(s *degrade.Setting) { s.Occlusion = 0.05 },
	}
	for axis, mutate := range loosen {
		loosened := strict
		loosened.Restricted = append([]scene.Class(nil), strict.Restricted...)
		mutate(&loosened)
		l := Ladder{Name: "x", Tiers: []Tier{
			{Name: "strict", Setting: strict},
			{Name: "looser", Setting: loosened},
		}}
		err := l.Validate(m)
		if err == nil {
			t.Errorf("axis %s: loosened bottom rung accepted", axis)
			continue
		}
		for _, want := range []string{axis, "looser", "strict"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("axis %s: error %q does not name %q", axis, err, want)
			}
		}
	}
	// The strict setting stacked on itself is monotone.
	same := Ladder{Name: "x", Tiers: []Tier{
		{Name: "a", Setting: strict}, {Name: "b", Setting: strict},
	}}
	if err := same.Validate(m); err != nil {
		t.Errorf("equal consecutive tiers rejected: %v", err)
	}
}

func TestLadderStructuralErrors(t *testing.T) {
	m := detect.YOLOv4Sim()
	cases := map[string]Ladder{
		"empty":   {Name: "x"},
		"unnamed": {Name: "x", Tiers: []Tier{{Setting: degrade.Setting{SampleFraction: 0.1}}}},
		"duplicate": {Name: "x", Tiers: []Tier{
			{Name: "a", Setting: degrade.Setting{SampleFraction: 0.1}},
			{Name: "a", Setting: degrade.Setting{SampleFraction: 0.1}},
		}},
		"invalid tier": {Name: "x", Tiers: []Tier{
			{Name: "a", Setting: degrade.Setting{SampleFraction: 0.1, MotionBlur: scene.MaxBlurLen + 2}},
		}},
	}
	for name, l := range cases {
		if l.Validate(m) == nil {
			t.Errorf("%s: invalid ladder accepted", name)
		}
	}
}

// TestBuildLadderDeterministicPlans: tier randomness is keyed by tier
// index, so rebuilding yields identical frame samples, and units dedup
// tiers sharing a (view, resolution) pair.
func TestBuildLadderDeterministic(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	l := DefaultLadder(m)
	build := func() *LadderPlan {
		lp, err := BuildLadder(context.Background(), v, m, l, stats.NewStream(11))
		if err != nil {
			t.Fatal(err)
		}
		return lp
	}
	a, b := build(), build()
	if len(a.Tasks) != len(l.Tiers) {
		t.Fatalf("%d tasks for %d tiers", len(a.Tasks), len(l.Tiers))
	}
	for i := range a.Tasks {
		pa, pb := a.Tasks[i].Plan, b.Tasks[i].Plan
		if (pa == nil) != (pb == nil) {
			t.Fatalf("tier %d feasibility differs across builds", i)
		}
		if pa == nil {
			continue
		}
		if len(pa.Sampled) != len(pb.Sampled) {
			t.Fatalf("tier %d sample size differs", i)
		}
		for j := range pa.Sampled {
			if pa.Sampled[j] != pb.Sampled[j] {
				t.Fatalf("tier %d frame sample not deterministic", i)
			}
		}
	}
}

func TestLadderUnitsDedup(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	// Two tiers share (clean view, native resolution); the third has its
	// own blurred view. Expect exactly two units, and the shared unit's
	// frames to be the union of both tiers' samples.
	l := Ladder{Name: "t", Tiers: []Tier{
		{Name: "a", Setting: degrade.Setting{SampleFraction: 0.3}},
		{Name: "b", Setting: degrade.Setting{SampleFraction: 0.1}},
		{Name: "c", Setting: degrade.Setting{SampleFraction: 0.05, MotionBlur: 7}},
	}}
	lp, err := BuildLadder(context.Background(), v, m, l, stats.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	units := lp.Units()
	if len(units) != 2 {
		t.Fatalf("%d units, want 2 (shared clean view + blurred view)", len(units))
	}
	want := map[int]struct{}{}
	for _, task := range lp.Tasks[:2] {
		for _, f := range task.Plan.Sampled {
			want[f] = struct{}{}
		}
	}
	if len(units[0].Frames) != len(want) {
		t.Fatalf("shared unit has %d frames, want union of %d", len(units[0].Frames), len(want))
	}
	for _, f := range units[0].Frames {
		if _, ok := want[f]; !ok {
			t.Fatalf("unit frame %d not in any tier sample", f)
		}
	}
	if units[1].Setting.MotionBlur != 7 {
		t.Fatalf("blurred unit setting = %+v", units[1].Setting)
	}
	if units[1].Setting.SampleFraction != 0 || units[1].Setting.Resolution != 0 {
		t.Fatal("unit setting leaked frame-choice axes")
	}
}
