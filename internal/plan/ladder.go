package plan

import (
	"context"
	"fmt"
	"sort"

	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// A fidelity ladder is an ordered sequence of composite intervention
// settings — tiers — that a deployment steps down under pressure (privacy
// review, load shedding, bandwidth caps). Tiers are first-class candidate
// settings: each combines sampling, resolution, removal, and pixel axes,
// and the ladder is valid only when every step is monotone — tier k+1 is
// at least as degraded as tier k on EVERY axis, per the degrade axis
// registry's order. Monotonicity is what makes stepping down semantically
// safe: a fallback can never reveal more than the tier it replaces.

// Tier is one rung of a fidelity ladder.
type Tier struct {
	Name    string
	Setting degrade.Setting
}

// Ladder is an ordered, monotone sequence of tiers, loosest first.
type Ladder struct {
	Name  string
	Tiers []Tier
}

// Validate checks every tier's setting against the model and the ladder's
// monotonicity: each axis of tier k+1 must be at least as tight as tier
// k's, per the degrade registry's per-axis order.
func (l Ladder) Validate(m *detect.Model) error {
	if len(l.Tiers) == 0 {
		return fmt.Errorf("plan: ladder %q has no tiers", l.Name)
	}
	seen := map[string]bool{}
	for ti, tier := range l.Tiers {
		if tier.Name == "" {
			return fmt.Errorf("plan: ladder %q tier %d has no name", l.Name, ti)
		}
		if seen[tier.Name] {
			return fmt.Errorf("plan: ladder %q has duplicate tier %q", l.Name, tier.Name)
		}
		seen[tier.Name] = true
		if err := tier.Setting.Validate(m); err != nil {
			return fmt.Errorf("plan: ladder %q tier %q: %w", l.Name, tier.Name, err)
		}
	}
	for k := 1; k < len(l.Tiers); k++ {
		prev, next := l.Tiers[k-1], l.Tiers[k]
		for _, ax := range degrade.Axes() {
			if !ax.Tighter(prev.Setting, next.Setting, m) {
				return fmt.Errorf("plan: ladder %q not monotone on axis %q: tier %q is looser than tier %q",
					l.Name, ax.Name, next.Name, prev.Name)
			}
		}
	}
	return nil
}

// DefaultLadder returns the built-in four-rung ladder for a model: full
// fidelity sampling, an economy rung at half resolution, a degraded rung
// adding motion blur and coarse quantization, and a privacy rung stacking
// person removal, occlusion and noise on top. Every rung is monotone on
// every axis by construction.
func DefaultLadder(m *detect.Model) Ladder {
	rs := CandidateResolutions(m)
	half := rs[len(rs)/2]
	return Ladder{
		Name: "default",
		Tiers: []Tier{
			{Name: "full", Setting: degrade.Setting{SampleFraction: 0.2}},
			{Name: "eco", Setting: degrade.Setting{SampleFraction: 0.1, Resolution: half}},
			{Name: "degraded", Setting: degrade.Setting{
				SampleFraction: 0.05, Resolution: half, MotionBlur: 7, Quantize: 32}},
			{Name: "privacy", Setting: degrade.Setting{
				SampleFraction: 0.02, Resolution: half, MotionBlur: 9, Quantize: 16,
				Occlusion: 0.2, NoiseSigma: 0.05, Restricted: []scene.Class{scene.Person}}},
		},
	}
}

// LadderByName resolves a named ladder; "default" (or "") is the built-in
// DefaultLadder. It is the registry CLIs and the daemon expose.
func LadderByName(name string, m *detect.Model) (Ladder, error) {
	switch name {
	case "", "default":
		return DefaultLadder(m), nil
	}
	return Ladder{}, fmt.Errorf("plan: unknown ladder %q (available: default)", name)
}

// LadderTask is one planned tier evaluation. Plan is nil when the tier is
// infeasible against the corpus (its sample exceeds the admissible pool);
// the executor renders those as absent points.
type LadderTask struct {
	Index int
	Tier  Tier
	Plan  *degrade.Plan
}

// LadderPlan is the execution plan of one ladder: a degradation plan per
// feasible tier plus the deduplicated detector work units.
type LadderPlan struct {
	Ladder Ladder
	Tasks  []LadderTask
}

// BuildLadder validates the ladder and materialises each tier's
// degradation plan. Tier randomness derives from the tier's index, so
// plans — and therefore ladder profiles — are bit-identical at any
// executor parallelism.
func BuildLadder(ctx context.Context, v *scene.Video, m *detect.Model, l Ladder, stream *stats.Stream) (*LadderPlan, error) {
	defer PlanTimer()()
	if err := l.Validate(m); err != nil {
		return nil, err
	}
	lp := &LadderPlan{Ladder: l}
	for ti, tier := range l.Tiers {
		p, err := degrade.ApplyCtx(ctx, v, m, tier.Setting, stream.ChildN(0x1adde2, uint64(ti)))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Infeasible tier (sample exceeds the admissible pool after
			// removal): keep the rung with a nil plan rather than failing
			// the ladder — deployments skip to the next rung.
			p = nil
		}
		lp.Tasks = append(lp.Tasks, LadderTask{Index: ti, Tier: tier, Plan: p})
	}
	tasksPlanned.Add(int64(len(lp.Tasks)))
	return lp, nil
}

// ViewUnit is one deduplicated physical detector work unit of a ladder:
// the frames to evaluate at one resolution over one corpus view. Setting
// carries only the view (pixel) axes of the tiers that share the unit.
type ViewUnit struct {
	Setting    degrade.Setting
	Resolution int
	Frames     []int
}

// Units dedups the ladder's detector work across tiers by (view spec,
// resolution): tiers observing the same corpus view at the same input
// resolution contribute their sampled frames to one unit, counted once.
// Unit order is first-appearance, so it is deterministic.
func (lp *LadderPlan) Units() []ViewUnit {
	type unitKey struct {
		spec       string
		resolution int
	}
	sets := map[unitKey]map[int]struct{}{}
	var order []unitKey
	settings := map[unitKey]degrade.Setting{}
	var requested int64
	for _, task := range lp.Tasks {
		if task.Plan == nil {
			continue
		}
		s := task.Tier.Setting
		key := unitKey{spec: s.ViewSpec(), resolution: task.Plan.Resolution}
		requested += int64(len(task.Plan.Sampled))
		set, ok := sets[key]
		if !ok {
			set = map[int]struct{}{}
			sets[key] = set
			order = append(order, key)
			// Keep only the pixel (view) axes: frame choice is the union of
			// the sharing tiers' samples, resolution is the unit key.
			view := s
			view.SampleFraction = 0
			view.Resolution = 0
			view.Restricted = nil
			settings[key] = view
		}
		for _, f := range task.Plan.Sampled {
			set[f] = struct{}{}
		}
	}
	units := make([]ViewUnit, 0, len(order))
	var unique int64
	for _, key := range order {
		set := sets[key]
		frames := make([]int, 0, len(set))
		for f := range set {
			frames = append(frames, f)
		}
		sort.Ints(frames)
		unique += int64(len(frames))
		units = append(units, ViewUnit{
			Setting:    settings[key],
			Resolution: key.resolution,
			Frames:     frames,
		})
	}
	unitsPlanned.Add(int64(len(units)))
	dedupSavedFrames.Add(requested - unique)
	return units
}
