// Package plan is the planning stage of the profile-generation pipeline:
// it enumerates, up front, every (setting, frame-set, estimator) task a
// fraction sweep, degradation hypercube, or correction curve will execute,
// and dedups the physical detector work the tasks share. The executor (in
// internal/profile) then runs two further stages over the plan: a detect
// stage that materialises the deduplicated work units in the
// detector-output column store (internal/outputs), and an estimate stage
// that computes every task's bound from stored columns.
//
// Planning is deterministic: a sweep's nested sample comes from one
// stream permutation (each fraction takes a prefix), and hypercube cells
// derive their streams from their grid coordinates, so the same seed
// always produces the same plan — and therefore bit-identical profiles —
// at any worker count.
package plan

import (
	"context"
	"sort"

	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// SweepSpec fixes the swept axis and the frozen axes of one fraction
// sweep. Fractions must be validated (non-empty, ascending) by the caller;
// BuildSweep materialises plans only for feasible fractions.
type SweepSpec struct {
	Fractions []float64
	// Base freezes every non-sampling intervention axis of the sweep —
	// resolution, removal, and the pixel axes (noise, blur, quantization,
	// occlusion) — via the degrade axis registry. Its SampleFraction is
	// ignored; each task takes its fraction from Fractions.
	Base degrade.Setting
}

// Task is one planned profile-point evaluation: the estimator input is
// the degradation plan; Index is the task's position in the sweep (and
// its fraction's index in SweepSpec.Fractions).
type Task struct {
	Index int
	Plan  *degrade.Plan
}

// Sweep is the execution plan of one fraction sweep. Tasks are ordered by
// ascending fraction; each task's sampled frames are a prefix-superset of
// the previous task's (nested sampling), so the sweep's total detector
// work unit is exactly the last task's frame set.
type Sweep struct {
	Resolution int // resolved model input resolution
	RandomOnly bool
	Admissible []int
	Tasks      []Task
}

// Frames returns the union of frames the sweep's tasks touch. Nested
// sampling makes this the last task's sample.
func (s *Sweep) Frames() []int {
	if len(s.Tasks) == 0 {
		return nil
	}
	return s.Tasks[len(s.Tasks)-1].Plan.Sampled
}

// BuildSweep enumerates the sweep's tasks: compute the admissible pool
// (running the presence protocol under ctx), draw one permutation from
// stream, and materialise the nested degradation plan of every feasible
// fraction. Fractions whose sample would exceed the admissible pool are
// dropped (image removal shrinks the pool); a sweep with zero tasks means
// no fraction is feasible, which the caller reports.
func BuildSweep(ctx context.Context, v *scene.Video, m *detect.Model, spec SweepSpec, stream *stats.Stream) (*Sweep, error) {
	defer PlanTimer()()

	admissible, err := degrade.AdmissibleFramesCtx(ctx, v, spec.Base.Restricted)
	if err != nil {
		return nil, err
	}
	perm := stream.Perm(len(admissible))
	base := spec.Base
	base.SampleFraction = spec.Fractions[0]
	resolution := base.ResolveResolution(m)
	n := v.NumFrames()

	sw := &Sweep{
		Resolution: resolution,
		RandomOnly: base.IsRandomOnly(m),
		Admissible: admissible,
	}
	for fi, f := range spec.Fractions {
		want := int(float64(n)*f + 0.5)
		if want < 1 {
			want = 1
		}
		if want > len(admissible) {
			break // remaining (larger) fractions are infeasible too
		}
		setting := spec.Base
		setting.SampleFraction = f
		p := &degrade.Plan{
			Setting:    setting,
			Resolution: resolution,
			Admissible: admissible,
			Total:      n,
		}
		p.Sampled = make([]int, want)
		for i := 0; i < want; i++ {
			p.Sampled[i] = admissible[perm[i]]
		}
		sw.Tasks = append(sw.Tasks, Task{Index: fi, Plan: p})
	}
	tasksPlanned.Add(int64(len(sw.Tasks)))
	return sw, nil
}

// Cell is one (class-combo, resolution) cell of a hypercube plan. Sweep
// is nil for infeasible cells (every fraction exceeds the admissible
// pool) — the executor renders those as NaN rows, like the legacy path.
type Cell struct {
	CI, RI int
	Sweep  *Sweep
}

// Hypercube is the execution plan of a full degradation hypercube: one
// planned sweep per (combo, resolution) cell over the candidate grid.
type Hypercube struct {
	Fractions   []float64
	Resolutions []int           // loosest (native) first
	Combos      [][]scene.Class // loosest (none) first
	Cells       []Cell          // row-major: ci*len(Resolutions)+ri
}

// BuildHypercube plans the full candidate grid. Each cell's randomness is
// a stream child keyed by its grid coordinates — the same derivation the
// executor has always used — so planning does not perturb results.
// Presence scans for the restricted-class combos run here, under ctx: the
// prior-information protocol is part of planning, not execution.
func BuildHypercube(ctx context.Context, v *scene.Video, m *detect.Model, fractions []float64, stream *stats.Stream) (*Hypercube, error) {
	h := &Hypercube{
		Fractions:   fractions,
		Resolutions: CandidateResolutions(m),
		Combos:      ClassCombos(),
	}
	for ci := range h.Combos {
		for ri := range h.Resolutions {
			sw, err := BuildSweep(ctx, v, m, SweepSpec{
				Fractions: fractions,
				Base: degrade.Setting{
					Resolution: h.Resolutions[ri],
					Restricted: h.Combos[ci],
				},
			}, stream.ChildN(uint64(ci), uint64(ri)))
			if err != nil {
				return nil, err
			}
			if len(sw.Tasks) == 0 {
				sw = nil
			}
			h.Cells = append(h.Cells, Cell{CI: ci, RI: ri, Sweep: sw})
		}
	}
	return h, nil
}

// Cell returns the planned cell at grid coordinates (ci, ri).
func (h *Hypercube) CellAt(ci, ri int) *Cell {
	return &h.Cells[ci*len(h.Resolutions)+ri]
}

// Unit is one deduplicated physical work unit: the frames to detect at
// one input resolution (over one corpus view and model, implicit from the
// generation the plan belongs to).
type Unit struct {
	Resolution int
	Frames     []int
}

// Units dedups the hypercube's detector work across cells: every cell at
// the same resolution contributes its frame set to one unit, and shared
// frames — the same physical (frame, resolution) touched by several class
// combos' sweeps — are counted once. The per-generation saving this
// produces is tracked in the package stage counters and is the pipeline's
// first dedup win (the column store's cross-class sharing is the second).
func (h *Hypercube) Units() []Unit {
	perRes := make(map[int]map[int]struct{})
	order := []int{}
	var requested int64
	for i := range h.Cells {
		sw := h.Cells[i].Sweep
		if sw == nil {
			continue
		}
		frames := sw.Frames()
		requested += int64(len(frames))
		set, ok := perRes[sw.Resolution]
		if !ok {
			set = make(map[int]struct{})
			perRes[sw.Resolution] = set
			order = append(order, sw.Resolution)
		}
		for _, f := range frames {
			set[f] = struct{}{}
		}
	}
	units := make([]Unit, 0, len(order))
	var unique int64
	for _, res := range order {
		set := perRes[res]
		frames := make([]int, 0, len(set))
		for f := range set {
			frames = append(frames, f)
		}
		sort.Ints(frames)
		unique += int64(len(frames))
		units = append(units, Unit{Resolution: res, Frames: frames})
	}
	unitsPlanned.Add(int64(len(units)))
	dedupSavedFrames.Add(requested - unique)
	return units
}
