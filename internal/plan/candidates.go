package plan

import (
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
)

// This file implements the paper's intervention-candidate design
// (Section 3.3.2): sample fractions at 1% intervals, ten uniformly spaced
// frame resolutions, and every combination of possibly sensitive classes.
// It moved here from internal/degrade because candidate enumeration is
// planning — the settings grid is the raw material every plan is built
// from — while degrade keeps the intervention semantics (Setting, Apply).

// CandidateFractions returns sample fractions from step to maxFraction at
// the given interval (the paper uses 1% steps). The result is ascending so
// profile generation can reuse low-rate model outputs at higher rates.
func CandidateFractions(step, maxFraction float64) []float64 {
	if step <= 0 || maxFraction <= 0 {
		return nil
	}
	var out []float64
	for k := 1; ; k++ {
		f := step * float64(k)
		if f > maxFraction+1e-12 {
			break
		}
		out = append(out, f)
	}
	return out
}

// CandidateResolutions returns the model's ten uniformly generated frame
// resolutions, loosest (native) first.
func CandidateResolutions(m *detect.Model) []int {
	return m.Resolutions(10)
}

// ClassCombos returns every combination of the possibly sensitive classes
// ("person" and "face"), loosest (no removal) first.
func ClassCombos() [][]scene.Class {
	return [][]scene.Class{
		nil,
		{scene.Face},
		{scene.Person},
		{scene.Person, scene.Face},
	}
}

// CandidateSettings enumerates the full intervention-candidate hypercube
// for a model: fractions x resolutions x class combinations. The order is
// row-major with the loosest values first along every axis.
func CandidateSettings(m *detect.Model, fractions []float64) []degrade.Setting {
	var out []degrade.Setting
	for _, combo := range ClassCombos() {
		for _, p := range CandidateResolutions(m) {
			for _, f := range fractions {
				out = append(out, degrade.Setting{SampleFraction: f, Resolution: p, Restricted: combo})
			}
		}
	}
	return out
}
