package outputs

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
)

func TestSaveAndWarmOutputs(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()

	detect.ResetCaches()
	original, err := Full(ctx, v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	written, err := SaveOutputs(v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if written < 1 {
		t.Fatalf("wrote %d tables", written)
	}

	// Cold cache, warm from disk: no model invocations needed — for ANY
	// class, since the persisted table carries full rows.
	detect.ResetCaches()
	loaded, skipped, err := WarmOutputs(v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded < 1 || skipped != 0 {
		t.Fatalf("loaded %d skipped %d", loaded, skipped)
	}
	before := detect.Invocations()
	warmed, err := Full(ctx, v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Full(ctx, v, m, scene.Person, 160); err != nil {
		t.Fatal(err)
	}
	if detect.Invocations() != before {
		t.Fatal("warm cache still invoked the model")
	}
	if len(warmed) != len(original) {
		t.Fatalf("lengths differ: %d vs %d", len(warmed), len(original))
	}
	for i := range original {
		if warmed[i] != original[i] {
			t.Fatalf("series differs at %d: %v vs %v", i, warmed[i], original[i])
		}
	}
	detect.ResetCaches()
}

func TestWarmOutputsRejectsMismatchedCorpus(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	small := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	detect.ResetCaches()
	if _, err := Full(ctx, small, m, scene.Car, 160); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveOutputs(small, dir); err != nil {
		t.Fatal(err)
	}
	detect.ResetCaches()

	other := dataset.MustLoad("mvi-40775")
	loaded, skipped, err := WarmOutputs(other, dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 || skipped == 0 {
		t.Fatalf("mismatched corpus loaded %d, skipped %d", loaded, skipped)
	}
	detect.ResetCaches()
}

func TestWarmOutputsSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	// Garbage and truncated files must be skipped, never poison the cache.
	if err := os.WriteFile(filepath.Join(dir, "junk.sout"), []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := detect.YOLOv4Sim()
	detect.ResetCaches()
	if _, err := Full(ctx, v, m, scene.Car, 96); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveOutputs(v, dir); err != nil {
		t.Fatal(err)
	}
	// Truncate a real file.
	name := storeFileName(v, m.Name, 96)
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	detect.ResetCaches()
	loaded, skipped, err := WarmOutputs(v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 || skipped != 2 {
		t.Fatalf("loaded %d skipped %d, want 0/2", loaded, skipped)
	}
	detect.ResetCaches()
}

func TestWarmOutputsMissingDir(t *testing.T) {
	v := dataset.MustLoad("small")
	loaded, skipped, err := WarmOutputs(v, filepath.Join(t.TempDir(), "nope"))
	if err != nil || loaded != 0 || skipped != 0 {
		t.Fatalf("missing dir: %d %d %v", loaded, skipped, err)
	}
}

func TestSaveAndWarmSparseOutputs(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	frames := []int{3, 17, 42, 99, 100}

	detect.ResetCaches()
	original, err := At(ctx, v, m, scene.Car, 192, frames)
	if err != nil {
		t.Fatal(err)
	}
	written, err := SaveOutputs(v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if written < 1 {
		t.Fatalf("wrote %d tables", written)
	}

	detect.ResetCaches()
	loaded, skipped, err := WarmOutputs(v, dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded < 1 || skipped != 0 {
		t.Fatalf("loaded %d skipped %d", loaded, skipped)
	}
	before := detect.Invocations()
	warmed, err := At(ctx, v, m, scene.Car, 192, frames)
	if err != nil {
		t.Fatal(err)
	}
	if detect.Invocations() != before {
		t.Fatal("warm sparse cache still invoked the model")
	}
	for i := range original {
		if warmed[i] != original[i] {
			t.Fatalf("sparse series differs at %d", i)
		}
	}
	detect.ResetCaches()
}
