package outputs

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"smokescreen/internal/dataset"
)

// FuzzOutputsDecode pins WarmOutputs' skip-don't-crash contract at the
// byte level: decodeTable reads SOUT v2 files that may be torn writes or
// arbitrary garbage, and every malformation must surface as an error —
// never a panic, out-of-range row index, or unbounded allocation.
func FuzzOutputsDecode(f *testing.F) {
	v := dataset.MustLoad("small")
	n := v.NumFrames()
	dir := f.TempDir()
	key := colKey{video: v, model: "yolov4-sim", p: 160, class: classShared}

	// Seed with real artifacts from the writer: one full table, one
	// sparse table, so the corpus starts from both on-disk kinds.
	full := make([]vec, n)
	for i := range full {
		full[i][0] = float64(i % 3)
		full[i][1] = float64(i % 2)
	}
	fullPath := filepath.Join(dir, "full.sout")
	if err := writeTable(fullPath, v, key, full, nil); err != nil {
		f.Fatal(err)
	}
	fullData, err := os.ReadFile(fullPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fullData)

	sparse := map[int]vec{0: {1}, 3: {0, 2}, n - 1: {5}}
	sparsePath := filepath.Join(dir, "sparse.sout")
	if err := writeTable(sparsePath, v, key, nil, sparse); err != nil {
		f.Fatal(err)
	}
	sparseData, err := os.ReadFile(sparsePath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sparseData)

	// Structured corruptions: truncation (torn write), flipped bytes in
	// the header and body, and degenerate inputs.
	f.Add(fullData[:len(fullData)/2])
	f.Add(sparseData[:len(sparseData)-1])
	flipped := append([]byte(nil), sparseData...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("SOUT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		k, gotFull, gotRows, err := decodeTable(bufio.NewReader(bytes.NewReader(b)), v)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent: exactly one
		// representation, sized and indexed within the corpus.
		if k.video != v || k.class != classShared {
			t.Fatalf("decoded key %+v does not bind to the corpus", k)
		}
		if (gotFull == nil) == (gotRows == nil) {
			t.Fatal("decode returned both or neither table representation")
		}
		if gotFull != nil && len(gotFull) != n {
			t.Fatalf("full table has %d rows, corpus has %d frames", len(gotFull), n)
		}
		for idx := range gotRows {
			if idx < 0 || idx >= n {
				t.Fatalf("sparse row index %d out of corpus range [0,%d)", idx, n)
			}
		}
	})
}
