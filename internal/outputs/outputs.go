// Package outputs is the detector-output column store: the single place
// detector results are cached, keyed by the *physical* unit of work —
// (corpus view, model, input resolution, frame). One DetectFrame call
// reports detections for every class the model can see, so the store keeps
// a per-frame vector of per-class counts ("columns") and serves any class
// projection from the same row. Estimators — fraction sweeps, hypercube
// cells, Algorithm 3 correction sets, presence scans — read columns
// instead of re-invoking the detector, which is what makes a multi-class
// profile batch cost one detection pass per (frame, resolution) rather
// than one per (frame, resolution, class).
//
// Degraded corpus views (noise addition) are distinct *scene.Video values
// (see degrade.EffectiveVideo), so the (video, model, p) key covers the
// paper's (corpus, frame, resolution, noise) unit exactly.
//
// Every read is context-aware: detection work stops promptly on
// cancellation and partially computed batches are discarded, never stored.
// The store registers reset/evict/stats hooks with internal/detect so the
// established detect.ResetCaches / detect.EvictVideo / detect.Stats entry
// points keep covering it.
package outputs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"smokescreen/internal/detect"
	"smokescreen/internal/parallel"
	"smokescreen/internal/scene"
)

// vec is one stored row: the model's object count for every class on one
// frame. scene.NumClasses is tiny, so rows are flat arrays, not maps.
type vec [scene.NumClasses]float64

// colKey identifies one column table. class is classShared (-1) when
// cross-class sharing is on — the physical unit — and the concrete class
// in legacy per-class mode (see SetSharing), which reproduces the
// pre-column-store cache behaviour for A/B benchmarking.
type colKey struct {
	video *scene.Video
	model string
	p     int
	class int
}

const classShared = -1

// table holds the rows of one column key. full is materialised once every
// frame of the corpus has a row; proj caches per-class []float64
// projections of a full table (the series shape estimators consume).
type table struct {
	mu    sync.Mutex
	n     int // corpus frame count
	rows  map[int]vec
	claim map[int]chan struct{} // frames being detected right now
	full  []vec
	proj  map[scene.Class][]float64
}

var (
	storeMu sync.Mutex
	tables  = map[colKey]*table{}
	sharing atomic.Bool

	// frameHits counts frame-values served without detector work;
	// framesDetected counts frames this store computed (and kept).
	frameHits      atomic.Int64
	framesDetected atomic.Int64
)

func init() {
	sharing.Store(true)
	detect.RegisterOutputCache(Reset, EvictVideo, fillCacheStats)
}

// SetSharing toggles cross-class column sharing. On (the default), tables
// key on the physical (view, model, resolution) unit and one detection
// pass serves every class. Off, tables key per class — the legacy cache
// layout, kept so benchmarks can measure the dedup win (-detect-dedup on
// the daemon). Call it only around a Reset: flipping modes mid-flight
// leaves both keyspaces populated and wastes memory (results stay correct;
// rows in either layout come from the same deterministic detector).
func SetSharing(on bool) {
	sharing.Store(on)
}

// Sharing reports whether cross-class column sharing is enabled.
func Sharing() bool { return sharing.Load() }

func keyFor(v *scene.Video, model string, class scene.Class, p int) colKey {
	k := colKey{video: v, model: model, p: p, class: classShared}
	if !sharing.Load() {
		k.class = int(class)
	}
	return k
}

func getTable(v *scene.Video, model string, class scene.Class, p int) *table {
	key := keyFor(v, model, class, p)
	storeMu.Lock()
	defer storeMu.Unlock()
	t, ok := tables[key]
	if !ok {
		t = &table{
			n:     v.NumFrames(),
			rows:  make(map[int]vec),
			claim: make(map[int]chan struct{}),
			proj:  make(map[scene.Class][]float64),
		}
		tables[key] = t
	}
	return t
}

// ensure guarantees rows exist for every frame in frames, detecting the
// missing ones. Frames already claimed by a concurrent caller are waited
// on rather than recomputed, so racing sweeps never duplicate detector
// work — each physical frame is detected at most once per table (absent
// cancellation). On ctx cancellation claimed-but-uncomputed frames are
// released and nothing partial is stored.
func (t *table) ensure(ctx context.Context, v *scene.Video, m *detect.Model, p int, frames []int) error {
	for first := true; ; first = false {
		if err := ctx.Err(); err != nil {
			return err
		}
		var mine []int
		var waits []chan struct{}
		hits := 0
		t.mu.Lock()
		if t.full != nil {
			t.mu.Unlock()
			if first {
				frameHits.Add(int64(len(frames)))
			}
			return nil
		}
		for _, f := range frames {
			if _, ok := t.rows[f]; ok {
				hits++
				continue
			}
			if ch, ok := t.claim[f]; ok {
				waits = append(waits, ch)
				continue
			}
			ch := make(chan struct{})
			t.claim[f] = ch
			mine = append(mine, f)
		}
		t.mu.Unlock()
		if first {
			// Count hits once per request; re-check iterations would
			// recount frames this very call just computed or waited for.
			frameHits.Add(int64(hits))
		}

		if len(mine) > 0 {
			if err := t.compute(ctx, v, m, p, mine); err != nil {
				return err
			}
		}
		if len(waits) == 0 {
			return nil
		}
		for _, ch := range waits {
			select {
			case <-ch:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		// A claimant may have aborted (cancelled) without storing its
		// frames; re-check and claim whatever is still missing. Only the
		// waited-on frames can be missing now, so the loop converges.
	}
}

// compute detects the claimed frames in parallel and stores their rows.
// Claims are always released — on failure without storing, so waiters
// re-check and recover the work.
func (t *table) compute(ctx context.Context, v *scene.Video, m *detect.Model, p int, frames []int) error {
	// Background is rendered lazily behind a sync.Once; touch it before
	// fanning out so workers share one render.
	v.Background()
	results := make(map[int]vec, len(frames))
	var err error
	if detect.DeltaDetectMode() != detect.DeltaOff && len(frames) > 1 {
		err = computeDelta(ctx, v, m, p, frames, results)
	} else {
		rs := make([]vec, len(frames))
		err = parallel.ForCtx(ctx, len(frames), 0, func(i int) error {
			rs[i] = countRow(m.DetectFrame(v, frames[i], p))
			return nil
		})
		if err == nil {
			for i, f := range frames {
				results[f] = rs[i]
			}
		}
	}
	t.mu.Lock()
	if err == nil {
		for f, r := range results {
			t.rows[f] = r
		}
	}
	for _, f := range frames {
		if ch, ok := t.claim[f]; ok {
			close(ch)
			delete(t.claim, f)
		}
	}
	t.mu.Unlock()
	if err == nil {
		framesDetected.Add(int64(len(frames)))
	}
	return err
}

// countRow folds a frame's detections into a per-class count vector.
func countRow(dets []detect.Detection) vec {
	var r vec
	for c := scene.Class(0); c < scene.NumClasses; c++ {
		r[c] = float64(detect.CountClass(dets, c))
	}
	return r
}

// deltaBlockFrames is the number of consecutive frames one DeltaRun walks
// sequentially when temporal delta detection is on: large enough that
// almost every frame inside a block has a same-run predecessor to reuse
// from (47/48 at full sampling), small enough that typical requests still
// fan out across the worker pool.
const deltaBlockFrames = 48

// computeDelta evaluates the claimed frames through per-block DeltaRuns:
// frames are sorted, split into fixed blocks, and each block is walked in
// order by one run so consecutive frames can reuse each other's work.
// Blocks run in parallel; block boundaries simply start a keyframe.
// Results land in rows keyed by frame number, so the reordering relative
// to the caller's frame slice is free.
func computeDelta(ctx context.Context, v *scene.Video, m *detect.Model, p int, frames []int, rows map[int]vec) error {
	sorted := append([]int(nil), frames...)
	sort.Ints(sorted)
	blocks := (len(sorted) + deltaBlockFrames - 1) / deltaBlockFrames
	results := make([]vec, len(sorted))
	err := parallel.ForCtx(ctx, blocks, 0, func(bi int) error {
		lo := bi * deltaBlockFrames
		hi := lo + deltaBlockFrames
		if hi > len(sorted) {
			hi = len(sorted)
		}
		run := m.NewDeltaRun(v, p)
		if run == nil {
			// Mode flipped off mid-request; fall back per frame.
			for j := lo; j < hi; j++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				results[j] = countRow(m.DetectFrame(v, sorted[j], p))
			}
			return nil
		}
		defer run.Close()
		for j := lo; j < hi; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			results[j] = countRow(run.DetectFrame(sorted[j]))
		}
		return nil
	})
	if err != nil {
		return err
	}
	for j, f := range sorted {
		rows[f] = results[j]
	}
	return nil
}

// Ensure materialises rows for the given frames of (v, m, p) without
// reading them — the executor's detect stage, run once over deduplicated
// plan units before estimation fans out. class matters only in legacy
// per-class mode, where it selects the table to fill.
func Ensure(ctx context.Context, v *scene.Video, m *detect.Model, class scene.Class, p int, frames []int) error {
	if len(frames) == 0 {
		return ctx.Err()
	}
	return getTable(v, m.Name, class, p).ensure(ctx, v, m, p, frames)
}

// At returns the per-frame counts of class objects for just the requested
// frames, detecting only frames with no stored row. The result is ordered
// like frames. Callers own the returned slice.
func At(ctx context.Context, v *scene.Video, m *detect.Model, class scene.Class, p int, frames []int) ([]float64, error) {
	t := getTable(v, m.Name, class, p)
	if err := t.ensure(ctx, v, m, p, frames); err != nil {
		return nil, err
	}
	out := make([]float64, len(frames))
	t.mu.Lock()
	switch {
	case t.proj[class] != nil:
		s := t.proj[class]
		t.mu.Unlock()
		for i, f := range frames {
			out[i] = s[f]
		}
		return out, nil
	case t.full != nil:
		for i, f := range frames {
			out[i] = t.full[f][class]
		}
	default:
		for i, f := range frames {
			out[i] = t.rows[f][class]
		}
	}
	t.mu.Unlock()
	return out, nil
}

// Full returns the complete per-frame series of class counts over every
// frame of v — the F_model(frame_i) series the aggregate estimators
// consume — computing whatever is missing. The returned slice is the
// cached projection; callers must not mutate it.
func Full(ctx context.Context, v *scene.Video, m *detect.Model, class scene.Class, p int) ([]float64, error) {
	t := getTable(v, m.Name, class, p)
	t.mu.Lock()
	if s, ok := t.proj[class]; ok {
		t.mu.Unlock()
		frameHits.Add(int64(len(s)))
		return s, nil
	}
	n := t.n
	t.mu.Unlock()

	frames := make([]int, n)
	for i := range frames {
		frames[i] = i
	}
	if err := t.ensure(ctx, v, m, p, frames); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.proj[class]; ok {
		return s, nil
	}
	if t.full == nil {
		full := make([]vec, n)
		for f, r := range t.rows {
			full[f] = r
		}
		t.full = full
		// The row map is now redundant; free it (ensure/At read t.full).
		t.rows = make(map[int]vec)
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = t.full[i][class]
	}
	t.proj[class] = s
	return s, nil
}

// Presence returns, for every frame, whether the restricted class c is
// present according to the paper's prior-information protocol: persons are
// detected by YOLOv4 at threshold 0.7 and faces by MTCNN at threshold 0.8,
// both at the detector's native resolution (Section 5.1). The scan shares
// columns with ordinary queries against the same (model, resolution).
func Presence(ctx context.Context, v *scene.Video, c scene.Class) ([]bool, error) {
	var model *detect.Model
	switch c {
	case scene.Face:
		model = detect.MTCNNSim()
	default:
		model = detect.YOLOv4Sim()
	}
	series, err := Full(ctx, v, model, c, model.NativeInput)
	if err != nil {
		return nil, err
	}
	present := make([]bool, len(series))
	for i, count := range series {
		present[i] = count > 0
	}
	return present, nil
}

// Stats is a byte-accounted and hit-accounted report of the column store.
type Stats struct {
	// Tables is the number of column tables; FullSeries of them are fully
	// materialised, SparseSeries partially.
	Tables       int
	FullSeries   int
	FullBytes    int64
	SparseSeries int
	// SparseEntries counts cached frame rows in sparse tables.
	SparseEntries int
	SparseBytes   int64
	// FrameHits counts frame-values served without detector work;
	// FramesDetected counts frames detected (and stored) by this store.
	// Their ratio is the dedup win the plan/execute pipeline banks on.
	FrameHits      int64
	FramesDetected int64
}

// rowBytes is the accounted payload of one stored row.
const rowBytes = int64(scene.NumClasses) * 8

// ReadStats snapshots the store's counters and sizes.
func ReadStats() Stats {
	s := Stats{
		FrameHits:      frameHits.Load(),
		FramesDetected: framesDetected.Load(),
	}
	storeMu.Lock()
	snapshot := make([]*table, 0, len(tables))
	for _, t := range tables {
		//smokevet:ignore determinism: snapshot feeds a commutative sum (counts and byte totals); visit order cannot change the Stats values
		snapshot = append(snapshot, t)
	}
	storeMu.Unlock()
	for _, t := range snapshot {
		t.mu.Lock()
		s.Tables++
		if t.full != nil {
			s.FullSeries++
			s.FullBytes += int64(t.n)*rowBytes + detect.PerEntryOverhead
		} else {
			s.SparseSeries++
			s.SparseEntries += len(t.rows)
			s.SparseBytes += int64(len(t.rows))*(rowBytes+8) + detect.PerEntryOverhead
		}
		t.mu.Unlock()
	}
	return s
}

// fillCacheStats populates the output-series fields of detect.CacheStats,
// keeping detect.Stats() a one-stop report across all detector caches.
func fillCacheStats(dst *detect.CacheStats) {
	s := ReadStats()
	dst.FullSeries = s.FullSeries
	dst.FullBytes = s.FullBytes
	dst.SparseSeries = s.SparseSeries
	dst.SparseEntries = s.SparseEntries
	dst.SparseBytes = s.SparseBytes
}

// Reset drops every column table and zeroes the store's counters. It is
// registered with detect.ResetCaches, which tests use for cold-cache runs.
func Reset() {
	storeMu.Lock()
	tables = map[colKey]*table{}
	storeMu.Unlock()
	frameHits.Store(0)
	framesDetected.Store(0)
}

// EvictVideo drops every column derived from the given corpus view and
// returns the accounted bytes freed. Registered with detect.EvictVideo.
func EvictVideo(v *scene.Video) int64 {
	var freed int64
	storeMu.Lock()
	for key, t := range tables {
		if key.video != v {
			continue
		}
		t.mu.Lock()
		if t.full != nil {
			freed += int64(t.n)*rowBytes + detect.PerEntryOverhead
		} else {
			freed += int64(len(t.rows))*(rowBytes+8) + detect.PerEntryOverhead
		}
		t.mu.Unlock()
		delete(tables, key)
	}
	storeMu.Unlock()
	return freed
}
