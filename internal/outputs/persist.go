package outputs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"smokescreen/internal/scene"
)

// Disk-backed persistence for column tables. Computing a corpus's full
// column set at ten resolutions costs minutes of simulated inference; the
// rows are deterministic functions of (corpus seed, model, resolution), so
// they persist safely across processes. cmd/smokebench exposes this via
// -cache.
//
// File format v2 (little-endian), one file per (corpus, model, resolution)
// column table:
//
//	magic "SOUT" | u16 version=2 | name | seed | W | H | N | model | p
//	| numClasses byte | kind byte | payload
//
// kind 0 (full): N rows of numClasses varint counts. kind 1 (sparse):
// varint m, then m x (varint frame index, numClasses varint counts).
// Version 1 files (the pre-column-store per-class series) are skipped on
// load, like any other mismatch — a stale cache must never poison results.
const (
	storeMagic   = "SOUT"
	storeVersion = 2
)

// storeFileName derives a stable file name for a column table.
func storeFileName(v *scene.Video, model string, p int) string {
	return fmt.Sprintf("%s-%x-%s-p%d.sout", v.Config.Name, v.Config.Seed, model, p)
}

// SaveOutputs persists every shared column table of the corpus into dir
// (created if needed) and returns the number of tables written. Legacy
// per-class tables (SetSharing(false)) are not persisted — the legacy mode
// exists only for A/B benchmarking.
func SaveOutputs(v *scene.Video, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	type entry struct {
		key colKey
		t   *table
	}
	storeMu.Lock()
	var entries []entry
	for key, t := range tables {
		if key.video == v && key.class == classShared {
			entries = append(entries, entry{key, t})
		}
	}
	storeMu.Unlock()
	// Write order must not inherit map-iteration order: persisted artifact
	// sets should be enumerable in a stable order across runs.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key.model != entries[j].key.model {
			return entries[i].key.model < entries[j].key.model
		}
		return entries[i].key.p < entries[j].key.p
	})

	written := 0
	for _, e := range entries {
		e.t.mu.Lock()
		full := e.t.full
		var rows map[int]vec
		if full == nil {
			rows = make(map[int]vec, len(e.t.rows))
			for f, r := range e.t.rows {
				rows[f] = r
			}
		}
		e.t.mu.Unlock()
		if full == nil && len(rows) == 0 {
			continue
		}
		path := filepath.Join(dir, storeFileName(v, e.key.model, e.key.p))
		if err := writeTable(path, v, e.key, full, rows); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// WarmOutputs loads every persisted column table in dir that matches the
// corpus, returning the number loaded. Mismatched, stale-version, or
// corrupt files are skipped and reported through the skipped count.
func WarmOutputs(v *scene.Video, dir string) (loaded, skipped int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	for _, entry := range entries {
		if entry.IsDir() || filepath.Ext(entry.Name()) != ".sout" {
			continue
		}
		key, full, rows, readErr := readTable(filepath.Join(dir, entry.Name()), v)
		if readErr != nil {
			skipped++
			continue
		}
		storeMu.Lock()
		t, ok := tables[key]
		if !ok {
			t = &table{
				n:     v.NumFrames(),
				rows:  make(map[int]vec),
				claim: make(map[int]chan struct{}),
				proj:  make(map[scene.Class][]float64),
			}
			tables[key] = t
		}
		storeMu.Unlock()
		t.mu.Lock()
		if t.full == nil {
			if full != nil {
				t.full = full
				t.rows = make(map[int]vec)
			} else {
				for f, r := range rows {
					if _, exists := t.rows[f]; !exists {
						t.rows[f] = r
					}
				}
			}
		}
		t.mu.Unlock()
		loaded++
	}
	return loaded, skipped, nil
}

func writeTable(path string, v *scene.Video, key colKey, full []vec, rows map[int]vec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	buf := make([]byte, 0, 128)
	buf = append(buf, storeMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, storeVersion)
	buf = appendStoreString(buf, v.Config.Name)
	buf = binary.AppendUvarint(buf, v.Config.Seed)
	buf = binary.AppendUvarint(buf, uint64(v.Config.Width))
	buf = binary.AppendUvarint(buf, uint64(v.Config.Height))
	buf = binary.AppendUvarint(buf, uint64(v.NumFrames()))
	buf = appendStoreString(buf, key.model)
	buf = binary.AppendUvarint(buf, uint64(key.p))
	buf = append(buf, byte(scene.NumClasses))
	if full != nil {
		buf = append(buf, 0) // kind: full
	} else {
		buf = append(buf, 1) // kind: sparse
		buf = binary.AppendUvarint(buf, uint64(len(rows)))
	}
	if _, err := w.Write(buf); err != nil {
		f.Close()
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeRow := func(r vec) error {
		for _, x := range r {
			if x < 0 || x != float64(uint64(x)) {
				return fmt.Errorf("outputs: row value %v is not a count", x)
			}
			n := binary.PutUvarint(scratch[:], uint64(x))
			if _, err := w.Write(scratch[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	if full != nil {
		for _, r := range full {
			if err := writeRow(r); err != nil {
				f.Close()
				return err
			}
		}
	} else {
		// Deterministic order keeps files reproducible.
		idx := make([]int, 0, len(rows))
		for i := range rows {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			n := binary.PutUvarint(scratch[:], uint64(i))
			if _, err := w.Write(scratch[:n]); err != nil {
				f.Close()
				return err
			}
			if err := writeRow(rows[i]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readTable(path string, v *scene.Video) (colKey, []vec, map[int]vec, error) {
	f, err := os.Open(path)
	if err != nil {
		return colKey{}, nil, nil, err
	}
	defer f.Close()
	return decodeTable(bufio.NewReader(f), v)
}

// decodeTable parses one SOUT v2 column table from r and validates it
// against the corpus. It is the pure decode half of readTable: the input
// may be a torn write or arbitrary garbage (WarmOutputs skips bad files
// rather than failing the warm), so every malformation must surface as an
// error, never a panic or an unbounded allocation. The fuzz target pins
// that property.
func decodeTable(r *bufio.Reader, v *scene.Video) (colKey, []vec, map[int]vec, error) {
	var key colKey
	head := make([]byte, len(storeMagic)+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return key, nil, nil, err
	}
	if string(head[:4]) != storeMagic {
		return key, nil, nil, errors.New("outputs: bad store magic")
	}
	if binary.LittleEndian.Uint16(head[4:]) != storeVersion {
		return key, nil, nil, errors.New("outputs: unsupported store version")
	}
	name, err := readStoreString(r)
	if err != nil {
		return key, nil, nil, err
	}
	fields := [4]uint64{}
	for i := range fields {
		if fields[i], err = binary.ReadUvarint(r); err != nil {
			return key, nil, nil, err
		}
	}
	seed, width, height, n := fields[0], int(fields[1]), int(fields[2]), int(fields[3])
	if name != v.Config.Name || seed != v.Config.Seed || width != v.Config.Width ||
		height != v.Config.Height || n != v.NumFrames() {
		return key, nil, nil, errors.New("outputs: store does not match the corpus")
	}
	model, err := readStoreString(r)
	if err != nil {
		return key, nil, nil, err
	}
	p64, err := binary.ReadUvarint(r)
	if err != nil {
		return key, nil, nil, err
	}
	nc, err := r.ReadByte()
	if err != nil {
		return key, nil, nil, err
	}
	if nc != scene.NumClasses {
		return key, nil, nil, errors.New("outputs: class-count mismatch")
	}
	kind, err := r.ReadByte()
	if err != nil {
		return key, nil, nil, err
	}
	key = colKey{video: v, model: model, p: int(p64), class: classShared}
	readRow := func() (vec, error) {
		var row vec
		for c := range row {
			x, err := binary.ReadUvarint(r)
			if err != nil {
				return row, err
			}
			row[c] = float64(x)
		}
		return row, nil
	}
	switch kind {
	case 0:
		full := make([]vec, n)
		for i := range full {
			row, err := readRow()
			if err != nil {
				return key, nil, nil, fmt.Errorf("outputs: truncated table at %d: %w", i, err)
			}
			full[i] = row
		}
		if _, err := r.ReadByte(); err != io.EOF {
			return key, nil, nil, errors.New("outputs: trailing data in store file")
		}
		return key, full, nil, nil
	case 1:
		m, err := binary.ReadUvarint(r)
		if err != nil || m > uint64(n) {
			return key, nil, nil, errors.New("outputs: corrupt sparse count")
		}
		rows := make(map[int]vec, m)
		for j := uint64(0); j < m; j++ {
			idx, err := binary.ReadUvarint(r)
			if err != nil || idx >= uint64(n) {
				return key, nil, nil, errors.New("outputs: corrupt sparse index")
			}
			row, err := readRow()
			if err != nil {
				return key, nil, nil, errors.New("outputs: truncated sparse table")
			}
			rows[int(idx)] = row
		}
		if _, err := r.ReadByte(); err != io.EOF {
			return key, nil, nil, errors.New("outputs: trailing data in store file")
		}
		return key, nil, rows, nil
	default:
		return key, nil, nil, errors.New("outputs: unknown store kind")
	}
}

func appendStoreString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readStoreString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<12 {
		return "", errors.New("outputs: corrupt string length")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return "", err
	}
	return string(out), nil
}
