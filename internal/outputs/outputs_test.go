package outputs

import (
	"context"
	"math"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
)

func sum(xs []float64) (s float64) {
	for _, x := range xs {
		s += x
	}
	return
}

func TestFullCachesAndCounts(t *testing.T) {
	detect.ResetCaches()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	before := detect.Invocations()
	a, err := Full(ctx, v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := detect.Invocations()
	b, err := Full(ctx, v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := detect.Invocations()
	if len(a) != v.NumFrames() {
		t.Fatalf("outputs length %d", len(a))
	}
	if &a[0] != &b[0] {
		t.Fatal("Full did not return the cached projection")
	}
	if afterFirst-before != int64(v.NumFrames()) {
		t.Fatalf("first call invoked %d times", afterFirst-before)
	}
	if afterSecond != afterFirst {
		t.Fatal("second call re-invoked the model")
	}
	for _, x := range a {
		if x < 0 || x != math.Trunc(x) {
			t.Fatalf("output %v is not a count", x)
		}
	}
	st := ReadStats()
	if st.FramesDetected != int64(v.NumFrames()) {
		t.Fatalf("FramesDetected %d, want %d", st.FramesDetected, v.NumFrames())
	}
	if st.FrameHits < int64(v.NumFrames()) {
		t.Fatalf("FrameHits %d after a fully cached re-read", st.FrameHits)
	}
	detect.ResetCaches()
}

func TestOutputsDifferAcrossClassAndResolution(t *testing.T) {
	detect.ResetCaches()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	cars, err := Full(ctx, v, m, scene.Car, 320)
	if err != nil {
		t.Fatal(err)
	}
	persons, err := Full(ctx, v, m, scene.Person, 320)
	if err != nil {
		t.Fatal(err)
	}
	carsLow, err := Full(ctx, v, m, scene.Car, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sum(cars) == sum(persons) {
		t.Fatal("car and person series identical")
	}
	if sum(carsLow) >= sum(cars) {
		t.Fatalf("32px car total %v not below 320px total %v", sum(carsLow), sum(cars))
	}
	detect.ResetCaches()
}

// TestCrossClassSharing is the column store's reason to exist: with
// sharing on, one detection pass serves every class at the same (view,
// model, resolution), while legacy per-class mode re-detects.
func TestCrossClassSharing(t *testing.T) {
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	n := int64(v.NumFrames())

	detect.ResetCaches()
	before := detect.Invocations()
	shCars, err := Full(ctx, v, m, scene.Car, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Full(ctx, v, m, scene.Person, 128); err != nil {
		t.Fatal(err)
	}
	shared := detect.Invocations() - before
	if shared != n {
		t.Fatalf("sharing on: %d invocations for two classes, want %d", shared, n)
	}

	SetSharing(false)
	defer SetSharing(true)
	detect.ResetCaches()
	before = detect.Invocations()
	legCars, err := Full(ctx, v, m, scene.Car, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Full(ctx, v, m, scene.Person, 128); err != nil {
		t.Fatal(err)
	}
	legacy := detect.Invocations() - before
	if legacy != 2*n {
		t.Fatalf("sharing off: %d invocations for two classes, want %d", legacy, 2*n)
	}
	// Both layouts read the same deterministic detector.
	for i := range shCars {
		if shCars[i] != legCars[i] {
			t.Fatalf("series differ at %d: shared %v legacy %v", i, shCars[i], legCars[i])
		}
	}
	detect.ResetCaches()
}

func TestAtMatchesFullProjection(t *testing.T) {
	detect.ResetCaches()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	frames := []int{7, 3, 42, 3, 0}
	got, err := At(ctx, v, m, scene.Car, 96, frames)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Full(ctx, v, m, scene.Car, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if got[i] != full[f] {
			t.Fatalf("At[%d] (frame %d) = %v, Full = %v", i, f, got[i], full[f])
		}
	}
	detect.ResetCaches()
}

func TestPresence(t *testing.T) {
	detect.ResetCaches()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	pres, err := Presence(ctx, v, scene.Person)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres) != v.NumFrames() {
		t.Fatalf("presence length %d", len(pres))
	}
	any, all := false, true
	for _, p := range pres {
		any = any || p
		all = all && p
	}
	if !any || all {
		t.Fatal("person presence should be mixed across frames")
	}
	faces, err := Presence(ctx, v, scene.Face)
	if err != nil {
		t.Fatal(err)
	}
	nf, np := 0, 0
	for i := range faces {
		if faces[i] {
			nf++
		}
		if pres[i] {
			np++
		}
	}
	if nf >= np {
		t.Fatalf("face frames (%d) should be rarer than person frames (%d)", nf, np)
	}
	detect.ResetCaches()
}

// TestCancellation pins the executor's no-partial-results contract: a
// cancelled context stops detector work and nothing half-computed is
// stored or counted.
func TestCancellation(t *testing.T) {
	detect.ResetCaches()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Ensure(ctx, v, m, scene.Car, 160, []int{0, 1, 2}); err != context.Canceled {
		t.Fatalf("Ensure on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := Full(ctx, v, m, scene.Car, 160); err != context.Canceled {
		t.Fatalf("Full on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := At(ctx, v, m, scene.Car, 160, []int{5}); err != context.Canceled {
		t.Fatalf("At on cancelled ctx = %v, want context.Canceled", err)
	}
	if inv := detect.Invocations(); inv != 0 {
		t.Fatalf("cancelled requests still invoked the detector %d times", inv)
	}
	st := ReadStats()
	if st.FramesDetected != 0 || st.SparseEntries != 0 || st.FullSeries != 0 {
		t.Fatalf("cancelled requests stored state: %+v", st)
	}

	// The same claims must be recoverable by a live context afterwards.
	if err := Ensure(context.Background(), v, m, scene.Car, 160, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := ReadStats().FramesDetected; got != 3 {
		t.Fatalf("recovery detected %d frames, want 3", got)
	}
	detect.ResetCaches()
}

func TestStatsAndEvictAccounting(t *testing.T) {
	detect.ResetCaches()
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	if _, err := Full(ctx, v, m, scene.Car, 64); err != nil {
		t.Fatal(err)
	}
	if err := Ensure(ctx, v, m, scene.Car, 96, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	st := ReadStats()
	if st.FullSeries != 1 || st.SparseSeries != 1 || st.SparseEntries != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.FullBytes <= 0 || st.SparseBytes <= 0 {
		t.Fatalf("byte accounting %+v", st)
	}
	// The detect facade reports the same series through its hook.
	dc := detect.Stats()
	if dc.FullSeries != st.FullSeries || dc.SparseEntries != st.SparseEntries {
		t.Fatalf("detect.Stats mismatch: %+v vs %+v", dc, st)
	}
	if freed := EvictVideo(v); freed != st.FullBytes+st.SparseBytes {
		t.Fatalf("EvictVideo freed %d, accounted %d", freed, st.FullBytes+st.SparseBytes)
	}
	if after := ReadStats(); after.Tables != 0 {
		t.Fatalf("%d tables survived eviction", after.Tables)
	}
	detect.ResetCaches()
}

// TestDeltaExactSeriesMatchesOff pins the end-to-end determinism contract
// of exact temporal delta detection: the full output series of a corpus is
// bit-identical whether frames are evaluated independently or through the
// block-sequential DeltaRun path, and the delta counters prove reuse
// actually engaged.
func TestDeltaExactSeriesMatchesOff(t *testing.T) {
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)
	ctx := context.Background()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()

	off, err := Full(ctx, v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	offCopy := append([]float64(nil), off...)

	detect.ResetCaches()
	detect.SetDeltaMode(detect.DeltaExact)
	t.Cleanup(func() { detect.SetDeltaMode(detect.DeltaOff) })
	exact, err := Full(ctx, v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	for i := range offCopy {
		if offCopy[i] != exact[i] {
			t.Fatalf("frame %d: off=%v exact=%v", i, offCopy[i], exact[i])
		}
	}
	if dc := detect.DeltaCounters(); dc.CandidatesReused == 0 && dc.TilesRedetected == 0 {
		t.Fatalf("delta path did not engage: %+v", dc)
	}
}
