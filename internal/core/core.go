// Package core assembles the Smokescreen prototype (paper Section 4): the
// video frame processor (simulated detectors over synthetic corpora), the
// analytical result and error bound estimator, and the correction set and
// intervention candidate designer — glued together behind the
// administration procedure of Section 3.1:
//
//  1. Profile generation: for a query, compute tight error bounds under
//     every intervention candidate, forming a degradation hypercube whose
//     2D slices the administrator examines.
//  2. Choosing a tradeoff: pick the most degraded setting whose bound
//     satisfies the public preferences, then execute the query under it.
package core

import (
	"context"
	"fmt"
	"time"

	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/query"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// System is the Smokescreen prototype instance.
type System struct {
	seed uint64
	// correctionLimit caps the correction-set fraction (the administrator
	// limit from Section 3.3.1).
	correctionLimit float64
	// fractionStep is the sample-fraction candidate interval (1% in the
	// paper, Section 3.3.2).
	fractionStep float64
	// maxFraction bounds the largest candidate fraction during profile
	// generation; profiles flatten well before 1 in practice.
	maxFraction float64
	// earlyStopDelta enables the paper's early stopping during fraction
	// sweeps: a sweep stops once the bound improves by less than this
	// between consecutive fractions. Zero disables it.
	earlyStopDelta float64
	// parallelism bounds the worker goroutines used during profile
	// generation; 1 is sequential, 0 or negative means one per CPU.
	parallelism int
}

// Option configures a System.
type Option func(*System)

// WithSeed fixes the root randomness seed; the default is 1.
func WithSeed(seed uint64) Option {
	return func(s *System) { s.seed = seed }
}

// WithCorrectionLimit caps the correction-set size as a fraction of the
// corpus (default 0.2).
func WithCorrectionLimit(limit float64) Option {
	return func(s *System) { s.correctionLimit = limit }
}

// WithFractionCandidates sets the candidate sample-fraction step and
// maximum (defaults 0.01 and 0.2).
func WithFractionCandidates(step, max float64) Option {
	return func(s *System) { s.fractionStep, s.maxFraction = step, max }
}

// WithEarlyStop enables early stopping during profile generation
// (Section 3.3.2): each fraction sweep stops once the bound improves by
// less than delta between consecutive candidates, trading profile
// completeness for fewer model invocations.
func WithEarlyStop(delta float64) Option {
	return func(s *System) { s.earlyStopDelta = delta }
}

// WithParallelism bounds the worker goroutines used for profile
// generation (the hypercube grid and fraction sweeps). 1 — the default —
// is sequential; 0 or negative means one worker per CPU. Randomness is
// derived per grid cell from stats.Stream children, so profiles are
// bit-for-bit identical at any setting.
func WithParallelism(n int) Option {
	return func(s *System) { s.parallelism = n }
}

// WithRenderCacheBudget bounds the degraded-frame render cache shared by
// full-frame detection (see detect.SetRenderCacheBudget): positive budgets
// evict least-recently-used frames, zero disables the cache, negative
// removes the bound. The budget is process-wide — the cache is shared
// across Systems, like the detector output caches.
func WithRenderCacheBudget(bytes int64) Option {
	return func(s *System) { detect.SetRenderCacheBudget(bytes) }
}

// WithQuantizedRasters selects the uint8 quantized pixel pipeline for
// patch detection (see detect.SetQuantized): every per-pixel stage runs on
// integer planes with widened accumulators instead of float32. The toggle
// is process-wide and must not be flipped while cached detector outputs
// are live — pair a change with detect.ResetCaches.
func WithQuantizedRasters(on bool) Option {
	return func(s *System) { detect.SetQuantized(on) }
}

// WithDeltaDetect selects the temporal delta-detection mode ("off",
// "exact" or "bounded"; see detect.DeltaMode) and, for bounded mode, the
// worst-case contrast-perturbation tolerance under which prior-frame
// detections may be spliced. A non-positive tolerance keeps the current
// value. Process-wide, like WithQuantizedRasters.
func WithDeltaDetect(mode string, tolerance float64) (Option, error) {
	m, err := detect.ParseDeltaMode(mode)
	if err != nil {
		return nil, err
	}
	return func(s *System) {
		detect.SetDeltaMode(m)
		if tolerance > 0 {
			detect.SetDeltaTolerance(tolerance)
		}
	}, nil
}

// New constructs a System with the paper's defaults.
func New(opts ...Option) *System {
	s := &System{
		seed:            1,
		correctionLimit: 0.2,
		fractionStep:    0.01,
		maxFraction:     0.2,
		parallelism:     1,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// defaultModel returns the paper's model assignment: Mask R-CNN for
// night-street, YOLOv4 elsewhere.
func defaultModel(datasetName string) string {
	if datasetName == "night-street" {
		return "mask-rcnn"
	}
	return "yolov4"
}

// Resolve turns a parsed query into a profile.Spec bound to a corpus and
// a model.
func (s *System) Resolve(q *query.Query) (*profile.Spec, error) {
	v, err := dataset.Load(q.Dataset)
	if err != nil {
		return nil, err
	}
	modelName := q.Model
	if modelName == "" {
		modelName = defaultModel(q.Dataset)
	}
	model, err := detect.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	class := q.Class
	var predicate func(float64) float64
	if q.Predicate != nil {
		class = q.Predicate.Class
		pred := q.Predicate
		predicate = func(x float64) float64 {
			if pred.Eval(x) {
				return 1
			}
			return 0
		}
	}
	spec := &profile.Spec{
		Video:     v,
		Model:     model,
		Class:     class,
		Agg:       q.Agg,
		Params:    q.Params(),
		Predicate: predicate,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if q.Setting.Resolution != 0 && !model.ValidResolution(q.Setting.Resolution) {
		return nil, fmt.Errorf("core: resolution %d invalid for model %s", q.Setting.Resolution, model.Name)
	}
	return spec, nil
}

// Profiles bundles the output of the profile-generation stage.
type Profiles struct {
	Spec       *profile.Spec
	Cube       *profile.Hypercube
	Correction *profile.ConstructionResult
	// Elapsed is the wall-clock profile-generation time; ModelInvocations
	// counts detector frame evaluations (Section 5.3.1's cost metric).
	Elapsed          time.Duration
	ModelInvocations int64
}

// GenerateProfiles runs the profile-generation stage for a query
// (Problem 2): construct the correction set by the elbow heuristic, then
// evaluate the full intervention-candidate hypercube.
func (s *System) GenerateProfiles(q *query.Query) (*Profiles, error) {
	return s.GenerateProfilesCtx(context.Background(), q)
}

// GenerateProfilesCtx is GenerateProfiles with cancellation threaded
// through the whole pipeline: a done ctx aborts planning, correction
// construction, and the hypercube's detect and estimate stages, returning
// the context's error with no partial result.
func (s *System) GenerateProfilesCtx(ctx context.Context, q *query.Query) (*Profiles, error) {
	spec, err := s.Resolve(q)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	invBefore := detect.Invocations()
	root := stats.NewStream(s.seed)

	corr, err := profile.ConstructCorrectionCtx(ctx, spec, s.correctionLimit, root.Child(1))
	if err != nil {
		return nil, fmt.Errorf("core: constructing correction set: %w", err)
	}
	fractions := plan.CandidateFractions(s.fractionStep, s.maxFraction)
	cube, err := profile.GenerateHypercubeCtx(ctx, spec, profile.HypercubeOptions{
		Fractions:      fractions,
		Correction:     corr.Correction,
		EarlyStopDelta: s.earlyStopDelta,
		Parallelism:    s.parallelism,
	}, root.Child(2))
	if err != nil {
		return nil, fmt.Errorf("core: generating hypercube: %w", err)
	}
	return &Profiles{
		Spec:             spec,
		Cube:             cube,
		Correction:       corr,
		Elapsed:          time.Since(start),
		ModelInvocations: detect.Invocations() - invBefore,
	}, nil
}

// SweepProfile generates a single-axis profile (fractions at the given
// resolution and removal combo) for a query — the 2D plot an administrator
// starts from. When opts.Parallelism is zero the system's configured
// parallelism (WithParallelism) applies.
func (s *System) SweepProfile(q *query.Query, opts profile.SweepOptions) (*profile.Profile, error) {
	return s.SweepProfileCtx(context.Background(), q, opts)
}

// SweepProfileCtx is SweepProfile with cancellation.
func (s *System) SweepProfileCtx(ctx context.Context, q *query.Query, opts profile.SweepOptions) (*profile.Profile, error) {
	spec, err := s.Resolve(q)
	if err != nil {
		return nil, err
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.parallelism
	}
	return profile.SweepFractionsCtx(ctx, spec, opts, stats.NewStream(s.seed).Child(3))
}

// LadderProfileCtx generates a fidelity-ladder profile for a query: one
// tradeoff point per tier of the named ladder (plan.LadderByName). The
// ladder's non-random tiers are repaired with the supplied correction
// set; pass nil only for all-random ladders. When opts.Parallelism is
// zero the system's configured parallelism applies.
func (s *System) LadderProfileCtx(ctx context.Context, q *query.Query, ladder plan.Ladder, opts profile.LadderOptions) (*profile.Profile, error) {
	spec, err := s.Resolve(q)
	if err != nil {
		return nil, err
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.parallelism
	}
	return profile.GenerateLadderCtx(ctx, spec, ladder, opts, stats.NewStream(s.seed).Child(3))
}

// Preferences are the public preferences guiding the tradeoff choice.
type Preferences struct {
	// MaxError is the largest acceptable analytical error bound.
	MaxError float64
}

// ChooseTradeoff applies the preferences to a generated hypercube.
func (s *System) ChooseTradeoff(p *Profiles, prefs Preferences) (degrade.Setting, error) {
	setting, ok := p.Cube.ChooseTradeoff(prefs.MaxError)
	if !ok {
		return degrade.Setting{}, fmt.Errorf(
			"core: no intervention candidate satisfies max error %v; loosen the preference or extend the candidates", prefs.MaxError)
	}
	return setting, nil
}

// Result is an executed query answer.
type Result struct {
	Query    *query.Query
	Setting  degrade.Setting
	Estimate estimate.Estimate
	Repaired bool
}

// Execute runs the query under its own intervention setting (Problem 1).
// Non-random settings are automatically repaired with a correction set
// constructed by the elbow heuristic.
func (s *System) Execute(q *query.Query) (*Result, error) {
	return s.ExecuteSetting(q, q.Setting)
}

// ExecuteCtx is Execute with cancellation.
func (s *System) ExecuteCtx(ctx context.Context, q *query.Query) (*Result, error) {
	return s.ExecuteSettingCtx(ctx, q, q.Setting)
}

// ExecuteSetting runs the query under an explicit setting (typically one
// chosen from a profile).
func (s *System) ExecuteSetting(q *query.Query, setting degrade.Setting) (*Result, error) {
	return s.ExecuteSettingCtx(context.Background(), q, setting)
}

// ExecuteSettingCtx is ExecuteSetting with cancellation.
func (s *System) ExecuteSettingCtx(ctx context.Context, q *query.Query, setting degrade.Setting) (*Result, error) {
	spec, err := s.Resolve(q)
	if err != nil {
		return nil, err
	}
	if err := setting.Validate(spec.Model); err != nil {
		return nil, err
	}
	root := stats.NewStream(s.seed)
	var corr *estimate.Correction
	repaired := false
	if !setting.IsRandomOnly(spec.Model) {
		res, err := profile.ConstructCorrectionCtx(ctx, spec, s.correctionLimit, root.Child(1))
		if err != nil {
			return nil, fmt.Errorf("core: constructing correction set: %w", err)
		}
		corr = res.Correction
		repaired = true
	}
	est, err := spec.EstimateSettingCtx(ctx, setting, corr, root.Child(4))
	if err != nil {
		return nil, err
	}
	return &Result{Query: q, Setting: setting, Estimate: est, Repaired: repaired}, nil
}

// AdaptiveResult is the outcome of ExecuteUntil.
type AdaptiveResult = profile.AdaptiveResult

// ExecuteUntil answers the query adaptively: frames are sampled (and
// detected) one batch at a time until the any-time error bound reaches
// targetErr, or maxFraction of the corpus has been touched. This is the
// stopping-rule usage the paper's EBGS baseline was built for, with the
// Hoeffding-Serfling any-time construction keeping the guarantee valid
// under adaptive stopping. Only random-only settings and mean-type
// aggregates are supported.
func (s *System) ExecuteUntil(q *query.Query, targetErr, maxFraction float64) (*AdaptiveResult, error) {
	return s.ExecuteUntilCtx(context.Background(), q, targetErr, maxFraction)
}

// ExecuteUntilCtx is ExecuteUntil with cancellation.
func (s *System) ExecuteUntilCtx(ctx context.Context, q *query.Query, targetErr, maxFraction float64) (*AdaptiveResult, error) {
	spec, err := s.Resolve(q)
	if err != nil {
		return nil, err
	}
	return profile.RunUntilCtx(ctx, spec, q.Setting, targetErr, maxFraction, stats.NewStream(s.seed).Child(5))
}

// GroundTruth computes the query's exact answer over the non-degraded
// corpus. It exists for experiments and examples; a production deployment
// cannot call it without violating the degradation goals.
func (s *System) GroundTruth(q *query.Query) (float64, error) {
	spec, err := s.Resolve(q)
	if err != nil {
		return 0, err
	}
	return spec.TrueAnswer()
}

// TransferProfile generates a fraction-axis profile on a *similar* video
// and re-labels it for the target corpus — the Section 3.3.1 fallback when
// the query video is too sensitive even for a correction set. The paper's
// Section 5.3.2 shows such profiles track the target's within a few
// percent.
func (s *System) TransferProfile(q *query.Query, similarDataset string, opts profile.SweepOptions) (*profile.Profile, error) {
	similar := *q
	similar.Dataset = similarDataset
	prof, err := s.SweepProfile(&similar, opts)
	if err != nil {
		return nil, err
	}
	prof.VideoName = q.Dataset + " (transferred from " + similarDataset + ")"
	return prof, nil
}

// DatasetClasses lists the classes a query can count; exported for CLIs.
func DatasetClasses() []scene.Class {
	return []scene.Class{scene.Car, scene.Person, scene.Face}
}
