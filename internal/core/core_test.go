package core

import (
	"math"
	"strings"
	"testing"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/query"
	"smokescreen/internal/scene"
)

func mustQuery(t *testing.T, input string) *query.Query {
	t.Helper()
	q, err := query.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestResolveDefaults(t *testing.T) {
	s := New()
	spec, err := s.Resolve(mustQuery(t, "SELECT AVG(count(car)) FROM small"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model.Name != "yolov4-sim" {
		t.Fatalf("default model %s", spec.Model.Name)
	}
	spec, err = s.Resolve(mustQuery(t, "SELECT AVG(count(car)) FROM night-street"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model.Name != "mask-rcnn-sim" {
		t.Fatalf("night-street default model %s", spec.Model.Name)
	}
}

func TestResolveErrors(t *testing.T) {
	s := New()
	cases := []string{
		"SELECT AVG(count(car)) FROM nowhere",
		"SELECT AVG(count(car)) FROM small USING alexnet",
		"SELECT AVG(count(car)) FROM small RESOLUTION 100",
		"SELECT AVG(count(car)) FROM small USING mtcnn",
	}
	for _, input := range cases {
		if _, err := s.Resolve(mustQuery(t, input)); err == nil {
			t.Fatalf("Resolve(%q) accepted", input)
		}
	}
}

func TestResolveCountPredicate(t *testing.T) {
	s := New()
	spec, err := s.Resolve(mustQuery(t, "SELECT COUNT(*) FROM small WHERE count(car) >= 2"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Class != scene.Car || spec.Predicate == nil {
		t.Fatalf("spec %+v", spec)
	}
	if spec.Predicate(1.5) != 0 || spec.Predicate(2) != 1 {
		t.Fatal("predicate transform wrong")
	}
}

func TestExecuteRandomSetting(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small SAMPLE 0.2")
	res, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired {
		t.Fatal("random-only execution should not repair")
	}
	truth, err := s.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Fatalf("ground truth %v", truth)
	}
	trueErr := math.Abs(res.Estimate.Value-truth) / truth
	if trueErr > res.Estimate.ErrBound {
		t.Fatalf("bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}

func TestExecuteNonRandomRepairs(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small SAMPLE 0.3 RESOLUTION 96")
	res, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired {
		t.Fatal("non-random execution must repair")
	}
	truth, _ := s.GroundTruth(q)
	trueErr := math.Abs(res.Estimate.Value-truth) / truth
	if trueErr > res.Estimate.ErrBound {
		t.Fatalf("repaired bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}

func TestExecuteSettingValidation(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small")
	if _, err := s.ExecuteSetting(q, degrade.Setting{SampleFraction: 2}); err == nil {
		t.Fatal("invalid setting accepted")
	}
}

func TestGenerateProfilesAndChoose(t *testing.T) {
	s := New(WithFractionCandidates(0.02, 0.1), WithCorrectionLimit(0.1))
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small")
	profiles, err := s.GenerateProfiles(q)
	if err != nil {
		t.Fatal(err)
	}
	if profiles.Cube == nil || profiles.Correction == nil {
		t.Fatal("profiles incomplete")
	}
	if len(profiles.Cube.Fractions) != 5 {
		t.Fatalf("fractions %v", profiles.Cube.Fractions)
	}
	if profiles.ModelInvocations <= 0 {
		t.Fatal("model invocations not counted")
	}
	if profiles.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}

	setting, err := s.ChooseTradeoff(profiles, Preferences{MaxError: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := setting.Validate(profiles.Spec.Model); err != nil {
		t.Fatalf("chosen setting invalid: %v", err)
	}
	// An impossible preference errors with guidance.
	if _, err := s.ChooseTradeoff(profiles, Preferences{MaxError: 1e-9}); err == nil {
		t.Fatal("impossible preference satisfied")
	} else if !strings.Contains(err.Error(), "loosen") {
		t.Fatalf("unhelpful error %v", err)
	}

	// Executing the chosen setting yields a bound within the preference.
	res, err := s.ExecuteSetting(q, setting)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.ErrBound > 0.75 {
		t.Fatalf("executed bound %v far above preference", res.Estimate.ErrBound)
	}
}

func TestGenerateProfilesEarlyStop(t *testing.T) {
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small")
	full, err := New(WithFractionCandidates(0.02, 0.2), WithCorrectionLimit(0.1)).GenerateProfiles(q)
	if err != nil {
		t.Fatal(err)
	}
	stopped, err := New(
		WithFractionCandidates(0.02, 0.2),
		WithCorrectionLimit(0.1),
		WithEarlyStop(0.05),
	).GenerateProfiles(q)
	if err != nil {
		t.Fatal(err)
	}
	countFilled := func(p *Profiles) int {
		n := 0
		for _, plane := range p.Cube.Bounds {
			for _, row := range plane {
				for _, v := range row {
					if !math.IsNaN(v) {
						n++
					}
				}
			}
		}
		return n
	}
	if countFilled(stopped) >= countFilled(full) {
		t.Fatalf("early stop filled %d cells, full sweep %d", countFilled(stopped), countFilled(full))
	}
}

func TestSweepProfile(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small")
	prof, err := s.SweepProfile(q, profile.SweepOptions{Fractions: []float64{0.05, 0.1, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Points) != 3 {
		t.Fatalf("profile points %d", len(prof.Points))
	}
}

func TestTransferProfile(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM mvi-40771 USING yolov4")
	prof, err := s.TransferProfile(q, "mvi-40775", profile.SweepOptions{Fractions: []float64{0.05, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prof.VideoName, "transferred from mvi-40775") {
		t.Fatalf("transfer label %q", prof.VideoName)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	q := mustQuery(t, "SELECT SUM(count(car)) FROM small SAMPLE 0.1")
	a, err := New(WithSeed(9)).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithSeed(9)).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatal("same seed gave different results")
	}
	c, err := New(WithSeed(10)).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate == c.Estimate {
		t.Fatal("different seeds gave identical results")
	}
}

func TestVarQueryEndToEnd(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT VAR(count(car)) FROM small SAMPLE 0.8")
	res, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := s.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Fatalf("variance ground truth %v", truth)
	}
	trueErr := math.Abs(res.Estimate.Value-truth) / truth
	if trueErr > res.Estimate.ErrBound {
		t.Fatalf("VAR bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}

func TestMaxQueryEndToEnd(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT MAX(count(car)) FROM small SAMPLE 0.3")
	res, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Value < 1 {
		t.Fatalf("MAX estimate %v", res.Estimate.Value)
	}
	if res.Query.Agg != estimate.MAX {
		t.Fatal("query echo wrong")
	}
}

func TestExecuteUntil(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small")
	res, err := s.ExecuteUntil(q, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Estimate.ErrBound > 0.4 {
		t.Fatalf("adaptive run: %+v", res)
	}
	if _, err := s.ExecuteUntil(mustQuery(t, "SELECT AVG(count(car)) FROM small RESOLUTION 160"), 0.4, 1); err == nil {
		t.Fatal("adaptive run with non-random setting accepted")
	}
}

func TestGroundTruthErrors(t *testing.T) {
	s := New()
	if _, err := s.GroundTruth(mustQuery(t, "SELECT AVG(count(car)) FROM nowhere")); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTransferProfileErrors(t *testing.T) {
	s := New()
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small")
	if _, err := s.TransferProfile(q, "nowhere", profile.SweepOptions{Fractions: []float64{0.1}}); err == nil {
		t.Fatal("unknown similar dataset accepted")
	}
}

func TestExecuteInfeasibleRemoval(t *testing.T) {
	s := New()
	// The small corpus is mostly person frames: full sampling under person
	// removal cannot be satisfied.
	q := mustQuery(t, "SELECT AVG(count(car)) FROM small REMOVE person")
	if _, err := s.Execute(q); err == nil {
		t.Fatal("infeasible removal accepted")
	}
}

func TestDatasetClasses(t *testing.T) {
	if got := DatasetClasses(); len(got) != 3 {
		t.Fatalf("DatasetClasses = %v", got)
	}
}
