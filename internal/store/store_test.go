package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testKey derives a valid hex key from a label.
func testKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"version":1,"value":%d}`, i))
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("roundtrip")
	payload := payloadFor(1)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mangled: %s", got)
	}
	// Mutating the returned slice must not poison later reads.
	got[0] = 'X'
	again, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, payload) {
		t.Fatal("cache shares memory with callers")
	}
}

func TestGetMissingReturnsNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(testKey("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if s.Has(testKey("missing")) {
		t.Fatal("Has reported a missing key")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789", testKey("x") + "/../y"} {
		if err := s.Put(key, payloadFor(0)); err == nil {
			t.Errorf("Put accepted key %q", key)
		}
		if _, err := s.Get(key); err == nil {
			t.Errorf("Get accepted key %q", key)
		}
	}
}

func TestPutSurvivesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	key := testKey("restart")
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, payloadFor(7)); err != nil {
		t.Fatal(err)
	}
	// A second store over the same root (a restarted daemon) must read
	// the artifact from disk, not memory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payloadFor(7)) {
		t.Fatalf("restart lost payload: %s", got)
	}
	if stats := s2.Stats(); stats.DiskHits != 1 {
		t.Fatalf("expected one disk hit, got %+v", stats)
	}
}

func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithCacheBudget(0)) // force disk reads
	if err != nil {
		t.Fatal(err)
	}
	good, bad := testKey("good"), testKey("torn")
	if err := s.Put(good, payloadFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bad, payloadFor(2)); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write surviving a crash: truncate the file mid-JSON.
	path := filepath.Join(dir, bad[:2], bad+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Get returns a typed error, not a crash and not ErrNotFound.
	var corrupt *CorruptError
	if _, err := s.Get(bad); !errors.As(err, &corrupt) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if corrupt.Key != bad {
		t.Fatalf("corrupt error names key %s, want %s", corrupt.Key, bad)
	}

	// The scan skips the damaged entry and still lists the healthy one.
	keys, corruptErrs := s.Keys()
	if len(keys) != 1 || keys[0] != good {
		t.Fatalf("scan keys = %v, want [%s]", keys, good)
	}
	if len(corruptErrs) != 1 {
		t.Fatalf("scan corrupt = %v, want one entry", corruptErrs)
	}

	// Regeneration overwrites the corrupt file and heals the entry.
	if err := s.Put(bad, payloadFor(2)); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(bad); err != nil || !bytes.Equal(got, payloadFor(2)) {
		t.Fatalf("heal failed: %s, %v", got, err)
	}
}

func TestChecksumMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithCacheBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("bitrot")
	if err := s.Put(key, []byte(`{"value":111}`)); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes while keeping the envelope valid JSON.
	path := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotted := bytes.Replace(data, []byte(`111`), []byte(`999`), 1)
	if bytes.Equal(rotted, data) {
		t.Fatal("test setup: payload not found in envelope")
	}
	if err := os.WriteFile(path, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	var corrupt *CorruptError
	if _, err := s.Get(key); !errors.As(err, &corrupt) {
		t.Fatalf("bit rot undetected: %v", err)
	}
}

func TestEmptyPayloadRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey("empty"), nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := s.Put(testKey("notjson"), []byte("not json")); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits two payloads; inserting a third evicts the least
	// recently used, which is then still served from disk.
	payload := func(i int) []byte { return payloadFor(i) }
	budget := int64(2 * len(payload(0)))
	s, err := Open(t.TempDir(), WithCacheBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	k := []string{testKey("a"), testKey("b"), testKey("c")}
	for i, key := range k[:2] {
		if err := s.Put(key, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k[0] so k[1] is the LRU victim.
	if _, err := s.Get(k[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k[2], payload(2)); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.CacheCount != 2 || stats.CacheBytes > budget {
		t.Fatalf("cache out of budget: %+v", stats)
	}
	before := stats.DiskHits
	if got, err := s.Get(k[1]); err != nil || !bytes.Equal(got, payload(1)) {
		t.Fatalf("evicted entry unreadable: %v", err)
	}
	if s.Stats().DiskHits != before+1 {
		t.Fatal("evicted entry did not fall back to disk")
	}
}

func TestConcurrentSameKey(t *testing.T) {
	// Parallel writers and readers on one key: every read observes some
	// complete payload (never torn, never corrupt). Run under -race by
	// make test-race.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("contended")
	if err := s.Put(key, payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	const writers, readers, rounds = 4, 8, 50
	valid := make(map[string]bool)
	for i := 0; i <= writers*rounds; i++ {
		valid[string(payloadFor(i%writers))] = true
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Put(key, payloadFor(w)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, err := s.Get(key)
				if err != nil {
					t.Error(err)
					return
				}
				if !valid[string(got)] {
					t.Errorf("torn read: %s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	// No temp-file litter left behind.
	entries, err := os.ReadDir(filepath.Join(s.Root(), key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("shard has %d files, want 1 (temp litter?)", len(entries))
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	s, err := Open(t.TempDir(), WithCacheBudget(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := testKey(fmt.Sprintf("key-%d", i))
			if err := s.Put(key, payloadFor(i)); err != nil {
				t.Error(err)
				return
			}
			got, err := s.Get(key)
			if err != nil || !bytes.Equal(got, payloadFor(i)) {
				t.Errorf("key %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	keys, corrupt := s.Keys()
	if len(keys) != n || len(corrupt) != 0 {
		t.Fatalf("scan found %d keys, %d corrupt; want %d, 0", len(keys), len(corrupt), n)
	}
}

func TestDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("delete")
	if err := s.Put(key, payloadFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still loads: %v", err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestEnvelopeTransferRoundTrip pins the fleet replication transfer unit:
// GetEnvelope on one store, PutEnvelope on another, byte-identical file.
func TestEnvelopeTransferRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("envelope-roundtrip")
	payload := payloadFor(7)
	if err := src.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	env, err := src.GetEnvelope(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.PutEnvelope(key, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("PutEnvelope returned %s, want %s", got, payload)
	}
	// The replica file is byte-identical to the original — creation time
	// and checksum travel with the envelope.
	srcFile, err := os.ReadFile(src.path(key))
	if err != nil {
		t.Fatal(err)
	}
	dstFile, err := os.ReadFile(dst.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srcFile, dstFile) {
		t.Fatal("replica envelope differs from the original file")
	}
	if served, err := dst.Get(key); err != nil || !bytes.Equal(served, payload) {
		t.Fatalf("replica Get = %s, %v", served, err)
	}
}

// TestPutEnvelopeRejectsTampered extends the torn-write tests across the
// transfer boundary: a corrupted envelope must never reach a replica's
// disk, and the failure is a typed *CorruptError.
func TestPutEnvelopeRejectsTampered(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("envelope-tampered")
	if err := src.Put(key, payloadFor(3)); err != nil {
		t.Fatal(err)
	}
	env, err := src.GetEnvelope(key)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"torn":      env[:len(env)/2],
		"bit-flip":  bytes.Replace(env, []byte(`"value":3`), []byte(`"value":4`), 1),
		"wrong-key": env, // presented under a different key
	}
	for name, data := range cases {
		dst, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		putKey := key
		if name == "wrong-key" {
			putKey = testKey("some-other-artifact")
		}
		var corrupt *CorruptError
		if _, err := dst.PutEnvelope(putKey, data); !errors.As(err, &corrupt) {
			t.Errorf("%s: PutEnvelope error = %v, want *CorruptError", name, err)
		}
		if _, err := os.Stat(dst.path(putKey)); !os.IsNotExist(err) {
			t.Errorf("%s: rejected envelope reached disk", name)
		}
	}
}

// TestGetEnvelopeValidates: a corrupt on-disk file must not be served as
// a transfer source — replication would otherwise spread the corruption.
func TestGetEnvelopeValidates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("envelope-validates")
	if err := s.Put(key, payloadFor(9)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	var corrupt *CorruptError
	if _, err := s.GetEnvelope(key); !errors.As(err, &corrupt) {
		t.Fatalf("GetEnvelope on torn file = %v, want *CorruptError", err)
	}
	if _, err := s.GetEnvelope(testKey("never-stored")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetEnvelope on missing key = %v, want ErrNotFound", err)
	}
}

// TestPutPrettyPayloadSurvivesReload pins the canonicalization contract:
// a pretty-printed payload (what profile.SaveProfile emits) must read
// back identically from the warm cache, from a cold disk read, and
// through the envelope transfer path. Before canonicalization, the
// envelope encoder compacted the payload on write while the checksum
// covered the indented original — so every cold read of a real profile
// misreported *CorruptError and a fleet could never replicate one.
func TestPutPrettyPayloadSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("pretty")
	pretty := []byte("{\n  \"version\": 1,\n  \"note\": \"a < b && c > d\",\n  \"points\": [\n    {\"fraction\": 0.05}\n  ]\n}\n")
	canonical := []byte(`{"version":1,"note":"a < b && c > d","points":[{"fraction":0.05}]}`)
	if err := s.Put(key, pretty); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm, canonical) {
		t.Fatalf("warm read = %s, want canonical %s", warm, canonical)
	}
	// Cold read: the restart path that used to flag the artifact corrupt.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s2.Get(key)
	if err != nil {
		t.Fatalf("cold read of a pretty-printed payload: %v", err)
	}
	if !bytes.Equal(cold, canonical) {
		t.Fatalf("cold read = %s, want canonical %s", cold, canonical)
	}
	// Envelope transfer: replication of the same artifact must validate.
	env, err := s2.GetEnvelope(key)
	if err != nil {
		t.Fatalf("GetEnvelope after pretty Put: %v", err)
	}
	replica, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := replica.PutEnvelope(key, env)
	if err != nil {
		t.Fatalf("PutEnvelope of transferred envelope: %v", err)
	}
	if !bytes.Equal(got, canonical) {
		t.Fatalf("replica payload = %s, want canonical %s", got, canonical)
	}
	// The startup scan must count it as loadable, not corrupt.
	keys, corrupt := s2.Keys()
	if len(corrupt) != 0 {
		t.Fatalf("scan flagged corruption: %v", corrupt)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("scan keys = %v", keys)
	}
}
