package store

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// FuzzEnvelopeDecode pins the store's corruption-tolerance contract at the
// byte level: whatever is on disk — a real envelope, a torn write, bit
// rot, or arbitrary garbage — decodeEnvelope must either return the
// verified payload or a typed *CorruptError. It must never panic and
// never return success for bytes that fail validation.
func FuzzEnvelopeDecode(f *testing.F) {
	const key = "0123456789abcdef"

	// Seed with a real envelope produced by the writer, so the corpus
	// starts from the genuine format rather than random bytes.
	s, err := Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	payload := []byte(`{"fractions":[0.01,0.05,0.1],"bounds":[0.41,0.22,0.09]}`)
	if err := s.Put(key, payload); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)

	// Structured corruptions of the real envelope: truncation (torn
	// write), a flipped payload bit (rot), and schema-level damage.
	f.Add(data[:len(data)/2])
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 1
	f.Add(flipped)
	f.Add(bytes.Replace(data, []byte(`"version":1`), []byte(`"version":99`), 1))
	f.Add([]byte(`{"version":1,"key":"` + key + `"}`))
	f.Add([]byte("{"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := decodeEnvelope(key, "fuzz", b)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *CorruptError: %v", err)
			}
			return
		}
		// Success means the checksum verified; an envelope naming another
		// key or version must never decode.
		if got == nil {
			t.Fatal("successful decode returned a nil payload")
		}
	})
}
