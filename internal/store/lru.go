package store

import "container/list"

// lru is a byte-budgeted least-recently-used cache of artifact payloads.
// It is not goroutine-safe; Store serializes access under its mutex. A
// zero or negative budget disables caching entirely (every put is a
// no-op), which keeps the daemon runnable on memory-starved hosts.
type lru struct {
	budget  int64
	bytes   int64
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key     string
	payload []byte
}

func newLRU(budget int64) *lru {
	return &lru{
		budget:  budget,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *lru) count() int { return len(c.entries) }

func (c *lru) get(key string) ([]byte, bool) {
	elem, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(elem)
	return elem.Value.(*lruEntry).payload, true
}

func (c *lru) put(key string, payload []byte) {
	if c.budget <= 0 || int64(len(payload)) > c.budget {
		// An over-budget artifact would evict everything and still not fit.
		c.remove(key)
		return
	}
	if elem, ok := c.entries[key]; ok {
		entry := elem.Value.(*lruEntry)
		c.bytes += int64(len(payload)) - int64(len(entry.payload))
		entry.payload = payload
		c.order.MoveToFront(elem)
	} else {
		c.entries[key] = c.order.PushFront(&lruEntry{key: key, payload: payload})
		c.bytes += int64(len(payload))
	}
	for c.bytes > c.budget {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.evict(oldest)
	}
}

func (c *lru) remove(key string) {
	if elem, ok := c.entries[key]; ok {
		c.evict(elem)
	}
}

func (c *lru) evict(elem *list.Element) {
	entry := elem.Value.(*lruEntry)
	c.order.Remove(elem)
	delete(c.entries, entry.key)
	c.bytes -= int64(len(entry.payload))
}
