// Package store implements the content-addressed, versioned on-disk
// profile store behind the Smokescreen profile service. Artifacts —
// serialized tradeoff curves and hypercubes — are keyed by the canonical
// hash of everything they depend on (profile.KeySpec.CanonicalKey), so
// equal requests address equal bytes and expensive generation work is
// reused across every consumer of the daemon.
//
// Design:
//
//   - Layout. An artifact with key K lives at <root>/K[:2]/K.json; the
//     two-character shard prefix keeps directories small under millions of
//     profiles. Each file is a small JSON envelope (version, key, payload
//     checksum, creation time) wrapping the artifact bytes verbatim.
//   - Durability. Writes go to a temp file in the same shard directory and
//     are renamed into place, so a crash — or a SIGTERM mid-generation —
//     never leaves a half-written artifact at a live key. Rename is atomic
//     on POSIX filesystems.
//   - Corruption tolerance. A torn or bit-rotted file surfaces as a typed
//     *CorruptError from Get, and Keys skips it rather than failing the
//     scan; the daemon re-generates past it instead of crashing.
//   - Caching. A byte-budgeted in-memory LRU fronts the disk; hits serve
//     without touching the filesystem. Payload slices handed out are
//     copies, so callers cannot poison the cache.
//
// The store is safe for concurrent use by any number of goroutines.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// envelopeVersion versions the on-disk envelope schema.
const envelopeVersion = 1

// ErrNotFound reports a key with no stored artifact.
var ErrNotFound = errors.New("store: artifact not found")

// CorruptError reports an on-disk artifact that failed validation: a torn
// write surviving a crash on a non-atomic filesystem, bit rot, or manual
// tampering. The entry is unusable but the store remains healthy; callers
// regenerate (Put overwrites the corrupt file).
type CorruptError struct {
	Key    string
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: artifact %s corrupt (%s): %s", e.Key, e.Path, e.Reason)
}

// envelope is the on-disk schema wrapping an artifact.
type envelope struct {
	Version     int             `json:"version"`
	Key         string          `json:"key"`
	PayloadSHA  string          `json:"payload_sha256"`
	CreatedUnix int64           `json:"created_unix"`
	Payload     json.RawMessage `json:"payload"`
}

// Stats is a point-in-time snapshot of store activity.
type Stats struct {
	Hits        int64 // Gets served from memory
	DiskHits    int64 // Gets served from disk
	Misses      int64 // Gets that found nothing
	Puts        int64
	CacheBytes  int64 // payload bytes currently cached
	CacheCount  int   // entries currently cached
	CacheBudget int64
}

// Store is a content-addressed artifact store rooted at one directory.
type Store struct {
	root string

	mu    sync.Mutex
	cache *lru

	hits     atomic.Int64
	diskHits atomic.Int64
	misses   atomic.Int64
	puts     atomic.Int64
}

// Option configures Open.
type Option func(*Store)

// WithCacheBudget bounds the in-memory cache's total payload bytes; 0
// disables caching. The default is 64 MiB.
func WithCacheBudget(n int64) Option {
	return func(s *Store) { s.cache = newLRU(n) }
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root: %w", err)
	}
	s := &Store{root: dir, cache: newLRU(64 << 20)}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// validKey gates keys to what CanonicalKey produces: lowercase hex, long
// enough to shard. It keeps arbitrary strings from escaping the root via
// path separators.
func validKey(key string) error {
	if len(key) < 8 {
		return fmt.Errorf("store: key %q too short", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return nil
}

// path maps a key to its on-disk location.
func (s *Store) path(key string) string {
	return filepath.Join(s.root, key[:2], key+".json")
}

// EnvelopePath returns the on-disk location of key's envelope without
// touching it. Fleet tests and repair tooling use it to inspect (or
// deliberately damage) a specific replica's shard.
func (s *Store) EnvelopePath(key string) string { return s.path(key) }

// Invalidate drops key's cached payload so the next Get re-reads — and
// re-validates — the disk copy, the cold-cache state a process restart
// would produce.
func (s *Store) Invalidate(key string) {
	s.mu.Lock()
	s.cache.remove(key)
	s.mu.Unlock()
}

// Put stores payload under key, replacing any previous artifact. The
// write is atomic: payload is wrapped in a checksummed envelope, written
// to a temp file in the destination shard, fsynced, and renamed into
// place.
//
// The payload is canonicalized (JSON-compacted) first and the CANONICAL
// bytes are what gets checksummed, cached, stored, and later served.
// This is load-bearing: the envelope encoder compacts a RawMessage as it
// writes, so checksumming the caller's pretty-printed bytes would mint an
// envelope whose own checksum never matches its own disk payload — every
// cold read (and every replica copy in a fleet) would misreport the
// artifact as corrupt. Canonical bytes are also what make equal artifacts
// byte-identical across fleet replicas regardless of who generated them.
func (s *Store) Put(key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if len(payload) == 0 {
		return fmt.Errorf("store: empty payload for key %s", key)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, payload); err != nil {
		// Payload must itself be valid JSON to ride in a RawMessage.
		return fmt.Errorf("store: payload for %s is not valid JSON: %w", key, err)
	}
	canonical := compacted.Bytes()
	sum := sha256.Sum256(canonical)
	env := envelope{
		Version:     envelopeVersion,
		Key:         key,
		PayloadSHA:  hex.EncodeToString(sum[:]),
		CreatedUnix: time.Now().Unix(),
		Payload:     json.RawMessage(canonical),
	}
	data, err := marshalEnvelope(&env)
	if err != nil {
		return fmt.Errorf("store: encoding envelope for %s: %w", key, err)
	}
	if err := s.writeEnvelope(key, data); err != nil {
		return err
	}
	s.puts.Add(1)

	s.mu.Lock()
	s.cache.put(key, append([]byte(nil), canonical...))
	s.mu.Unlock()
	return nil
}

// marshalEnvelope encodes an envelope with HTML escaping OFF, so the
// payload lands on disk byte-for-byte as checksummed: the default
// json.Marshal would rewrite <, > and & inside the (already canonical)
// payload, silently breaking the checksum for payloads containing them.
func marshalEnvelope(env *envelope) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeEnvelope atomically publishes raw envelope bytes at key: temp file
// in the destination shard, fsync, rename.
func (s *Store) writeEnvelope(key string, data []byte) error {
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating shard: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+key[:8]+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure below, leave no temp litter.
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("store: writing %s: %w", key, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: syncing %s: %w", key, err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("store: closing %s: %w", key, err))
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing %s: %w", key, err)
	}
	return nil
}

// GetEnvelope returns the raw on-disk envelope bytes for key after
// validating them — the transfer unit of fleet replication and read
// repair. Moving whole envelopes (rather than re-wrapping payloads)
// makes a replica copy byte-identical to the original file, creation
// time and checksum included, so repaired replicas are indistinguishable
// from first-hand writes.
func (s *Store) GetEnvelope(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("store: reading %s: %w", key, err)
	}
	if _, err := decodeEnvelope(key, path, data); err != nil {
		return nil, err
	}
	return data, nil
}

// PutEnvelope ingests envelope bytes produced by another store's
// GetEnvelope, replacing any previous artifact at key. The envelope is
// fully re-validated first — version, key match, payload checksum — so a
// transfer torn or tampered in flight surfaces as *CorruptError and never
// reaches disk: repair is a verified byte copy. The validated payload is
// returned so repairing readers can serve it without a second read.
func (s *Store) PutEnvelope(key string, data []byte) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	payload, err := decodeEnvelope(key, s.path(key), data)
	if err != nil {
		return nil, err
	}
	if err := s.writeEnvelope(key, data); err != nil {
		return nil, err
	}
	s.puts.Add(1)
	s.mu.Lock()
	s.cache.put(key, append([]byte(nil), payload...))
	s.mu.Unlock()
	return append([]byte(nil), payload...), nil
}

// Get returns a copy of the artifact payload stored under key. It returns
// ErrNotFound when the key has never been stored and a *CorruptError when
// the on-disk file exists but fails validation.
func (s *Store) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if payload, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return append([]byte(nil), payload...), nil
	}
	s.mu.Unlock()

	payload, err := s.readDisk(key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			s.misses.Add(1)
		}
		return nil, err
	}
	s.diskHits.Add(1)
	s.mu.Lock()
	s.cache.put(key, payload)
	s.mu.Unlock()
	return append([]byte(nil), payload...), nil
}

// Has reports whether key resolves to a loadable artifact.
func (s *Store) Has(key string) bool {
	_, err := s.Get(key)
	return err == nil
}

// readDisk loads and validates one envelope from disk.
func (s *Store) readDisk(key string) ([]byte, error) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("store: reading %s: %w", key, err)
	}
	return decodeEnvelope(key, path, data)
}

// decodeEnvelope validates raw envelope bytes claimed to hold the artifact
// at key and returns the verified payload. It is the pure decode half of
// readDisk — every byte of input is attacker-controlled from the decoder's
// point of view (the file may be torn, rotted, or tampered), so failures
// must always surface as *CorruptError, never panic. The fuzz target pins
// that property.
func decodeEnvelope(key, path string, data []byte) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, &CorruptError{Key: key, Path: path, Reason: "undecodable envelope: " + err.Error()}
	}
	if env.Version != envelopeVersion {
		return nil, &CorruptError{Key: key, Path: path, Reason: fmt.Sprintf("unsupported envelope version %d", env.Version)}
	}
	if env.Key != key {
		return nil, &CorruptError{Key: key, Path: path, Reason: "envelope names key " + env.Key}
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.PayloadSHA {
		return nil, &CorruptError{Key: key, Path: path, Reason: "payload checksum mismatch"}
	}
	return []byte(env.Payload), nil
}

// Delete removes an artifact from disk and memory. Deleting a missing key
// is a no-op.
func (s *Store) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	s.cache.remove(key)
	s.mu.Unlock()
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting %s: %w", key, err)
	}
	return nil
}

// Keys scans the store and returns the sorted keys of every loadable
// artifact. Corrupt or foreign files are skipped (returned in the second
// slice as *CorruptError), never fatal: a damaged entry costs one
// regeneration, not the store.
func (s *Store) Keys() ([]string, []error) {
	var keys []string
	var corrupt []error
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return nil, []error{fmt.Errorf("store: scanning root: %w", err)}
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.root, shard.Name()))
		if err != nil {
			corrupt = append(corrupt, err)
			continue
		}
		for _, entry := range entries {
			name := entry.Name()
			if entry.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
				continue
			}
			key := strings.TrimSuffix(name, ".json")
			if validKey(key) != nil || !strings.HasPrefix(key, shard.Name()) {
				continue
			}
			if _, err := s.readDisk(key); err != nil {
				corrupt = append(corrupt, err)
				continue
			}
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, corrupt
}

// Stats snapshots store activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	bytes, count, budget := s.cache.bytes, s.cache.count(), s.cache.budget
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		DiskHits:    s.diskHits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		CacheBytes:  bytes,
		CacheCount:  count,
		CacheBudget: budget,
	}
}
