package query

import (
	"strings"
	"testing"
	"testing/quick"

	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
)

func mustParse(t *testing.T, input string) *Query {
	t.Helper()
	q, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return q
}

func TestParseBasicAvg(t *testing.T) {
	q := mustParse(t, "SELECT AVG(count(car)) FROM night-street USING mask-rcnn SAMPLE 0.1")
	if q.Agg != estimate.AVG || q.Class != scene.Car || q.Dataset != "night-street" {
		t.Fatalf("parsed %+v", q)
	}
	if q.Model != "mask-rcnn" || q.Setting.SampleFraction != 0.1 {
		t.Fatalf("parsed %+v", q)
	}
	if q.Delta != 0.05 || q.R != 0.99 {
		t.Fatalf("defaults wrong: %+v", q)
	}
}

func TestParseVar(t *testing.T) {
	q := mustParse(t, "SELECT VAR(count(car)) FROM small SAMPLE 0.5")
	if q.Agg != estimate.VAR || q.Class != scene.Car {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseNoise(t *testing.T) {
	q := mustParse(t, "SELECT AVG(count(car)) FROM small NOISE 0.1")
	if q.Setting.NoiseSigma != 0.1 {
		t.Fatalf("noise %v", q.Setting.NoiseSigma)
	}
	if !strings.Contains(q.String(), "NOISE 0.1") {
		t.Fatalf("String() = %q", q.String())
	}
	if _, err := Parse("SELECT AVG(count(car)) FROM small NOISE 0.9"); err == nil {
		t.Fatal("absurd noise accepted")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select avg(count(car)) from small sample 0.5")
	if q.Agg != estimate.AVG || q.Setting.SampleFraction != 0.5 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseCountWithPredicate(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(*) FROM ua-detrac WHERE count(car) >= 3 USING yolov4 SAMPLE 0.05")
	if q.Agg != estimate.COUNT || q.Predicate == nil {
		t.Fatalf("parsed %+v", q)
	}
	if q.Predicate.Class != scene.Car || q.Predicate.Op != ">=" || q.Predicate.Value != 3 {
		t.Fatalf("predicate %+v", q.Predicate)
	}
	if !q.Predicate.Eval(3) || q.Predicate.Eval(2.5) {
		t.Fatal("predicate evaluation wrong")
	}
}

func TestParseAllClauses(t *testing.T) {
	q := mustParse(t, "SELECT MAX(count(car)) FROM ua-detrac USING yolov4 SAMPLE 0.02 RESOLUTION 320 REMOVE person,face CONFIDENCE 99 QUANTILE 0.95")
	if q.Setting.Resolution != 320 {
		t.Fatalf("resolution %d", q.Setting.Resolution)
	}
	if len(q.Setting.Restricted) != 2 || q.Setting.Restricted[0] != scene.Person || q.Setting.Restricted[1] != scene.Face {
		t.Fatalf("restricted %v", q.Setting.Restricted)
	}
	if q.Delta < 0.0099 || q.Delta > 0.0101 {
		t.Fatalf("delta %v", q.Delta)
	}
	if q.R != 0.95 {
		t.Fatalf("r %v", q.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"FROM small",
		"SELECT MEDIAN(count(car)) FROM small",
		"SELECT AVG(count(dog)) FROM small",
		"SELECT AVG(sum(car)) FROM small",
		"SELECT AVG(count(car)) FROM small SAMPLE 2",
		"SELECT AVG(count(car)) FROM small SAMPLE 0",
		"SELECT AVG(count(car)) FROM small SAMPLE abc",
		"SELECT AVG(count(car)) FROM small BOGUS 3",
		"SELECT COUNT(*) FROM small",
		"SELECT AVG(count(car)) FROM small WHERE count(car) >= 1",
		"SELECT COUNT(*) FROM small WHERE count(car) ~ 1",
		"SELECT AVG(count(car)) FROM small CONFIDENCE 101",
		"SELECT AVG(count(car)) FROM small QUANTILE 1.5",
		"SELECT COUNT(*) FROM small WHERE count(car) >=",
		"SELECT AVG(count(car))",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Fatalf("Parse(%q) accepted", input)
		}
	}
}

func TestPredicateOps(t *testing.T) {
	cases := []struct {
		op       string
		count    float64
		expected bool
	}{
		{">=", 3, true}, {">=", 2, false},
		{">", 3, false}, {">", 4, true},
		{"<=", 3, true}, {"<=", 4, false},
		{"<", 2, true}, {"<", 3, false},
		{"=", 3, true}, {"=", 2, false},
		{"==", 3, true},
		{"!=", 2, true}, {"!=", 3, false},
	}
	for _, c := range cases {
		p := Predicate{Class: scene.Car, Op: c.op, Value: 3}
		if got := p.Eval(c.count); got != c.expected {
			t.Fatalf("%s %v: got %v", c.op, c.count, got)
		}
	}
	if (&Predicate{Op: "??"}).Eval(1) {
		t.Fatal("unknown op evaluated true")
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"SELECT AVG(count(car)) FROM night-street USING mask-rcnn SAMPLE 0.1",
		"SELECT COUNT(*) FROM ua-detrac WHERE count(car) >= 3 USING yolov4 SAMPLE 0.05",
		"SELECT MAX(count(car)) FROM ua-detrac USING yolov4 RESOLUTION 320 REMOVE person,face",
		"SELECT SUM(count(person)) FROM small",
	}
	for _, input := range inputs {
		q := mustParse(t, input)
		again := mustParse(t, q.String())
		if q.String() != again.String() {
			t.Fatalf("round trip unstable: %q -> %q", q.String(), again.String())
		}
		if again.Agg != q.Agg || again.Dataset != q.Dataset || again.Setting.SampleFraction != q.Setting.SampleFraction {
			t.Fatalf("round trip lost fields: %+v vs %+v", q, again)
		}
	}
}

func TestParamsFromQuery(t *testing.T) {
	q := mustParse(t, "SELECT MAX(count(car)) FROM small CONFIDENCE 90 QUANTILE 0.98")
	p := q.Params()
	if p.R != 0.98 {
		t.Fatalf("params %+v", p)
	}
	if p.Delta < 0.0999 || p.Delta > 0.1001 {
		t.Fatalf("params %+v", p)
	}
}

func TestTokenizerNeverPanics(t *testing.T) {
	property := func(input string) bool {
		// Parse must return (possibly an error) without panicking on any
		// input, including multi-byte runes and operator fragments.
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks := tokenize("count(car)>=3,x<=2 a!=b c=d")
	want := []string{"count", "(", "car", ")", ">=", "3", ",", "x", "<=", "2", "a", "!=", "b", "c", "=", "d"}
	if strings.Join(toks, " ") != strings.Join(want, " ") {
		t.Fatalf("tokenize = %v", toks)
	}
}
