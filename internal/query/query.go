// Package query implements Smokescreen's small analytical query language.
// Queries follow the paper's model: a frame-level detection UDF wrapped in
// an aggregate, executed under a set of destructive interventions:
//
//	SELECT AVG(count(car)) FROM night-street USING mask-rcnn SAMPLE 0.1
//	SELECT SUM(count(car)) FROM ua-detrac USING yolov4 RESOLUTION 320
//	SELECT COUNT(*) FROM ua-detrac WHERE count(car) >= 3 USING yolov4
//	SELECT MAX(count(car)) FROM ua-detrac USING yolov4 QUANTILE 0.99
//	SELECT AVG(count(car)) FROM small SAMPLE 0.2 REMOVE person,face
//	SELECT AVG(count(car)) FROM small NOISE 0.1
//	SELECT AVG(count(car)) FROM small BLUR 7 QUANTIZE 32 OCCLUDE 0.2
//
// Clauses may appear in any order after FROM. Keywords are
// case-insensitive; dataset, model and class names are lowercase.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
)

// Predicate is the optional COUNT filter: count(Class) Op Value.
type Predicate struct {
	Class scene.Class
	Op    string // one of >=, >, <=, <, =, !=
	Value float64
}

// Eval applies the predicate to a per-frame count.
func (p *Predicate) Eval(count float64) bool {
	switch p.Op {
	case ">=":
		return count >= p.Value
	case ">":
		return count > p.Value
	case "<=":
		return count <= p.Value
	case "<":
		return count < p.Value
	case "=", "==":
		return count == p.Value
	case "!=":
		return count != p.Value
	default:
		return false
	}
}

// Query is a parsed analytical query.
type Query struct {
	Agg       estimate.Agg
	Class     scene.Class // class counted by the detection UDF
	Dataset   string
	Model     string     // empty: system default for the dataset
	Predicate *Predicate // COUNT only
	Setting   degrade.Setting
	Delta     float64 // risk, default 0.05
	R         float64 // extreme quantile, default 0.99
}

// Params returns the estimator parameters the query requests.
func (q *Query) Params() estimate.Params {
	return estimate.Params{Delta: q.Delta, R: q.R}
}

// String renders the query back to (canonical) query-language syntax.
func (q *Query) String() string {
	var b strings.Builder
	if q.Agg == estimate.COUNT {
		fmt.Fprintf(&b, "SELECT COUNT(*) FROM %s", q.Dataset)
		if q.Predicate != nil {
			fmt.Fprintf(&b, " WHERE count(%s) %s %g", q.Predicate.Class, q.Predicate.Op, q.Predicate.Value)
		}
	} else {
		fmt.Fprintf(&b, "SELECT %s(count(%s)) FROM %s", q.Agg, q.Class, q.Dataset)
	}
	if q.Model != "" {
		fmt.Fprintf(&b, " USING %s", q.Model)
	}
	// The axis clauses come from the registry, in canonical axis order:
	// a new axis renders here the moment it registers a Clause.
	for _, clause := range degrade.Clauses() {
		if v := clause.Render(q.Setting); v != "" {
			fmt.Fprintf(&b, " %s %s", clause.Keyword, v)
		}
	}
	return b.String()
}

// lexer state.
type parser struct {
	tokens []string
	pos    int
}

// Parse parses a query string.
func Parse(input string) (*Query, error) {
	p := &parser{tokens: tokenize(input)}
	q := &Query{Delta: 0.05, R: 0.99, Setting: degrade.Setting{SampleFraction: 1}}

	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseAggregate(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.next("dataset name")
	if err != nil {
		return nil, err
	}
	q.Dataset = name

	for !p.done() {
		keyword := strings.ToUpper(p.tokens[p.pos])
		p.pos++
		var err error
		switch keyword {
		case "WHERE":
			err = p.parseWhere(q)
		case "USING":
			q.Model, err = p.next("model name")
		case "REMOVE":
			err = p.parseRemove(q)
		case "CONFIDENCE":
			var pct float64
			pct, err = p.nextFloat("confidence percent")
			if err == nil {
				if pct <= 0 || pct >= 100 {
					err = fmt.Errorf("query: confidence %v out of (0,100)", pct)
				} else {
					q.Delta = 1 - pct/100
				}
			}
		case "QUANTILE":
			q.R, err = p.nextFloat("quantile")
			if err == nil && (q.R <= 0 || q.R >= 1) {
				err = fmt.Errorf("query: quantile %v out of (0,1)", q.R)
			}
		default:
			// Numeric axis clauses (SAMPLE, RESOLUTION, NOISE, ...) come
			// from the degrade registry: registering an axis with a
			// Clause makes it parseable here with no parser change.
			clause, ok := degrade.ClauseFor(keyword)
			if !ok || clause.Set == nil {
				return nil, fmt.Errorf("query: unexpected token %q", keyword)
			}
			var v float64
			v, err = p.nextFloat(clause.Arg)
			if err == nil {
				err = clause.Set(v, &q.Setting)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	if q.Agg == estimate.COUNT && q.Predicate == nil {
		return nil, fmt.Errorf("query: COUNT(*) requires a WHERE clause")
	}
	if q.Agg != estimate.COUNT && q.Predicate != nil {
		return nil, fmt.Errorf("query: WHERE is only supported with COUNT(*)")
	}
	return q, nil
}

// parseAggregate handles "AVG ( count ( car ) )" and "COUNT ( * )".
func (p *parser) parseAggregate(q *Query) error {
	name, err := p.next("aggregate function")
	if err != nil {
		return err
	}
	agg, err := estimate.ParseAgg(strings.ToUpper(name))
	if err != nil {
		return err
	}
	q.Agg = agg
	if err := p.expect("("); err != nil {
		return err
	}
	if agg == estimate.COUNT {
		if err := p.expect("*"); err != nil {
			return err
		}
		return p.expect(")")
	}
	cls, err := p.parseCountUDF()
	if err != nil {
		return err
	}
	q.Class = cls
	return p.expect(")")
}

// parseCountUDF handles "count ( car )".
func (p *parser) parseCountUDF() (scene.Class, error) {
	fn, err := p.next("detection UDF")
	if err != nil {
		return 0, err
	}
	if strings.ToLower(fn) != "count" {
		return 0, fmt.Errorf("query: unsupported UDF %q (only count(<class>))", fn)
	}
	if err := p.expect("("); err != nil {
		return 0, err
	}
	name, err := p.next("object class")
	if err != nil {
		return 0, err
	}
	cls, err := scene.ParseClass(strings.ToLower(name))
	if err != nil {
		return 0, err
	}
	return cls, p.expect(")")
}

// parseWhere handles "count ( car ) >= 3".
func (p *parser) parseWhere(q *Query) error {
	cls, err := p.parseCountUDF()
	if err != nil {
		return err
	}
	op, err := p.next("comparison operator")
	if err != nil {
		return err
	}
	switch op {
	case ">=", ">", "<=", "<", "=", "==", "!=":
	default:
		return fmt.Errorf("query: unsupported operator %q", op)
	}
	value, err := p.nextFloat("predicate value")
	if err != nil {
		return err
	}
	q.Predicate = &Predicate{Class: cls, Op: op, Value: value}
	return nil
}

// parseRemove handles "person , face" (commas already split by the lexer).
func (p *parser) parseRemove(q *Query) error {
	for {
		name, err := p.next("restricted class")
		if err != nil {
			return err
		}
		cls, err := scene.ParseClass(strings.ToLower(name))
		if err != nil {
			return err
		}
		q.Setting.Restricted = append(q.Setting.Restricted, cls)
		if p.done() || p.tokens[p.pos] != "," {
			return nil
		}
		p.pos++
	}
}

func (p *parser) done() bool { return p.pos >= len(p.tokens) }

func (p *parser) next(what string) (string, error) {
	if p.done() {
		return "", fmt.Errorf("query: expected %s, got end of input", what)
	}
	tok := p.tokens[p.pos]
	p.pos++
	return tok, nil
}

func (p *parser) nextFloat(what string) (float64, error) {
	tok, err := p.next(what)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("query: %s: %q is not a number", what, tok)
	}
	return v, nil
}

func (p *parser) expect(tok string) error {
	got, err := p.next(fmt.Sprintf("%q", tok))
	if err != nil {
		return err
	}
	if got != tok {
		return fmt.Errorf("query: expected %q, got %q", tok, got)
	}
	return nil
}

func (p *parser) expectKeyword(keyword string) error {
	got, err := p.next(keyword)
	if err != nil {
		return err
	}
	if !strings.EqualFold(got, keyword) {
		return fmt.Errorf("query: expected %s, got %q", keyword, got)
	}
	return nil
}

// tokenize splits the input into words, parentheses, commas, operators and
// the star token.
func tokenize(input string) []string {
	var tokens []string
	var current strings.Builder
	flush := func() {
		if current.Len() > 0 {
			tokens = append(tokens, current.String())
			current.Reset()
		}
	}
	runes := []rune(input)
	for i := 0; i < len(runes); i++ {
		ch := runes[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			flush()
		case ch == '(' || ch == ')' || ch == ',' || ch == '*':
			flush()
			tokens = append(tokens, string(ch))
		case ch == '>' || ch == '<' || ch == '=' || ch == '!':
			flush()
			op := string(ch)
			if i+1 < len(runes) && runes[i+1] == '=' {
				op += "="
				i++
			}
			tokens = append(tokens, op)
		default:
			current.WriteRune(ch)
		}
	}
	flush()
	return tokens
}
