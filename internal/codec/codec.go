// Package codec implements Smokescreen's binary frame-store format. It
// serialises ground-truth annotations and (optionally) rasterised pixel
// planes so that corpora can be materialised to disk (cmd/videogen) and
// degraded frames can be shipped over the camera transport with realistic,
// resolution-dependent byte counts.
//
// Layout (all multi-byte integers little-endian unless noted):
//
//	magic "SMKV" | u16 version | metadata block | frame records...
//
// Frame records are length-prefixed, so readers can stream without an
// index. Pixel planes are quantised to 8 bits and DEFLATE-compressed; a
// darker, lower-resolution frame genuinely costs fewer bytes on the wire,
// which is what gives the bandwidth/energy experiments their numbers.
package codec

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// Format constants.
const (
	magic   = "SMKV"
	version = 1

	// maxSaneDimension guards decoders against corrupt headers.
	maxSaneDimension = 1 << 14
	// maxSaneObjects bounds per-frame object counts while decoding.
	maxSaneObjects = 1 << 16
)

// Metadata describes a serialised corpus.
type Metadata struct {
	Name      string
	Width     int
	Height    int
	NumFrames int
	Seed      uint64
}

// FrameRecord is one serialised frame: annotations plus an optional pixel
// plane (present when the producer shipped rasters, e.g. camera payloads).
type FrameRecord struct {
	Index   int
	Objects []scene.Object
	Raster  *raster.Image
}

// Writer streams frame records to an underlying writer.
type Writer struct {
	w      *bufio.Writer
	closed bool
	frames int
	meta   Metadata
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer, meta Metadata) (*Writer, error) {
	if meta.Width <= 0 || meta.Height <= 0 || meta.Width > maxSaneDimension || meta.Height > maxSaneDimension {
		return nil, fmt.Errorf("codec: invalid dimensions %dx%d", meta.Width, meta.Height)
	}
	if meta.NumFrames < 0 {
		return nil, fmt.Errorf("codec: negative frame count")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 64)
	buf = appendString(buf, meta.Name)
	buf = binary.AppendUvarint(buf, uint64(meta.Width))
	buf = binary.AppendUvarint(buf, uint64(meta.Height))
	buf = binary.AppendUvarint(buf, uint64(meta.NumFrames))
	buf = binary.AppendUvarint(buf, meta.Seed)
	if err := writeBlock(bw, buf); err != nil {
		return nil, err
	}
	return &Writer{w: bw, meta: meta}, nil
}

// WriteFrame appends one frame record.
func (w *Writer) WriteFrame(fr *FrameRecord) error {
	if w.closed {
		return errors.New("codec: write after Close")
	}
	block, err := EncodeFrame(fr)
	if err != nil {
		return err
	}
	w.frames++
	return writeBlock(w.w, block)
}

// Close flushes the stream. It verifies the frame count against the
// metadata so truncated corpora are caught at write time.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.meta.NumFrames != 0 && w.frames != w.meta.NumFrames {
		return fmt.Errorf("codec: wrote %d frames, metadata declares %d", w.frames, w.meta.NumFrames)
	}
	return w.w.Flush()
}

// Reader streams frame records from an underlying reader.
type Reader struct {
	r    *bufio.Reader
	meta Metadata
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("codec: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("codec: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != version {
		return nil, fmt.Errorf("codec: unsupported version %d", v)
	}
	block, err := readBlock(br)
	if err != nil {
		return nil, fmt.Errorf("codec: reading metadata: %w", err)
	}
	var meta Metadata
	buf := bytes.NewBuffer(block)
	if meta.Name, err = readString(buf); err != nil {
		return nil, err
	}
	dims := [4]uint64{}
	for i := range dims {
		if dims[i], err = binary.ReadUvarint(buf); err != nil {
			return nil, fmt.Errorf("codec: metadata field %d: %w", i, err)
		}
	}
	meta.Width, meta.Height, meta.NumFrames, meta.Seed = int(dims[0]), int(dims[1]), int(dims[2]), dims[3]
	if meta.Width <= 0 || meta.Height <= 0 || meta.Width > maxSaneDimension || meta.Height > maxSaneDimension {
		return nil, fmt.Errorf("codec: corrupt dimensions %dx%d", meta.Width, meta.Height)
	}
	return &Reader{r: br, meta: meta}, nil
}

// Metadata returns the corpus metadata.
func (r *Reader) Metadata() Metadata { return r.meta }

// ReadFrame returns the next frame record, or io.EOF after the last one.
func (r *Reader) ReadFrame() (*FrameRecord, error) {
	block, err := readBlock(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	return DecodeFrame(block)
}

// EncodeFrame serialises a single frame record to a self-contained block
// (used directly by the camera transport).
func EncodeFrame(fr *FrameRecord) ([]byte, error) {
	if len(fr.Objects) > maxSaneObjects {
		return nil, fmt.Errorf("codec: %d objects exceeds limit", len(fr.Objects))
	}
	buf := make([]byte, 0, 64+len(fr.Objects)*16)
	buf = binary.AppendUvarint(buf, uint64(fr.Index))
	buf = binary.AppendUvarint(buf, uint64(len(fr.Objects)))
	for i := range fr.Objects {
		o := &fr.Objects[i]
		buf = binary.AppendUvarint(buf, uint64(o.ID))
		buf = append(buf, byte(o.Class))
		buf = binary.AppendVarint(buf, int64(o.BBox.MinX))
		buf = binary.AppendVarint(buf, int64(o.BBox.MinY))
		buf = binary.AppendVarint(buf, int64(o.BBox.MaxX))
		buf = binary.AppendVarint(buf, int64(o.BBox.MaxY))
		buf = binary.LittleEndian.AppendUint16(buf, quantize16(o.Intensity))
		if o.Elliptic {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	if fr.Raster == nil {
		buf = append(buf, 0)
		return buf, nil
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(fr.Raster.W))
	buf = binary.AppendUvarint(buf, uint64(fr.Raster.H))
	compressed, err := compressPixels(fr.Raster.Pix)
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(compressed)))
	buf = append(buf, compressed...)
	return buf, nil
}

// DecodeFrame parses a block produced by EncodeFrame.
func DecodeFrame(block []byte) (*FrameRecord, error) {
	buf := bytes.NewBuffer(block)
	idx, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("codec: frame index: %w", err)
	}
	count, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("codec: object count: %w", err)
	}
	if count > maxSaneObjects {
		return nil, fmt.Errorf("codec: corrupt object count %d", count)
	}
	fr := &FrameRecord{Index: int(idx)}
	for i := uint64(0); i < count; i++ {
		var o scene.Object
		id, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("codec: object id: %w", err)
		}
		o.ID = int(id)
		classByte, err := buf.ReadByte()
		if err != nil {
			return nil, err
		}
		if classByte >= scene.NumClasses {
			return nil, fmt.Errorf("codec: corrupt class %d", classByte)
		}
		o.Class = scene.Class(classByte)
		coords := [4]int64{}
		for j := range coords {
			if coords[j], err = binary.ReadVarint(buf); err != nil {
				return nil, fmt.Errorf("codec: bbox coord: %w", err)
			}
		}
		o.BBox = raster.Rect{MinX: int(coords[0]), MinY: int(coords[1]), MaxX: int(coords[2]), MaxY: int(coords[3])}
		var q [2]byte
		if _, err := io.ReadFull(buf, q[:]); err != nil {
			return nil, err
		}
		o.Intensity = dequantize16(binary.LittleEndian.Uint16(q[:]))
		flag, err := buf.ReadByte()
		if err != nil {
			return nil, err
		}
		o.Elliptic = flag == 1
		fr.Objects = append(fr.Objects, o)
	}
	hasRaster, err := buf.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasRaster == 0 {
		if buf.Len() != 0 {
			return nil, errors.New("codec: trailing data after frame record")
		}
		return fr, nil
	}
	w64, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	h64, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	if w64 == 0 || h64 == 0 || w64 > maxSaneDimension || h64 > maxSaneDimension {
		return nil, fmt.Errorf("codec: corrupt raster size %dx%d", w64, h64)
	}
	clen, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	if clen > uint64(buf.Len()) {
		return nil, fmt.Errorf("codec: raster payload truncated")
	}
	img := raster.New(int(w64), int(h64))
	if err := decompressPixels(buf.Next(int(clen)), img.Pix); err != nil {
		return nil, err
	}
	if buf.Len() != 0 {
		return nil, errors.New("codec: trailing data after frame record")
	}
	fr.Raster = img
	return fr, nil
}

// compressPixels quantises samples to 8 bits and DEFLATE-compresses them.
func compressPixels(pix []float32) ([]byte, error) {
	raw := make([]byte, len(pix))
	for i, v := range pix {
		raw[i] = uint8(math.Round(float64(v) * 255))
	}
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

func decompressPixels(compressed []byte, dst []float32) error {
	fr := flate.NewReader(bytes.NewReader(compressed))
	defer fr.Close()
	raw := make([]byte, len(dst))
	if _, err := io.ReadFull(fr, raw); err != nil {
		return fmt.Errorf("codec: decompressing pixels: %w", err)
	}
	// A well-formed payload ends exactly at the expected length.
	var tail [1]byte
	if n, _ := fr.Read(tail[:]); n != 0 {
		return errors.New("codec: raster payload has trailing data")
	}
	for i, b := range raw {
		dst[i] = float32(b) / 255
	}
	return nil
}

func quantize16(v float32) uint16 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return uint16(math.Round(float64(v) * 65535))
}

func dequantize16(q uint16) float32 {
	return float32(q) / 65535
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf *bytes.Buffer) (string, error) {
	n, err := binary.ReadUvarint(buf)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("codec: corrupt string length %d", n)
	}
	out := buf.Next(int(n))
	if len(out) != int(n) {
		return "", errors.New("codec: truncated string")
	}
	return string(out), nil
}

// writeBlock writes a length-prefixed block.
func writeBlock(w io.Writer, block []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(block)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(block)
	return err
}

// readBlock reads a length-prefixed block.
func readBlock(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("codec: block of %d bytes exceeds limit", n)
	}
	block := make([]byte, n)
	if _, err := io.ReadFull(r, block); err != nil {
		return nil, fmt.Errorf("codec: truncated block: %w", err)
	}
	return block, nil
}
