package codec

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"smokescreen/internal/dataset"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

func testMeta(frames int) Metadata {
	return Metadata{Name: "test", Width: 320, Height: 320, NumFrames: frames, Seed: 7}
}

func TestRoundTripAnnotations(t *testing.T) {
	v := dataset.MustLoad("small")
	var buf bytes.Buffer
	const frames = 50
	w, err := NewWriter(&buf, testMeta(frames))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		fr := &FrameRecord{Index: i, Objects: v.Frame(i).Objects}
		if err := w.WriteFrame(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metadata(); got != testMeta(frames) {
		t.Fatalf("metadata = %+v", got)
	}
	for i := 0; i < frames; i++ {
		fr, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Index != i {
			t.Fatalf("frame index %d, want %d", fr.Index, i)
		}
		want := v.Frame(i).Objects
		if len(fr.Objects) != len(want) {
			t.Fatalf("frame %d: %d objects, want %d", i, len(fr.Objects), len(want))
		}
		for j := range want {
			got := fr.Objects[j]
			if got.ID != want[j].ID || got.Class != want[j].Class || got.BBox != want[j].BBox || got.Elliptic != want[j].Elliptic {
				t.Fatalf("frame %d object %d: %+v != %+v", i, j, got, want[j])
			}
			if math.Abs(float64(got.Intensity-want[j].Intensity)) > 1.0/65535+1e-9 {
				t.Fatalf("frame %d object %d intensity %v != %v", i, j, got.Intensity, want[j].Intensity)
			}
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripRaster(t *testing.T) {
	img := raster.New(64, 48)
	img.GradientV(0.1, 0.9)
	img.Texture(3, 0.1)
	block, err := EncodeFrame(&FrameRecord{Index: 7, Raster: img})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := DecodeFrame(block)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Raster == nil || fr.Raster.W != 64 || fr.Raster.H != 48 {
		t.Fatal("raster lost in round trip")
	}
	for i := range img.Pix {
		if math.Abs(float64(img.Pix[i]-fr.Raster.Pix[i])) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v != %v beyond quantisation", i, img.Pix[i], fr.Raster.Pix[i])
		}
	}
}

func TestEncodedSizeScalesWithResolution(t *testing.T) {
	// The wire cost of a frame must drop super-linearly with resolution —
	// the property the camera bandwidth experiments rely on.
	v := dataset.MustLoad("small")
	native := v.RenderNative(10)
	sizes := map[int]int{}
	for _, p := range []int{320, 160, 64} {
		img := raster.Downsample(native, p, p)
		block, err := EncodeFrame(&FrameRecord{Index: 10, Raster: img})
		if err != nil {
			t.Fatal(err)
		}
		sizes[p] = len(block)
	}
	if !(sizes[320] > sizes[160] && sizes[160] > sizes[64]) {
		t.Fatalf("sizes not decreasing: %v", sizes)
	}
	if sizes[64]*4 > sizes[320] {
		t.Fatalf("compression gain too weak: %v", sizes)
	}
}

func TestWriterFrameCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(&FrameRecord{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("frame-count mismatch not detected at Close")
	}
}

func TestWriterRejectsBadMetadata(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Metadata{Width: 0, Height: 10}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewWriter(&buf, Metadata{Width: 10, Height: 10, NumFrames: -1}); err == nil {
		t.Fatal("negative frame count accepted")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testMeta(0))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(&FrameRecord{}); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestReaderRejectsCorruptHeaders(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x00"),
		"bad version": []byte("SMKV\xff\x00"),
		"truncated":   []byte("SMKV"),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	good, err := EncodeFrame(&FrameRecord{Index: 1, Objects: []scene.Object{
		{ID: 1, Class: scene.Car, BBox: raster.RectWH(1, 2, 3, 4), Intensity: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error, not panic.
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeFrame(good[:cut]); err == nil {
			// Some prefixes can decode if the cut lands after a complete
			// record; the raster flag byte is the last mandatory byte.
			if cut < len(good)-1 {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	}
	// Corrupt class byte.
	bad := append([]byte(nil), good...)
	bad[2+1] = 99 // index varint (1 byte), count varint (1 byte), id (1 byte) -> class
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("corrupt class accepted")
	}
}

func TestQuantize16RoundTrip(t *testing.T) {
	property := func(raw uint16) bool {
		v := float32(raw) / 65535
		return quantize16(dequantize16(raw)) == raw && math.Abs(float64(dequantize16(quantize16(v))-v)) < 1.0/65535
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if quantize16(-1) != 0 || quantize16(2) != 65535 {
		t.Fatal("quantize16 does not clamp")
	}
}

func TestEncodeDecodePropertyAnnotations(t *testing.T) {
	property := func(ids []uint16, classRaw []uint8) bool {
		n := len(ids)
		if len(classRaw) < n {
			n = len(classRaw)
		}
		if n > 64 {
			n = 64
		}
		objs := make([]scene.Object, n)
		for i := 0; i < n; i++ {
			objs[i] = scene.Object{
				ID:    int(ids[i]),
				Class: scene.Class(classRaw[i] % scene.NumClasses),
				BBox:  raster.RectWH(int(ids[i]%100), int(classRaw[i]), 5, 7),
			}
		}
		block, err := EncodeFrame(&FrameRecord{Index: 3, Objects: objs})
		if err != nil {
			return false
		}
		fr, err := DecodeFrame(block)
		if err != nil || len(fr.Objects) != n {
			return false
		}
		for i := range objs {
			if fr.Objects[i].ID != objs[i].ID || fr.Objects[i].BBox != objs[i].BBox || fr.Objects[i].Class != objs[i].Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderSurvivesRandomGarbage(t *testing.T) {
	// Random byte streams must produce errors, never panics or hangs.
	s := struct{ seed uint64 }{12345}
	rng := func() byte {
		s.seed = s.seed*6364136223846793005 + 1442695040888963407
		return byte(s.seed >> 56)
	}
	for trial := 0; trial < 200; trial++ {
		n := int(rng())%256 + 1
		data := make([]byte, n)
		for i := range data {
			data[i] = rng()
		}
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue // rejected at the header: fine
		}
		for {
			if _, err := r.ReadFrame(); err != nil {
				break // io.EOF or a decode error: fine
			}
		}
	}
}

func TestReaderTruncatedMidStream(t *testing.T) {
	v := dataset.MustLoad("small")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.WriteFrame(&FrameRecord{Index: i, Objects: v.Frame(i).Objects}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point must yield a clean error (or early EOF), with
	// all fully-received frames still readable.
	for cut := len(full) / 2; cut < len(full)-1; cut += 7 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		frames := 0
		for {
			if _, err := r.ReadFrame(); err != nil {
				break
			}
			frames++
		}
		if frames > 5 {
			t.Fatalf("truncated stream produced %d frames", frames)
		}
	}
}

func TestEncodeFrameRejectsTooManyObjects(t *testing.T) {
	objs := make([]scene.Object, maxSaneObjects+1)
	if _, err := EncodeFrame(&FrameRecord{Objects: objs}); err == nil {
		t.Fatal("oversized object list accepted")
	}
}

func TestDecodeFrameRejectsTrailingRasterData(t *testing.T) {
	img := raster.New(8, 8)
	block, err := EncodeFrame(&FrameRecord{Index: 0, Raster: img})
	if err != nil {
		t.Fatal(err)
	}
	// Declare a larger compressed length than the payload really needs by
	// appending junk inside the declared region.
	grown := append([]byte(nil), block...)
	grown = append(grown, 0xde, 0xad)
	if _, err := DecodeFrame(grown); err == nil {
		t.Fatal("trailing data accepted")
	}
}
