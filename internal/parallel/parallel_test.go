package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-5, 4, func(int) { ran = true })
	if ran {
		t.Fatal("task ran for non-positive n")
	}
}

func TestForSequentialFallbackIsOrdered(t *testing.T) {
	// workers <= 1 must preserve index order (it is a plain loop); parts of
	// the codebase rely on this for the sequential reference path.
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential fallback out of order: %v", order)
		}
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	For(100, workers, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, workers)
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	For(50, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestMapResultsAndDeterministicError(t *testing.T) {
	out, err := Map(8, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}

	// Two failing indices: the lowest one must win under any schedule.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(32, 8, func(i int) (int, error) {
			if i == 5 || i == 29 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 5 failed" {
			t.Fatalf("trial %d: got error %v, want task 5's", trial, err)
		}
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	sentinel := errors.New("nope")
	out, err := Map(4, 2, func(i int) (string, error) {
		if i == 2 {
			return "", sentinel
		}
		return "ok", nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not preserved: %v", err)
	}
	if out[0] != "ok" || out[3] != "ok" {
		t.Fatalf("successful results dropped: %v", out)
	}
}
