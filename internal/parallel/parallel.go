// Package parallel provides the bounded worker-pool scheduler that fans
// Smokescreen's expensive, embarrassingly parallel stages — profile and
// hypercube generation, detector output evaluation, experiment trial
// loops — out across goroutines.
//
// Design constraints, in priority order:
//
//  1. Determinism. Tasks never share mutable state through the scheduler;
//     every task writes its result into a caller-owned, per-index slot, and
//     any randomness a task needs comes from a stats.Stream child derived
//     from the task index. Results are therefore bit-for-bit identical to a
//     sequential execution regardless of worker count or completion order.
//  2. Bounded concurrency. At most `workers` goroutines run at once; work
//     is distributed by an atomic index (work stealing), so uneven task
//     costs — e.g. hypercube cells whose sweeps early-stop — do not idle
//     workers the way static chunking would.
//  3. Transparent failure. A panicking task panics the caller (first panic
//     wins); Map collects per-task errors and reports the lowest-index one,
//     so the surfaced error does not depend on scheduling.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism request: n > 0 is used as-is, anything
// else (0 or negative) means "one worker per logical CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and blocks until all calls return. With one worker (or n <= 1)
// it degrades to a plain loop on the calling goroutine — no goroutines, no
// synchronization. Task order is unspecified under parallelism; callers
// must make tasks independent and write results into per-index slots.
//
// If any task panics, For re-panics on the calling goroutine with the
// first recovered value after all workers have drained.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  atomic.Bool
		panicVal  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicVal = r
						panicked.Store(true)
					})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(fmt.Sprintf("parallel: task panicked: %v", panicVal))
	}
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the per-index results. If any tasks fail, the
// error of the lowest index is returned (alongside the full result slice),
// so error reporting is deterministic under any completion order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(n, workers, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForCtx is For with cooperative cancellation and per-task errors: workers
// stop claiming new indices once ctx is done, then drain. Started tasks
// always run to completion — a per-index slot is either fully written or
// untouched, never half-done — and, like Map, a task error does not stop
// the remaining tasks, so the surfaced error is deterministic under any
// completion order: the lowest-index task error wins; if no task failed
// but ctx was cancelled, ctx.Err() is returned. Panic propagation matches
// For.
func ForCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	errs := make([]error, n)
	For(n, workers, func(i int) {
		if ctx.Err() != nil {
			return
		}
		errs[i] = fn(i)
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapCtx is Map with cooperative cancellation: the context-aware analogue
// for stages that produce per-index results. On error or cancellation the
// partial result slice is returned alongside the (deterministic) error.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForCtx(ctx, n, workers, func(i int) error {
		var taskErr error
		out[i], taskErr = fn(i)
		return taskErr
	})
	return out, err
}
