package analysis

import (
	"strings"
	"testing"
)

// FuzzSuppressParse pins the suppression grammar against arbitrary
// comment bytes: parsing must never panic, anything lacking the
// smokevet:ignore prefix must be rejected, and every accepted result
// must be internally consistent — a trimmed reason, and an analyzer
// scope that is either empty or a known analyzer name.
func FuzzSuppressParse(f *testing.F) {
	f.Add("smokevet:ignore reason text")
	f.Add("smokevet:ignore determinism: scoped reason")
	f.Add("smokevet:ignore")
	f.Add("smokevet:ignore   ")
	f.Add("smokevet:ignore notananalyzer: reason with a colon")
	f.Add("smokevet:ignore errcontract: colons: every:where")
	f.Add(" \t smokevet:ignore lockorder:   padded   ")
	f.Add("just a comment")
	f.Add("smokevet:ignorewithnospace")
	f.Add("")
	f.Add("smokevet:ignore :")
	f.Add("smokevet:ignore determinism:")
	f.Fuzz(func(t *testing.T, text string) {
		s, ok := parseSuppression(text)
		if !ok {
			if strings.HasPrefix(strings.TrimSpace(text), suppressPrefix) {
				t.Fatalf("parseSuppression(%q) rejected a prefixed comment", text)
			}
			return
		}
		if !strings.HasPrefix(strings.TrimSpace(text), suppressPrefix) {
			t.Fatalf("parseSuppression(%q) accepted a comment without the prefix", text)
		}
		if s.analyzer != "" && !knownAnalyzers[s.analyzer] {
			t.Fatalf("parseSuppression(%q) scoped to unknown analyzer %q", text, s.analyzer)
		}
		if s.reason != strings.TrimSpace(s.reason) {
			t.Fatalf("parseSuppression(%q) kept surrounding space in reason %q", text, s.reason)
		}
	})
}
