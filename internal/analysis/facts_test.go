package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// testFact is a gob-encodable fact used only by these tests.
type testFact struct {
	Note string
}

func (*testFact) AFact() {}

func checkTestPkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Error: func(error) {}}
	tpkg, _ := conf.Check(path, fset, []*ast.File{f}, info)
	return &Package{
		Path:         path,
		Fset:         fset,
		Files:        []*ast.File{f},
		Pkg:          tpkg,
		Info:         info,
		Suppressions: indexSuppressions(fset, []*ast.File{f}),
	}
}

// TestObjectFactKeyStability pins the canonical fact keys: functions key
// by FullName (methods include the receiver), everything else by
// pkgPath.Name. These strings are the cross-package identity of a fact —
// the types.Object pointers of a directly-analyzed package and the same
// package re-imported as a dependency differ, so any drift here silently
// breaks every fact lookup.
func TestObjectFactKeyStability(t *testing.T) {
	pkg := checkTestPkg(t, "example.com/keys", `package keys

var Sentinel int

func Fn() {}

type T struct{}

func (T) Value()    {}
func (*T) Pointer() {}
`)
	scope := pkg.Pkg.Scope()
	want := map[string]string{
		"Sentinel": "example.com/keys.Sentinel",
		"Fn":       "example.com/keys.Fn",
	}
	for name, key := range want {
		if got := objectFactKey(scope.Lookup(name)); got != key {
			t.Errorf("objectFactKey(%s) = %q, want %q", name, got, key)
		}
	}
	tObj := scope.Lookup("T").Type()
	for i := 0; i < types.NewMethodSet(types.NewPointer(tObj)).Len(); i++ {
		m := types.NewMethodSet(types.NewPointer(tObj)).At(i).Obj().(*types.Func)
		wantKey := map[string]string{
			"Value":   "(example.com/keys.T).Value",
			"Pointer": "(*example.com/keys.T).Pointer",
		}[m.Name()]
		if got := objectFactKey(m); got != wantKey {
			t.Errorf("objectFactKey(%s) = %q, want %q", m.Name(), got, wantKey)
		}
	}
}

// TestFactSetGobRoundTrip pins that facts only cross package boundaries
// through the gob encoding — and that the encoding is deterministic, so
// equal fact sets produce equal bytes (the property a future on-disk
// fact cache would content-address by).
func TestFactSetGobRoundTrip(t *testing.T) {
	st := newFactStore()
	if err := st.register([]*Analyzer{{Name: "t", FactTypes: []Fact{&testFact{}}}}); err != nil {
		t.Fatal(err)
	}
	build := func() *factSet {
		s := newFactSet()
		s.put("pkg.A", &testFact{Note: "alpha"})
		s.put("pkg.B", &testFact{Note: "beta"})
		s.put("", &testFact{Note: "package-level"})
		return s
	}
	blob1, err := build().encode()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := build().encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob1) != string(blob2) {
		t.Error("equal fact sets encoded to different bytes")
	}
	decoded, err := decodeFactSet(blob1)
	if err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !decoded.get("pkg.A", &got) || got.Note != "alpha" {
		t.Errorf("object fact after round trip = %+v", got)
	}
	if !decoded.get("", &got) || got.Note != "package-level" {
		t.Errorf("package fact after round trip = %+v", got)
	}
	if decoded.get("pkg.C", &got) {
		t.Error("decoded set invented a fact for an unknown key")
	}
	// Decoding must yield a copy: mutating the decoded fact cannot reach
	// the encoded archive.
	var again testFact
	got.Note = "mutated"
	if decoded.get("pkg.A", &again); again.Note != "alpha" {
		t.Error("get returned a shared pointer target, not a copy")
	}
}

func TestFactStoreRejectsNonPointerFactType(t *testing.T) {
	st := newFactStore()
	err := st.register([]*Analyzer{{Name: "bad", FactTypes: []Fact{badValueFact{}}}})
	if err == nil {
		t.Fatal("register accepted a non-pointer fact type")
	}
}

// badValueFact implements Fact with a value receiver so it can pose as a
// non-pointer fact type in the rejection test.
type badValueFact struct{}

func (badValueFact) AFact() {}

// TestRunSuiteFactFlow runs a fact-exporting analyzer over two synthetic
// packages wired dep-before-root and asserts the root's pass observes
// the dep's fact — through the gob round trip, never the live set — and
// that facts are invisible to packages analyzed before the exporter.
func TestRunSuiteFactFlow(t *testing.T) {
	dep := checkTestPkg(t, "example.com/dep", `package dep

func Exported() {}
`)
	// The root does not import dep through the type-checker here (that
	// path is covered by the fixture tests); the analyzer looks the fact
	// up by the dep's package path directly, which exercises the store.
	root := checkTestPkg(t, "example.com/root", `package root

func Uses() {}
`)
	root.Imports = []string{"example.com/dep"}

	var sawInDep, sawInRoot bool
	a := &Analyzer{
		Name:      "factflow",
		FactTypes: []Fact{&testFact{}},
		Run: func(pass *Pass) error {
			switch pass.Pkg.Path() {
			case "example.com/dep":
				obj := pass.Pkg.Scope().Lookup("Exported")
				pass.ExportObjectFact(obj, &testFact{Note: "from dep"})
				// Same-package import must see the still-live fact.
				var f testFact
				sawInDep = pass.ImportObjectFact(obj, &f) && f.Note == "from dep"
			case "example.com/root":
				var f testFact
				sawInRoot = pass.ImportPackageFact("example.com/dep", &f)
				var obj testFact
				if dep := depObject(); dep != nil {
					sawInRoot = pass.ImportObjectFact(dep, &obj) && obj.Note == "from dep"
				}
			}
			return nil
		},
	}
	// depObject resolves the dep's Exported func for the root's pass: the
	// runner keys facts by objectFactKey, so any object with the same
	// FullName resolves — here the dep package's own object stands in for
	// what an importing package would see.
	depObject = func() types.Object { return dep.Pkg.Scope().Lookup("Exported") }

	res, err := RunSuite([]*Package{root, dep}, []*Analyzer{a}, RunOptions{})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("unexpected diagnostics: %v", res.Diagnostics)
	}
	if !sawInDep {
		t.Error("same-package fact import did not see the live export")
	}
	if !sawInRoot {
		t.Error("cross-package fact import failed despite dependency order")
	}
	// RunSuite must have visited dep before root even though the slice
	// listed root first — that ordering is what makes fact flow total.
	if len(res.Timings) != 1 || res.Timings[0].Name != "factflow" {
		t.Fatalf("timings = %+v, want one factflow entry", res.Timings)
	}
	if res.Timings[0].Duration <= 0 {
		t.Error("per-analyzer timing not recorded")
	}
}

// depObject is a test hook letting the analyzer in TestRunSuiteFactFlow
// reach the dep package's object from the root's pass.
var depObject func() types.Object
