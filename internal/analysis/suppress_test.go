package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppress(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestBareSuppressionIsMalformed(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

func f() int {
	//smokevet:ignore
	return 1
}
`)
	idx := indexSuppressions(fset, []*ast.File{f})
	if len(idx.malformed) != 1 {
		t.Fatalf("malformed = %d, want 1", len(idx.malformed))
	}
	// A reason-less suppression must not silence anything: the "zero
	// unexplained suppressions" bar is mechanical only if bare ignores
	// are reports, not silencers.
	if idx.suppressed("determinism", 4) || idx.suppressed("determinism", 5) {
		t.Error("reason-less suppression silenced a finding")
	}
}

func TestSuppressionScopes(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

func f() int {
	//smokevet:ignore determinism: scoped to one analyzer
	a := 1
	//smokevet:ignore applies to every analyzer
	b := 2
	return a + b
}
`)
	idx := indexSuppressions(fset, []*ast.File{f})
	if len(idx.malformed) != 0 {
		t.Fatalf("malformed = %d, want 0", len(idx.malformed))
	}
	// Scoped: silences its analyzer on the comment line and the line
	// below, nothing else.
	if !idx.suppressed("determinism", 4) || !idx.suppressed("determinism", 5) {
		t.Error("scoped suppression did not cover its own line and the line below")
	}
	if idx.suppressed("ctxflow", 5) {
		t.Error("determinism-scoped suppression silenced ctxflow")
	}
	if idx.suppressed("determinism", 8) {
		t.Error("suppression leaked beyond the line below the comment")
	}
	// Unscoped: silences every analyzer.
	if !idx.suppressed("determinism", 7) || !idx.suppressed("poolhygiene", 7) {
		t.Error("unscoped suppression did not apply to every analyzer")
	}
}

// TestStaleSuppressionAudit pins the stale-ignore audit: a suppression
// that silences a real finding stays quiet, while one that silences
// nothing is itself reported when AuditSuppressions is on — so ignores
// cannot outlive the findings they were written for.
func TestStaleSuppressionAudit(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

//smokevet:ignore determinism: silences the finding below
var a = 1

//smokevet:ignore determinism: silences nothing at all
var b = 2
`)
	pkg := &Package{
		Path:         "fixture/staleaudit",
		Fset:         fset,
		Files:        []*ast.File{f},
		Suppressions: indexSuppressions(fset, []*ast.File{f}),
	}
	// A fake determinism analyzer reporting exactly one finding at the
	// first var decl (line 4, under the first suppression).
	fake := &Analyzer{
		Name: "determinism",
		Run: func(pass *Pass) error {
			pass.Report(f.Decls[0].Pos(), "synthetic finding")
			return nil
		},
	}
	res, err := RunSuite([]*Package{pkg}, []*Analyzer{fake}, RunOptions{AuditSuppressions: true})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("diags = %v, want exactly the stale-ignore report", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "smokevet" || !strings.Contains(d.Message, "stale smokevet:ignore") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if !strings.Contains(d.Message, "silences nothing at all") {
		t.Errorf("stale report does not name the unused suppression: %s", d)
	}
	if d.Pos.Line != 6 {
		t.Errorf("stale report at line %d, want 6", d.Pos.Line)
	}

	// The audit is opt-in: the same run without it reports nothing.
	res, err = RunSuite([]*Package{pkg}, []*Analyzer{fake}, RunOptions{})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("audit off: diags = %v, want none", res.Diagnostics)
	}
}

// TestRunReportsMalformedSuppression pins that the runner surfaces bare
// ignores as findings, so `make lint` fails on an unexplained suppression.
func TestRunReportsMalformedSuppression(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

var x = 1 //smokevet:ignore
`)
	pkg := &Package{
		Path:         "fixture/malformed",
		Fset:         fset,
		Files:        []*ast.File{f},
		Suppressions: indexSuppressions(fset, []*ast.File{f}),
	}
	diags, err := Run([]*Package{pkg}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %d, want 1", len(diags))
	}
	if diags[0].Analyzer != "smokevet" || !strings.Contains(diags[0].Message, "without a reason") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
	if diags[0].Pos.Line != 3 {
		t.Errorf("diagnostic at line %d, want 3", diags[0].Pos.Line)
	}
}
