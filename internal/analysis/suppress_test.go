package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppress(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestBareSuppressionIsMalformed(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

func f() int {
	//smokevet:ignore
	return 1
}
`)
	idx := indexSuppressions(fset, []*ast.File{f})
	if len(idx.malformed) != 1 {
		t.Fatalf("malformed = %d, want 1", len(idx.malformed))
	}
	// A reason-less suppression must not silence anything: the "zero
	// unexplained suppressions" bar is mechanical only if bare ignores
	// are reports, not silencers.
	if idx.suppressed("determinism", 4) || idx.suppressed("determinism", 5) {
		t.Error("reason-less suppression silenced a finding")
	}
}

func TestSuppressionScopes(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

func f() int {
	//smokevet:ignore determinism: scoped to one analyzer
	a := 1
	//smokevet:ignore applies to every analyzer
	b := 2
	return a + b
}
`)
	idx := indexSuppressions(fset, []*ast.File{f})
	if len(idx.malformed) != 0 {
		t.Fatalf("malformed = %d, want 0", len(idx.malformed))
	}
	// Scoped: silences its analyzer on the comment line and the line
	// below, nothing else.
	if !idx.suppressed("determinism", 4) || !idx.suppressed("determinism", 5) {
		t.Error("scoped suppression did not cover its own line and the line below")
	}
	if idx.suppressed("ctxflow", 5) {
		t.Error("determinism-scoped suppression silenced ctxflow")
	}
	if idx.suppressed("determinism", 8) {
		t.Error("suppression leaked beyond the line below the comment")
	}
	// Unscoped: silences every analyzer.
	if !idx.suppressed("determinism", 7) || !idx.suppressed("poolhygiene", 7) {
		t.Error("unscoped suppression did not apply to every analyzer")
	}
}

// TestRunReportsMalformedSuppression pins that the runner surfaces bare
// ignores as findings, so `make lint` fails on an unexplained suppression.
func TestRunReportsMalformedSuppression(t *testing.T) {
	fset, f := parseForSuppress(t, `package p

var x = 1 //smokevet:ignore
`)
	pkg := &Package{
		Path:         "fixture/malformed",
		Fset:         fset,
		Files:        []*ast.File{f},
		Suppressions: indexSuppressions(fset, []*ast.File{f}),
	}
	diags, err := Run([]*Package{pkg}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %d, want 1", len(diags))
	}
	if diags[0].Analyzer != "smokevet" || !strings.Contains(diags[0].Message, "without a reason") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
	if diags[0].Pos.Line != 3 {
		t.Errorf("diagnostic at line %d, want 3", diags[0].Pos.Line)
	}
}
