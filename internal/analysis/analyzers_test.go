package analysis

import (
	"path/filepath"
	"testing"
)

// One loader shared across the fixture tests: the source importer caches
// type-checked dependencies, so the stdlib is checked once, not per test.
var fixtureLoader = NewLoader()

func runFixtureTest(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	res, err := RunFixture(fixtureLoader, a, dir)
	if err != nil {
		t.Fatalf("RunFixture(%s): %v", a.Name, err)
	}
	if res.Failed() {
		t.Fatalf("fixture mismatches for %s:\n%s", a.Name, res)
	}
}

func TestDeterminismFixture(t *testing.T)   { runFixtureTest(t, Determinism) }
func TestPoolhygieneFixture(t *testing.T)   { runFixtureTest(t, Poolhygiene) }
func TestCtxflowFixture(t *testing.T)       { runFixtureTest(t, Ctxflow) }
func TestAtomiccounterFixture(t *testing.T) { runFixtureTest(t, Atomiccounter) }
func TestGoroleakFixture(t *testing.T)      { runFixtureTest(t, Goroleak) }
func TestLockorderFixture(t *testing.T)     { runFixtureTest(t, Lockorder) }
func TestAxisregFixture(t *testing.T)       { runFixtureTest(t, Axisreg) }
func TestErrcontractFixture(t *testing.T)   { runFixtureTest(t, Errcontract) }

// TestFixturesDetectDisabledCheck pins the property the acceptance bar
// depends on: a neutered analyzer (Run reports nothing) must FAIL its
// fixture — the want comments go unmatched. Without this, a regression
// that silently disables a check would sail through the fixture tests.
func TestFixturesDetectDisabledCheck(t *testing.T) {
	for _, a := range Analyzers() {
		neutered := &Analyzer{Name: a.Name, Doc: a.Doc, Run: func(*Pass) error { return nil }}
		res, err := RunFixture(fixtureLoader, neutered, filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatalf("RunFixture(neutered %s): %v", a.Name, err)
		}
		if !res.Failed() {
			t.Errorf("%s fixture passes with the check disabled; fixtures must pin behaviour", a.Name)
		}
	}
}

// TestAnalyzersRegistered pins the suite roster: dropping an analyzer from
// the registry would silently stop enforcing its invariant repo-wide.
func TestAnalyzersRegistered(t *testing.T) {
	want := map[string]bool{
		"determinism": true, "poolhygiene": true, "ctxflow": true, "atomiccounter": true,
		"goroleak": true, "lockorder": true, "axisreg": true, "errcontract": true,
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in registry", a.Name)
		}
		if !knownAnalyzers[a.Name] {
			t.Errorf("analyzer %q is not in knownAnalyzers: scoped suppressions for it would not parse", a.Name)
		}
	}
}
