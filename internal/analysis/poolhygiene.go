package analysis

import (
	"go/ast"
	"go/types"
)

// Poolhygiene guards the pooled-scratch discipline of the detection hot
// path (internal/raster, internal/detect): every sync.Pool.Get must be
// paired with a Put, and pooled objects must not leak into long-lived
// state. A leaked buffer silently regrows the allocation traffic the
// pools were built to remove; a double-retained one corrupts a later
// frame evaluation.
//
// The codebase uses two sanctioned shapes, both accepted:
//
//   - Accessor pairs: get*/put* wrappers where Get's result escapes via
//     return and the package pairs the pool with a releaser calling Put
//     (raster.GetScratch/PutScratch, detect.getPlane/putPlane, ...).
//   - Scoped use: Get with a deferred or explicit Put on the same pool
//     in the same function (detect.connectedComponents).
//
// Everything else is flagged:
//
//   - a Get whose result is neither released with a Put on the same pool
//     in the function nor returned to the caller (a leak);
//   - a Get whose result escapes via return while the package defines no
//     Put for that pool (an accessor with no releaser);
//   - a Get result assigned to a struct field, map/slice element, or
//     package variable (retention beyond the frame evaluation).
//
// The check is per-function and syntactic about paths: it does not prove
// a Put on *every* return path. That approximation is deliberate — the
// repo's pools all use defer or straight-line release — and the analyzer
// errs toward silence rather than noise.

// Poolhygiene is the pool-hygiene analyzer.
var Poolhygiene = &Analyzer{
	Name: "poolhygiene",
	Doc: "flag sync.Pool.Get results that leak (no Put on the same pool, " +
		"escape into long-lived state, or escape via return with no releaser in the package)",
	Run: runPoolhygiene,
}

// poolCall is one Get or Put call site.
type poolCall struct {
	call *ast.CallExpr
	pool types.Object // the sync.Pool variable, if resolvable
	fn   *ast.FuncDecl
}

func runPoolhygiene(pass *Pass) error {
	// Pass 1: locate every Get/Put call and the pool object it targets.
	var gets, puts []poolCall
	poolsWithPut := map[types.Object]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !isSyncPoolMethod(pass, sel) {
					return true
				}
				pc := poolCall{call: call, pool: objectOf(pass.Info, sel.X), fn: fd}
				switch sel.Sel.Name {
				case "Get":
					gets = append(gets, pc)
				case "Put":
					puts = append(puts, pc)
					if pc.pool != nil {
						poolsWithPut[pc.pool] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: judge each Get in its enclosing function.
	for _, g := range gets {
		tracked := trackedIdents(pass, g.fn.Body, g.call)

		if obj := escapesToState(pass, g.fn.Body, tracked); obj != nil {
			pass.Report(g.call.Pos(),
				"sync.Pool.Get result is stored in long-lived state through %q: pooled scratch must not outlive the call that drew it", obj.Name())
			continue
		}
		if returnsTracked(pass, g.fn.Body, tracked) || returnsCall(g.fn.Body, g.call) {
			// Accessor shape: escaping via return is the sanctioned way to
			// hand scratch to a caller, but only if the package pairs the
			// pool with a releaser the caller can use.
			if g.pool != nil && !poolsWithPut[g.pool] {
				pass.Report(g.call.Pos(),
					"sync.Pool.Get result escapes via return but package %s defines no Put for pool %q: callers cannot release it", pass.Pkg.Name(), g.pool.Name())
			}
			continue
		}
		if !putsSamePool(puts, g) {
			name := "the pool"
			if g.pool != nil {
				name = g.pool.Name()
			}
			pass.Report(g.call.Pos(),
				"sync.Pool.Get result is neither released with %s.Put in this function nor returned to a caller: the buffer leaks from the pool", name)
		}
	}
	return nil
}

// isSyncPoolMethod reports whether sel selects a method on sync.Pool.
func isSyncPoolMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// trackedIdents collects the local variables that carry the Get result:
// direct assignment (with or without a type assertion) plus one level of
// derivation through a type assertion or slice expression of a tracked
// variable (`v := pool.Get(); s := v.([]T); return s[:n]`).
func trackedIdents(pass *Pass, body *ast.BlockStmt, get *ast.CallExpr) map[types.Object]bool {
	tracked := map[types.Object]bool{}
	var carries func(e ast.Expr) bool
	carries = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return e == get
		case *ast.TypeAssertExpr:
			return carries(e.X)
		case *ast.SliceExpr:
			return carries(e.X)
		case *ast.Ident:
			obj := pass.Info.ObjectOf(e)
			return obj != nil && tracked[obj]
		}
		return false
	}
	// Two sweeps so a derivation assigned before its source is still
	// chained (assignments are in source order in practice; the second
	// sweep is cheap insurance).
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for j, rhs := range assign.Rhs {
				if j >= len(assign.Lhs) || !carries(rhs) {
					continue
				}
				if id, ok := ast.Unparen(assign.Lhs[j]).(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil {
						tracked[obj] = true
					}
				}
			}
			return true
		})
	}
	return tracked
}

// mentionsTracked reports whether the expression tree references any
// tracked object.
func mentionsTracked(pass *Pass, e ast.Expr, tracked map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil && tracked[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// returnsTracked reports whether any return statement references a
// tracked variable (including inside slice or index expressions).
func returnsTracked(pass *Pass, body *ast.BlockStmt, tracked map[types.Object]bool) bool {
	if len(tracked) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if mentionsTracked(pass, res, tracked) {
				found = true
			}
		}
		return true
	})
	return found
}

// returnsCall reports whether the Get call itself appears inside a return
// statement's results — the assignment-free accessor shape
// `return pool.Get().(T)`.
func returnsCall(body *ast.BlockStmt, get *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if m == ast.Node(get) {
					found = true
					return false
				}
				return true
			})
		}
		return true
	})
	return found
}

// escapesToState returns the tracked object assigned to a struct field,
// index expression, or package-level variable, or nil.
func escapesToState(pass *Pass, body *ast.BlockStmt, tracked map[types.Object]bool) types.Object {
	if len(tracked) == 0 {
		return nil
	}
	var escaped types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped != nil {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			rid, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok {
				continue
			}
			robj := pass.Info.ObjectOf(rid)
			if robj == nil || !tracked[robj] {
				continue
			}
			switch lhs := ast.Unparen(assign.Lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				escaped = robj
			case *ast.Ident:
				if lobj := pass.Info.ObjectOf(lhs); lobj != nil && isPackageLevel(lobj) {
					escaped = robj
				}
			}
		}
		return true
	})
	return escaped
}

// isPackageLevel reports whether obj is a package-scope variable.
func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// putsSamePool reports whether any Put call in the Get's function targets
// the same pool object (or any pool, when either side is unresolvable).
func putsSamePool(puts []poolCall, g poolCall) bool {
	for _, p := range puts {
		if p.fn != g.fn {
			continue
		}
		if g.pool == nil || p.pool == nil || p.pool == g.pool {
			return true
		}
	}
	return false
}
