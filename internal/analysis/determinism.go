package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's reproducibility contract: profile,
// estimate, plan, and output generation must be a pure function of
// (corpus seed, model, setting, stats.Stream) — the property the
// parallel-determinism tests pin (bit-identical profiles at any worker
// count) and the content-addressed store depends on (equal requests must
// produce equal bytes).
//
// Three sources of silent nondeterminism are flagged inside the
// generation-path packages:
//
//  1. Wall-clock reads: time.Now and time.Since. Stage accounting that
//     genuinely needs wall time lives behind the suppressed timers in
//     internal/plan/stages.go; anything else is a determinism bug.
//  2. The global math/rand (and math/rand/v2) source. All generation
//     randomness must come from a seeded stats.Stream.
//  3. Slice appends ordered by map iteration: `for k := range m` feeding
//     an append to a slice declared outside the loop bakes Go's random
//     map order into the output, unless the function visibly sorts the
//     slice afterwards.
//
// Benchmarks, servers, CLIs, and _test.go files are exempt: the analyzer
// only matches the generation-path packages and the loader never parses
// test files.

// determinismPackages is the generation-path surface: every package whose
// computation flows into profile bytes.
var determinismPackages = map[string]bool{
	"smokescreen/internal/profile":  true,
	"smokescreen/internal/estimate": true,
	"smokescreen/internal/plan":     true,
	"smokescreen/internal/outputs":  true,
	"smokescreen/internal/degrade":  true,
	"smokescreen/internal/detect":   true,
	"smokescreen/internal/raster":   true,
	"smokescreen/internal/scene":    true,
	"smokescreen/internal/stats":    true,
	"smokescreen/internal/evaluate": true,
	"smokescreen/internal/parallel": true,
	"smokescreen/internal/query":    true,
}

// Determinism is the determinism analyzer.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand, and map-iteration-ordered " +
		"slice writes in the profile/estimate/plan/outputs generation paths",
	Match: func(path string) bool { return determinismPackages[path] },
	Run:   runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrderedAppends(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "time" && (name == "Now" || name == "Since"):
		pass.Report(call.Pos(),
			"time.%s in a deterministic generation path: profile bytes must not depend on the wall clock (use a stats.Stream for randomness, plan stage timers for accounting)", name)
	case pkg == "math/rand" || pkg == "math/rand/v2":
		// Only the package-level convenience functions use the global
		// source; *rand.Rand methods carry their own explicit seed
		// (though generation code should prefer stats.Stream anyway).
		if isPkgFunc(pass.Info, call, pkg, name) {
			pass.Report(call.Pos(),
				"global %s.%s draws from the process-wide random source: generation paths must use a seeded stats.Stream", pkg, name)
		}
	}
}

// checkMapOrderedAppends flags `x = append(x, ...)` under `for ... range
// <map>` when x is declared outside the loop and never sorted later in
// the same function.
func checkMapOrderedAppends(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			assign, ok := m.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				return true
			}
			lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.ObjectOf(lhs)
			if obj == nil {
				return true
			}
			// Declared inside the loop: each iteration owns its slice,
			// so iteration order cannot leak out through it alone.
			if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
				return true
			}
			if sortedAfter(pass, body, rng, obj) {
				return true
			}
			pass.Report(assign.Pos(),
				"append to %s is ordered by map iteration: sort %s after the loop (or iterate sorted keys) so output does not inherit Go's random map order", obj.Name(), obj.Name())
			return true
		})
		return true
	})
}

// isBuiltinAppend reports whether the call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, somewhere after the range statement in the
// same function body, obj is passed to a sort.* or slices.Sort* call, or
// to a local sorting helper (a callee whose name contains "sort") — the
// visible "collect then sort" idiom that restores determinism.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sorts := false
		if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil {
			p := fn.Pkg().Path()
			sorts = p == "sort" || p == "slices" ||
				strings.Contains(strings.ToLower(fn.Name()), "sort")
		}
		if !sorts {
			return true
		}
		for _, arg := range call.Args {
			if objectOf(pass.Info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
