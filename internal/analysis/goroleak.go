package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goroleak enforces goroutine accountability in the serving path
// (internal/server, internal/fleetd, internal/stream): every `go`
// statement must be tied to something its spawner can observe at
// teardown — a context, a WaitGroup, or a channel the spawner holds.
// A fire-and-forget goroutine is invisible to Drain: under the
// multi-tenant serving roadmap it outlives the job that spawned it,
// keeps a worker-pool slot or a transport pinned, and turns "wrong
// number" bugs into "work charged to the wrong tenant" bugs.
//
// A goroutine is accounted when any of these holds:
//
//   - its body (or an argument to it) mentions a context.Context — the
//     goroutine can observe cancellation (`<-ctx.Done()`, a *Ctx callee);
//   - its body (or an argument) mentions a sync.WaitGroup — the spawner
//     joins it (`wg.Add(1)` / `defer wg.Done()` / `wg.Wait()`);
//   - its body mentions a channel declared OUTSIDE the goroutine (or one
//     is passed in as an argument) — closing or sending on it is the
//     drain-hook shape (`defer close(done)`), and the spawner can block
//     on the handle it kept.
//
// Channels declared inside the goroutine don't count: the spawner has no
// handle, so nothing about the goroutine's lifetime is observable.
//
// The check is syntactic about reachability — mentioning a ctx does not
// prove the select is wired right — but it makes the accounting idiom
// mandatory, and the remaining gap is what the stream/fleet smoke tests'
// drain assertions cover.

// goroleakPackages is the serving surface: every package that spawns
// goroutines on behalf of requests, streams, or fleet peers.
var goroleakPackages = map[string]bool{
	"smokescreen/internal/server": true,
	"smokescreen/internal/fleetd": true,
	"smokescreen/internal/stream": true,
}

// Goroleak is the fire-and-forget-goroutine analyzer.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: "flag fire-and-forget goroutines in the serving path (server/fleetd/stream): " +
		"every go statement must be tied to a context, a WaitGroup, or a channel the spawner holds",
	Match: func(path string) bool {
		return goroleakPackages[path] || strings.HasPrefix(path, "fixture/")
	},
	Run: runGoroleak,
}

func runGoroleak(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineAccounted(pass, g) {
				return true
			}
			pass.Report(g.Pos(),
				"fire-and-forget goroutine: tie it to a context, a WaitGroup, or a channel the spawner keeps, so Drain can observe it finish")
			return true
		})
	}
	return nil
}

// goroutineAccounted reports whether the go statement is observably tied
// to its spawner.
func goroutineAccounted(pass *Pass, g *ast.GoStmt) bool {
	// Arguments are evaluated by the spawner: a ctx, WaitGroup, or
	// channel handed in is a handle both sides share.
	for _, arg := range g.Call.Args {
		if isAccountingExpr(pass, arg, nil) {
			return true
		}
	}
	switch fn := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyMentionsAccounting(pass, fn)
	case *ast.SelectorExpr:
		// A method spawn (`go s.loop()`): the receiver may be the handle
		// (e.g. a struct holding the ctx), but that is invisible here —
		// require the accounting to be at the spawn site.
		return false
	}
	return false
}

// bodyMentionsAccounting reports whether the goroutine literal's body
// mentions a context, a WaitGroup, or a channel declared outside the
// literal.
func bodyMentionsAccounting(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isAccountingExpr(pass, e, lit) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAccountingExpr reports whether e is a context.Context, a
// sync.WaitGroup, or a channel. When lit is non-nil, channels only count
// if their root object is declared outside the literal (the spawner's
// handle, not a goroutine-private channel); contexts and WaitGroups
// count regardless — a ctx threaded through any path still observes
// cancellation.
func isAccountingExpr(pass *Pass, e ast.Expr, lit *ast.FuncLit) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if isContextType(tv.Type) || isWaitGroupType(tv.Type) {
		return true
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if lit == nil {
		return true
	}
	obj := rootObject(pass.Info, e)
	if obj == nil {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// isWaitGroupType reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// rootObject resolves the leftmost identifier of a selector chain or
// identifier to its object (`s.done` -> s's object, `done` -> done's).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
