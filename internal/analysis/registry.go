package analysis

// Analyzers returns the full smokevet suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Poolhygiene, Ctxflow, Atomiccounter}
}
