package analysis

// Analyzers returns the full smokevet suite in report order: the four
// single-package v1 analyzers, then the v2 analyzers that lean on fact
// propagation and the serving-path/persistence contracts.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism, Poolhygiene, Ctxflow, Atomiccounter,
		Goroleak, Lockorder, Axisreg, Errcontract,
	}
}
