package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(filepath.Join(dir, name)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDirGenerics pins that the stdlib loader type-checks generic
// code: the analyzers walk Info.Uses/Selections on instantiated calls,
// so a loader that chokes on type parameters would silently blind every
// analyzer to generic call sites.
func TestLoadDirGenerics(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "generic.go", `package generic

type Number interface {
	~int | ~float64
}

func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

type Pair[K comparable, V any] struct {
	Key K
	Val V
}

func (p Pair[K, V]) Swapped(v V, k K) Pair[K, V] {
	return Pair[K, V]{Key: k, Val: v}
}

var (
	ints   = Sum([]int{1, 2, 3})
	floats = Sum[float64]([]float64{1, 2})
	pair   = Pair[string, int]{Key: "a", Val: 1}.Swapped(2, "b")
)
`)
	pkg, err := NewLoader().LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors on generic code: %v", pkg.TypeErrors)
	}
	if pkg.Pkg == nil || pkg.Pkg.Scope().Lookup("Sum") == nil {
		t.Fatal("generic function Sum missing from package scope")
	}
	// The type-checker must have resolved the instantiations: every
	// loaded package's Info carries Uses for the analyzers to consume.
	if len(pkg.Info.Uses) == 0 {
		t.Fatal("Info.Uses is empty; instantiation resolution failed")
	}
}

// TestLoadFixtureTree pins the multi-package fixture contract: the root
// loads as fixture/<base>, subdirectories as fixture/<base>/<sub>, the
// returned order puts imports before importers, and cross-package
// references resolve against the same *types.Package pointers (which is
// what makes fact lookup by object identity work in fixture tests).
func TestLoadFixtureTree(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Base(dir)
	writeFixture(t, dir, "dep/dep.go", `package dep

func Answer() int { return 42 }
`)
	writeFixture(t, dir, "root.go", `package root

import "fixture/`+base+`/dep"

var X = dep.Answer()
`)
	pkgs, err := NewLoader().LoadFixtureTree(dir)
	if err != nil {
		t.Fatalf("LoadFixtureTree: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "fixture/"+base+"/dep" || pkgs[1].Path != "fixture/"+base {
		t.Fatalf("order = [%s, %s], want dep before root", pkgs[0].Path, pkgs[1].Path)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
	// The root's view of the dep package must be the same pointer the
	// tree returned, not a re-imported copy.
	var depFromRoot *Package
	for _, imp := range pkgs[1].Pkg.Imports() {
		if imp.Path() == pkgs[0].Path {
			if imp != pkgs[0].Pkg {
				t.Fatal("root imported a distinct copy of the dep package")
			}
			depFromRoot = pkgs[0]
		}
	}
	if depFromRoot == nil {
		t.Fatal("root package does not record its fixture import")
	}
}
