package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression syntax:
//
//	//smokevet:ignore <reason>
//	//smokevet:ignore <analyzer>: <reason>
//
// A suppression silences findings reported on the comment's own line or
// on the line directly below it — so it works both as a trailing comment
// and as a full-line comment above the offending statement. The reason is
// mandatory: a bare `//smokevet:ignore` is itself reported, which is what
// keeps the acceptance bar of "zero unexplained suppressions" mechanical.
// Naming an analyzer scopes the suppression to it; otherwise it applies
// to every analyzer.

const suppressPrefix = "smokevet:ignore"

type suppression struct {
	analyzer string // "" = all analyzers
	reason   string
	pos      token.Pos
}

// suppressionIndex maps file line -> suppressions effective on that line.
type suppressionIndex struct {
	byLine map[int][]suppression
	// malformed are suppressions with no reason, reported by the runner.
	malformed []token.Pos
}

// knownAnalyzers lets the parser distinguish an analyzer-scoped
// suppression from a reason that happens to contain a colon.
var knownAnalyzers = map[string]bool{
	"determinism":   true,
	"poolhygiene":   true,
	"ctxflow":       true,
	"atomiccounter": true,
}

func indexSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: map[int][]suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry suppressions
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), suppressPrefix)
				if !ok {
					continue
				}
				s := suppression{reason: strings.TrimSpace(text), pos: c.Pos()}
				if name, rest, found := strings.Cut(s.reason, ":"); found && knownAnalyzers[strings.TrimSpace(name)] {
					s.analyzer = strings.TrimSpace(name)
					s.reason = strings.TrimSpace(rest)
				}
				if s.reason == "" {
					idx.malformed = append(idx.malformed, c.Pos())
					continue
				}
				line := fset.Position(c.Pos()).Line
				idx.byLine[line] = append(idx.byLine[line], s)
				idx.byLine[line+1] = append(idx.byLine[line+1], s)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding by analyzer on line is silenced.
func (idx *suppressionIndex) suppressed(analyzer string, line int) bool {
	for _, s := range idx.byLine[line] {
		if s.analyzer == "" || s.analyzer == analyzer {
			return true
		}
	}
	return false
}
