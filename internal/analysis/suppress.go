package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression syntax:
//
//	//smokevet:ignore <reason>
//	//smokevet:ignore <analyzer>: <reason>
//
// A suppression silences findings reported on the comment's own line or
// on the line directly below it — so it works both as a trailing comment
// and as a full-line comment above the offending statement. The reason is
// mandatory: a bare `//smokevet:ignore` is itself reported, which is what
// keeps the acceptance bar of "zero unexplained suppressions" mechanical.
// Naming an analyzer scopes the suppression to it; otherwise it applies
// to every analyzer.
//
// Suppressions are also audited: when the full suite runs, any ignore
// that silenced nothing is reported as stale (RunOptions
// .AuditSuppressions), so a suppression cannot outlive the finding it was
// written for and quietly blanket a future one.

const suppressPrefix = "smokevet:ignore"

type suppression struct {
	analyzer string // "" = all analyzers
	reason   string
	pos      token.Pos
	// used records whether the suppression silenced at least one
	// diagnostic during the current run (the stale-ignore audit).
	used bool
}

// describe renders the suppression's scope and reason for the stale
// report.
func (s *suppression) describe() string {
	if s.analyzer != "" {
		return s.analyzer + ": " + s.reason
	}
	return s.reason
}

// suppressionIndex maps file line -> suppressions effective on that line.
// Both lines of one comment share a single *suppression, so a use on
// either line marks the comment used.
type suppressionIndex struct {
	byLine map[int][]*suppression
	// ordered lists each suppression once, in source order.
	ordered []*suppression
	// malformed are suppressions with no reason, reported by the runner.
	malformed []token.Pos
}

// knownAnalyzers lets the parser distinguish an analyzer-scoped
// suppression from a reason that happens to contain a colon.
var knownAnalyzers = map[string]bool{
	"determinism":   true,
	"poolhygiene":   true,
	"ctxflow":       true,
	"atomiccounter": true,
	"goroleak":      true,
	"lockorder":     true,
	"axisreg":       true,
	"errcontract":   true,
}

// parseSuppression interprets one line comment's text (with the leading
// "//" already stripped). It returns the parsed suppression and whether
// the comment is a suppression at all; a suppression with an empty
// reason is malformed (reported by the runner, never effective). The
// fuzz target FuzzSuppressParse pins this parser: arbitrary comment
// bytes must parse without panicking, and every well-formed result must
// carry a non-empty reason and a known (or empty) analyzer scope.
func parseSuppression(text string) (s suppression, isSuppression bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), suppressPrefix)
	if !ok {
		return suppression{}, false
	}
	s.reason = strings.TrimSpace(rest)
	if name, tail, found := strings.Cut(s.reason, ":"); found && knownAnalyzers[strings.TrimSpace(name)] {
		s.analyzer = strings.TrimSpace(name)
		s.reason = strings.TrimSpace(tail)
	}
	return s, true
}

func indexSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: map[int][]*suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry suppressions
				}
				s, ok := parseSuppression(text)
				if !ok {
					continue
				}
				s.pos = c.Pos()
				if s.reason == "" {
					idx.malformed = append(idx.malformed, c.Pos())
					continue
				}
				sp := &s
				idx.ordered = append(idx.ordered, sp)
				line := fset.Position(c.Pos()).Line
				idx.byLine[line] = append(idx.byLine[line], sp)
				idx.byLine[line+1] = append(idx.byLine[line+1], sp)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding by analyzer on line is silenced,
// marking the silencing suppression used for the stale audit.
func (idx *suppressionIndex) suppressed(analyzer string, line int) bool {
	hit := false
	for _, s := range idx.byLine[line] {
		if s.analyzer == "" || s.analyzer == analyzer {
			s.used = true
			hit = true
		}
	}
	return hit
}

// stale returns the suppressions that silenced nothing, in source order.
func (idx *suppressionIndex) stale() []*suppression {
	var out []*suppression
	for _, s := range idx.ordered {
		if !s.used {
			out = append(out, s)
		}
	}
	return out
}
