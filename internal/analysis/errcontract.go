package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Errcontract enforces the typed-error contract around the persistence
// path. The store wraps corruption as *store.CorruptError, bounds
// violations surface as profile.ErrOutOfRange, misses as
// store.ErrNotFound — and every one of them may arrive wrapped (fmt
// .Errorf("%w"), the fleet transport, the replicated-store read path).
// Code that compares with == or pattern-matches the message text works
// in the unit test and silently misclassifies the same error once a
// wrapping layer is inserted — corruption read as a miss is exactly how
// a degraded profile gets served as authoritative.
//
// Four rules, everywhere in the module:
//
//  1. A module-local error sentinel (package-level `var Err...`) must be
//     matched with errors.Is, never compared with == / !=.
//  2. A module-local error type (e.g. *store.CorruptError) must be
//     matched with errors.As, never via type assertion or type switch.
//  3. err.Error() text must not be compared or substring-matched —
//     message text is not API.
//  4. An error returned by the store or outputs packages (the
//     persistence path) must not be discarded: no bare call statement,
//     no blank assignment, no go/defer that drops it.

// Errcontract is the typed-error-contract analyzer.
var Errcontract = &Analyzer{
	Name: "errcontract",
	Doc: "enforce errors.Is/errors.As for module error sentinels and types, forbid matching " +
		"on error text, and forbid discarding persistence-path (store/outputs) errors",
	Match: func(path string) bool {
		return path == "smokescreen" || strings.HasPrefix(path, "smokescreen/") ||
			strings.HasPrefix(path, "fixture/")
	},
	Run: runErrcontract,
}

// persistencePackages are the packages whose returned errors carry the
// corruption/miss signal.
var persistencePackages = map[string]bool{
	"smokescreen/internal/store":   true,
	"smokescreen/internal/outputs": true,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrcontract(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
				checkErrorTextCompare(pass, n)
			case *ast.TypeAssertExpr:
				if n.Type != nil { // nil Type = inside a type switch header
					checkErrorAssert(pass, n.X, n.Type, n.Pos())
				}
			case *ast.TypeSwitchStmt:
				checkErrorTypeSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorTextHelper(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedPersistence(pass, call, "call statement")
				}
			case *ast.GoStmt:
				checkDiscardedPersistence(pass, n.Call, "go statement")
			case *ast.DeferStmt:
				checkDiscardedPersistence(pass, n.Call, "defer statement")
			case *ast.AssignStmt:
				checkBlankedPersistence(pass, n)
			}
			return true
		})
	}
	return nil
}

// moduleLocal reports whether the package belongs to this module (or a
// fixture standing in for one).
func moduleLocal(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "smokescreen" || strings.HasPrefix(path, "smokescreen/") ||
		strings.HasPrefix(path, "fixture/")
}

// errorSentinel resolves e to a module-local package-level `var Err...`
// of error type, or nil.
func errorSentinel(pass *Pass, e ast.Expr) *types.Var {
	obj := objectOf(pass.Info, ast.Unparen(e))
	v, ok := obj.(*types.Var)
	if !ok || !isPackageLevel(v) || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !moduleLocal(v.Pkg()) || !types.AssignableTo(v.Type(), errorType) {
		return nil
	}
	return v
}

// checkSentinelCompare applies rule 1 to one == / != expression.
func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sentinel := errorSentinel(pass, pair[0])
		if sentinel == nil {
			continue
		}
		if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
			continue // `x == nil` on the sentinel itself is not a match attempt
		}
		op := "=="
		if be.Op == token.NEQ {
			op = "!="
		}
		pass.Report(be.Pos(),
			"%s comparison with %s.%s: a wrapped sentinel never compares equal — use errors.Is so the match survives %%w wrapping",
			op, pkgName(sentinel.Pkg()), sentinel.Name())
		return
	}
}

func pkgName(pkg *types.Package) string {
	if pkg == nil {
		return "?"
	}
	return pkg.Name()
}

// moduleErrorType resolves a type expression to a module-local named
// error type (possibly behind a pointer), or nil.
func moduleErrorType(pass *Pass, e ast.Expr) *types.TypeName {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if !types.AssignableTo(t, errorType) {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if !moduleLocal(named.Obj().Pkg()) {
		return nil
	}
	return named.Obj()
}

// checkErrorAssert applies rule 2 to one x.(T).
func checkErrorAssert(pass *Pass, x ast.Expr, typ ast.Expr, pos token.Pos) {
	xt, ok := pass.Info.Types[x]
	if !ok || xt.Type == nil || !types.Identical(xt.Type, errorType) {
		return
	}
	tn := moduleErrorType(pass, typ)
	if tn == nil {
		return
	}
	pass.Report(pos,
		"type assertion on %s.%s: a wrapped error never matches — use errors.As so the typed payload survives %%w wrapping",
		pkgName(tn.Pkg()), tn.Name())
}

// checkErrorTypeSwitch applies rule 2 to a type switch over an error.
func checkErrorTypeSwitch(pass *Pass, ts *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch stmt := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := stmt.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if ta, ok := stmt.Rhs[0].(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return
	}
	xt, ok := pass.Info.Types[x]
	if !ok || xt.Type == nil || !types.Identical(xt.Type, errorType) {
		return
	}
	for _, stmt := range ts.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tn := moduleErrorType(pass, e); tn != nil {
				pass.Report(e.Pos(),
					"type switch case %s.%s on an error: a wrapped error never matches — use errors.As",
					pkgName(tn.Pkg()), tn.Name())
			}
		}
	}
}

// errorTextCall reports whether e is a call of `Error() string` on an
// error value.
func errorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "Error" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return types.AssignableTo(sig.Recv().Type(), errorType) ||
		types.Identical(sig.Recv().Type(), errorType)
}

// checkErrorTextCompare applies rule 3 to == / != over err.Error().
func checkErrorTextCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if errorTextCall(pass, be.X) || errorTextCall(pass, be.Y) {
		pass.Report(be.Pos(),
			"comparing err.Error() text: message text is not API — match the typed error with errors.Is/errors.As")
	}
}

// stringMatchHelpers are the strings-package entry points that turn an
// error message into a control-flow decision.
var stringMatchHelpers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

// checkErrorTextHelper applies rule 3 to strings.Contains(err.Error(), ...)
// and friends.
func checkErrorTextHelper(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchHelpers[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if errorTextCall(pass, arg) {
			pass.Report(call.Pos(),
				"strings.%s over err.Error(): message text is not API — match the typed error with errors.Is/errors.As",
				fn.Name())
			return
		}
	}
}

// persistenceCallee resolves a call to a persistence-path function whose
// last result is an error; it returns the callee or nil. Fixture
// packages named store/outputs stand in for the real ones.
func persistenceCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if !persistencePackages[path] &&
		!(strings.HasPrefix(path, "fixture/") && (fn.Pkg().Name() == "store" || fn.Pkg().Name() == "outputs")) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1)
	if !types.Identical(last.Type(), errorType) {
		return nil
	}
	return fn
}

// checkDiscardedPersistence applies rule 4 to a statement that drops
// every result of its call.
func checkDiscardedPersistence(pass *Pass, call *ast.CallExpr, how string) {
	fn := persistenceCallee(pass, call)
	if fn == nil {
		return
	}
	pass.Report(call.Pos(),
		"%s discards the error from %s.%s: persistence-path errors carry the corruption/miss signal — handle or propagate them",
		how, fn.Pkg().Name(), fn.Name())
}

// checkBlankedPersistence applies rule 4 to assignments that blank the
// error position (`_ = store.Put(...)`, `v, _ := store.Get(...)`).
func checkBlankedPersistence(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := persistenceCallee(pass, call)
	if fn == nil {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Report(call.Pos(),
		"the error from %s.%s is assigned to _: persistence-path errors carry the corruption/miss signal — handle or propagate them",
		fn.Pkg().Name(), fn.Name())
}
