package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		diag("goroleak", "/repo/internal/a/a.go", 10, "leaky"),
		diag("goroleak", "/repo/internal/a/a.go", 40, "leaky"),
		diag("axisreg", "/repo/internal/b/b.go", 5, "switchy"),
	}
	b := NewBaseline("/repo", diags)
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (duplicate messages fold into a count)", len(b.Entries))
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("loaded entries = %d, want 2", len(got.Entries))
	}
	// Paths must be root-relative slash form, so the artifact is stable
	// across checkout locations.
	for _, e := range got.Entries {
		if strings.HasPrefix(e.File, "/") {
			t.Errorf("entry file %q is absolute, want root-relative", e.File)
		}
	}
	if got.Entries[0].File != "internal/a/a.go" || got.Entries[0].Count != 2 {
		t.Errorf("entry[0] = %+v, want internal/a/a.go count 2", got.Entries[0])
	}
}

func TestBaselineVersionGuard(t *testing.T) {
	if _, err := LoadBaseline(strings.NewReader(`{"version": 99, "entries": []}`)); err == nil {
		t.Fatal("LoadBaseline accepted an unknown version")
	}
}

func TestBaselineApplySplitsFreshAndStale(t *testing.T) {
	old := []Diagnostic{
		diag("goroleak", "/repo/a.go", 10, "leaky"),
		diag("goroleak", "/repo/a.go", 40, "leaky"),
		diag("axisreg", "/repo/b.go", 5, "switchy"),
	}
	b := NewBaseline("/repo", old)

	// One "leaky" fixed (count drops 2 -> 1), "switchy" unchanged, and a
	// brand-new finding appears — only the new one should fail the gate,
	// and the half-used allowance should surface as stale.
	now := []Diagnostic{
		diag("goroleak", "/repo/a.go", 12, "leaky"),
		diag("axisreg", "/repo/b.go", 5, "switchy"),
		diag("errcontract", "/repo/c.go", 7, "== sentinel"),
	}
	fresh, stale := b.Apply("/repo", now)
	if len(fresh) != 1 || fresh[0].Analyzer != "errcontract" {
		t.Fatalf("fresh = %+v, want exactly the errcontract finding", fresh)
	}
	if len(stale) != 1 || stale[0].Message != "leaky" || stale[0].Count != 1 {
		t.Fatalf("stale = %+v, want one unused 'leaky' allowance", stale)
	}

	// Line drift alone must not produce fresh findings: the key has no
	// line component, which is the point of the ratchet surviving edits.
	drifted := []Diagnostic{
		diag("goroleak", "/repo/a.go", 999, "leaky"),
		diag("goroleak", "/repo/a.go", 1000, "leaky"),
		diag("axisreg", "/repo/b.go", 123, "switchy"),
	}
	fresh, stale = b.Apply("/repo", drifted)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("after pure line drift: fresh=%v stale=%v, want none", fresh, stale)
	}

	// A count above the allowance fails by exactly the excess.
	grown := append(drifted, diag("goroleak", "/repo/a.go", 50, "leaky"))
	fresh, _ = b.Apply("/repo", grown)
	if len(fresh) != 1 || fresh[0].Message != "leaky" {
		t.Fatalf("fresh = %+v, want one excess 'leaky'", fresh)
	}
}

func TestBaselineEmptyFailsEverything(t *testing.T) {
	b := NewBaseline("/repo", nil)
	if len(b.Entries) != 0 {
		t.Fatalf("empty baseline has %d entries", len(b.Entries))
	}
	fresh, stale := b.Apply("/repo", []Diagnostic{diag("goroleak", "/repo/a.go", 1, "leaky")})
	if len(fresh) != 1 || len(stale) != 0 {
		t.Fatalf("fresh=%v stale=%v, want the finding fresh and nothing stale", fresh, stale)
	}
}
