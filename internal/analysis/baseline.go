package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Lint baseline: the ratchet that lets the smokevet gate tighten without
// a flag-day cleanup. A baseline records the findings a repository has
// accepted (for the moment); `smokevet -baseline lint-baseline.json`
// fails only on findings NOT in the baseline, so new code is held to the
// full standard while grandfathered debt neither blocks CI nor silently
// grows. Shrinking the file is the only way its numbers move in CI —
// hence "ratchet".
//
// Entries are keyed by (analyzer, root-relative file, message) with a
// count, deliberately NOT by line number: unrelated edits shift lines
// constantly, and a line-keyed baseline would misclassify every shifted
// legacy finding as new. The message includes enough position-free
// context (lock names, function names, field lists) to keep collisions
// between distinct findings in one file rare; when two findings do
// collide they share a count, which still ratchets — fixing one lowers
// the observed count below the allowance only until the file is
// regenerated.

// baselineVersion guards the JSON schema.
const baselineVersion = 1

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the finding's file as a slash-separated path relative to
	// the module root, so the baseline is stable across checkouts.
	File string `json:"file"`
	// Message is the exact diagnostic message.
	Message string `json:"message"`
	// Count is how many findings with this key are accepted.
	Count int `json:"count"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// baselineKey identifies a finding class.
type baselineKey struct {
	analyzer, file, message string
}

// relFile maps an absolute diagnostic filename to the baseline's
// root-relative slash form. Filenames outside root (or already relative)
// pass through in slash form rather than picking up ".." runs.
func relFile(root, filename string) string {
	if root != "" && filepath.IsAbs(filename) {
		if rel, err := filepath.Rel(root, filename); err == nil && filepath.IsLocal(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// NewBaseline folds a run's diagnostics into a baseline, keyed relative
// to root. Entries are sorted so the artifact diffs cleanly.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, relFile(root, d.Pos.Filename), d.Message}]++
	}
	b := &Baseline{Version: baselineVersion, Entries: []BaselineEntry{}}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// LoadBaseline reads a baseline written by WriteBaseline.
func LoadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("analysis: decoding baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: unsupported baseline version %d", b.Version)
	}
	return &b, nil
}

// Apply splits a run's diagnostics against the baseline: fresh holds the
// findings exceeding their baseline allowance (these fail the gate), and
// stale holds baseline entries whose allowance is no longer fully used
// (the debt they grandfather has shrunk or vanished, so the committed
// file should be regenerated to ratchet down). Within one key the
// earliest diagnostics in position order consume the allowance; which of
// several identical findings is called "new" is arbitrary anyway, and
// taking the tail keeps the output stable.
func (b *Baseline) Apply(root string, diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	allowance := map[baselineKey]int{}
	for _, e := range b.Entries {
		allowance[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, relFile(root, d.Pos.Filename), d.Message}
		if allowance[k] > 0 {
			allowance[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if allowance[k] > 0 {
			left := e.Count
			if allowance[k] < left {
				left = allowance[k]
			}
			stale = append(stale, BaselineEntry{Analyzer: e.Analyzer, File: e.File, Message: e.Message, Count: left})
			allowance[k] -= left
		}
	}
	return fresh, stale
}
