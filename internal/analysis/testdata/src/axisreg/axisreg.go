// Package fixture exercises the axisreg analyzer: no hand-rolled copies
// of the degradation-axis registry — neither switches over axis names
// nor functions dispatching on several Setting axis fields.
package fixture

// Setting mirrors degrade.Setting's axis fields; the analyzer keys on
// the type name and field names, so the fixture stands in for the real
// thing.
type Setting struct {
	SampleFraction float64
	Resolution     int
	Restricted     []string
	NoiseSigma     float64
	MotionBlur     int
	Quantize       int
	Occlusion      float64
}

// Dispatch hand-rolls the clause registry: two axis names in one switch
// is a copy of the axis list that a new axis will not appear in.
func Dispatch(keyword string, s *Setting) {
	switch keyword { // want `switch enumerates degradation axes by name`
	case "RESOLUTION":
		s.Resolution = 160
	case "NOISE":
		s.NoiseSigma = 0.1
	}
}

// Single special-cases one axis, which is using an axis, not enumerating
// the registry.
func Single(keyword string) bool {
	switch keyword {
	case "resolution":
		return true
	}
	return false
}

// Unrelated switches over non-axis strings.
func Unrelated(keyword string) bool {
	switch keyword {
	case "WHERE", "USING":
		return true
	}
	return false
}

// Fanout reads three axis fields: it re-derives "which axes are active"
// by hand instead of iterating the registry.
func Fanout(s Setting) string { // want `dispatches on 3 Setting axis fields`
	out := ""
	if s.Resolution != 0 {
		out += "r"
	}
	if s.NoiseSigma > 0 {
		out += "n"
	}
	if s.MotionBlur > 0 {
		out += "b"
	}
	return out
}

// Pair reads two fields — below the enumeration threshold.
func Pair(s Setting) bool {
	return s.Resolution != 0 && s.NoiseSigma > 0
}

// Build only writes fields: constructing a Setting is not dispatching on
// one.
func Build() Setting {
	var s Setting
	s.SampleFraction = 0.5
	s.Resolution = 160
	s.NoiseSigma = 0.1
	s.MotionBlur = 3
	s.Quantize = 16
	return s
}

// Literal construction is exempt too.
func BuildLiteral() Setting {
	return Setting{SampleFraction: 0.5, Resolution: 160, NoiseSigma: 0.1}
}
