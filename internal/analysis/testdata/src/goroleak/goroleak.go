// Package fixture exercises the goroleak analyzer: every go statement
// must be tied to a context, a WaitGroup, or a channel the spawner
// keeps, so teardown can observe the goroutine finish.
package fixture

import (
	"context"
	"sync"
)

func work()                            {}
func worker(ctx context.Context)      { <-ctx.Done() }
func handle(done chan struct{})       { close(done) }
func drain(wg *sync.WaitGroup, n int) { defer wg.Done(); _ = n }

// Accounted shows the three sanctioned shapes.
func Accounted(ctx context.Context) {
	go func() { // ok: the body observes ctx cancellation
		<-ctx.Done()
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: the spawner joins via the WaitGroup
		defer wg.Done()
		work()
	}()
	wg.Wait()

	done := make(chan struct{})
	go func() { // ok: the spawner keeps the done channel
		defer close(done)
		work()
	}()
	<-done

	go worker(ctx)  // ok: ctx handed in as an argument
	go handle(done) // ok: channel handed in as an argument

	wg.Add(1)
	go drain(&wg, 1) // ok: WaitGroup handed in as an argument
	wg.Wait()
}

// Leaks shows the fire-and-forget shapes.
func Leaks() {
	go work() // want `fire-and-forget goroutine`

	go func() { // want `fire-and-forget goroutine`
		work()
	}()

	go func() { // want `fire-and-forget goroutine`
		// A channel minted inside the goroutine is not a handle the
		// spawner holds; nothing outside can observe this finish.
		inner := make(chan struct{})
		close(inner)
	}()
}

type pump struct {
	done chan struct{}
}

func (p *pump) loop() { close(p.done) }

// Start spawns a method: the receiver may well hold a ctx or channel,
// but the accounting must be visible at the spawn site.
func (p *pump) Start() {
	go p.loop() // want `fire-and-forget goroutine`
}
