// Package fixture exercises the determinism analyzer: wall-clock reads,
// the global math/rand source, and map-iteration-ordered slice writes.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock reads the wall clock twice; both reads are flagged.
func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now in a deterministic generation path`
	return time.Since(t0) // want `time\.Since in a deterministic generation path`
}

// suppressedTrailing shows the trailing suppression form.
func suppressedTrailing() time.Time {
	return time.Now() //smokevet:ignore determinism: fixture exercises the trailing suppression form
}

// suppressedAbove shows the full-line suppression form on the line above.
func suppressedAbove() time.Time {
	//smokevet:ignore determinism: fixture exercises the full-line suppression form
	return time.Now()
}

// wrongScope carries a suppression scoped to a different analyzer, so the
// determinism finding still fires.
func wrongScope() time.Time {
	return time.Now() //smokevet:ignore ctxflow: scoped elsewhere, determinism still fires // want `time\.Now in a deterministic generation path`
}

// globalRand draws from the process-wide source.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn draws from the process-wide random source`
}

// seededRand draws from an explicit source: methods carry their own seed,
// so only the package-level convenience functions are flagged.
func seededRand(r *rand.Rand) int {
	return r.Intn(10)
}

// mapOrdered bakes Go's random map order into the returned slice.
func mapOrdered(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys is ordered by map iteration`
	}
	return keys
}

// mapSorted restores determinism with a visible sort after the loop.
func mapSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapLocalSortHelper sorts through a local helper; the collect-then-sort
// idiom is recognised by callee name too.
func mapLocalSortHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(s []string) { sort.Strings(s) }

// perIteration appends to a slice declared inside the loop: each iteration
// owns its slice, so map order cannot leak through it.
func perIteration(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// sliceOrdered ranges over a slice, not a map: iteration order is defined.
func sliceOrdered(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// The view-cache idiom from internal/degrade: eviction walks the intern
// map. Summing freed bytes over map entries is order-independent and
// carries the sanctioned suppression; collecting the evicted view specs
// into a slice bakes map order into the result and is flagged.

type viewEntry struct{ spec string; bytes int64 }

func evictViews(cache map[string]viewEntry) int64 {
	var freed int64
	for k, e := range cache {
		//smokevet:ignore determinism: summation over map entries is order-independent
		freed += e.bytes
		delete(cache, k)
	}
	return freed
}

func evictViewsOrdered(cache map[string]viewEntry) []string {
	var specs []string
	for k := range cache {
		specs = append(specs, k) // want `append to specs is ordered by map iteration`
		delete(cache, k)
	}
	return specs
}

func evictViewsSorted(cache map[string]viewEntry) []string {
	var specs []string
	for k := range cache {
		specs = append(specs, k)
		delete(cache, k)
	}
	sort.Strings(specs)
	return specs
}
