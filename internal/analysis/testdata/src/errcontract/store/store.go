// Package store is the persistence-path stand-in for the errcontract
// fixture: a sentinel, a typed error, and error-returning entry points.
package store

import "errors"

// ErrNotFound is the miss sentinel.
var ErrNotFound = errors.New("store: not found")

// CorruptError is the typed corruption signal.
type CorruptError struct {
	Key string
}

func (e *CorruptError) Error() string { return "store: corrupt " + e.Key }

// Put persists one entry.
func Put(key string) error { return nil }

// Get reads one entry.
func Get(key string) (string, error) { return "", ErrNotFound }
