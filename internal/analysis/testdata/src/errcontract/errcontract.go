// Package fixture exercises the errcontract analyzer: module error
// sentinels matched with errors.Is, typed errors with errors.As, no
// matching on message text, no discarded persistence-path errors.
package fixture

import (
	"errors"
	"strings"

	"fixture/errcontract/store"
)

// Lookup compares the sentinel both ways.
func Lookup(key string) (string, bool) {
	v, err := store.Get(key)
	if err == store.ErrNotFound { // want `use errors\.Is`
		return "", false
	}
	if store.ErrNotFound != err { // want `use errors\.Is`
		return v, true
	}
	if errors.Is(err, store.ErrNotFound) { // ok: survives wrapping
		return "", false
	}
	return v, true
}

// Classify matches the typed error three ways.
func Classify(err error) string {
	if ce, ok := err.(*store.CorruptError); ok { // want `use errors\.As`
		return ce.Key
	}
	switch err.(type) {
	case *store.CorruptError: // want `use errors\.As`
		return "corrupt"
	}
	var ce *store.CorruptError
	if errors.As(err, &ce) { // ok: survives wrapping
		return ce.Key
	}
	return ""
}

// TextMatch turns message text into control flow.
func TextMatch(err error) bool {
	if err.Error() == "store: not found" { // want `message text is not API`
		return true
	}
	return strings.Contains(err.Error(), "corrupt") // want `message text is not API`
}

// Discards drops persistence errors five ways.
func Discards(key string) {
	store.Put(key)     // want `discards the error`
	_ = store.Put(key) // want `assigned to _`

	v, _ := store.Get(key) // want `assigned to _`
	_ = v

	go store.Put(key) // want `discards the error`

	defer store.Put(key) // want `discards the error`
}

// Handles is the sanctioned shape.
func Handles(key string) error {
	if err := store.Put(key); err != nil {
		return err
	}
	v, err := store.Get(key)
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// NilChecks on plain errors are untouched.
func NilChecks(err error) bool {
	return err != nil && err == nil
}
