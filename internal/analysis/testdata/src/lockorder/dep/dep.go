// Package dep is the dependency side of the lockorder fixture tree: it
// establishes the canonical acquisition order MuA -> MuB and exports the
// lock sets of its functions as facts, which the root package consumes.
package dep

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// LockBoth acquires in the canonical order: A, then B. This contributes
// the edge MuA -> MuB to the package's lock graph — no cycle yet.
func LockBoth() {
	MuA.Lock()
	defer MuA.Unlock()
	MuB.Lock()
	defer MuB.Unlock()
}

// LockA acquires only MuA; its exported LocksFact is what tells the root
// package that calling LockA means acquiring MuA.
func LockA() {
	MuA.Lock()
	defer MuA.Unlock()
}
