// Package fixture exercises the lockorder analyzer: cross-package
// acquisition cycles assembled from fact-propagated lock sets, and
// atomic-under-lock mixing.
package fixture

import (
	"sync"
	"sync/atomic"

	"fixture/lockorder/dep"
)

// Reversed holds MuB and then calls dep.LockA, whose imported LocksFact
// says it acquires MuA. dep itself acquires A before B, so this edge
// B -> A closes a cycle no single package can see.
func Reversed() {
	dep.MuB.Lock()
	defer dep.MuB.Unlock()
	dep.LockA() // want `lock-order cycle`
}

var (
	muC sync.Mutex
	muD sync.Mutex
)

// NestedOK nests muD under muC.
func NestedOK() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	muD.Unlock()
}

// NestedOKAgain repeats the same order: consistent nesting is fine.
func NestedOKAgain() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	muD.Unlock()
}

// counter is plain-accessed under muE below, so the atomic access in
// Bypass mixes disciplines.
var (
	muE     sync.Mutex
	counter int64
)

// UnderLock trusts muE to protect counter.
func UnderLock() {
	muE.Lock()
	counter++
	muE.Unlock()
}

// Bypass goes around muE with the atomic API.
func Bypass() {
	atomic.AddInt64(&counter, 1) // want `mixes with plain access under`
}

// clean is atomic everywhere — even under a lock — so there is no plain
// access to race with.
var clean int64

func CleanAtomic() {
	muC.Lock()
	atomic.AddInt64(&clean, 1)
	muC.Unlock()
}

func CleanAtomicElsewhere() {
	atomic.AddInt64(&clean, 1)
}
