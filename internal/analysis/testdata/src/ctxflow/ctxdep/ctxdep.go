// Package ctxdep provides the compat-wrapper pair the cross-package
// ctxflow rule keys on: Sweep is the Background-rooted wrapper, SweepCtx
// the context-aware variant. Visiting this package exports a
// HasCtxVariantFact for Sweep, which the root fixture consumes.
package ctxdep

import "context"

// SweepCtx is the context-aware sweep.
func SweepCtx(ctx context.Context, n int) int { return n }

// Sweep is the compatibility wrapper: a sanctioned Background mint,
// because it holds no context of its own and forwards directly.
func Sweep(n int) int { return SweepCtx(context.Background(), n) }

// Lone has no Ctx sibling: calling it from a ctx-holder is fine.
func Lone(n int) int { return n }

// Counter has an Inc/IncCtx method pair, pinning the method half of the
// fact exporter.
type Counter struct{ n int }

// IncCtx is the context-aware increment.
func (c *Counter) IncCtx(ctx context.Context) { c.n++ }

// Inc is the compat wrapper method.
func (c *Counter) Inc() { c.IncCtx(context.Background()) }
