// Package fixture exercises the ctxflow analyzer: no fresh context roots
// inside ctx-holding functions, no context.TODO anywhere, ctx-taking
// exported functions must forward their context to *Ctx callees, and —
// because fixture/ctxflow is registered as clock-injected — no direct
// wall-clock or timer calls outside a suppressed production Clock.
package fixture

import (
	"context"
	"time"

	"fixture/ctxflow/ctxdep"
)

// DoCtx is the fixture's context-aware callee.
func DoCtx(ctx context.Context, n int) int { return n }

// dropCtx is *Ctx-suffixed but context-free; rule 2 keys on the name.
func dropCtx(n int) int { return n }

// Do is a compatibility root: it holds no context, so minting Background
// to forward it directly into a context-aware call is the sanctioned shape.
func Do(n int) int { return DoCtx(context.Background(), n) }

// Detached mints a fresh root while holding a context.
func Detached(ctx context.Context, n int) int {
	return DoCtx(context.Background(), n) // want `severs cancellation`
}

// Todo is never acceptable: the pipeline is fully threaded.
func Todo(n int) int {
	return DoCtx(context.TODO(), n) // want `context\.TODO\(\) in library code`
}

// Stray mints a Background that feeds nothing context-aware.
func Stray() context.Context {
	return context.Background() // want `compatibility roots may only mint a context to forward it`
}

// ClosureHolds shows that a closure nested in a ctx-holding function
// inherits the context: minting a root inside it still severs.
func ClosureHolds(ctx context.Context) int {
	f := func() int {
		return DoCtx(context.Background(), 1) // want `severs cancellation`
	}
	return f()
}

// Forwards passes its context along: the *Ctx call is satisfied.
func Forwards(ctx context.Context, n int) int { return DoCtx(ctx, n) }

// Drops holds a context but calls the *Ctx callee without one.
func Drops(ctx context.Context, n int) int {
	return dropCtx(n) // want `Drops holds a context but calls dropCtx without passing one`
}

// unexportedDrop is unexported: rule 2 is scoped to exported APIs, where
// the suffix convention is load-bearing for callers.
func unexportedDrop(ctx context.Context, n int) int { return dropCtx(n) }

// Suppressed shows a reasoned escape hatch for an intentional detach.
func Suppressed(ctx context.Context, n int) int {
	return DoCtx(context.Background(), n) //smokevet:ignore ctxflow: fixture exercises suppression of an intentional detach
}

// WallRead bypasses the injected clock with a direct wall-clock read.
func WallRead() time.Time {
	return time.Now() // want `time\.Now in a clock-injected package`
}

// Elapsed: time.Since is a wall-clock read too.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in a clock-injected package`
}

// RealTimer arms a real timer where the injected Clock's After belongs.
func RealTimer() <-chan time.Time {
	return time.After(time.Second) // want `time\.After in a clock-injected package`
}

// Naps sleeps on the real clock — the exact flake source the rule exists
// to keep out of lease tests.
func Naps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a clock-injected package`
}

// Unflagged shows the rule keys on calls, not the time package itself:
// durations, formatting, and arithmetic are fine.
func Unflagged(t time.Time) string {
	return t.Add(3 * time.Second).Format(time.RFC3339)
}

// ProductionClock is the fixture's sanctioned wall-clock read, mirroring
// fleetd's realClock: the one place a clock-injected package touches time.
func ProductionClock() time.Time {
	return time.Now() //smokevet:ignore ctxflow: fixture's production Clock implementation — the sanctioned wall-clock read
}

// CrossDetach holds a context but calls another package's compat wrapper
// — the fact-propagated rule: Sweep's HasCtxVariantFact was exported
// when ctxdep was visited, so the detach is visible here.
func CrossDetach(ctx context.Context, n int) int {
	return ctxdep.Sweep(n) // want `call SweepCtx with the caller's ctx`
}

// CrossForwards calls the ctx variant: the sanctioned cross-package shape.
func CrossForwards(ctx context.Context, n int) int {
	return ctxdep.SweepCtx(ctx, n)
}

// CrossLone calls a fact-free function: nothing to redirect to.
func CrossLone(ctx context.Context, n int) int {
	return ctxdep.Lone(n)
}

// CrossMethod pins the method half of the fact: Inc has an IncCtx
// sibling on the same receiver.
func CrossMethod(ctx context.Context, c *ctxdep.Counter) {
	c.Inc() // want `call IncCtx with the caller's ctx`
}

// CrossRoot holds no context, so calling the compat wrapper is exactly
// what the wrapper exists for.
func CrossRoot(n int) int {
	return ctxdep.Sweep(n)
}
