// Package fixture exercises the atomiccounter analyzer: once a variable
// or field is reached through the sync/atomic function API, every other
// access to it must be atomic too.
package fixture

import "sync/atomic"

var hits int64

// bump and read use the sanctioned function API.
func bump()       { atomic.AddInt64(&hits, 1) }
func read() int64 { return atomic.LoadInt64(&hits) }

// plainRead races with bump.
func plainRead() int64 {
	return hits // want `plain access to hits`
}

// plainWrite can tear on 32-bit platforms and races with read.
func plainWrite() {
	hits = 0 // want `plain access to hits`
}

// suppressedRead shows a reasoned suppression.
func suppressedRead() int64 {
	return hits //smokevet:ignore atomiccounter: fixture exercises suppression of an intentionally racy read
}

type stats struct{ frames int64 }

// add reaches the field atomically...
func (s *stats) add(n int64) { atomic.AddInt64(&s.frames, n) }

// ...so a plain field read elsewhere is mixed access.
func (s *stats) snapshot() int64 {
	return s.frames // want `plain access to frames`
}

// clean is only ever accessed atomically: no findings.
var clean int64

func bumpClean() { atomic.AddInt64(&clean, 1) }

// local is never accessed atomically: plain accesses are fine.
var local int64

func inc() { local++ }
