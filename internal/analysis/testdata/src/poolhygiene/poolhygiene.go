// Package fixture exercises the poolhygiene analyzer: every sync.Pool.Get
// must be released with a Put or handed to the caller through an accessor
// whose package defines a releaser.
package fixture

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// scoped pairs Get with a deferred Put in the same function.
func scoped() {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	b = append(b[:0], 1)
	_ = b
}

// getBuf/putBuf are a sanctioned accessor pair: the Get escapes via
// return, and the package pairs the pool with a releaser.
func getBuf() []byte {
	b := bufPool.Get().([]byte)
	return b[:0]
}

func putBuf(b []byte) { bufPool.Put(b) }

// getDirect is the assignment-free accessor shape.
func getDirect() any { return bufPool.Get() }

var leakPool = sync.Pool{New: func() any { return new(int) }}

// leak draws from the pool and never releases or returns the result.
func leak() {
	v := leakPool.Get() // want `neither released with leakPool\.Put in this function nor returned`
	_ = v
}

// suppressedLeak shows an analyzer-scoped suppression.
func suppressedLeak() {
	v := leakPool.Get() //smokevet:ignore poolhygiene: fixture exercises analyzer-scoped suppression
	_ = v
}

var statePool = sync.Pool{New: func() any { return make([]byte, 64) }}

type holder struct{ buf any }

// retain stores pooled scratch in long-lived state.
func (h *holder) retain() {
	b := statePool.Get() // want `stored in long-lived state through "b"`
	h.buf = b
}

var orphanPool = sync.Pool{New: func() any { return make([]byte, 64) }}

// getOrphan escapes via return, but no Put for orphanPool exists anywhere
// in the package: callers cannot release what they were handed.
func getOrphan() []byte {
	b := orphanPool.Get().([]byte) // want `escapes via return but package fixture defines no Put for pool "orphanPool"`
	return b
}

// The view-render idiom from internal/scene: pixel transforms (motion
// blur) borrow a padded scratch image from a pool for the widened source
// render. The transform releases it before returning; stashing the
// scratch in the long-lived view state leaks a pool slot per render.

var viewScratchPool = sync.Pool{New: func() any { return make([]float32, 0, 1024) }}

type viewState struct{ scratch any }

func renderBlurred(dst []float32) {
	pad := viewScratchPool.Get().([]float32)
	defer viewScratchPool.Put(pad)
	_ = append(pad[:0], dst...)
}

func (vs *viewState) renderCachingScratch() {
	pad := viewScratchPool.Get() // want `stored in long-lived state through "pad"`
	vs.scratch = pad
}
