// Package analysis implements smokevet, the repo's custom static-analysis
// suite. It mechanically enforces the codebase's load-bearing invariants —
// bit-identical profile generation, pooled-scratch hygiene, end-to-end
// context flow, and atomic-only counters — that are otherwise guarded only
// by convention and a handful of determinism tests (see DESIGN.md §10).
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic, an analysistest-style fixture runner)
// but is built on the standard library alone: hermetic builders have no
// module proxy, so x/tools cannot be a dependency. Packages are loaded
// with `go list` and type-checked with the stdlib source importer; the
// resulting per-package Pass is what each analyzer sees. If x/tools ever
// becomes available the analyzers port mechanically — their Run functions
// only consume the Pass surface below.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in scoped
	// `//smokevet:ignore name: reason` suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path. A nil Match applies everywhere. The fixture runner bypasses
	// Match so testdata packages exercise every analyzer regardless of
	// their synthetic import paths.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
	// FactTypes declares the fact types the analyzer exports and imports
	// (pointers to gob-encodable structs). An analyzer with no FactTypes
	// is purely per-package: the runner still offers it the fact API, but
	// nothing it exports survives serialization registration.
	FactTypes []Fact
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Report records one finding at pos.
	Report func(pos token.Pos, format string, args ...any)

	// ExportObjectFact attaches a fact to an object of this package. The
	// fact becomes visible to the same analyzer in every package analyzed
	// after this one (the runner walks packages in dependency order), but
	// only through the gob round-trip — facts that cannot serialize are
	// dropped with an error at seal time.
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportObjectFact copies the fact attached to obj (by this analyzer,
	// in obj's defining package) into fact and reports whether one exists.
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportPackageFact attaches a fact to the package itself.
	ExportPackageFact func(fact Fact)
	// ImportPackageFact copies the package-level fact of the package with
	// the given import path into fact and reports whether one exists.
	ImportPackageFact func(path string, fact Fact) bool
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// --- shared type-resolution helpers used by the analyzers ---

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeFullName returns the resolved callee's full name
// (e.g. "time.Now", "(*sync.Pool).Get"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// calleeName returns the syntactic name of a call's callee — the bare
// identifier or selector field — or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isPkgFunc reports whether the call invokes pkgPath.name (a package-level
// function, not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasContextParam reports whether the function type takes a
// context.Context anywhere in its parameter list.
func hasContextParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// objectOf resolves an identifier or selector expression to the object it
// denotes (variable, field), or nil.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Var).
		return info.ObjectOf(e.Sel)
	}
	return nil
}
