package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Fixture support: the analysistest-style harness the analyzer tests run
// on the packages under testdata/src/<analyzer>/. A fixture line marks an
// expected finding with a trailing comment:
//
//	time.Now() // want `wall clock`
//
// The backquoted (or double-quoted) text is a regexp that must match a
// diagnostic reported on that line; lines without a want comment must
// produce no diagnostic. RunFixture fails on both missing and surplus
// findings, so a disabled or weakened check cannot pass its fixtures.

var wantRE = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"[^\"]*\")")

// expectation is one `// want` mark.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// FixtureResult reports the mismatches between expected and actual
// diagnostics for one analyzer over one fixture package.
type FixtureResult struct {
	// Unmatched are want comments no diagnostic satisfied.
	Unmatched []string
	// Unexpected are diagnostics with no matching want comment.
	Unexpected []string
}

// Failed reports whether the fixture run found any mismatch.
func (r *FixtureResult) Failed() bool {
	return len(r.Unmatched) > 0 || len(r.Unexpected) > 0
}

func (r *FixtureResult) String() string {
	var b strings.Builder
	for _, u := range r.Unmatched {
		fmt.Fprintf(&b, "missing diagnostic: %s\n", u)
	}
	for _, u := range r.Unexpected {
		fmt.Fprintf(&b, "unexpected diagnostic: %s\n", u)
	}
	return b.String()
}

// RunFixture loads the fixture tree rooted at dir — the root package plus
// any sub-package fixtures in immediate subdirectories — and runs one
// analyzer over every package in dependency order (bypassing the
// analyzer's package Match, so fixtures exercise the check regardless of
// their synthetic import paths), comparing findings against the tree's
// want comments. Facts flow between the tree's packages exactly as in a
// real run, so cross-package rules are pinned by fixtures too.
func RunFixture(l *Loader, a *Analyzer, dir string) (*FixtureResult, error) {
	pkgs, err := l.LoadFixtureTree(dir)
	if err != nil {
		return nil, err
	}
	facts := newFactStore()
	if err := facts.register([]*Analyzer{a}); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	var expects []*expectation
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("fixture %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
		ds, err := runOne(pkg, a, facts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
		for _, pos := range pkg.Suppressions.malformed {
			diags = append(diags, Diagnostic{
				Analyzer: "smokevet",
				Pos:      pkg.Fset.Position(pos),
				Message:  "smokevet:ignore without a reason; write //smokevet:ignore <reason>",
			})
		}
		es, err := collectWants(pkg.Fset, pkg.Files)
		if err != nil {
			return nil, err
		}
		expects = append(expects, es...)
	}

	res := &FixtureResult{}
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			res.Unexpected = append(res.Unexpected, d.String())
		}
	}
	for _, e := range expects {
		if !e.matched {
			res.Unmatched = append(res.Unmatched, fmt.Sprintf("%s:%d: want %q", e.file, e.line, e.pattern))
		}
	}
	return res, nil
}

// collectWants extracts the want comments of every fixture file.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
				re, err := regexp.Compile(pat)
				if err != nil {
					p := fset.Position(c.Pos())
					return nil, fmt.Errorf("%s: bad want pattern %q: %v", p, pat, err)
				}
				p := fset.Position(c.Pos())
				out = append(out, &expectation{file: p.Filename, line: p.Line, pattern: re})
			}
		}
	}
	return out, nil
}
