package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
// Only non-test files are loaded: every invariant smokevet enforces
// exempts _test.go code, and keeping tests out of the type-check keeps
// the loader free of external-test-package mechanics.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Suppressions indexes //smokevet:ignore comments by file line.
	Suppressions *suppressionIndex
	// TypeErrors carries any type-check errors. Analysis still runs —
	// the AST is usually intact — but the runner surfaces them so a
	// package that does not compile cannot silently pass the gate.
	TypeErrors []error
}

// Loader parses and type-checks packages with one shared FileSet and one
// shared source importer, so repeated loads reuse already-checked
// dependencies (the importer caches internally).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader backed by the stdlib source importer, which
// type-checks dependencies (including the standard library) from source —
// no compiled export data or module proxy required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &Loader{fset: fset, imp: imp}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load expands the `go list` patterns (e.g. "./...") relative to dir and
// returns the matched packages, parsed and type-checked, in a stable
// order. Packages with no buildable Go files are skipped.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	var pkgs []*Package
	for _, p := range listed {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Name = p.Name
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir from its *.go files
// (test files excluded), under a synthetic import path. The fixture
// runner uses it for testdata packages, which `go list ./...` ignores.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check("fixture/"+filepath.Base(dir), dir, files)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors collected above
	return &Package{
		Path:         path,
		Dir:          dir,
		Fset:         l.fset,
		Files:        files,
		Pkg:          tpkg,
		Info:         info,
		Suppressions: indexSuppressions(l.fset, files),
		TypeErrors:   typeErrs,
	}, nil
}
