package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
// Only non-test files are loaded: every invariant smokevet enforces
// exempts _test.go code, and keeping tests out of the type-check keeps
// the loader free of external-test-package mechanics.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Imports are the package's direct imports (import paths). The runner
	// topologically orders packages by them so analyzer facts always flow
	// from a dependency to its importers, never the other way.
	Imports []string
	// Suppressions indexes //smokevet:ignore comments by file line.
	Suppressions *suppressionIndex
	// TypeErrors carries any type-check errors. Analysis still runs —
	// the AST is usually intact — but the runner surfaces them so a
	// package that does not compile cannot silently pass the gate.
	TypeErrors []error
}

// Loader parses and type-checks packages with one shared FileSet and one
// shared source importer, so repeated loads reuse already-checked
// dependencies (the importer caches internally).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader backed by the stdlib source importer, which
// type-checks dependencies (including the standard library) from source —
// no compiled export data or module proxy required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &Loader{fset: fset, imp: imp}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
}

// Load expands the `go list` patterns (e.g. "./...") relative to dir and
// returns the matched packages, parsed and type-checked, in a stable
// order. Packages with no buildable Go files are skipped.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	var pkgs []*Package
	for _, p := range listed {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Name = p.Name
		pkg.Imports = p.Imports
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir from its *.go files
// (test files excluded), under a synthetic import path. The fixture
// runner uses it for testdata packages, which `go list ./...` ignores.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	return l.loadFixtureDir(dir, "fixture/"+filepath.Base(dir), nil)
}

// LoadFixtureTree loads a fixture directory together with its
// sub-package fixtures: each immediate subdirectory of dir containing Go
// files becomes package "fixture/<base>/<sub>", and the root files (if
// any) become "fixture/<base>". Sub-packages may import one another and
// the root may import any sub-package — imports under the "fixture/"
// prefix resolve against the tree itself instead of the stdlib source
// importer, which is what lets lockorder and fact-propagation fixtures
// span two type-checked packages. Packages are returned in dependency
// order (imports first), ready for the fact-aware runner.
func (l *Loader) LoadFixtureTree(dir string) ([]*Package, error) {
	base := "fixture/" + filepath.Base(dir)
	entries, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		return nil, err
	}
	// Map every fixture package path in the tree to its directory, root
	// included, then load in dependency order so each package's fixture
	// imports are already type-checked when its own check begins.
	dirs := map[string]string{}
	if ok, err := hasGoFiles(dir); err != nil {
		return nil, err
	} else if ok {
		dirs[base] = dir
	}
	for _, e := range entries {
		ok, err := hasGoFiles(e)
		if err != nil {
			return nil, err
		}
		if ok {
			dirs[base+"/"+filepath.Base(e)] = e
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	fixtures := map[string]*types.Package{}
	var pkgs []*Package
	loaded := map[string]bool{}
	var load func(path string, chain []string) error
	load = func(path string, chain []string) error {
		if loaded[path] {
			return nil
		}
		for _, c := range chain {
			if c == path {
				return fmt.Errorf("analysis: fixture import cycle through %s", path)
			}
		}
		imports, err := fixtureImports(dirs[path])
		if err != nil {
			return err
		}
		for _, imp := range imports {
			if _, ok := dirs[imp]; ok {
				if err := load(imp, append(chain, path)); err != nil {
					return err
				}
			}
		}
		pkg, err := l.loadFixtureDir(dirs[path], path, fixtures)
		if err != nil {
			return err
		}
		if pkg.Pkg != nil {
			fixtures[path] = pkg.Pkg
		}
		pkgs = append(pkgs, pkg)
		loaded[path] = true
		return nil
	}
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := load(p, nil); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// loadFixtureDir checks one fixture directory under the given synthetic
// import path, resolving "fixture/..." imports through the supplied
// already-checked tree packages.
func (l *Loader) loadFixtureDir(dir, path string, fixtures map[string]*types.Package) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	imp := l.imp
	if len(fixtures) > 0 {
		imp = &fixtureImporter{next: l.imp, fixtures: fixtures}
	}
	pkg, err := l.checkWith(imp, path, dir, files)
	if err != nil {
		return nil, err
	}
	pkg.Imports, err = fixtureImports(dir)
	return pkg, err
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) (bool, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return false, err
	}
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// fixtureImports parses the import paths of every non-test Go file in dir
// (syntax only — no type-checking).
func fixtureImports(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(token.NewFileSet(), m, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// fixtureImporter resolves imports of already-checked fixture packages
// and defers everything else (the stdlib) to the source importer.
type fixtureImporter struct {
	next     types.ImporterFrom
	fixtures map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := fi.fixtures[path]; ok {
		return pkg, nil
	}
	return fi.next.ImportFrom(path, dir, mode)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	return l.checkWith(l.imp, path, dir, filenames)
}

func (l *Loader) checkWith(imp types.ImporterFrom, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors collected above
	return &Package{
		Path:         path,
		Dir:          dir,
		Fset:         l.fset,
		Files:        files,
		Pkg:          tpkg,
		Info:         info,
		Suppressions: indexSuppressions(l.fset, files),
		TypeErrors:   typeErrs,
	}, nil
}
