package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact propagation: the cross-package half of the framework. An analyzer
// that declares FactTypes may attach typed facts to exported objects (or
// to the package itself) while analyzing the defining package; when a
// later package in dependency order is analyzed, the same analyzer can
// import those facts at call sites. This mirrors the
// golang.org/x/tools/go/analysis fact model: facts are the only state
// that crosses a package boundary, and they are serialized per package —
// gob-encoded here, exactly as x/tools does for its -vettool protocol —
// so a fact that cannot round-trip through an export file can never be
// relied on. The runner encodes a package's facts the moment its last
// analyzer finishes and decodes them on first import; analyzers only ever
// see the decoded copy, never the live objects of another package's pass.

// Fact is a typed datum attached to an object or package by one analyzer
// and visible to the same analyzer in downstream packages. Implementations
// must be pointers to gob-encodable structs; AFact is a marker.
type Fact interface{ AFact() }

// factKey names one fact slot: the canonical object key ("" for a
// package-level fact) plus the concrete fact type.
type factKey struct {
	Object string // "" = package fact
	Type   string // reflect type string of the fact pointer
}

// factEntry is the gob wire form of one exported fact.
type factEntry struct {
	Object string
	Fact   Fact
}

// objectFactKey canonicalizes an object for cross-package lookup. The
// types.Object identities of a package analyzed directly and the same
// package type-checked as a dependency differ, so facts are keyed by
// stable names instead: a function's FullName ("pkg.F", "(pkg.T).M"),
// or pkgPath.Name for other objects.
func objectFactKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// factSet holds the facts one analyzer exported for one package, both
// live (during the defining package's pass) and decoded (after import).
type factSet struct {
	facts map[factKey]Fact
}

func newFactSet() *factSet { return &factSet{facts: map[factKey]Fact{}} }

func (s *factSet) put(objKey string, f Fact) {
	s.facts[factKey{Object: objKey, Type: reflect.TypeOf(f).String()}] = f
}

// get copies the stored fact for (objKey, type of dst) into dst and
// reports whether one existed.
func (s *factSet) get(objKey string, dst Fact) bool {
	if s == nil {
		return false
	}
	f, ok := s.facts[factKey{Object: objKey, Type: reflect.TypeOf(dst).String()}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	fv := reflect.ValueOf(f)
	if dv.Type() != fv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(fv.Elem())
	return true
}

// encode serializes the set as a deterministic gob stream (entries in
// sorted key order, so equal fact sets encode to equal bytes).
func (s *factSet) encode() ([]byte, error) {
	entries := make([]factEntry, 0, len(s.facts))
	for k, f := range s.facts {
		entries = append(entries, factEntry{Object: k.Object, Fact: f})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Object != entries[j].Object {
			return entries[i].Object < entries[j].Object
		}
		return reflect.TypeOf(entries[i].Fact).String() < reflect.TypeOf(entries[j].Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// decodeFactSet rebuilds a factSet from its gob encoding. The fact types
// must have been registered (the runner registers every FactType of every
// analyzer in the run).
func decodeFactSet(blob []byte) (*factSet, error) {
	var entries []factEntry
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %v", err)
	}
	s := newFactSet()
	for _, e := range entries {
		s.put(e.Object, e.Fact)
	}
	return s, nil
}

// factStore is the runner's cross-package fact archive: one gob blob per
// (package, analyzer), written when the package's analysis completes and
// decoded lazily on first import by a downstream package.
type factStore struct {
	blobs   map[string]map[string][]byte   // pkgPath -> analyzer -> gob
	decoded map[string]map[string]*factSet // pkgPath -> analyzer -> set
}

func newFactStore() *factStore {
	return &factStore{
		blobs:   map[string]map[string][]byte{},
		decoded: map[string]map[string]*factSet{},
	}
}

// register makes every declared fact type of the analyzers gob-decodable
// and rejects non-pointer fact types up front.
func (st *factStore) register(analyzers []*Analyzer) error {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			if reflect.TypeOf(f).Kind() != reflect.Pointer {
				return fmt.Errorf("analysis: %s: fact type %T is not a pointer", a.Name, f)
			}
			gob.Register(f)
		}
	}
	return nil
}

// seal encodes and archives the facts the analyzer exported for pkgPath.
func (st *factStore) seal(pkgPath, analyzer string, s *factSet) error {
	if len(s.facts) == 0 {
		return nil
	}
	blob, err := s.encode()
	if err != nil {
		return err
	}
	if st.blobs[pkgPath] == nil {
		st.blobs[pkgPath] = map[string][]byte{}
	}
	st.blobs[pkgPath][analyzer] = blob
	return nil
}

// open returns the decoded fact set for (pkgPath, analyzer), or nil when
// the package exported none.
func (st *factStore) open(pkgPath, analyzer string) (*factSet, error) {
	if s, ok := st.decoded[pkgPath][analyzer]; ok {
		return s, nil
	}
	blob, ok := st.blobs[pkgPath][analyzer]
	if !ok {
		return nil, nil
	}
	s, err := decodeFactSet(blob)
	if err != nil {
		return nil, err
	}
	if st.decoded[pkgPath] == nil {
		st.decoded[pkgPath] = map[string]*factSet{}
	}
	st.decoded[pkgPath][analyzer] = s
	return s, nil
}
