package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Lockorder guards the fleet/store/outputs locking discipline with two
// checks built on one per-function lock model:
//
//  1. Acquisition cycles. Every mutex acquisition that happens while
//     another mutex is held contributes a directed edge held->acquired
//     to a lock-order graph. Edges also come from calls: a callee's lock
//     set — computed transitively within the package and imported as a
//     LocksFact for exported functions of other packages — is acquired
//     "under" whatever the caller holds. Each package merges the graphs
//     of its dependencies (LockGraphFact) with its own edges and reports
//     any cycle a local edge completes: two packages that acquire the
//     same two mutexes in opposite orders deadlock the first time a
//     fleet forward and a store eviction interleave, and no per-package
//     analysis can see it.
//
//  2. Atomic-under-lock mixing. An object reached through the
//     sync/atomic function API somewhere in the package, and accessed
//     plainly inside a critical section elsewhere, is protected by two
//     incompatible disciplines at once: the plain access trusts the
//     mutex, the atomic access bypasses it. Reported at the atomic call
//     site, naming the lock the plain access relied on.
//
// The held-lock model is linear and syntactic: statements are visited in
// source order, defer x.Unlock() holds to function end, function
// literals are skipped (they run on another goroutine or later), and
// early-return branches under-approximate. That errs toward silence —
// acceptable for a gate whose cycles, when real, are catastrophic.

// LocksFact records the mutexes an exported function may acquire
// (directly or transitively), keyed by canonical lock name.
type LocksFact struct {
	Locks []string
}

func (*LocksFact) AFact() {}

// LockEdge is one held->acquired pair of the lock-order graph.
type LockEdge struct {
	From, To string
}

// LockGraphFact is a package's merged lock-order graph: its own edges
// plus every dependency's, so cycles assemble along the import chain.
type LockGraphFact struct {
	Edges []LockEdge
}

func (*LockGraphFact) AFact() {}

// lockorderPackages is the surface whose locks interact across package
// boundaries: the fleet routing layer, the store it fronts, and the
// outputs column store the generation path shares.
var lockorderPackages = map[string]bool{
	"smokescreen/internal/fleetd":  true,
	"smokescreen/internal/store":   true,
	"smokescreen/internal/outputs": true,
	"smokescreen/internal/server":  true,
	"smokescreen/internal/stream":  true,
}

// Lockorder is the lock-order / atomic-mixing analyzer.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "build the cross-package mutex-acquisition graph (via propagated lock-set facts), " +
		"report acquisition cycles and atomic-under-lock mixing",
	Match: func(path string) bool {
		return lockorderPackages[path] || strings.HasPrefix(path, "fixture/")
	},
	Run:       runLockorder,
	FactTypes: []Fact{(*LocksFact)(nil), (*LockGraphFact)(nil)},
}

// localEdge is a graph edge discovered in this package, with its report
// position.
type localEdge struct {
	LockEdge
	pos ast.Node
}

type lockorderState struct {
	pass *Pass
	// funcLocks maps each declared function to its transitive lock set.
	funcLocks map[*types.Func]map[string]bool
	// edges are this package's local acquisitions-under-lock.
	edges []localEdge
	// atomicObjs are objects reached via the sync/atomic function API,
	// with one representative call position each.
	atomicObjs map[types.Object]ast.Node
	// lockedPlain maps objects accessed plainly inside a critical section
	// to the name of a lock that was held.
	lockedPlain map[types.Object]string
	// sanctioned marks identifiers inside atomic call arguments.
	sanctioned map[*ast.Ident]bool
}

func runLockorder(pass *Pass) error {
	st := &lockorderState{
		pass:        pass,
		funcLocks:   map[*types.Func]map[string]bool{},
		atomicObjs:  map[types.Object]ast.Node{},
		lockedPlain: map[types.Object]string{},
		sanctioned:  map[*ast.Ident]bool{},
	}
	st.collectDirectLocks()
	st.closeOverCalls()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				st.walkHeld(fd)
			}
		}
	}
	st.reportCycles()
	st.reportAtomicMixing()
	st.exportFacts()
	return nil
}

// lockMethod classifies a call as a mutex acquire or release via the
// resolved callee; embedded mutexes resolve to the same (*sync.Mutex)
// methods.
func lockMethod(pass *Pass, call *ast.CallExpr) (recv ast.Expr, acquire, release bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return sel.X, true, false
	case "Unlock", "RUnlock":
		return sel.X, false, true
	}
	return nil, false, false
}

// lockID canonicalizes the mutex-bearing expression: a struct field
// becomes "(pkg.Type).field", a package variable "pkg.var", a local
// "func-local var". Unresolvable expressions (map elements, call
// results) return "".
func lockID(pass *Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(x)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if isPackageLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return "func-local " + obj.Name()
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok {
			t := sel.Recv()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return ""
			}
			return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), sel.Obj().Name())
		}
		// Qualified package variable (pkg.Mu).
		obj := pass.Info.ObjectOf(x.Sel)
		if obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// collectDirectLocks records, per declared function, the locks it
// acquires directly, plus the fact-imported lock sets of cross-package
// callees (those are "direct" from this package's point of view).
func (st *lockorderState) collectDirectLocks() {
	for _, f := range st.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := st.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			set := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, acquire, _ := lockMethod(st.pass, call); acquire {
					if id := lockID(st.pass, recv); id != "" {
						set[id] = true
					}
					return true
				}
				for _, l := range st.calleeFactLocks(call) {
					set[l] = true
				}
				return true
			})
			st.funcLocks[obj] = set
		}
	}
}

// calleeFactLocks returns the imported lock set of a cross-package
// callee, or nil.
func (st *lockorderState) calleeFactLocks(call *ast.CallExpr) []string {
	if st.pass.ImportObjectFact == nil {
		return nil
	}
	fn := calleeFunc(st.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == st.pass.Pkg {
		return nil
	}
	var fact LocksFact
	if !st.pass.ImportObjectFact(fn, &fact) {
		return nil
	}
	return fact.Locks
}

// closeOverCalls folds same-package callee lock sets into callers until
// the sets stop growing (the within-package transitive closure).
func (st *lockorderState) closeOverCalls() {
	calls := map[*types.Func][]*types.Func{}
	for _, f := range st.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := st.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeFunc(st.pass.Info, call); callee != nil {
						if _, local := st.funcLocks[callee]; local {
							calls[caller] = append(calls[caller], callee)
						}
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			for _, callee := range callees {
				for l := range st.funcLocks[callee] {
					if !st.funcLocks[caller][l] {
						st.funcLocks[caller][l] = true
						changed = true
					}
				}
			}
		}
	}
}

// walkHeld runs the linear held-lock model over one function, recording
// graph edges and atomic/plain accesses with lock context.
func (st *lockorderState) walkHeld(fd *ast.FuncDecl) {
	var held []string // acquisition order, innermost last
	heldHas := func(id string) bool {
		for _, h := range held {
			if h == id {
				return true
			}
		}
		return false
	}
	deferred := map[string]bool{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // other goroutine / later execution
		case *ast.DeferStmt:
			if recv, _, release := lockMethod(st.pass, n.Call); release {
				if id := lockID(st.pass, recv); id != "" {
					deferred[id] = true // held to function end
				}
				return false
			}
			return true
		case *ast.CallExpr:
			recv, acquire, release := lockMethod(st.pass, n)
			switch {
			case acquire:
				id := lockID(st.pass, recv)
				if id == "" {
					return true
				}
				for _, h := range held {
					if h != id {
						st.edges = append(st.edges, localEdge{LockEdge{From: h, To: id}, n})
					}
				}
				held = append(held, id)
				return true
			case release:
				id := lockID(st.pass, recv)
				if id == "" || deferred[id] {
					return true
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == id {
						held = append(held[:i:i], held[i+1:]...)
						break
					}
				}
				return true
			}
			if len(held) > 0 {
				// A callee's locks are acquired under everything we hold.
				for _, l := range st.calleeLocks(n) {
					for _, h := range held {
						if h != l && !heldHas(l) {
							st.edges = append(st.edges, localEdge{LockEdge{From: h, To: l}, n})
						}
					}
				}
			}
			st.recordAtomic(n, held)
			return true
		case *ast.Ident:
			st.recordPlain(n, held)
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// calleeLocks returns the lock set of a call's resolved callee — the
// package-local transitive set or the cross-package fact — sorted for
// deterministic edge order.
func (st *lockorderState) calleeLocks(call *ast.CallExpr) []string {
	fn := calleeFunc(st.pass.Info, call)
	if fn == nil {
		return nil
	}
	if set, ok := st.funcLocks[fn]; ok {
		out := make([]string, 0, len(set))
		for l := range set {
			out = append(out, l)
		}
		sort.Strings(out)
		return out
	}
	return st.calleeFactLocks(call)
}

// recordAtomic notes sync/atomic function-API accesses and their lock
// context.
func (st *lockorderState) recordAtomic(call *ast.CallExpr, held []string) {
	if !isSyncAtomicCall(st.pass, call) {
		return
	}
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op.String() != "&" {
			continue
		}
		obj := objectOf(st.pass.Info, un.X)
		if obj == nil {
			continue
		}
		if _, seen := st.atomicObjs[obj]; !seen {
			st.atomicObjs[obj] = call
		}
		markIdents(un.X, st.sanctioned)
	}
}

// recordPlain notes plain identifier accesses made while a lock is held.
func (st *lockorderState) recordPlain(id *ast.Ident, held []string) {
	if len(held) == 0 || st.sanctioned[id] {
		return
	}
	obj := st.pass.Info.ObjectOf(id)
	if obj == nil || st.pass.Info.Defs[id] != nil {
		return
	}
	if _, ok := st.lockedPlain[obj]; !ok {
		st.lockedPlain[obj] = held[len(held)-1]
	}
}

// reportCycles merges dependency graphs with the local edges and reports
// every local edge that closes a cycle.
func (st *lockorderState) reportCycles() {
	adj := map[string]map[string]bool{}
	addEdge := func(e LockEdge) {
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	for _, e := range st.importedEdges() {
		addEdge(e)
	}
	for _, e := range st.edges {
		addEdge(e.LockEdge)
	}
	reported := map[LockEdge]bool{}
	for _, e := range st.edges {
		if reported[e.LockEdge] {
			continue
		}
		if path := findPath(adj, e.To, e.From); path != nil {
			reported[e.LockEdge] = true
			st.pass.Report(e.pos.Pos(),
				"acquiring %s while holding %s completes a lock-order cycle (%s -> %s): another path acquires them in the opposite order, which deadlocks under contention",
				shortLock(e.To), shortLock(e.From), shortLocks(path), shortLock(e.To))
		}
	}
}

// importedEdges merges the LockGraphFacts of every directly imported
// package (each of which already merged its own dependencies).
func (st *lockorderState) importedEdges() []LockEdge {
	if st.pass.Pkg == nil || st.pass.ImportPackageFact == nil {
		return nil
	}
	var out []LockEdge
	for _, imp := range st.pass.Pkg.Imports() {
		var fact LockGraphFact
		if st.pass.ImportPackageFact(imp.Path(), &fact) {
			out = append(out, fact.Edges...)
		}
	}
	return out
}

// findPath returns a path from -> ... -> to in the adjacency map, or nil.
func findPath(adj map[string]map[string]bool, from, to string) []string {
	seen := map[string]bool{from: true}
	var dfs func(n string, path []string) []string
	dfs = func(n string, path []string) []string {
		if n == to {
			return append(path, n)
		}
		next := make([]string, 0, len(adj[n]))
		for m := range adj[n] {
			next = append(next, m)
		}
		sort.Strings(next)
		for _, m := range next {
			if seen[m] {
				continue
			}
			seen[m] = true
			if p := dfs(m, append(path, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(from, nil)
}

// reportAtomicMixing flags atomic-API access to objects that are also
// accessed plainly inside critical sections.
func (st *lockorderState) reportAtomicMixing() {
	objs := make([]types.Object, 0, len(st.atomicObjs))
	for obj := range st.atomicObjs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		lock, mixed := st.lockedPlain[obj]
		if !mixed {
			continue
		}
		st.pass.Report(st.atomicObjs[obj].Pos(),
			"atomic access to %s mixes with plain access under %s elsewhere in this package: the plain access trusts the lock, the atomic bypasses it — pick one discipline",
			obj.Name(), shortLock(lock))
	}
}

// exportFacts publishes exported functions' lock sets and the merged
// graph for downstream packages.
func (st *lockorderState) exportFacts() {
	if st.pass.ExportObjectFact == nil || st.pass.ExportPackageFact == nil {
		return
	}
	for fn, set := range st.funcLocks {
		if len(set) == 0 || !fn.Exported() {
			continue
		}
		locks := make([]string, 0, len(set))
		for l := range set {
			if !strings.HasPrefix(l, "func-local ") {
				locks = append(locks, l)
			}
		}
		if len(locks) == 0 {
			continue
		}
		sort.Strings(locks)
		st.pass.ExportObjectFact(fn, &LocksFact{Locks: locks})
	}
	merged := map[LockEdge]bool{}
	for _, e := range st.importedEdges() {
		merged[e] = true
	}
	for _, e := range st.edges {
		if !strings.HasPrefix(e.From, "func-local ") && !strings.HasPrefix(e.To, "func-local ") {
			merged[e.LockEdge] = true
		}
	}
	if len(merged) == 0 {
		return
	}
	edges := make([]LockEdge, 0, len(merged))
	for e := range merged {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	st.pass.ExportPackageFact(&LockGraphFact{Edges: edges})
}

// shortLock strips the module path prefix for readable reports.
func shortLock(id string) string {
	return strings.ReplaceAll(id, "smokescreen/internal/", "")
}

func shortLocks(ids []string) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = shortLock(id)
	}
	return strings.Join(out, " -> ")
}
