package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Axisreg enforces the PR 9 registry contract: internal/degrade/axes.go
// is the ONE place that knows which intervention axes exist. Every other
// layer iterates the registry (Axes, ClauseFor, per-axis hooks) instead
// of pattern-matching axis names or Setting fields — otherwise adding an
// axis means auditing every switch in the repo, and the one you miss
// silently treats the new axis as identity (the exact "derived signal
// consumed far from its source" failure the registry was built to kill).
//
// Two patterns are flagged outside axes.go:
//
//  1. A switch whose cases name two or more axes as string literals
//     (case-insensitively: "RESOLUTION", "noise", ...). One axis name is
//     an honest special case; two is a hand-rolled registry copy that a
//     new axis will not appear in.
//  2. A function that reads three or more distinct axis fields of
//     degrade.Setting (SampleFraction, Resolution, Restricted,
//     NoiseSigma, MotionBlur, Quantize, Occlusion). Writes — assignment
//     targets and composite literals — are exempt: constructing a
//     Setting is normal; dispatching on its shape is the registry's job.
//
// The thresholds (2 literals, 3 fields) keep single-axis code paths —
// "is the resolution axis active?" — out of scope: those are uses of an
// axis, not enumerations of the axis vector.

// axisNames are the canonical registry names (axes.go order).
var axisNames = map[string]bool{
	"fraction":   true,
	"resolution": true,
	"removal":    true,
	"noise":      true,
	"blur":       true,
	"quantize":   true,
	"occlusion":  true,
}

// axisFields are the Setting fields that carry one axis each.
var axisFields = map[string]bool{
	"SampleFraction": true,
	"Resolution":     true,
	"Restricted":     true,
	"NoiseSigma":     true,
	"MotionBlur":     true,
	"Quantize":       true,
	"Occlusion":      true,
}

// Axisreg is the registry-exhaustiveness analyzer.
var Axisreg = &Analyzer{
	Name: "axisreg",
	Doc: "flag hand-rolled copies of the degradation-axis registry: switches over axis names " +
		"and functions dispatching on 3+ Setting axis fields outside internal/degrade/axes.go",
	Match: func(path string) bool {
		return path == "smokescreen" || strings.HasPrefix(path, "smokescreen/") ||
			strings.HasPrefix(path, "fixture/")
	},
	Run: runAxisreg,
}

func runAxisreg(pass *Pass) error {
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "axes.go" {
			continue // the registry itself
		}
		checkAxisSwitches(pass, f)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkAxisFieldFanout(pass, fd)
			}
		}
	}
	return nil
}

// checkAxisSwitches applies pattern 1 to one file.
func checkAxisSwitches(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		names := map[string]bool{}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				lit, ok := ast.Unparen(e).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				if low := strings.ToLower(s); axisNames[low] {
					names[low] = true
				}
			}
		}
		if len(names) >= 2 {
			pass.Report(sw.Pos(),
				"switch enumerates degradation axes by name (%s): iterate the degrade axis registry instead, so a new axis cannot be silently skipped",
				joinSorted(names))
		}
		return true
	})
}

// checkAxisFieldFanout applies pattern 2 to one declared function.
func checkAxisFieldFanout(pass *Pass, fd *ast.FuncDecl) {
	written := settingWrites(pass, fd)
	read := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := settingAxisField(pass, sel)
		if field == "" || written[sel] {
			return true
		}
		read[field] = true
		return true
	})
	if len(read) >= 3 {
		pass.Report(fd.Name.Pos(),
			"%s dispatches on %d Setting axis fields (%s): iterate the degrade axis registry instead of pattern-matching the axis vector",
			fd.Name.Name, len(read), joinSorted(read))
	}
}

// settingWrites collects the Setting-field selectors the function only
// assigns to (including compound assignments and ++/--).
func settingWrites(pass *Pass, fd *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			out[sel] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		}
		return true
	})
	return out
}

// settingAxisField returns the axis-field name when sel selects one of
// degrade.Setting's axis fields (fixture Settings — a type named Setting
// in a fixture package — count too, so the analyzer's own fixtures work).
func settingAxisField(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	if !axisFields[s.Obj().Name()] {
		return ""
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "Setting" || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if path != "smokescreen/internal/degrade" && !strings.HasPrefix(path, "fixture/") {
		return ""
	}
	return s.Obj().Name()
}

func joinSorted(set map[string]bool) string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
