package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces the cancellation contract threaded end to end in the
// plan/execute pipeline: a cancelled context must stop detector work, and
// no library function may silently detach from the caller's context.
//
// Two rules, applied to smokescreen/internal packages (mains and _test.go
// files are exempt):
//
//  1. context.Background()/context.TODO() must not appear inside any
//     function that was handed a context.Context (including closures
//     nested in one): minting a fresh root there severs cancellation.
//     A function with no context parameter is a compatibility root (the
//     non-Ctx wrapper APIs, figure drivers, daemon job roots) and may
//     mint Background — but only to pass it directly into a context-
//     aware callee. context.TODO() is never acceptable: the codebase is
//     fully threaded, so there is no "not sure yet" context.
//  2. An exported function that takes a context and calls a *Ctx-suffixed
//     callee must pass a context along — calling SweepFractionsCtx
//     without ctx while holding one is exactly the drift the suffix
//     convention exists to prevent.
//
// A third rule applies only to the clock-injected packages below: no
// direct wall-clock or timer calls. fleetd's lease expiry, claim-wait
// backoff, and renewal pacing all flow through an injected Clock so the
// lease tests drive expiry with a fake clock instead of sleeping; one
// stray time.Now() reintroduces real-time coupling and flaky tests. The
// production Clock implementation carries reasoned
// //smokevet:ignore ctxflow suppressions — it is the sole sanctioned
// wall-clock read.
//
// A fourth rule is cross-package, built on fact propagation: when the
// analyzer visits a package it exports a HasCtxVariantFact for every
// exported function or method F whose package also declares an exported
// context-taking sibling FCtx (the compat-wrapper convention: Sweep /
// SweepCtx, Generate / GenerateCtx). In every downstream package, a
// function that holds a context but calls F instead of FCtx is flagged —
// the call compiles, runs, and silently detaches the entire callee
// subtree from cancellation, which is exactly the class of cross-
// component failure no single-package check can see.

// HasCtxVariantFact marks an exported function whose package declares an
// exported context-taking sibling named <Name>Ctx. Calling the fact-
// carrying function while holding a context severs cancellation; the
// variant must be called instead.
type HasCtxVariantFact struct {
	// Variant is the sibling's name (e.g. "SweepCtx").
	Variant string
}

func (*HasCtxVariantFact) AFact() {}

// clockInjectedPackages lists packages whose time must flow through an
// injected Clock interface (fixture/ctxflow keeps the rule pinned by the
// analyzer's own fixture test).
var clockInjectedPackages = map[string]bool{
	"smokescreen/internal/fleetd": true,
	"fixture/ctxflow":             true,
}

// clockCalls are the time package entry points that read the wall clock
// or arm real timers; each has a Clock-interface equivalent.
var clockCalls = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() that sever cancellation in internal " +
		"packages, and ctx-taking exported functions that call *Ctx callees without the context",
	Match: func(path string) bool {
		return strings.HasPrefix(path, "smokescreen/internal/") || strings.HasPrefix(path, "fixture/")
	},
	Run:       runCtxflow,
	FactTypes: []Fact{(*HasCtxVariantFact)(nil)},
}

func runCtxflow(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil
	}
	exportCtxVariants(pass)
	clockInjected := pass.Pkg != nil && clockInjectedPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBackgroundUse(pass, fd)
			checkCtxForwarding(pass, fd)
		}
		if clockInjected {
			checkClockInjection(pass, f)
		}
	}
	return nil
}

// exportCtxVariants walks the package's exported functions and methods,
// attaching a HasCtxVariantFact to each one that has an exported
// context-taking <Name>Ctx sibling (package-level siblings for
// functions, same-receiver siblings for methods).
func exportCtxVariants(pass *Pass) {
	if pass.Pkg == nil || pass.ExportObjectFact == nil {
		return
	}
	scope := pass.Pkg.Scope()
	exportIfVariant := func(fn, sibling types.Object) {
		variant, ok := sibling.(*types.Func)
		if !ok || !variant.Exported() {
			return
		}
		fsig, ok := fn.Type().(*types.Signature)
		if !ok || hasContextParam(fsig) {
			return // fn already takes a ctx; nothing to redirect
		}
		vsig, ok := variant.Type().(*types.Signature)
		if !ok || !hasContextParam(vsig) {
			return
		}
		pass.ExportObjectFact(fn, &HasCtxVariantFact{Variant: variant.Name()})
	}
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Func:
			if !obj.Exported() {
				continue
			}
			if sib := scope.Lookup(name + "Ctx"); sib != nil {
				exportIfVariant(obj, sib)
			}
		case *types.TypeName:
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			methods := map[string]*types.Func{}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				methods[m.Name()] = m
			}
			for mname, m := range methods {
				if !m.Exported() {
					continue
				}
				if sib, ok := methods[mname+"Ctx"]; ok {
					exportIfVariant(m, sib)
				}
			}
		}
	}
}

// checkCtxVariantCall applies rule 4 at one call site known to be inside
// a ctx-holding function: a cross-package callee carrying a
// HasCtxVariantFact is the compat wrapper; the ctx-taking variant must
// be called instead.
func checkCtxVariantCall(pass *Pass, call *ast.CallExpr) {
	if pass.ImportObjectFact == nil {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return
	}
	var fact HasCtxVariantFact
	if !pass.ImportObjectFact(fn, &fact) {
		return
	}
	pass.Report(call.Pos(),
		"call to %s.%s from a function that holds a context: %s roots its work in context.Background — call %s with the caller's ctx so cancellation crosses the package boundary",
		fn.Pkg().Name(), fn.Name(), fn.Name(), fact.Variant)
}

// checkClockInjection applies rule 3 to one file of a clock-injected
// package: any direct time.Now/Since/Sleep/After/AfterFunc/Tick/NewTimer/
// NewTicker call bypasses the injected Clock.
func checkClockInjection(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockCalls[fn.Name()] {
			return true
		}
		pass.Report(call.Pos(),
			"time.%s in a clock-injected package: route time through the injected Clock so tests can drive expiry with a fake clock instead of sleeping", fn.Name())
		return true
	})
}

// funcHasCtxParam reports whether the declared function takes a context.
func funcHasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && hasContextParam(sig)
}

// litHasCtxParam reports whether the function literal takes a context.
func litHasCtxParam(pass *Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	return ok && hasContextParam(sig)
}

// checkBackgroundUse walks one declared function, tracking whether the
// innermost context is "holding a ctx" (the declaration or any enclosing
// closure takes one), and applies rule 1.
func checkBackgroundUse(pass *Pass, fd *ast.FuncDecl) {
	depth := 0 // number of enclosing funcs that take a ctx
	if funcHasCtxParam(pass, fd) {
		depth++
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if litHasCtxParam(pass, n) {
				depth++
				ast.Inspect(n.Body, walk)
				depth--
			} else {
				// A closure inherits its environment: if any enclosing
				// function holds a ctx, the closure does too.
				ast.Inspect(n.Body, walk)
			}
			return false
		case *ast.CallExpr:
			name := backgroundOrTODO(pass, n)
			if name == "" {
				if depth > 0 {
					checkCtxVariantCall(pass, n)
				}
				return true
			}
			if name == "TODO" {
				pass.Report(n.Pos(), "context.TODO() in library code: the pipeline is fully context-threaded, pass the caller's ctx")
				return true
			}
			if depth > 0 {
				pass.Report(n.Pos(), "context.Background() inside a function that was handed a context: this severs cancellation — pass the caller's ctx")
				return true
			}
			if !feedsContextAwareCall(pass, fd, n) {
				pass.Report(n.Pos(), "context.Background() is not passed directly into a context-aware call: compatibility roots may only mint a context to forward it")
			}
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// backgroundOrTODO returns "Background", "TODO", or "".
func backgroundOrTODO(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if n := fn.Name(); n == "Background" || n == "TODO" {
		return n
	}
	return ""
}

// feedsContextAwareCall reports whether the Background() call appears as
// a direct argument of some call whose callee takes a context.Context.
func feedsContextAwareCall(pass *Pass, fd *ast.FuncDecl, bg *ast.CallExpr) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call == bg {
			return true
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) != bg {
				continue
			}
			if fn := calleeFunc(pass.Info, call); fn != nil {
				if sig, isSig := fn.Type().(*types.Signature); isSig && hasContextParam(sig) {
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

// checkCtxForwarding applies rule 2: an exported ctx-taking function
// calling a *Ctx-suffixed callee must pass a context argument.
func checkCtxForwarding(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !funcHasCtxParam(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
			return true
		}
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
				return true
			}
		}
		pass.Report(call.Pos(),
			"%s holds a context but calls %s without passing one: cancellation is severed mid-pipeline", fd.Name.Name, name)
		return true
	})
}
