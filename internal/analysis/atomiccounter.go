package analysis

import (
	"go/ast"
	"go/types"
)

// Atomiccounter enforces the atomic-only access discipline for shared
// counters (the plan.Stages and detect.Stats accounting): once any code
// reaches a variable or struct field through the sync/atomic function
// API (atomic.AddInt64(&x, ...) and friends), every other access to it
// must also be atomic — a plain `x++` or `x = 0` alongside races and can
// tear on 32-bit platforms. The typed counters (atomic.Int64 and
// friends) are immune by construction because their value is
// unexported; this analyzer closes the gap for the function-style API,
// which is the form a hasty "just bump the counter" edit reaches for.
//
// Per package, pass 1 collects every object whose address is taken in a
// sync/atomic call; pass 2 flags every other read or write of those
// objects outside the atomic API.
var Atomiccounter = &Analyzer{
	Name: "atomiccounter",
	Doc: "flag plain reads/writes of variables or fields that are accessed " +
		"via sync/atomic elsewhere in the package (mixed access races)",
	Run: runAtomiccounter,
}

func runAtomiccounter(pass *Pass) error {
	// atomicObjs maps each object used as &obj in a sync/atomic call to
	// one representative position (for the report).
	atomicObjs := map[types.Object]bool{}
	// sanctioned marks the identifiers that appear inside those atomic
	// call arguments, so pass 2 can skip them.
	sanctioned := map[*ast.Ident]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				obj := objectOf(pass.Info, un.X)
				if obj == nil {
					continue
				}
				atomicObjs[obj] = true
				markIdents(un.X, sanctioned)
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			var expr ast.Expr
			switch n := n.(type) {
			case *ast.Ident:
				id, expr = n, n
			case *ast.SelectorExpr:
				// Handled through the Sel ident when visited; skip the
				// composite node itself to avoid double reports.
				return true
			default:
				return true
			}
			if sanctioned[id] {
				return true
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			// Declaration sites and field definitions are not accesses.
			if pass.Info.Defs[id] != nil {
				return true
			}
			pass.Report(expr.Pos(),
				"plain access to %s, which is accessed via sync/atomic elsewhere in this package: mixed atomic/non-atomic access races (use the atomic API everywhere, or an atomic.Int64)", obj.Name())
			return true
		})
	}
	return nil
}

// isSyncAtomicCall reports whether the call invokes a sync/atomic
// package-level function.
func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// markIdents records every identifier in the expression tree.
func markIdents(e ast.Expr, set map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			set[id] = true
		}
		return true
	})
}
