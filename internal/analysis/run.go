package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// Run applies each analyzer whose Match accepts the package's import path
// and returns the surviving diagnostics in position order. Suppressed
// findings are dropped; malformed (reason-less) suppressions and
// type-check failures are themselves reported, so neither can silently
// weaken the gate.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			diags = append(diags, Diagnostic{
				Analyzer: "typecheck",
				Pos:      typeErrorPos(err),
				Message:  err.Error(),
			})
		}
		for _, pos := range pkg.Suppressions.malformed {
			diags = append(diags, Diagnostic{
				Analyzer: "smokevet",
				Pos:      pkg.Fset.Position(pos),
				Message:  "smokevet:ignore without a reason; write //smokevet:ignore <reason>",
			})
		}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			ds, err := runOne(pkg, a)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runOne applies one analyzer to one package, filtering suppressions.
func runOne(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
	}
	pass.Report = func(pos token.Pos, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		if pkg.Suppressions.suppressed(a.Name, p.Line) {
			return
		}
		diags = append(diags, Diagnostic{
			Analyzer: a.Name,
			Pos:      p,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// typeErrorPos extracts the position from a types.Error, falling back to
// a zero position for other error kinds.
func typeErrorPos(err error) token.Position {
	if te, ok := err.(types.Error); ok {
		return te.Fset.Position(te.Pos)
	}
	return token.Position{}
}
