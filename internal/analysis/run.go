package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// RunOptions tunes a suite run.
type RunOptions struct {
	// AuditSuppressions reports //smokevet:ignore comments that silenced
	// nothing during the run (stale ignores) as findings. Only meaningful
	// when every analyzer runs: a suppression for an analyzer that was
	// filtered out with -a would always look stale.
	AuditSuppressions bool
}

// AnalyzerTiming is the cumulative wall time one analyzer spent across
// every package of a run (smokevet -v prints these).
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// RunResult carries a suite run's diagnostics plus per-analyzer timing.
type RunResult struct {
	Diagnostics []Diagnostic
	Timings     []AnalyzerTiming
}

// Run applies each analyzer whose Match accepts the package's import path
// and returns the surviving diagnostics in position order. Suppressed
// findings are dropped; malformed (reason-less) suppressions and
// type-check failures are themselves reported, so neither can silently
// weaken the gate.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunSuite(pkgs, analyzers, RunOptions{})
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunSuite is Run with options and timing. Packages are visited in
// dependency order (imports before importers, restricted to the loaded
// set), so facts an analyzer exports while visiting a package are always
// available by the time any importer of that package is analyzed.
func RunSuite(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) (*RunResult, error) {
	facts := newFactStore()
	if err := facts.register(analyzers); err != nil {
		return nil, err
	}
	ordered := dependencyOrder(pkgs)

	var diags []Diagnostic
	timings := map[string]time.Duration{}
	for _, pkg := range ordered {
		for _, err := range pkg.TypeErrors {
			diags = append(diags, Diagnostic{
				Analyzer: "typecheck",
				Pos:      typeErrorPos(err),
				Message:  err.Error(),
			})
		}
		for _, pos := range pkg.Suppressions.malformed {
			diags = append(diags, Diagnostic{
				Analyzer: "smokevet",
				Pos:      pkg.Fset.Position(pos),
				Message:  "smokevet:ignore without a reason; write //smokevet:ignore <reason>",
			})
		}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			start := time.Now()
			ds, err := runOne(pkg, a, facts)
			timings[a.Name] += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
			diags = append(diags, ds...)
		}
		if opts.AuditSuppressions {
			for _, s := range pkg.Suppressions.stale() {
				diags = append(diags, Diagnostic{
					Analyzer: "smokevet",
					Pos:      pkg.Fset.Position(s.pos),
					Message: fmt.Sprintf("stale smokevet:ignore (%s): it suppresses no diagnostic on this or the next line — delete it",
						s.describe()),
				})
			}
		}
	}
	sortDiagnostics(diags)

	res := &RunResult{Diagnostics: diags}
	for _, a := range analyzers {
		res.Timings = append(res.Timings, AnalyzerTiming{Name: a.Name, Duration: timings[a.Name]})
	}
	return res, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// dependencyOrder topologically sorts the packages so every package
// follows all of its (loaded) imports; ties resolve by import path, so
// the order — and therefore fact flow and report grouping — is stable
// run to run. Cycles cannot occur in valid Go imports; if the metadata
// claims one anyway, the remaining packages are appended in path order
// rather than dropped.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indegree := map[string]int{}
	dependents := map[string][]string{}
	for _, p := range pkgs {
		indegree[p.Path] += 0
		for _, imp := range p.Imports {
			if _, ok := byPath[imp]; !ok {
				continue
			}
			indegree[p.Path]++
			dependents[imp] = append(dependents[imp], p.Path)
		}
	}
	var ready []string
	for path, n := range indegree {
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	ordered := make([]*Package, 0, len(pkgs))
	emitted := map[string]bool{}
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		ordered = append(ordered, byPath[path])
		emitted[path] = true
		var unlocked []string
		for _, dep := range dependents[path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(ordered) < len(pkgs) { // import-cycle fallback
		var rest []*Package
		for _, p := range pkgs {
			if !emitted[p.Path] {
				rest = append(rest, p)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].Path < rest[j].Path })
		ordered = append(ordered, rest...)
	}
	return ordered
}

// mergeSorted merges two sorted string slices.
func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// runOne applies one analyzer to one package, filtering suppressions and
// wiring the fact API. A nil facts store (unit tests poking a single
// analyzer) degrades to no-op facts.
func runOne(pkg *Package, a *Analyzer, facts *factStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	exported := newFactSet()
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
	}
	pass.Report = func(pos token.Pos, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		if pkg.Suppressions.suppressed(a.Name, p.Line) {
			return
		}
		diags = append(diags, Diagnostic{
			Analyzer: a.Name,
			Pos:      p,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	pass.ExportObjectFact = func(obj types.Object, fact Fact) {
		exported.put(objectFactKey(obj), fact)
	}
	pass.ExportPackageFact = func(fact Fact) {
		exported.put("", fact)
	}
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		if facts == nil || obj == nil || obj.Pkg() == nil {
			return false
		}
		// Facts of the package under analysis are still live in the
		// pass's own export set (sealed only when the package finishes).
		if obj.Pkg() == pkg.Pkg {
			return exported.get(objectFactKey(obj), fact)
		}
		set, err := facts.open(obj.Pkg().Path(), a.Name)
		if err != nil || set == nil {
			return false
		}
		return set.get(objectFactKey(obj), fact)
	}
	pass.ImportPackageFact = func(path string, fact Fact) bool {
		if facts == nil {
			return false
		}
		set, err := facts.open(path, a.Name)
		if err != nil || set == nil {
			return false
		}
		return set.get("", fact)
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	if facts != nil {
		if err := facts.seal(pkg.Path, a.Name, exported); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

// typeErrorPos extracts the position from a types.Error, falling back to
// a zero position for other error kinds.
func typeErrorPos(err error) token.Position {
	if te, ok := err.(types.Error); ok {
		return te.Fset.Position(te.Pos)
	}
	return token.Position{}
}
