// Package evaluate measures the *inherent* accuracy of the simulated
// detectors against scene ground truth. The paper's usage model assumes
// administrators "know the approximate accuracy of models" and fold it
// into the error threshold they choose (Section 2.3) — profiles measure
// degradation-induced error relative to the model's own full-quality
// outputs, never against the world. This package supplies that missing
// number: precision/recall/F1 of a detector per class and resolution,
// via greedy IoU matching against the simulator's annotations.
package evaluate

import (
	"fmt"
	"sort"

	"smokescreen/internal/detect"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// Metrics aggregates detection quality over one or more frames.
type Metrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Add accumulates another frame's counts.
func (m *Metrics) Add(o Metrics) {
	m.TruePositives += o.TruePositives
	m.FalsePositives += o.FalsePositives
	m.FalseNegatives += o.FalseNegatives
}

// Precision returns TP / (TP + FP); 1 when nothing was reported.
func (m Metrics) Precision() float64 {
	d := m.TruePositives + m.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN); 1 when nothing was there to find.
func (m Metrics) Recall() float64 {
	d := m.TruePositives + m.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the metrics for reports.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Precision(), m.Recall(), m.F1(), m.TruePositives, m.FalsePositives, m.FalseNegatives)
}

// MatchFrame matches detections (model-input coordinates) against the
// frame's ground-truth objects of the class, greedily by IoU in descending
// confidence order. scale converts native ground-truth coordinates to
// model-input coordinates (p / native width). A detection matches at IoU
// >= iouThreshold; each ground-truth object matches at most once
// (duplicates count as false positives, exactly the failure mode of the
// Figure 7 anomaly).
func MatchFrame(dets []detect.Detection, frame *scene.Frame, class scene.Class, scale, iouThreshold float64) Metrics {
	var gt []raster.Rect
	for i := range frame.Objects {
		if frame.Objects[i].Class != class {
			continue
		}
		b := frame.Objects[i].BBox
		gt = append(gt, raster.Rect{
			MinX: int(float64(b.MinX) * scale),
			MinY: int(float64(b.MinY) * scale),
			MaxX: int(float64(b.MaxX)*scale + 0.5),
			MaxY: int(float64(b.MaxY)*scale + 0.5),
		})
	}
	var candidates []detect.Detection
	for i := range dets {
		if dets[i].Class == class {
			candidates = append(candidates, dets[i])
		}
	}
	sort.SliceStable(candidates, func(a, b int) bool {
		return candidates[a].Confidence > candidates[b].Confidence
	})

	matched := make([]bool, len(gt))
	var metrics Metrics
	for _, d := range candidates {
		best, bestIoU := -1, iouThreshold
		for gi, box := range gt {
			if matched[gi] {
				continue
			}
			if iou := d.BBox.IoU(box); iou >= bestIoU {
				best, bestIoU = gi, iou
			}
		}
		if best >= 0 {
			matched[best] = true
			metrics.TruePositives++
		} else {
			metrics.FalsePositives++
		}
	}
	for _, ok := range matched {
		if !ok {
			metrics.FalseNegatives++
		}
	}
	return metrics
}

// Corpus evaluates the model on the listed frames (nil = every frame) at
// input resolution p.
func Corpus(v *scene.Video, m *detect.Model, class scene.Class, p int, frames []int, iouThreshold float64) Metrics {
	if frames == nil {
		frames = make([]int, v.NumFrames())
		for i := range frames {
			frames[i] = i
		}
	}
	scale := float64(p) / float64(v.Config.Width)
	var total Metrics
	for _, fi := range frames {
		dets := m.DetectFrame(v, fi, p)
		total.Add(MatchFrame(dets, v.Frame(fi), class, scale, iouThreshold))
	}
	return total
}

// ResolutionPoint is one entry of a resolution sweep.
type ResolutionPoint struct {
	Resolution int
	Metrics    Metrics
}

// ResolutionSweep evaluates the model across its candidate resolutions on
// the listed frames — the "model inherent accuracy" curve an administrator
// consults when translating a public error preference into a profile
// threshold.
func ResolutionSweep(v *scene.Video, m *detect.Model, class scene.Class, frames []int, iouThreshold float64) []ResolutionPoint {
	var out []ResolutionPoint
	for _, p := range m.Resolutions(10) {
		out = append(out, ResolutionPoint{
			Resolution: p,
			Metrics:    Corpus(v, m, class, p, frames, iouThreshold),
		})
	}
	return out
}
