package evaluate

import (
	"strings"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

func TestMetricsArithmetic(t *testing.T) {
	m := Metrics{TruePositives: 8, FalsePositives: 2, FalseNegatives: 2}
	if m.Precision() != 0.8 || m.Recall() != 0.8 {
		t.Fatalf("P=%v R=%v", m.Precision(), m.Recall())
	}
	if f1 := m.F1(); f1 < 0.799 || f1 > 0.801 {
		t.Fatalf("F1=%v", f1)
	}
	var empty Metrics
	if empty.Precision() != 1 || empty.Recall() != 1 || empty.F1() != 1 {
		t.Fatal("empty metrics should be perfect")
	}
	worst := Metrics{FalsePositives: 3, FalseNegatives: 3}
	if worst.F1() != 0 {
		t.Fatalf("worst F1 = %v", worst.F1())
	}
	sum := m
	sum.Add(worst)
	if sum.FalsePositives != 5 || sum.TruePositives != 8 {
		t.Fatalf("Add = %+v", sum)
	}
	if !strings.Contains(m.String(), "P=0.800") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMatchFrameBasics(t *testing.T) {
	frame := &scene.Frame{Objects: []scene.Object{
		{Class: scene.Car, BBox: raster.RectWH(10, 10, 40, 20)},
		{Class: scene.Car, BBox: raster.RectWH(100, 10, 40, 20)},
		{Class: scene.Person, BBox: raster.RectWH(200, 10, 10, 30)},
	}}
	dets := []detect.Detection{
		{Class: scene.Car, BBox: raster.RectWH(11, 11, 40, 20), Confidence: 0.9},  // matches gt 1
		{Class: scene.Car, BBox: raster.RectWH(300, 10, 20, 10), Confidence: 0.8}, // spurious
		{Class: scene.Person, BBox: raster.RectWH(200, 10, 10, 30), Confidence: 0.9},
	}
	m := MatchFrame(dets, frame, scene.Car, 1.0, 0.5)
	if m.TruePositives != 1 || m.FalsePositives != 1 || m.FalseNegatives != 1 {
		t.Fatalf("car metrics %+v", m)
	}
	// The person detection only counts for the person class.
	pm := MatchFrame(dets, frame, scene.Person, 1.0, 0.5)
	if pm.TruePositives != 1 || pm.FalsePositives != 0 || pm.FalseNegatives != 0 {
		t.Fatalf("person metrics %+v", pm)
	}
}

func TestMatchFrameDuplicatesAreFalsePositives(t *testing.T) {
	frame := &scene.Frame{Objects: []scene.Object{
		{Class: scene.Car, BBox: raster.RectWH(10, 10, 40, 20)},
	}}
	dets := []detect.Detection{
		{Class: scene.Car, BBox: raster.RectWH(10, 10, 40, 20), Confidence: 0.95},
		{Class: scene.Car, BBox: raster.RectWH(10, 10, 40, 20), Confidence: 0.90}, // duplicate
	}
	m := MatchFrame(dets, frame, scene.Car, 1.0, 0.5)
	if m.TruePositives != 1 || m.FalsePositives != 1 {
		t.Fatalf("duplicate handling %+v", m)
	}
}

func TestMatchFrameScale(t *testing.T) {
	// Ground truth at native 640, detections at half resolution.
	frame := &scene.Frame{Objects: []scene.Object{
		{Class: scene.Car, BBox: raster.RectWH(100, 100, 80, 40)},
	}}
	dets := []detect.Detection{
		{Class: scene.Car, BBox: raster.RectWH(50, 50, 40, 20), Confidence: 0.9},
	}
	m := MatchFrame(dets, frame, scene.Car, 0.5, 0.5)
	if m.TruePositives != 1 {
		t.Fatalf("scaled match failed: %+v", m)
	}
}

func TestCorpusHighResolutionQuality(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	frames := make([]int, 200)
	for i := range frames {
		frames[i] = i
	}
	metrics := Corpus(v, m, scene.Car, m.NativeInput, frames, 0.3)
	if metrics.Recall() < 0.6 {
		t.Fatalf("native-resolution recall %v too low: %s", metrics.Recall(), metrics)
	}
	if metrics.Precision() < 0.8 {
		t.Fatalf("native-resolution precision %v too low: %s", metrics.Precision(), metrics)
	}
}

func TestCorpusNilFramesMeansAll(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	all := Corpus(v, m, scene.Car, 160, nil, 0.3)
	total := all.TruePositives + all.FalseNegatives
	gt := 0
	for i := 0; i < v.NumFrames(); i++ {
		gt += v.Frame(i).Count(scene.Car)
	}
	if total != gt {
		t.Fatalf("TP+FN = %d, ground-truth objects = %d", total, gt)
	}
}

func TestResolutionSweepDegrades(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	frames := make([]int, 150)
	for i := range frames {
		frames[i] = i
	}
	sweep := ResolutionSweep(v, m, scene.Car, frames, 0.3)
	if len(sweep) != 10 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	first := sweep[0].Metrics.F1()
	last := sweep[len(sweep)-1].Metrics.F1()
	if last >= first {
		t.Fatalf("F1 did not degrade across the sweep: %v -> %v", first, last)
	}
}
