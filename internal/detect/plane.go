package detect

import (
	"sync"

	"smokescreen/internal/raster"
)

// plane is a signed float32 pixel buffer. The detector works on the signed
// difference between a frame and the static background, which can be
// negative (dark objects on bright pavement), so raster.Image's clamped
// [0,1] samples are not usable here.
type plane struct {
	w, h int
	v    []float32
}

// Planes and threshold buffers live for one frame evaluation each —
// millions of them over a profile run — so the hot paths draw them from
// pools. Pooled buffers are resliced, never zeroed: every producer below
// (diffPlane, diffScalar, blur3, absMask) overwrites all samples.
var planePool = sync.Pool{New: func() any { return &plane{} }}

func getPlane(w, h int) *plane {
	p := planePool.Get().(*plane)
	p.w, p.h = w, h
	if cap(p.v) < w*h {
		p.v = make([]float32, w*h)
	} else {
		p.v = p.v[:w*h]
	}
	return p
}

func putPlane(p *plane) {
	if p != nil {
		planePool.Put(p)
	}
}

// maskScratch carries the threshold mask and contrast buffers consumed by
// connectedComponents and the confidence model; contrast values are copied
// into component sums before release.
type maskScratch struct {
	mask     []bool
	contrast []float32
}

var maskPool = sync.Pool{New: func() any { return &maskScratch{} }}

func getMaskScratch(n int) *maskScratch {
	s := maskPool.Get().(*maskScratch)
	if cap(s.mask) < n {
		s.mask = make([]bool, n)
		s.contrast = make([]float32, n)
	} else {
		s.mask = s.mask[:n]
		s.contrast = s.contrast[:n]
	}
	return s
}

func putMaskScratch(s *maskScratch) {
	if s != nil {
		maskPool.Put(s)
	}
}

// diffPlane returns a - b elementwise in a pooled plane. Both images must
// share dimensions. Release with putPlane.
func diffPlane(a, b *raster.Image) *plane {
	if a.W != b.W || a.H != b.H {
		panic("detect: diffPlane size mismatch")
	}
	p := getPlane(a.W, a.H)
	for i := range a.Pix {
		p.v[i] = a.Pix[i] - b.Pix[i]
	}
	return p
}

// diffScalar returns img - c elementwise in a pooled plane.
func diffScalar(img *raster.Image, c float32) *plane {
	p := getPlane(img.W, img.H)
	for i := range img.Pix {
		p.v[i] = img.Pix[i] - c
	}
	return p
}

// blur3 returns the plane smoothed by a 3x3 box filter (edge pixels
// average over their in-bounds neighbourhood). A 3x3 average divides
// uncorrelated noise sigma by 3 while leaving the interior of objects
// larger than ~3 pixels intact — the detector's denoising stage.
//
// Separable form: a vertical 3-tap pass into a pooled scratch plane, then a
// horizontal 3-tap pass — 6 adds per pixel instead of the naive window
// scan's 9 (kept below as blur3Naive, the property-test oracle).
func (p *plane) blur3() *plane {
	w, h := p.w, p.h
	out := getPlane(w, h)
	if w == 0 || h == 0 {
		return out
	}
	vs := getPlane(w, h)
	for y := 0; y < h; y++ {
		row := vs.v[y*w : (y+1)*w]
		copy(row, p.v[y*w:(y+1)*w])
		if y > 0 {
			prev := p.v[(y-1)*w : y*w]
			for x := range row {
				row[x] += prev[x]
			}
		}
		if y+1 < h {
			next := p.v[(y+1)*w : (y+2)*w]
			for x := range row {
				row[x] += next[x]
			}
		}
	}
	for y := 0; y < h; y++ {
		cy := 3
		if y == 0 {
			cy--
		}
		if y == h-1 {
			cy--
		}
		inv2 := 1 / float32(2*cy)
		inv3 := 1 / float32(3*cy)
		vrow := vs.v[y*w : (y+1)*w]
		orow := out.v[y*w : (y+1)*w]
		if w == 1 {
			orow[0] = vrow[0] / float32(cy)
			continue
		}
		orow[0] = (vrow[0] + vrow[1]) * inv2
		for x := 1; x < w-1; x++ {
			orow[x] = (vrow[x-1] + vrow[x] + vrow[x+1]) * inv3
		}
		orow[w-1] = (vrow[w-2] + vrow[w-1]) * inv2
	}
	putPlane(vs)
	return out
}

// blur3Naive is the direct 3x3 window scan retained as the oracle blur3 is
// property-tested against (1e-5 per sample). Test-only.
func (p *plane) blur3Naive() *plane {
	out := getPlane(p.w, p.h)
	for y := 0; y < p.h; y++ {
		y0, y1 := y-1, y+2
		if y0 < 0 {
			y0 = 0
		}
		if y1 > p.h {
			y1 = p.h
		}
		for x := 0; x < p.w; x++ {
			x0, x1 := x-1, x+2
			if x0 < 0 {
				x0 = 0
			}
			if x1 > p.w {
				x1 = p.w
			}
			var sum float32
			for yy := y0; yy < y1; yy++ {
				row := yy * p.w
				for xx := x0; xx < x1; xx++ {
					sum += p.v[row+xx]
				}
			}
			out.v[y*p.w+x] = sum / float32((y1-y0)*(x1-x0))
		}
	}
	return out
}

// absMask thresholds |p| > tau, returning a pooled scratch holding the
// mask and the absolute contrast plane the confidence model consumes.
// Release with putMaskScratch once components are extracted.
func (p *plane) absMask(tau float64) *maskScratch {
	s := getMaskScratch(len(p.v))
	t := float32(tau)
	for i, v := range p.v {
		if v < 0 {
			v = -v
		}
		s.contrast[i] = v
		s.mask[i] = v > t
	}
	return s
}
