package detect

import (
	"runtime"
	"sync"

	"smokescreen/internal/scene"
)

// This file implements the model-output cache. Detector outputs are a
// deterministic function of (corpus, model, class, resolution), and the
// estimators resample the same output series hundreds of times per
// experiment, so outputs are computed once — in parallel across frames —
// and reused. This mirrors the paper's "early stopping and reuse strategy"
// (Section 3.3.2): model outputs for frames sampled at a low rate are
// reused at higher rates.

// outputKey identifies one cached output series.
type outputKey struct {
	video *scene.Video
	model string
	class scene.Class
	p     int
}

var (
	outputMu    sync.Mutex
	outputCache = map[outputKey][]float64{}
	outputInFly = map[outputKey]*sync.WaitGroup{}
)

// InvocationCounter counts model invocations for the profile-generation
// time experiment (Section 5.3.1). It is incremented once per frame
// evaluation that misses the cache.
var invocationMu sync.Mutex
var invocationCount int64

// Invocations returns the total number of model frame evaluations
// performed so far by Outputs cache misses.
func Invocations() int64 {
	invocationMu.Lock()
	defer invocationMu.Unlock()
	return invocationCount
}

func addInvocations(n int64) {
	invocationMu.Lock()
	invocationCount += n
	invocationMu.Unlock()
}

// Outputs returns the per-frame counts of class objects reported by model
// on every frame of v at input resolution p: the series F_model(frame_i)
// that the aggregate estimators consume. The first call per key computes
// the series in parallel across frames; later calls return the cached
// slice. Callers must not mutate the returned slice.
func Outputs(v *scene.Video, model *Model, class scene.Class, p int) []float64 {
	key := outputKey{video: v, model: model.Name, class: class, p: p}

	outputMu.Lock()
	if series, ok := outputCache[key]; ok {
		outputMu.Unlock()
		return series
	}
	if wg, ok := outputInFly[key]; ok {
		// Another goroutine is computing this series; wait for it.
		outputMu.Unlock()
		wg.Wait()
		outputMu.Lock()
		series := outputCache[key]
		outputMu.Unlock()
		return series
	}
	wg := &sync.WaitGroup{}
	wg.Add(1)
	outputInFly[key] = wg
	outputMu.Unlock()

	series := computeOutputs(v, model, class, p)

	outputMu.Lock()
	outputCache[key] = series
	delete(outputInFly, key)
	outputMu.Unlock()
	wg.Done()
	return series
}

// computeOutputs evaluates the detector over the whole corpus using a
// worker pool.
func computeOutputs(v *scene.Video, model *Model, class scene.Class, p int) []float64 {
	n := v.NumFrames()
	series := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	// Background is rendered lazily behind a sync.Once; touch it before
	// fanning out so workers share one render.
	v.Background()

	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				series[i] = float64(CountClass(model.DetectFrame(v, i, p), class))
			}
		}(lo, hi)
	}
	wg.Wait()
	addInvocations(int64(n))
	return series
}

// Presence returns, for every frame, whether the restricted class c is
// present according to the paper's prior-information protocol: persons are
// detected by YOLOv4 at threshold 0.7 and faces by MTCNN at threshold 0.8,
// both at the detector's native resolution (Section 5.1). The result is
// cached alongside the output series it derives from.
func Presence(v *scene.Video, c scene.Class) []bool {
	var model *Model
	switch c {
	case scene.Face:
		model = MTCNNSim()
	default:
		model = YOLOv4Sim()
	}
	series := Outputs(v, model, c, model.NativeInput)
	present := make([]bool, len(series))
	for i, count := range series {
		present[i] = count > 0
	}
	return present
}

// sparse caches partially evaluated output series: only the frames a
// degradation plan actually touched. This is what keeps profile
// generation's model cost at O(sampled frames), the property the paper's
// Section 5.3.1 timing analysis relies on (6084 invocations to profile
// 4% of UA-DETRAC under ten resolutions, not 10 x 15210).
type sparse struct {
	mu   sync.Mutex
	vals map[int]float64
}

var (
	sparseMu    sync.Mutex
	sparseCache = map[outputKey]*sparse{}
)

// OutputsAt returns the per-frame counts for just the requested frames,
// evaluating the detector only on frames not yet cached. When a full
// series already exists for the key it is served directly. The result is
// ordered like frames.
func OutputsAt(v *scene.Video, model *Model, class scene.Class, p int, frames []int) []float64 {
	key := outputKey{video: v, model: model.Name, class: class, p: p}

	outputMu.Lock()
	full, ok := outputCache[key]
	outputMu.Unlock()
	if ok {
		out := make([]float64, len(frames))
		for i, f := range frames {
			out[i] = full[f]
		}
		return out
	}

	sparseMu.Lock()
	sp, ok := sparseCache[key]
	if !ok {
		sp = &sparse{vals: make(map[int]float64)}
		sparseCache[key] = sp
	}
	sparseMu.Unlock()

	sp.mu.Lock()
	var missing []int
	for _, f := range frames {
		if _, ok := sp.vals[f]; !ok {
			missing = append(missing, f)
		}
	}
	sp.mu.Unlock()

	if len(missing) > 0 {
		v.Background() // share one lazy background render across workers
		workers := runtime.GOMAXPROCS(0)
		if workers > len(missing) {
			workers = len(missing)
		}
		results := make([]float64, len(missing))
		var wg sync.WaitGroup
		chunk := (len(missing) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(missing) {
				hi = len(missing)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					results[i] = float64(CountClass(model.DetectFrame(v, missing[i], p), class))
				}
			}(lo, hi)
		}
		wg.Wait()
		sp.mu.Lock()
		for i, f := range missing {
			sp.vals[f] = results[i]
		}
		sp.mu.Unlock()
		addInvocations(int64(len(missing)))
	}

	sp.mu.Lock()
	out := make([]float64, len(frames))
	for i, f := range frames {
		out[i] = sp.vals[f]
	}
	sp.mu.Unlock()
	return out
}

// ResetCaches clears the output caches and invocation counter. Tests and
// the profile-generation-time experiment use it to measure cold-cache
// behaviour.
func ResetCaches() {
	outputMu.Lock()
	outputCache = map[outputKey][]float64{}
	outputInFly = map[outputKey]*sync.WaitGroup{}
	outputMu.Unlock()
	sparseMu.Lock()
	sparseCache = map[outputKey]*sparse{}
	sparseMu.Unlock()
	invocationMu.Lock()
	invocationCount = 0
	invocationMu.Unlock()
}
