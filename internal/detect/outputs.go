package detect

import (
	"sync"
	"sync/atomic"

	"smokescreen/internal/parallel"
	"smokescreen/internal/scene"
)

// This file implements the model-output cache. Detector outputs are a
// deterministic function of (corpus, model, class, resolution), and the
// estimators resample the same output series hundreds of times per
// experiment, so outputs are computed once — in parallel across frames —
// and reused. This mirrors the paper's "early stopping and reuse strategy"
// (Section 3.3.2): model outputs for frames sampled at a low rate are
// reused at higher rates.

// outputKey identifies one cached output series.
type outputKey struct {
	video *scene.Video
	model string
	class scene.Class
	p     int
}

var (
	outputMu    sync.Mutex
	outputCache = map[outputKey][]float64{}
	outputInFly = map[outputKey]*sync.WaitGroup{}
)

// invocationCount counts model invocations for the profile-generation
// time experiment (Section 5.3.1). It is incremented once per frame
// evaluation that misses the cache. A lock-free atomic keeps the counter
// off the frame-evaluation hot path: under parallel profile generation
// every worker pool bumps it, and a mutex here would serialize them.
var invocationCount atomic.Int64

// Invocations returns the total number of model frame evaluations
// performed so far by Outputs cache misses.
func Invocations() int64 {
	return invocationCount.Load()
}

func addInvocations(n int64) {
	invocationCount.Add(n)
}

// Outputs returns the per-frame counts of class objects reported by model
// on every frame of v at input resolution p: the series F_model(frame_i)
// that the aggregate estimators consume. The first call per key computes
// the series in parallel across frames; later calls return the cached
// slice. Callers must not mutate the returned slice.
func Outputs(v *scene.Video, model *Model, class scene.Class, p int) []float64 {
	key := outputKey{video: v, model: model.Name, class: class, p: p}

	outputMu.Lock()
	if series, ok := outputCache[key]; ok {
		outputMu.Unlock()
		return series
	}
	if wg, ok := outputInFly[key]; ok {
		// Another goroutine is computing this series; wait for it.
		outputMu.Unlock()
		wg.Wait()
		outputMu.Lock()
		series := outputCache[key]
		outputMu.Unlock()
		return series
	}
	wg := &sync.WaitGroup{}
	wg.Add(1)
	outputInFly[key] = wg
	outputMu.Unlock()

	series := computeOutputs(v, model, class, p)

	outputMu.Lock()
	outputCache[key] = series
	delete(outputInFly, key)
	outputMu.Unlock()
	wg.Done()
	return series
}

// computeOutputs evaluates the detector over the whole corpus using the
// bounded work-stealing pool; each frame writes its own series slot, so the
// result is identical to a sequential evaluation.
func computeOutputs(v *scene.Video, model *Model, class scene.Class, p int) []float64 {
	n := v.NumFrames()
	series := make([]float64, n)
	// Background is rendered lazily behind a sync.Once; touch it before
	// fanning out so workers share one render.
	v.Background()
	parallel.For(n, 0, func(i int) {
		series[i] = float64(CountClass(model.DetectFrame(v, i, p), class))
	})
	addInvocations(int64(n))
	return series
}

// Presence returns, for every frame, whether the restricted class c is
// present according to the paper's prior-information protocol: persons are
// detected by YOLOv4 at threshold 0.7 and faces by MTCNN at threshold 0.8,
// both at the detector's native resolution (Section 5.1). The result is
// cached alongside the output series it derives from.
func Presence(v *scene.Video, c scene.Class) []bool {
	var model *Model
	switch c {
	case scene.Face:
		model = MTCNNSim()
	default:
		model = YOLOv4Sim()
	}
	series := Outputs(v, model, c, model.NativeInput)
	present := make([]bool, len(series))
	for i, count := range series {
		present[i] = count > 0
	}
	return present
}

// sparse caches partially evaluated output series: only the frames a
// degradation plan actually touched. This is what keeps profile
// generation's model cost at O(sampled frames), the property the paper's
// Section 5.3.1 timing analysis relies on (6084 invocations to profile
// 4% of UA-DETRAC under ten resolutions, not 10 x 15210).
type sparse struct {
	mu   sync.Mutex
	vals map[int]float64
}

var (
	sparseMu    sync.Mutex
	sparseCache = map[outputKey]*sparse{}
)

// OutputsAt returns the per-frame counts for just the requested frames,
// evaluating the detector only on frames not yet cached. When a full
// series already exists for the key it is served directly. The result is
// ordered like frames.
func OutputsAt(v *scene.Video, model *Model, class scene.Class, p int, frames []int) []float64 {
	key := outputKey{video: v, model: model.Name, class: class, p: p}

	outputMu.Lock()
	full, ok := outputCache[key]
	outputMu.Unlock()
	if ok {
		out := make([]float64, len(frames))
		for i, f := range frames {
			out[i] = full[f]
		}
		return out
	}

	sparseMu.Lock()
	sp, ok := sparseCache[key]
	if !ok {
		sp = &sparse{vals: make(map[int]float64)}
		sparseCache[key] = sp
	}
	sparseMu.Unlock()

	sp.mu.Lock()
	var missing []int
	for _, f := range frames {
		if _, ok := sp.vals[f]; !ok {
			missing = append(missing, f)
		}
	}
	sp.mu.Unlock()

	if len(missing) > 0 {
		v.Background() // share one lazy background render across workers
		results := make([]float64, len(missing))
		parallel.For(len(missing), 0, func(i int) {
			results[i] = float64(CountClass(model.DetectFrame(v, missing[i], p), class))
		})
		sp.mu.Lock()
		for i, f := range missing {
			sp.vals[f] = results[i]
		}
		sp.mu.Unlock()
		addInvocations(int64(len(missing)))
	}

	sp.mu.Lock()
	out := make([]float64, len(frames))
	for i, f := range frames {
		out[i] = sp.vals[f]
	}
	sp.mu.Unlock()
	return out
}

// ResetCaches clears the output caches and invocation counter. Tests and
// the profile-generation-time experiment use it to measure cold-cache
// behaviour; long-running deployments that want to bound memory should
// prefer the per-corpus EvictVideo hook.
func ResetCaches() {
	outputMu.Lock()
	outputCache = map[outputKey][]float64{}
	outputInFly = map[outputKey]*sync.WaitGroup{}
	outputMu.Unlock()
	sparseMu.Lock()
	sparseCache = map[outputKey]*sparse{}
	sparseMu.Unlock()
	evictBackgrounds(nil)
	resetRenderCache()
	invocationCount.Store(0)
}

// CacheStats is a byte-accounted size report of the detect package's
// in-process caches. Series counts are small non-negative integers stored
// as float64, so the accounting below is exact for the slice/map payloads
// and approximate (a fixed per-entry overhead) for Go's map internals.
type CacheStats struct {
	// FullSeries / FullBytes cover the complete per-corpus output series
	// in outputCache: 8 bytes per frame plus a per-entry key overhead.
	FullSeries int
	FullBytes  int64
	// SparseSeries / SparseEntries / SparseBytes cover the partially
	// evaluated series in sparseCache: 16 bytes per cached frame value
	// (int key + float64 value) plus per-entry map overhead.
	SparseSeries  int
	SparseEntries int
	SparseBytes   int64
	// BackgroundImages / BackgroundBytes cover the downsampled static
	// backgrounds cached by the full-frame path: 4 bytes per pixel.
	BackgroundImages int
	BackgroundBytes  int64
	// RenderFrames / RenderBytes cover the degraded-frame render cache
	// (4 bytes per pixel plus per-entry overhead); RenderHits/RenderMisses
	// are its cumulative lookup counters.
	RenderFrames int
	RenderBytes  int64
	RenderHits   int64
	RenderMisses int64
}

// perEntryOverhead approximates the fixed cost of one cache entry: the
// outputKey (pointer + string header + two ints) plus map bucket overhead.
const perEntryOverhead = 96

// TotalBytes returns the total accounted size of all detect caches.
func (s CacheStats) TotalBytes() int64 {
	return s.FullBytes + s.SparseBytes + s.BackgroundBytes + s.RenderBytes
}

// Stats reports the current size of the output caches. Fleet deployments
// poll it to decide when to evict retired corpora (see EvictVideo); the
// cache is otherwise unbounded, which is the right default for experiment
// reruns but not for a long-running service.
func Stats() CacheStats {
	var s CacheStats
	outputMu.Lock()
	for _, series := range outputCache {
		s.FullSeries++
		s.FullBytes += int64(len(series))*8 + perEntryOverhead
	}
	outputMu.Unlock()
	sparseMu.Lock()
	for _, sp := range sparseCache {
		sp.mu.Lock()
		n := len(sp.vals)
		sp.mu.Unlock()
		s.SparseSeries++
		s.SparseEntries += n
		s.SparseBytes += int64(n)*16 + perEntryOverhead
	}
	sparseMu.Unlock()
	n, bytes := backgroundStats()
	s.BackgroundImages = n
	s.BackgroundBytes = bytes
	s.RenderFrames, s.RenderBytes, s.RenderHits, s.RenderMisses = renderStats()
	return s
}

// EvictVideo drops every cached artifact derived from the given corpus —
// full and sparse output series and downsampled backgrounds — and returns
// the number of accounted bytes freed. It is the memory-bounding hook for
// long-running fleet workloads: when a camera's corpus rotates out of the
// query window, evict it instead of resetting every cache. Concurrent
// Outputs/OutputsAt calls for the same corpus simply recompute.
func EvictVideo(v *scene.Video) int64 {
	var freed int64
	outputMu.Lock()
	for key, series := range outputCache {
		if key.video == v {
			freed += int64(len(series))*8 + perEntryOverhead
			delete(outputCache, key)
		}
	}
	outputMu.Unlock()
	sparseMu.Lock()
	for key, sp := range sparseCache {
		if key.video == v {
			sp.mu.Lock()
			freed += int64(len(sp.vals))*16 + perEntryOverhead
			sp.mu.Unlock()
			delete(sparseCache, key)
		}
	}
	sparseMu.Unlock()
	freed += evictBackgrounds(v)
	freed += evictRenders(v)
	return freed
}
