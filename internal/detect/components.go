package detect

import (
	"sync"

	"smokescreen/internal/raster"
)

// component is a connected region of above-threshold pixels.
type component struct {
	BBox raster.Rect
	Area int
	// SumContrast accumulates |pixel - background| over the component so
	// the confidence model can use the mean contrast.
	SumContrast float64
}

// MeanContrast returns the component's average absolute contrast.
func (c *component) MeanContrast() float64 {
	if c.Area == 0 {
		return 0
	}
	return c.SumContrast / float64(c.Area)
}

// connectedComponents labels the 4-connected regions of mask (length w*h,
// row-major) and returns one component per region, with contrast sums taken
// from the parallel contrast slice. Two-pass union-find with path halving.
// ccScratch pools the label buffer of connectedComponents: one w*h int32
// slab per frame evaluation, dead as soon as the components are extracted.
type ccScratch struct {
	labels []int32
	parent []int32
	// compOf maps a union-find root to its index in comps (-1 = unseen);
	// both are resized per call and replace the per-frame map the second
	// pass used to allocate (the hottest allocation in the profile).
	compOf []int32
	comps  []component
}

var ccPool = sync.Pool{New: func() any { return &ccScratch{} }}

func connectedComponents(mask []bool, contrast []float32, w, h int) []component {
	if len(mask) != w*h || len(contrast) != w*h {
		panic("detect: connectedComponents size mismatch")
	}
	cc := ccPool.Get().(*ccScratch)
	defer ccPool.Put(cc)
	if cap(cc.labels) < w*h {
		cc.labels = make([]int32, w*h)
	} else {
		cc.labels = cc.labels[:w*h]
	}
	labels := cc.labels
	for i := range labels {
		labels[i] = -1
	}
	parent := cc.parent[:0]
	defer func() { cc.parent = parent[:0] }()

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if ra < rb {
			parent[rb] = ra
			return ra
		}
		parent[ra] = rb
		return rb
	}

	// First pass: provisional labels.
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			if !mask[i] {
				continue
			}
			var left, up int32 = -1, -1
			if x > 0 && mask[i-1] {
				left = labels[i-1]
			}
			if y > 0 && mask[i-w] {
				up = labels[i-w]
			}
			switch {
			case left < 0 && up < 0:
				l := int32(len(parent))
				parent = append(parent, l)
				labels[i] = l
			case left >= 0 && up >= 0:
				labels[i] = union(left, up)
			case left >= 0:
				labels[i] = left
			default:
				labels[i] = up
			}
		}
	}

	// Second pass: accumulate per-root statistics into pooled slabs instead
	// of a per-call map — root indices are dense (< len(parent)), so a
	// slice lookup replaces the map's hash-and-probe on every masked pixel.
	if cap(cc.compOf) < len(parent) {
		cc.compOf = make([]int32, len(parent))
	}
	compOf := cc.compOf[:len(parent)]
	for i := range compOf {
		compOf[i] = -1
	}
	comps := cc.comps[:0]
	defer func() { cc.comps = comps[:0] }()
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			if !mask[i] {
				continue
			}
			root := find(labels[i])
			ci := compOf[root]
			if ci < 0 {
				ci = int32(len(comps))
				compOf[root] = ci
				comps = append(comps, component{BBox: raster.Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1}})
			}
			c := &comps[ci]
			c.Area++
			c.SumContrast += float64(contrast[i])
			if x < c.BBox.MinX {
				c.BBox.MinX = x
			}
			if x+1 > c.BBox.MaxX {
				c.BBox.MaxX = x + 1
			}
			if y < c.BBox.MinY {
				c.BBox.MinY = y
			}
			if y+1 > c.BBox.MaxY {
				c.BBox.MaxY = y + 1
			}
		}
	}

	out := make([]component, len(comps))
	copy(out, comps)
	// Deterministic order: top-left first.
	sortComponents(out)
	return out
}

func sortComponents(cs []component) {
	// Insertion sort: component counts are tiny, and this avoids pulling
	// sort.Slice closures into the hot path.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessComponent(&cs[j], &cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func lessComponent(a, b *component) bool {
	if a.BBox.MinY != b.BBox.MinY {
		return a.BBox.MinY < b.BBox.MinY
	}
	if a.BBox.MinX != b.BBox.MinX {
		return a.BBox.MinX < b.BBox.MinX
	}
	return a.Area > b.Area
}
