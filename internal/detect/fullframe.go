package detect

import (
	"fmt"
	"math"
	"sync"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// bgDownKey caches the downsampled static background per (corpus,
// resolution) for the full-frame path.
type bgDownKey struct {
	video *scene.Video
	p     int
}

var (
	bgDownMu    sync.Mutex
	bgDownCache = map[bgDownKey]*raster.Image{}
)

func downsampledBackground(v *scene.Video, p int) *raster.Image {
	key := bgDownKey{video: v, p: p}
	bgDownMu.Lock()
	defer bgDownMu.Unlock()
	if img, ok := bgDownCache[key]; ok {
		return img
	}
	img := raster.Downsample(v.Background(), p, p)
	bgDownCache[key] = img
	return img
}

// backgroundStats reports the downsampled-background cache size for the
// byte-accounted cache report.
func backgroundStats() (n int, bytes int64) {
	bgDownMu.Lock()
	defer bgDownMu.Unlock()
	for _, img := range bgDownCache {
		n++
		bytes += int64(len(img.Pix)) * 4
	}
	return n, bytes
}

// evictBackgrounds drops cached downsampled backgrounds for one corpus
// (nil: for all corpora) and returns the accounted bytes freed.
func evictBackgrounds(v *scene.Video) int64 {
	bgDownMu.Lock()
	defer bgDownMu.Unlock()
	var freed int64
	for key, img := range bgDownCache {
		if v != nil && key.video != v {
			continue
		}
		freed += int64(len(img.Pix)) * 4
		delete(bgDownCache, key)
	}
	return freed
}

// DetectFrameFull is the reference detection path: it renders the entire
// frame at native resolution, downsamples it to p x p, adds sensor noise,
// subtracts the (equally downsampled) static background, denoises, and
// scans the whole difference image with threshold + connected components +
// classification + confidence scoring. It costs O(pixels) per frame and
// exists to validate the O(objects) patch path and to serve small
// interactive workloads. False positives arise organically here when noise
// survives both the threshold and the confidence gate.
//
// Single-class face models additionally use a top-hat pass (local contrast
// against a wide blur) because faces live inside person blobs where
// background subtraction cannot isolate them.
func (m *Model) DetectFrameFull(v *scene.Video, i, p int) []Detection {
	if !m.ValidResolution(p) {
		panic(fmt.Sprintf("detect: %s cannot run at resolution %d", m.Name, p))
	}
	cfg := &v.Config
	sx := float64(p) / float64(cfg.Width)
	sigmaEff := effectiveNoise(float64(cfg.Lighting.NoiseSigma), sx)

	img, release := degradedFrame(v, i, p, float32(sigmaEff))
	defer release()
	return m.DetectPixels(img, downsampledBackground(v, p), float64(cfg.Lighting.NoiseSigma), cfg.Width, dupSeed(cfg.Seed, i, p, 0))
}

// DetectPixels runs the full-frame pipeline on an already-captured (and
// possibly transmitted) frame raster against a static background raster of
// the same size. nativeNoiseSigma and captureWidth are the camera's sensor
// spec — the receiver learns them from the camera's configuration message;
// the effective noise in img follows from the resolution ratio. dupKey
// seeds the duplicate resonance deterministically per frame. This is the
// entry point the central query processor uses on frames arriving over the
// camera transport, where no scene.Video exists on the receiving side.
func (m *Model) DetectPixels(img, bg *raster.Image, nativeNoiseSigma float64, captureWidth int, dupKey uint64) []Detection {
	if img.W != bg.W || img.H != bg.H {
		panic("detect: DetectPixels frame/background size mismatch")
	}
	if captureWidth <= 0 {
		panic("detect: DetectPixels requires a positive capture width")
	}
	countInvocation()
	p := img.W
	scale := float64(p) / float64(captureWidth)
	if scale > 1 {
		scale = 1
	}
	sigmaEff := effectiveNoise(nativeNoiseSigma, scale)
	tau := m.threshold(sigmaEff)

	var diff *plane
	if len(m.TargetClasses) == 1 && m.TargetClasses[0] == scene.Face {
		diff = fullFrameTopHat(img)
	} else {
		diff = diffPlane(img, bg)
	}
	smooth := diff.blur3()
	putPlane(diff)
	scr := smooth.absMask(tau)
	comps := connectedComponents(scr.mask, scr.contrast, img.W, img.H)
	putPlane(smooth)
	putMaskScratch(scr)

	var out []Detection
	for ci := range comps {
		comp := &comps[ci]
		if comp.Area < m.MinBlobArea {
			continue
		}
		conf := m.confidence(comp.Area, comp.MeanContrast(), tau)
		if conf < m.Threshold {
			continue
		}
		class := m.classify(comp.BBox, comp.Area)
		if !m.CanDetect(class) {
			continue
		}
		out = append(out, Detection{Class: class, BBox: comp.BBox, Confidence: conf})

		// Apply the same duplicate resonance as the patch path, keyed on
		// the blob's geometry since no object identity exists here.
		size := math.Max(float64(comp.BBox.W()), float64(comp.BBox.H()))
		prob := m.dupProbabilityRaw(nativeNoiseSigma, p, size)
		if prob > 0 {
			key := dupKey ^ uint64(comp.BBox.MinX<<16|comp.BBox.MinY)
			if hash01(key) < prob {
				out = append(out, Detection{Class: class, BBox: comp.BBox, Confidence: conf * 0.92})
			}
		}
	}
	sortDetections(out)
	return out
}

// fullFrameTopHat isolates small features against their local surroundings
// over the whole frame, the face model's detection response.
func fullFrameTopHat(img *raster.Image) *plane {
	radius := maxInt(2, img.W/40)
	wide := raster.GetScratch(img.W, img.H)
	raster.BoxBlurInto(wide, img, radius)
	diff := diffPlane(img, wide)
	raster.PutScratch(wide)
	return diff
}

// CountClass returns the number of detections of class c.
func CountClass(ds []Detection, c scene.Class) int {
	n := 0
	for i := range ds {
		if ds[i].Class == c {
			n++
		}
	}
	return n
}
