package detect

import (
	"math"
	"math/rand"
	"testing"
)

// TestBlur3MatchesNaive property-tests the separable blur3 against the
// direct 3x3 window oracle over random plane sizes, including degenerate
// 1-pixel-wide and 1-pixel-high planes.
func TestBlur3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type dims struct{ w, h int }
	cases := []dims{{1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {17, 5}, {64, 48}}
	for i := 0; i < 8; i++ {
		cases = append(cases, dims{1 + rng.Intn(90), 1 + rng.Intn(90)})
	}
	for _, c := range cases {
		p := getPlane(c.w, c.h)
		for i := range p.v {
			p.v[i] = rng.Float32()*2 - 1 // signed, like real difference planes
		}
		fast := p.blur3()
		naive := p.blur3Naive()
		for i := range fast.v {
			f, n := float64(fast.v[i]), float64(naive.v[i])
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("%dx%d: non-finite blur sample %v at %d", c.w, c.h, f, i)
			}
			if d := math.Abs(f - n); d > 1e-5 {
				t.Fatalf("%dx%d: blur3 sample %d diff %g > 1e-5 (fast %v naive %v)",
					c.w, c.h, i, d, f, n)
			}
		}
		putPlane(naive)
		putPlane(fast)
		putPlane(p)
	}
}

func benchPlane(w, h int) *plane {
	rng := rand.New(rand.NewSource(2))
	p := getPlane(w, h)
	for i := range p.v {
		p.v[i] = rng.Float32()*2 - 1
	}
	return p
}

func BenchmarkKernelBlur3(b *testing.B) {
	p := benchPlane(608, 608)
	b.SetBytes(int64(len(p.v)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		putPlane(p.blur3())
	}
}

func BenchmarkKernelBlur3Naive(b *testing.B) {
	p := benchPlane(608, 608)
	b.SetBytes(int64(len(p.v)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		putPlane(p.blur3Naive())
	}
}
