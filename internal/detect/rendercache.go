package detect

import (
	"sync"
	"sync/atomic"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// This file implements the degraded-frame render cache. The full-frame
// detection path renders a frame at native resolution, downsamples it to
// the model input size, and adds effective sensor noise — a deterministic
// function of (corpus, frame, resolution, noise sigma). Hypercube cells and
// correction-set passes that share a degradation setting re-request the
// same degraded frames, so the cache renders each once and serves the
// raster thereafter, under a byte budget with LRU eviction.
//
// Cached images are heap-allocated (never drawn from the scratch pool) and
// read-only once published, so eviction is safe even while a detection pass
// still holds the raster: the evicted image simply stays alive until its
// readers drop it.

// renderKey identifies one cached degraded frame.
type renderKey struct {
	video *scene.Video
	frame int
	p     int
	sigma float32
}

type renderEntry struct {
	key        renderKey
	img        *raster.Image
	bytes      int64
	prev, next *renderEntry // LRU list; head = most recent
}

type renderCacheState struct {
	mu      sync.Mutex
	entries map[renderKey]*renderEntry
	head    *renderEntry
	tail    *renderEntry
	bytes   int64
	budget  int64 // >0 budgeted, <0 unlimited, 0 disabled
	hits    atomic.Int64
	misses  atomic.Int64
}

// DefaultRenderCacheBudget is the byte budget the render cache starts
// with: enough for ~1000 degraded 128x128 frames, small next to a corpus's
// output series but enough to cover a correction-set pass.
const DefaultRenderCacheBudget int64 = 64 << 20

var renderCache = renderCacheState{
	entries: map[renderKey]*renderEntry{},
	budget:  DefaultRenderCacheBudget,
}

// SetRenderCacheBudget bounds the degraded-frame render cache: a positive
// budget evicts least-recently-used frames once accounted bytes exceed it,
// a negative budget removes the bound, and zero disables caching entirely
// (and drops current entries). The default is DefaultRenderCacheBudget.
func SetRenderCacheBudget(bytes int64) {
	c := &renderCache
	c.mu.Lock()
	c.budget = bytes
	if bytes == 0 {
		c.entries = map[renderKey]*renderEntry{}
		c.head, c.tail = nil, nil
		c.bytes = 0
	} else if bytes > 0 {
		c.evictOverBudgetLocked()
	}
	c.mu.Unlock()
}

// RenderCacheBudget returns the current byte budget (see
// SetRenderCacheBudget for the sign semantics).
func RenderCacheBudget() int64 {
	c := &renderCache
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// moveToFrontLocked makes e the most-recently-used entry.
func (c *renderCacheState) moveToFrontLocked(e *renderEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *renderCacheState) unlinkLocked(e *renderEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.head == e {
		c.head = e.next
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *renderCacheState) evictOverBudgetLocked() {
	for c.budget > 0 && c.bytes > c.budget && c.tail != nil {
		e := c.tail
		c.unlinkLocked(e)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
	}
}

// degradedFrame returns frame i of v downsampled to p x p with effective
// sensor noise sigma applied — through the cache when enabled. The release
// function must be called once the raster is no longer read; it returns
// pooled scratch when the cache is disabled and is a no-op otherwise.
// Callers must not mutate the returned image.
func degradedFrame(v *scene.Video, i, p int, sigma float32) (*raster.Image, func()) {
	c := &renderCache
	key := renderKey{video: v, frame: i, p: p, sigma: sigma}

	c.mu.Lock()
	if c.budget == 0 {
		c.mu.Unlock()
		c.misses.Add(1)
		img := raster.GetScratch(p, p)
		renderDegradedInto(img, v, i, p, sigma)
		return img, func() { raster.PutScratch(img) }
	}
	if e, ok := c.entries[key]; ok {
		c.moveToFrontLocked(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.img, func() {}
	}
	c.mu.Unlock()

	c.misses.Add(1)
	img := raster.New(p, p)
	renderDegradedInto(img, v, i, p, sigma)

	c.mu.Lock()
	if c.budget == 0 {
		// Disabled while we rendered: serve the raster uncached.
		c.mu.Unlock()
		return img, func() {}
	}
	if e, ok := c.entries[key]; ok {
		// Lost a render race; the published entry wins.
		c.moveToFrontLocked(e)
		c.mu.Unlock()
		return e.img, func() {}
	}
	e := &renderEntry{key: key, img: img, bytes: int64(len(img.Pix))*4 + perEntryOverhead}
	c.entries[key] = e
	c.bytes += e.bytes
	c.moveToFrontLocked(e)
	c.evictOverBudgetLocked()
	c.mu.Unlock()
	return img, func() {}
}

// renderDegradedInto renders the degraded frame into dst (p x p): native
// render from pooled scratch, box-filter downsample, deterministic sensor
// noise at the effective post-resample sigma.
func renderDegradedInto(dst *raster.Image, v *scene.Video, i, p int, sigma float32) {
	cfg := &v.Config
	native := raster.GetScratch(cfg.Width, cfg.Height)
	v.RenderRegionInto(native, i, raster.RectWH(0, 0, cfg.Width, cfg.Height))
	raster.DownsampleInto(dst, native)
	raster.PutScratch(native)
	dst.AddNoise(frameNoiseSeed(cfg.Seed, i, p), sigma)
}

// renderStats reports the cache's accounted size and hit/miss counters.
func renderStats() (frames int, bytes int64, hits, misses int64) {
	c := &renderCache
	c.mu.Lock()
	frames = len(c.entries)
	bytes = c.bytes
	c.mu.Unlock()
	return frames, bytes, c.hits.Load(), c.misses.Load()
}

// evictRenders drops cached degraded frames for one corpus (nil: all) and
// returns the accounted bytes freed.
func evictRenders(v *scene.Video) int64 {
	c := &renderCache
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for key, e := range c.entries {
		if v != nil && key.video != v {
			continue
		}
		c.unlinkLocked(e)
		delete(c.entries, key)
		c.bytes -= e.bytes
		freed += e.bytes
	}
	return freed
}

// resetRenderCache clears entries and counters, keeping the budget.
func resetRenderCache() {
	c := &renderCache
	c.mu.Lock()
	c.entries = map[renderKey]*renderEntry{}
	c.head, c.tail = nil, nil
	c.bytes = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
