package detect

import (
	"fmt"
	"math"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// Detection is one object reported by a model on one frame. BBox is in
// model-input pixel coordinates (i.e. after resizing to p x p).
type Detection struct {
	Class      scene.Class
	BBox       raster.Rect
	Confidence float64
}

// candidate is an internal per-ground-truth-object detection result prior
// to merge/duplicate post-processing.
type candidate struct {
	objID    int
	class    scene.Class
	conf     float64
	blob     raster.Rect // model-input coordinates
	scaled   fRect       // the ground-truth bbox scaled to model pixels
	detected bool
}

// fRect is a float-precision rectangle used for sub-pixel merge geometry.
type fRect struct {
	minX, minY, maxX, maxY float64
}

func (r fRect) maxDim() float64 {
	return math.Max(r.maxX-r.minX, r.maxY-r.minY)
}

// chebyshevGap returns the Chebyshev distance between two rectangles,
// zero when they overlap.
func chebyshevGap(a, b fRect) float64 {
	gx := math.Max(0, math.Max(b.minX-a.maxX, a.minX-b.maxX))
	gy := math.Max(0, math.Max(b.minY-a.maxY, a.minY-b.maxY))
	return math.Max(gx, gy)
}

// DetectFrame runs the model on frame i of v at input resolution p using
// the production patch path and returns the reported detections. It panics
// if p is not a valid input resolution for the model (callers validate
// knobs up front; an invalid resolution is a programming error).
func (m *Model) DetectFrame(v *scene.Video, i, p int) []Detection {
	if !m.ValidResolution(p) {
		panic(fmt.Sprintf("detect: %s cannot run at resolution %d", m.Name, p))
	}
	countInvocation()
	cfg := &v.Config
	sx := float64(p) / float64(cfg.Width)
	sy := float64(p) / float64(cfg.Height)
	sigmaEff := effectiveNoise(float64(cfg.Lighting.NoiseSigma), sx)
	tau := m.threshold(sigmaEff)

	frame := v.Frame(i)
	cands := make([]candidate, 0, len(frame.Objects))
	for idx := range frame.Objects {
		obj := &frame.Objects[idx]
		// A class-restricted detector (MTCNN) does not respond to other
		// object kinds; its clutter behaviour is covered by the
		// false-positive process.
		if !m.CanDetect(obj.Class) {
			continue
		}
		c := m.evalPatch(v, i, p, obj, sx, sy, sigmaEff, tau)
		cands = append(cands, c)
	}

	detections := m.postProcess(v, i, p, cands)
	detections = append(detections, m.falsePositives(v, i, p, sigmaEff, tau)...)
	return detections
}

// effectiveNoise returns the sensor-noise sigma after box-filter
// downsampling by linear scale s: averaging 1/s^2 native pixels divides
// the standard deviation by 1/s. A small floor models quantisation noise.
func effectiveNoise(nativeSigma, s float64) float64 {
	sigma := nativeSigma * s
	if sigma < 0.004 {
		sigma = 0.004
	}
	return sigma
}

// threshold is the adaptive detection threshold applied to the denoised
// background difference: NSigma post-blur noise sigmas with an absolute
// contrast floor. The 3x3 denoising blur divides the noise sigma by 3.
func (m *Model) threshold(sigmaEff float64) float64 {
	tau := m.NSigma * sigmaEff / 3
	if tau < m.MinContrast {
		tau = m.MinContrast
	}
	return tau
}

// patchRegion returns the native-coordinate evaluation region of an
// object: its bbox grown by a margin of at least two model pixels on every
// side (so components can close around the object and the face path sees
// local context), clipped to the frame.
func patchRegion(cfg *scene.Config, obj *scene.Object, sx, sy float64) raster.Rect {
	marginX, marginY := patchMargins(sx, sy)
	return raster.Rect{
		MinX: obj.BBox.MinX - marginX,
		MinY: obj.BBox.MinY - marginY,
		MaxX: obj.BBox.MaxX + marginX,
		MaxY: obj.BBox.MaxY + marginY,
	}.Intersect(raster.RectWH(0, 0, cfg.Width, cfg.Height))
}

// patchMargins returns the native-pixel margin a patch region adds around
// the object bbox on each side.
func patchMargins(sx, sy float64) (marginX, marginY int) {
	return int(math.Ceil(2/sx)) + 3, int(math.Ceil(2/sy)) + 3
}

// patchDims returns the model-scale dimensions of a patch region.
func patchDims(region raster.Rect, sx, sy float64) (tw, th int) {
	tw = maxInt(3, int(math.Round(float64(region.W())*sx)))
	th = maxInt(3, int(math.Round(float64(region.H())*sy)))
	return tw, th
}

// patchInfo carries the side-band facts of one patch evaluation the
// temporal delta layer needs to gate prior-frame reuse: the evaluated
// region, the selected component's geometry and contrast, and the largest
// post-blur contrast anywhere in the patch.
type patchInfo struct {
	region       raster.Rect
	hasComp      bool
	compBBox     raster.Rect // patch (region-relative) coordinates
	compArea     int
	meanContrast float64
	confValid    bool
	conf         float64
	maxAbs       float64
}

// keptPatches receives pre-noise pixel clones from a patch evaluation so
// the delta-exact path can replay the noise/difference/threshold stages of
// later frames without re-rendering. Exactly one representation is filled,
// matching the pipeline (float or quantized) that ran.
type keptPatches struct {
	patchF *raster.Image // model-scale patch before sensor noise
	bgF    *raster.Image // model-scale static background patch
	patch8 *raster.Plane8
	bg8    *raster.Plane8
}

// release returns every held clone to its pool.
func (k *keptPatches) release() {
	raster.PutScratch(k.patchF)
	raster.PutScratch(k.bgF)
	raster.PutScratch8(k.patch8)
	raster.PutScratch8(k.bg8)
	*k = keptPatches{}
}

// evalPatch rasterises the object's local neighbourhood at native
// resolution, downsamples frame and static background to the model scale,
// adds effective sensor noise, and runs denoise + background-difference
// threshold + connected-components detection on the pixels.
func (m *Model) evalPatch(v *scene.Video, frameIdx, p int, obj *scene.Object, sx, sy, sigmaEff, tau float64) candidate {
	return m.evalPatchInfo(v, frameIdx, p, obj, sx, sy, sigmaEff, tau, nil, nil)
}

// evalPatchInfo is evalPatch with optional side-band outputs for the delta
// layer: info (nil on the plain path) receives reuse-gating facts, keep
// (nil outside delta-exact) receives pre-noise pixel clones. With both
// nil the float path is byte-identical to the historical evalPatch.
func (m *Model) evalPatchInfo(v *scene.Video, frameIdx, p int, obj *scene.Object, sx, sy, sigmaEff, tau float64, info *patchInfo, keep *keptPatches) candidate {
	cfg := &v.Config
	cand := candidate{
		objID: obj.ID,
		scaled: fRect{
			minX: float64(obj.BBox.MinX) * sx,
			minY: float64(obj.BBox.MinY) * sy,
			maxX: float64(obj.BBox.MaxX) * sx,
			maxY: float64(obj.BBox.MaxY) * sy,
		},
	}
	region := patchRegion(cfg, obj, sx, sy)
	if region.Empty() {
		return cand
	}
	tw, th := patchDims(region, sx, sy)
	wantMax := info != nil
	var comps []component
	var maxAbs float64
	if Quantized() {
		comps, maxAbs = m.patchComponentsQuant(v, frameIdx, p, obj, region, tw, th, sigmaEff, tau, wantMax, keep)
	} else {
		comps, maxAbs = m.patchComponentsFloat(v, frameIdx, p, obj, region, tw, th, sigmaEff, tau, wantMax, keep)
	}
	if info != nil {
		info.region = region
		info.maxAbs = maxAbs
	}
	m.selectCandidate(&cand, comps, obj, region, sx, sy, tau, info)
	return cand
}

// patchComponentsFloat runs the float pixel stages of evalPatch — render,
// downsample, sensor noise, background/border difference, 3x3 denoise,
// threshold, connected components — and returns the components plus (when
// wantMax) the largest post-blur contrast in the patch.
func (m *Model) patchComponentsFloat(v *scene.Video, frameIdx, p int, obj *scene.Object, region raster.Rect, tw, th int, sigmaEff, tau float64, wantMax bool, keep *keptPatches) ([]component, float64) {
	cfg := &v.Config
	nativePatch := raster.GetScratch(region.W(), region.H())
	v.RenderRegionInto(nativePatch, frameIdx, region)
	patch := raster.GetScratch(tw, th)
	defer raster.PutScratch(patch)
	raster.DownsampleInto(patch, nativePatch)
	if keep != nil {
		keep.patchF = raster.GetScratch(tw, th)
		copy(keep.patchF.Pix, patch.Pix)
	}
	patch.AddNoise(noiseSeed(cfg.Seed, frameIdx, p, obj.ID), float32(sigmaEff))

	var diff *plane
	if obj.Class == scene.Face {
		// Faces sit inside person blobs, so static-background subtraction
		// cannot isolate them: a same-sign face (bright face on a body that
		// is itself brighter than the street) fuses with the body blob. A
		// face detector instead responds to the face's contrast against its
		// immediate surroundings — the border ring of the patch, which is
		// head/torso pixels.
		diff = diffScalar(patch, borderMean(patch))
	} else {
		// Reuse the native patch buffer for the background render: the
		// downsample reads it before anything overwrites it.
		v.BackgroundRegionInto(nativePatch, region)
		bgPatch := raster.GetScratch(tw, th)
		raster.DownsampleInto(bgPatch, nativePatch)
		diff = diffPlane(patch, bgPatch)
		if keep != nil {
			keep.bgF = bgPatch
		} else {
			raster.PutScratch(bgPatch)
		}
	}
	raster.PutScratch(nativePatch)
	smooth := diff.blur3()
	putPlane(diff)
	scr := smooth.absMask(tau)
	maxAbs := float64(0)
	if wantMax {
		mx := float32(0)
		for _, c := range scr.contrast {
			if c > mx {
				mx = c
			}
		}
		maxAbs = float64(mx)
	}
	comps := connectedComponents(scr.mask, scr.contrast, tw, th)
	putPlane(smooth)
	putMaskScratch(scr)
	return comps, maxAbs
}

// selectCandidate picks the component that best explains the object and
// applies the area and confidence gates, filling cand (and info, when the
// delta layer is listening). It is shared verbatim by the float, quantized
// and delta-exact replay paths, so their selection semantics cannot drift.
func (m *Model) selectCandidate(cand *candidate, comps []component, obj *scene.Object, region raster.Rect, sx, sy, tau float64, info *patchInfo) {
	// Expected object bbox in patch coordinates.
	expected := raster.Rect{
		MinX: int(math.Floor((float64(obj.BBox.MinX) - float64(region.MinX)) * sx)),
		MinY: int(math.Floor((float64(obj.BBox.MinY) - float64(region.MinY)) * sy)),
		MaxX: int(math.Ceil((float64(obj.BBox.MaxX) - float64(region.MinX)) * sx)),
		MaxY: int(math.Ceil((float64(obj.BBox.MaxY) - float64(region.MinY)) * sy)),
	}
	// Select the component that best explains the object: the one with the
	// largest absolute intersection with the expected box. A containment
	// guard rejects incidental touches (a neighbouring blob grazing the
	// expected box) without letting tiny noise specks with perfect
	// containment outrank the real blob.
	best := -1
	bestInter := 0
	for ci := range comps {
		inter := comps[ci].BBox.Intersect(expected).Area()
		if inter <= bestInter {
			continue
		}
		mostlyExplains := inter*5 >= expected.Area()
		mostlyInside := inter*2 >= comps[ci].BBox.Area()
		if mostlyExplains || mostlyInside {
			bestInter = inter
			best = ci
		}
	}
	if best < 0 {
		return
	}
	comp := &comps[best]
	if info != nil {
		info.hasComp = true
		info.compBBox = comp.BBox
		info.compArea = comp.Area
		info.meanContrast = comp.MeanContrast()
	}
	if comp.Area < m.MinBlobArea {
		return
	}
	conf := m.confidence(comp.Area, comp.MeanContrast(), tau)
	if info != nil {
		info.confValid = true
		info.conf = conf
	}
	if conf < m.Threshold {
		return
	}
	// Translate the blob back into model-input coordinates.
	offX := int(math.Round(float64(region.MinX) * sx))
	offY := int(math.Round(float64(region.MinY) * sy))
	blob := raster.Rect{
		MinX: comp.BBox.MinX + offX,
		MinY: comp.BBox.MinY + offY,
		MaxX: comp.BBox.MaxX + offX,
		MaxY: comp.BBox.MaxY + offY,
	}
	cand.detected = true
	cand.conf = conf
	cand.blob = blob
	cand.class = m.classify(blob, comp.Area)
}

// borderMean estimates the local surroundings of a patch as the mean of
// its outermost ring of pixels; for a face patch the ring is mostly
// head/torso pixels of the enclosing person.
func borderMean(img *raster.Image) float32 {
	var sum float64
	var n int
	for x := 0; x < img.W; x++ {
		sum += float64(img.At(x, 0)) + float64(img.At(x, img.H-1))
		n += 2
	}
	for y := 1; y < img.H-1; y++ {
		sum += float64(img.At(0, y)) + float64(img.At(img.W-1, y))
		n += 2
	}
	return float32(sum / float64(n))
}

// classify assigns a class to a blob. Single-class detectors (MTCNN)
// report their target class directly — a face-specific network does not
// mistake its response for a car; multi-class detectors classify from
// blob geometry.
func (m *Model) classify(b raster.Rect, area int) scene.Class {
	if len(m.TargetClasses) == 1 {
		return m.TargetClasses[0]
	}
	return classifyBlob(b, area)
}

// postProcess fuses detections that would form a single blob at the model
// scale (undercounting dense traffic at low resolution) and applies the
// one-stage duplicate resonance (overcounting at the resonant input size).
func (m *Model) postProcess(v *scene.Video, frameIdx, p int, cands []candidate) []Detection {
	detected := make([]int, 0, len(cands))
	for i := range cands {
		if cands[i].detected && m.CanDetect(cands[i].class) {
			detected = append(detected, i)
		}
	}
	// Union-find over detected candidates: same class within MergeGap.
	parent := make([]int, len(detected))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for a := 0; a < len(detected); a++ {
		for b := a + 1; b < len(detected); b++ {
			ca, cb := &cands[detected[a]], &cands[detected[b]]
			if ca.class != cb.class {
				continue
			}
			if chebyshevGap(ca.scaled, cb.scaled) <= m.MergeGap {
				parent[find(a)] = find(b)
			}
		}
	}
	groups := make(map[int][]int)
	for i := range detected {
		root := find(i)
		groups[root] = append(groups[root], detected[i])
	}

	var out []Detection
	for _, members := range groups {
		box := cands[members[0]].blob
		conf := cands[members[0]].conf
		for _, mi := range members[1:] {
			box = box.Union(cands[mi].blob)
			if cands[mi].conf > conf {
				conf = cands[mi].conf
			}
		}
		class := cands[members[0]].class
		out = append(out, Detection{Class: class, BBox: box, Confidence: conf})

		// Duplicate resonance applies to isolated objects whose scale sits
		// in the model's confusion band.
		if len(members) == 1 {
			c := &cands[members[0]]
			prob := m.dupProbability(v, p, c.scaled.maxDim())
			if prob > 0 && hash01(dupSeed(v.Config.Seed, frameIdx, p, c.objID)) < prob {
				out = append(out, Detection{Class: class, BBox: box, Confidence: conf * 0.92})
			}
		}
	}
	sortDetections(out)
	return out
}

// falsePositives models clutter detections. The full-frame reference path
// produces these organically when noise crosses the threshold and survives
// the confidence gate; the patch path samples a Poisson process whose rate
// scales with the scanned pixel count and the per-pixel probability of the
// denoised noise exceeding the threshold, seeded per (frame, resolution).
func (m *Model) falsePositives(v *scene.Video, frameIdx, p int, sigmaEff, tau float64) []Detection {
	sigmaBlur := sigmaEff / 3
	// Two-sided tail of the post-blur noise against the threshold.
	z := tau / sigmaBlur
	exceed := math.Erfc(z / math.Sqrt2)
	scale := float64(p) / float64(m.NativeInput)
	lambda := m.FPRate * scale * scale * exceed * 50
	if lambda <= 0 {
		return nil
	}
	stream := fpStream(v.Config.Seed, frameIdx, p)
	n := stream.Poisson(lambda)
	if n == 0 {
		return nil
	}
	out := make([]Detection, 0, n)
	for k := 0; k < n; k++ {
		w := 2 + stream.Intn(4)
		h := 2 + stream.Intn(4)
		x := stream.Intn(maxInt(1, p-w))
		y := stream.Intn(maxInt(1, p-h))
		class := scene.Car
		if len(m.TargetClasses) > 0 {
			class = m.TargetClasses[stream.Intn(len(m.TargetClasses))]
		} else if stream.Bernoulli(0.3) {
			class = scene.Person
		}
		out = append(out, Detection{
			Class:      class,
			BBox:       raster.RectWH(x, y, w, h),
			Confidence: m.Threshold + 0.15*stream.Float64(),
		})
	}
	return out
}

// classifyBlob assigns a class from blob geometry: cars are wide and boxy,
// persons are tall and rounded, faces are tiny. The fill ratio (mask pixels
// over bounding-box pixels) separates solid vehicle slivers entering the
// frame (fill ~1) from elliptical person bodies (fill ~pi/4), which pure
// aspect rules confuse. Quantisation at low resolution distorts both cues,
// which is how misclassification emerges.
func classifyBlob(b raster.Rect, area int) scene.Class {
	w, h := float64(b.W()), float64(b.H())
	if h == 0 || w == 0 {
		return scene.Car
	}
	aspect := w / h
	maxDim := math.Max(w, h)
	fill := float64(area) / float64(b.Area())
	switch {
	case aspect >= 1.25:
		return scene.Car
	case aspect <= 0.8:
		if fill >= 0.85 {
			return scene.Car // solid box sliver: a partially visible vehicle
		}
		return scene.Person
	case maxDim <= 5:
		return scene.Face
	case fill >= 0.85 || area >= 25:
		return scene.Car
	default:
		return scene.Person
	}
}

func sortDetections(ds []Detection) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && lessDetection(&ds[j], &ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func lessDetection(a, b *Detection) bool {
	if a.BBox.MinY != b.BBox.MinY {
		return a.BBox.MinY < b.BBox.MinY
	}
	if a.BBox.MinX != b.BBox.MinX {
		return a.BBox.MinX < b.BBox.MinX
	}
	return a.Class < b.Class
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
