package detect

import (
	"testing"

	"smokescreen/internal/scene"
)

// cacheTestVideo builds a tiny corpus for cache accounting tests.
func cacheTestVideo(t *testing.T, name string, seed uint64) *scene.Video {
	t.Helper()
	cfg := scene.Config{
		Name: name, Width: 320, Height: 320, NumFrames: 6, Seed: seed,
		Lighting: scene.Lighting{BackgroundTop: 0.6, BackgroundBottom: 0.7, NoiseSigma: 0.01},
		CarRate:  0.5, CarLifetime: 4, CarMinW: 30, CarMaxW: 50, CarContrast: 0.3,
		PersonLifetime: 4, BusyFactor: 1, RegimeLength: 5, LaneYs: []int{160},
	}
	v, err := scene.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCacheStatsAndEvictVideo(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	a := cacheTestVideo(t, "cache-a", 41)
	b := cacheTestVideo(t, "cache-b", 42)
	m := YOLOv4Sim()

	seriesA := Outputs(a, m, scene.Car, 160)
	Outputs(b, m, scene.Car, 160)
	OutputsAt(b, m, scene.Car, 96, []int{0, 2, 4})
	m.DetectFrameFull(a, 0, 160) // populates the downsampled-background cache

	s := Stats()
	if s.FullSeries != 2 {
		t.Fatalf("FullSeries = %d, want 2", s.FullSeries)
	}
	if s.SparseSeries != 1 || s.SparseEntries != 3 {
		t.Fatalf("sparse accounting = (%d series, %d entries), want (1, 3)",
			s.SparseSeries, s.SparseEntries)
	}
	if s.BackgroundImages != 1 {
		t.Fatalf("BackgroundImages = %d, want 1", s.BackgroundImages)
	}
	if s.RenderFrames != 1 {
		t.Fatalf("RenderFrames = %d, want 1", s.RenderFrames)
	}
	wantRender := int64(160*160)*4 + perEntryOverhead
	if s.RenderBytes != wantRender {
		t.Fatalf("RenderBytes = %d, want %d", s.RenderBytes, wantRender)
	}
	wantFull := int64(2) * (int64(len(seriesA))*8 + perEntryOverhead)
	if s.FullBytes != wantFull {
		t.Fatalf("FullBytes = %d, want %d", s.FullBytes, wantFull)
	}
	if s.TotalBytes() != s.FullBytes+s.SparseBytes+s.BackgroundBytes+s.RenderBytes {
		t.Fatal("TotalBytes does not sum the components")
	}

	before := s.TotalBytes()
	freed := EvictVideo(b)
	after := Stats()
	if after.FullSeries != 1 || after.SparseSeries != 0 {
		t.Fatalf("eviction left (%d full, %d sparse) for corpus b",
			after.FullSeries, after.SparseSeries)
	}
	if after.BackgroundImages != 1 {
		t.Fatal("eviction of b dropped a's background")
	}
	if freed != before-after.TotalBytes() {
		t.Fatalf("freed %d bytes, but totals dropped by %d", freed, before-after.TotalBytes())
	}

	// Evicted series recompute identically on the next request.
	again := Outputs(b, m, scene.Car, 160)
	fresh := computeOutputs(b, m, scene.Car, 160)
	for i := range again {
		if again[i] != fresh[i] {
			t.Fatalf("recomputed series diverges at frame %d", i)
		}
	}

	freed = EvictVideo(a)
	if freed == 0 {
		t.Fatal("evicting corpus a freed nothing")
	}
	if s := Stats(); s.BackgroundImages != 0 || s.RenderFrames != 0 {
		t.Fatal("background/render caches survived eviction of their corpus")
	}
}

func TestInvocationCounterAtomic(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	v := cacheTestVideo(t, "cache-inv", 43)
	m := YOLOv4Sim()
	Outputs(v, m, scene.Car, 160)
	if got := Invocations(); got != int64(v.NumFrames()) {
		t.Fatalf("Invocations = %d, want %d", got, v.NumFrames())
	}
	// Cache hit: no further invocations.
	Outputs(v, m, scene.Car, 160)
	if got := Invocations(); got != int64(v.NumFrames()) {
		t.Fatalf("cache hit changed the counter to %d", got)
	}
}
