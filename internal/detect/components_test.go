package detect

import (
	"testing"
	"testing/quick"

	"smokescreen/internal/raster"
)

// maskFromStrings builds a mask and uniform contrast from a picture, where
// '#' is foreground.
func maskFromStrings(rows []string) (mask []bool, contrast []float32, w, h int) {
	h = len(rows)
	w = len(rows[0])
	mask = make([]bool, w*h)
	contrast = make([]float32, w*h)
	for y, row := range rows {
		for x, ch := range row {
			if ch == '#' {
				mask[y*w+x] = true
				contrast[y*w+x] = 0.5
			}
		}
	}
	return mask, contrast, w, h
}

func TestConnectedComponentsBasic(t *testing.T) {
	mask, contrast, w, h := maskFromStrings([]string{
		"##..#",
		"##..#",
		".....",
		"#..##",
	})
	comps := connectedComponents(mask, contrast, w, h)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	// Sorted top-left first: the 2x2 block is first.
	if comps[0].Area != 4 {
		t.Fatalf("first component area = %d, want 4", comps[0].Area)
	}
	if comps[0].BBox != raster.RectWH(0, 0, 2, 2) {
		t.Fatalf("first component bbox = %+v", comps[0].BBox)
	}
}

func TestConnectedComponentsDiagonalNotConnected(t *testing.T) {
	mask, contrast, w, h := maskFromStrings([]string{
		"#.",
		".#",
	})
	comps := connectedComponents(mask, contrast, w, h)
	if len(comps) != 2 {
		t.Fatalf("diagonal pixels merged: %d components", len(comps))
	}
}

func TestConnectedComponentsUShape(t *testing.T) {
	// A U-shape (car body with background-matching cabin) must stay one
	// component connected through the bottom band.
	mask, contrast, w, h := maskFromStrings([]string{
		"##..##",
		"##..##",
		"######",
	})
	comps := connectedComponents(mask, contrast, w, h)
	if len(comps) != 1 {
		t.Fatalf("U shape split into %d components", len(comps))
	}
	if comps[0].Area != 14 {
		t.Fatalf("U area = %d, want 14", comps[0].Area)
	}
}

func TestConnectedComponentsContrastSum(t *testing.T) {
	mask := []bool{true, true, false, false}
	contrast := []float32{0.2, 0.4, 0.9, 0.9}
	comps := connectedComponents(mask, contrast, 2, 2)
	if len(comps) != 1 {
		t.Fatalf("got %d comps", len(comps))
	}
	if got := comps[0].MeanContrast(); got < 0.299 || got > 0.301 {
		t.Fatalf("mean contrast = %v, want 0.3", got)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	comps := connectedComponents(make([]bool, 9), make([]float32, 9), 3, 3)
	if len(comps) != 0 {
		t.Fatalf("empty mask produced %d components", len(comps))
	}
}

func TestConnectedComponentsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	connectedComponents(make([]bool, 8), make([]float32, 9), 3, 3)
}

// floodCount is a reference flood-fill component counter.
func floodCount(mask []bool, w, h int) int {
	seen := make([]bool, len(mask))
	count := 0
	var stack [][2]int
	for start := range mask {
		if !mask[start] || seen[start] {
			continue
		}
		count++
		stack = stack[:0]
		stack = append(stack, [2]int{start % w, start / w})
		seen[start] = true
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := p[0]+d[0], p[1]+d[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				i := ny*w + nx
				if mask[i] && !seen[i] {
					seen[i] = true
					stack = append(stack, [2]int{nx, ny})
				}
			}
		}
	}
	return count
}

func TestConnectedComponentsMatchesFloodFill(t *testing.T) {
	property := func(bits []bool, wRaw uint8) bool {
		w := int(wRaw)%12 + 1
		h := len(bits) / w
		if h == 0 {
			return true
		}
		mask := bits[:w*h]
		contrast := make([]float32, w*h)
		for i, b := range mask {
			if b {
				contrast[i] = 0.3
			}
		}
		comps := connectedComponents(mask, contrast, w, h)
		if len(comps) != floodCount(mask, w, h) {
			return false
		}
		// Total component area must equal the number of set pixels.
		total := 0
		for _, c := range comps {
			total += c.Area
		}
		set := 0
		for _, b := range mask {
			if b {
				set++
			}
		}
		return total == set
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
