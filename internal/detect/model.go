// Package detect implements the simulated neural-network detectors that
// stand in for YOLOv4, Mask R-CNN and MTCNN (paper Section 4). Detection is
// not a lookup table: frames are rasterised, box-filtered down to the model
// input resolution, corrupted with sensor noise, and then processed by an
// actual image pipeline — background estimation, adaptive thresholding,
// connected components, shape classification and confidence scoring.
// Resolution degradation therefore harms accuracy through the same physical
// mechanisms it does for a CNN: small objects blur below the detection
// threshold, nearby objects merge, and clutter produces false positives.
//
// One behaviour cannot emerge from pixels alone: the paper's Figure 7/8
// anomaly, where the real YOLOv4 is *worse* at 384x384 than at the lower
// 320x320 because of a scale resonance in its anchor grid. We model that as
// a per-model duplicate-detection response curve (Model.DupRes/DupAmp),
// documented in DESIGN.md as a calibrated substitution: the duplicate
// process is deterministic per (frame, object, resolution) and peaks at the
// resonant input size, reproducing the paper's rightward-shifted count
// distribution at 384.
//
// Two execution paths exist and are property-tested against each other:
//
//   - the full-frame path (reference) renders and scans the entire frame;
//   - the patch path (production) evaluates each ground-truth object's
//     local neighbourhood plus a clutter false-positive process, costing
//     O(objects) instead of O(pixels) per frame. Results are cached per
//     (corpus, model, class, resolution), mirroring how the paper reuses
//     model outputs across sample fractions (Section 3.3.2).
package detect

import (
	"fmt"
	"math"

	"smokescreen/internal/scene"
)

// Model is a simulated detector profile. The exported fields form the
// calibration surface; the three built-in profiles are YOLOv4Sim,
// MaskRCNNSim and MTCNNSim.
type Model struct {
	Name string

	// NativeInput is the largest supported input resolution: 608 for
	// YOLOv4, 640 for Mask R-CNN (paper Section 5.1).
	NativeInput int
	// InputMultiple constrains valid input resolutions: YOLOv4 requires
	// multiples of 32, the default Mask R-CNN multiples of 64.
	InputMultiple int

	// Threshold is the confidence cutoff: a detection is reported when its
	// confidence reaches this value (0.7 for car/person, 0.8 for faces).
	Threshold float64

	// Pixel pipeline calibration.
	NSigma      float64 // detection threshold in units of noise sigma
	MinContrast float64 // absolute contrast floor for the threshold
	MinBlobArea int     // smallest component, in model-input pixels

	// Confidence model: logistic responses in blob size and SNR.
	SizeMid       float64 // sqrt(area) at which size confidence is 0.5
	SizeScale     float64 // logistic width of the size response
	ContrastMid   float64 // contrast/threshold ratio at 0.5 confidence
	ContrastScale float64

	// MergeGap is the distance (model-input pixels) under which two
	// same-class objects fuse into one blob.
	MergeGap float64

	// Duplicate-resonance model (one-stage detectors only): at input
	// resolution DupRes the detector double-fires on objects whose largest
	// dimension lies in [DupSizeLo, DupSizeHi] model pixels, with
	// probability DupAmp; neighbouring resolutions get a fraction via a
	// triangular falloff of half-width DupResWidth.
	DupRes      int
	DupResWidth int
	DupSizeLo   float64
	DupSizeHi   float64
	DupAmp      float64

	// FPRate is the expected number of clutter false positives per frame
	// at native input resolution and unit clutter-to-threshold ratio.
	FPRate float64

	// TargetClasses restricts what the model can detect (MTCNN detects
	// faces only); nil means every class.
	TargetClasses []scene.Class
}

// YOLOv4Sim simulates the one-stage YOLOv4 used for UA-DETRAC (and for the
// night-street anomaly study in Figures 7-8): fast, slightly lower
// small-object sensitivity, and the 384x384 scale resonance.
func YOLOv4Sim() *Model {
	return &Model{
		Name:          "yolov4-sim",
		NativeInput:   608,
		InputMultiple: 32,
		Threshold:     0.7,
		NSigma:        2.5,
		MinContrast:   0.04,
		MinBlobArea:   4,
		SizeMid:       11,
		SizeScale:     3.0,
		ContrastMid:   1.25,
		ContrastScale: 0.28,
		MergeGap:      1.25,
		DupRes:        384,
		DupResWidth:   64,
		DupSizeLo:     38,
		DupSizeHi:     95,
		DupAmp:        0.55,
		FPRate:        0.03,
	}
}

// MaskRCNNSim simulates the two-stage Mask R-CNN used for night-street:
// better small-object recall, no anchor resonance (the second stage
// suppresses duplicate proposals), slightly higher per-frame cost.
func MaskRCNNSim() *Model {
	return &Model{
		Name:          "mask-rcnn-sim",
		NativeInput:   640,
		InputMultiple: 64,
		Threshold:     0.7,
		NSigma:        2.2,
		MinContrast:   0.035,
		MinBlobArea:   3,
		SizeMid:       9,
		SizeScale:     2.5,
		ContrastMid:   1.15,
		ContrastScale: 0.3,
		MergeGap:      1.0,
		DupAmp:        0, // two-stage: no duplicate resonance
		FPRate:        0.02,
	}
}

// MTCNNSim simulates the MTCNN face detector used for the image-removal
// prior (threshold 0.8). Faces are tiny, so the profile demands less area
// but more contrast, and it only reports the Face class.
func MTCNNSim() *Model {
	return &Model{
		Name:          "mtcnn-sim",
		NativeInput:   640,
		InputMultiple: 16,
		Threshold:     0.8,
		NSigma:        2.3,
		MinContrast:   0.05,
		MinBlobArea:   2,
		SizeMid:       2.4,
		SizeScale:     0.7,
		ContrastMid:   1.35,
		ContrastScale: 0.25,
		MergeGap:      0.8,
		DupAmp:        0,
		FPRate:        0.005,
		TargetClasses: []scene.Class{scene.Face},
	}
}

// ModelByName resolves the built-in model profiles for CLIs and queries.
func ModelByName(name string) (*Model, error) {
	switch name {
	case "yolov4", "yolov4-sim":
		return YOLOv4Sim(), nil
	case "mask-rcnn", "mask-rcnn-sim", "maskrcnn":
		return MaskRCNNSim(), nil
	case "mtcnn", "mtcnn-sim":
		return MTCNNSim(), nil
	}
	return nil, fmt.Errorf("detect: unknown model %q", name)
}

// ValidResolution reports whether p is an input resolution this model
// accepts: a positive multiple of InputMultiple no larger than NativeInput.
func (m *Model) ValidResolution(p int) bool {
	return p > 0 && p <= m.NativeInput && p%m.InputMultiple == 0
}

// Resolutions returns the model's n largest valid input resolutions in
// descending order, uniformly spaced — the paper's intervention-candidate
// design generates ten (Section 3.3.2).
func (m *Model) Resolutions(n int) []int {
	if n <= 0 {
		return nil
	}
	var all []int
	for p := m.InputMultiple; p <= m.NativeInput; p += m.InputMultiple {
		all = append(all, p)
	}
	if len(all) <= n {
		out := make([]int, len(all))
		for i, p := range all {
			out[len(all)-1-i] = p
		}
		return out
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		// Uniform positions from the largest down to the smallest.
		idx := len(all) - 1 - i*(len(all)-1)/(n-1)
		out = append(out, all[idx])
	}
	return out
}

// CanDetect reports whether the model reports objects of class c.
func (m *Model) CanDetect(c scene.Class) bool {
	if len(m.TargetClasses) == 0 {
		return true
	}
	for _, tc := range m.TargetClasses {
		if tc == c {
			return true
		}
	}
	return false
}

// dupProbability returns the probability that an object with largest
// model-pixel dimension size is detected twice at input resolution p. The
// resonance only manifests in low-SNR scenes (the paper observed it for
// YOLOv4 on *night*-street, not on daytime UA-DETRAC with the same model),
// so bright scenes attenuate it heavily.
func (m *Model) dupProbability(v *scene.Video, p int, size float64) float64 {
	return m.dupProbabilityRaw(float64(v.Config.Lighting.NoiseSigma), p, size)
}

// dupProbabilityRaw is dupProbability for callers without a scene.Video
// (frames received over the wire): the scene's native noise sigma carries
// the day/night information.
func (m *Model) dupProbabilityRaw(nativeNoiseSigma float64, p int, size float64) float64 {
	if m.DupAmp == 0 {
		return 0
	}
	if size < m.DupSizeLo || size > m.DupSizeHi {
		return 0
	}
	d := math.Abs(float64(p - m.DupRes))
	if d >= float64(m.DupResWidth) {
		return 0
	}
	prob := m.DupAmp * (1 - d/float64(m.DupResWidth))
	if nativeNoiseSigma < 0.03 {
		prob *= 0.1 // daytime scenes: the confusion band barely fires
	}
	return prob
}

// logistic is the shared squashing function of the confidence model.
func logistic(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// confidence combines the blob's size and signal-to-threshold responses.
func (m *Model) confidence(area int, meanContrast, threshold float64) float64 {
	sizeConf := logistic((math.Sqrt(float64(area)) - m.SizeMid) / m.SizeScale)
	snr := meanContrast / threshold
	contrastConf := logistic((snr - m.ContrastMid) / m.ContrastScale)
	return sizeConf * contrastConf
}
