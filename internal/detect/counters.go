package detect

import (
	"sync/atomic"

	"smokescreen/internal/scene"
)

// This file holds the package's cumulative invocation counter and the
// registry through which the detector-output column store
// (internal/outputs) participates in the detect package's cache lifecycle
// without an import cycle: detect owns the physical caches (rendered
// degraded frames, downsampled backgrounds) and the counter; outputs owns
// the per-frame detection columns and registers reset/evict/stats hooks
// here so the existing ResetCaches/EvictVideo/Stats entry points keep
// covering every detector-derived artifact.

// invocationCount counts physical model invocations — frame evaluations
// through DetectFrame (patch path) or DetectPixels (full-frame path) —
// for the profile-generation time experiment (Section 5.3.1) and the
// daemon's /metrics. A lock-free atomic keeps the counter off the
// frame-evaluation hot path: under parallel profile generation every
// worker pool bumps it, and a mutex here would serialize them.
var invocationCount atomic.Int64

// Invocations returns the total number of model frame evaluations
// performed so far. Unlike the pre-column-store accounting, which counted
// at the cache layer, this counts at the detector itself: every physical
// evaluation, regardless of which cache (or no cache) requested it.
func Invocations() int64 {
	return invocationCount.Load()
}

func countInvocation() {
	invocationCount.Add(1)
}

// cacheHook is the lifecycle interface an external detector-output cache
// registers. All methods must be safe for concurrent use.
type cacheHook struct {
	// reset drops every cached entry.
	reset func()
	// evict drops entries derived from v and returns accounted bytes freed.
	evict func(v *scene.Video) int64
	// fill populates the output-series fields of a CacheStats report.
	fill func(s *CacheStats)
}

var (
	hooks     atomic.Pointer[cacheHook]
	viewHooks atomic.Pointer[cacheHook]
)

// RegisterOutputCache wires an external detector-output cache into
// ResetCaches, EvictVideo, and Stats. internal/outputs calls this from its
// package init; at most one cache is supported (later registrations
// replace earlier ones).
func RegisterOutputCache(reset func(), evict func(v *scene.Video) int64, fill func(s *CacheStats)) {
	hooks.Store(&cacheHook{reset: reset, evict: evict, fill: fill})
}

// RegisterViewCache wires the degraded-view cache (internal/degrade's
// per-(corpus, view spec) derived videos) into ResetCaches, EvictVideo,
// and Stats, mirroring RegisterOutputCache. Its evict hook runs before the
// base caches are dropped and is expected to call EvictVideo recursively
// on each derived view it releases, so that the view's own detector
// outputs, backgrounds and rendered frames are freed in the same sweep
// (views carry no sub-views, so the recursion is one level deep).
func RegisterViewCache(reset func(), evict func(v *scene.Video) int64, fill func(s *CacheStats)) {
	viewHooks.Store(&cacheHook{reset: reset, evict: evict, fill: fill})
}

// ResetCaches clears every detector-derived cache — the output column
// store (via its registered hook), downsampled backgrounds, the render
// cache — and the invocation counter. Tests and the
// profile-generation-time experiment use it to measure cold-cache
// behaviour; long-running deployments that want to bound memory should
// prefer the per-corpus EvictVideo hook.
func ResetCaches() {
	if h := viewHooks.Load(); h != nil && h.reset != nil {
		h.reset()
	}
	if h := hooks.Load(); h != nil && h.reset != nil {
		h.reset()
	}
	evictBackgrounds(nil)
	resetRenderCache()
	resetDelta()
	invocationCount.Store(0)
}

// EvictVideo drops every cached artifact derived from the given corpus —
// output columns, downsampled backgrounds, rendered degraded frames — and
// returns the number of accounted bytes freed. It is the memory-bounding
// hook for long-running fleet workloads: when a camera's corpus rotates
// out of the query window, evict it instead of resetting every cache.
// Concurrent output reads for the same corpus simply recompute.
func EvictVideo(v *scene.Video) int64 {
	var freed int64
	if h := viewHooks.Load(); h != nil && h.evict != nil {
		freed += h.evict(v)
	}
	if h := hooks.Load(); h != nil && h.evict != nil {
		freed += h.evict(v)
	}
	freed += evictBackgrounds(v)
	freed += evictRenders(v)
	freed += evictDeltaAccounts(v)
	return freed
}

// CacheStats is a byte-accounted size report of the detector-derived
// in-process caches: the output column store's series plus the detect
// package's own background and render caches.
type CacheStats struct {
	// FullSeries / FullBytes cover fully materialised per-corpus output
	// columns; SparseSeries / SparseEntries / SparseBytes cover partially
	// evaluated ones. Both are filled by the registered output cache.
	FullSeries    int
	FullBytes     int64
	SparseSeries  int
	SparseEntries int
	SparseBytes   int64
	// BackgroundImages / BackgroundBytes cover the downsampled static
	// backgrounds cached by the full-frame path: 4 bytes per pixel.
	BackgroundImages int
	BackgroundBytes  int64
	// RenderFrames / RenderBytes cover the degraded-frame render cache
	// (4 bytes per pixel plus per-entry overhead); RenderHits/RenderMisses
	// are its cumulative lookup counters.
	RenderFrames int
	RenderBytes  int64
	RenderHits   int64
	RenderMisses int64
	// DeltaTables / DeltaBytes cover the bounded-mode fragility accounts
	// kept per (video, model, resolution); the counters are the cumulative
	// delta-detection effectiveness totals (see DeltaCounters).
	DeltaTables           int
	DeltaBytes            int64
	DeltaTilesReused      int64
	DeltaTilesRedetected  int64
	DeltaCandidatesReused int64
	// ViewVideos / ViewBytes cover the degraded-view cache: derived
	// per-(corpus, view spec) videos and their lazily materialized rasters
	// (transformed backgrounds, integral tables, occlusion masks). Filled
	// by the registered view cache.
	ViewVideos int
	ViewBytes  int64
}

// perEntryOverhead approximates the fixed cost of one cache entry: the
// key (pointer + string header + ints) plus map bucket overhead. Shared
// with the render cache and the outputs column store so byte accounting
// is uniform across the detector caches.
const perEntryOverhead = 96

// PerEntryOverhead exposes the accounting constant to the outputs column
// store (and its tests) so every detector cache reports comparable bytes.
const PerEntryOverhead = perEntryOverhead

// TotalBytes returns the total accounted size of all detector caches.
func (s CacheStats) TotalBytes() int64 {
	return s.FullBytes + s.SparseBytes + s.BackgroundBytes + s.RenderBytes + s.DeltaBytes + s.ViewBytes
}

// Stats reports the current size of the detector caches. Fleet deployments
// poll it to decide when to evict retired corpora (see EvictVideo); the
// caches are otherwise unbounded (render cache aside), which is the right
// default for experiment reruns but not for a long-running service.
func Stats() CacheStats {
	var s CacheStats
	if h := hooks.Load(); h != nil && h.fill != nil {
		h.fill(&s)
	}
	if h := viewHooks.Load(); h != nil && h.fill != nil {
		h.fill(&s)
	}
	n, bytes := backgroundStats()
	s.BackgroundImages = n
	s.BackgroundBytes = bytes
	s.RenderFrames, s.RenderBytes, s.RenderHits, s.RenderMisses = renderStats()
	s.DeltaTables, s.DeltaBytes = deltaAccountStats()
	dc := DeltaCounters()
	s.DeltaTilesReused = dc.TilesReused
	s.DeltaTilesRedetected = dc.TilesRedetected
	s.DeltaCandidatesReused = dc.CandidatesReused
	return s
}
