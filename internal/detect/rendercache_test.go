package detect

import (
	"testing"

	"smokescreen/internal/scene"
)

// cacheTestVideo builds a tiny corpus for cache accounting tests.
func cacheTestVideo(t *testing.T, name string, seed uint64) *scene.Video {
	t.Helper()
	cfg := scene.Config{
		Name: name, Width: 320, Height: 320, NumFrames: 6, Seed: seed,
		Lighting: scene.Lighting{BackgroundTop: 0.6, BackgroundBottom: 0.7, NoiseSigma: 0.01},
		CarRate:  0.5, CarLifetime: 4, CarMinW: 30, CarMaxW: 50, CarContrast: 0.3,
		PersonLifetime: 4, BusyFactor: 1, RegimeLength: 5, LaneYs: []int{160},
	}
	v, err := scene.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRenderCacheHitsAndIdentity checks that the cached full-frame path is
// detection-identical to the uncached one, and that hit/miss counters move
// as expected.
func TestRenderCacheHitsAndIdentity(t *testing.T) {
	ResetCaches()
	prevBudget := RenderCacheBudget()
	t.Cleanup(func() {
		SetRenderCacheBudget(prevBudget)
		ResetCaches()
	})

	v := cacheTestVideo(t, "render-hit", 51)
	m := YOLOv4Sim()

	// Uncached reference.
	SetRenderCacheBudget(0)
	var want [][]Detection
	for i := 0; i < v.NumFrames(); i++ {
		want = append(want, m.DetectFrameFull(v, i, 160))
	}

	// Cached: first pass misses, second pass hits, both identical to the
	// uncached reference.
	SetRenderCacheBudget(DefaultRenderCacheBudget)
	resetRenderCache()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < v.NumFrames(); i++ {
			got := m.DetectFrameFull(v, i, 160)
			if len(got) != len(want[i]) {
				t.Fatalf("pass %d frame %d: %d detections, want %d", pass, i, len(got), len(want[i]))
			}
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("pass %d frame %d: detection %d = %+v, want %+v",
						pass, i, j, got[j], want[i][j])
				}
			}
		}
	}
	_, _, hits, misses := renderStats()
	if misses != int64(v.NumFrames()) {
		t.Fatalf("misses = %d, want %d", misses, v.NumFrames())
	}
	if hits != int64(v.NumFrames()) {
		t.Fatalf("hits = %d, want %d", hits, v.NumFrames())
	}
}

// TestRenderCacheBudgetEvicts checks LRU eviction under a budget that fits
// only a few frames, and that accounting never exceeds the budget.
func TestRenderCacheBudgetEvicts(t *testing.T) {
	ResetCaches()
	prevBudget := RenderCacheBudget()
	t.Cleanup(func() {
		SetRenderCacheBudget(prevBudget)
		ResetCaches()
	})

	v := cacheTestVideo(t, "render-budget", 52)
	m := YOLOv4Sim()

	perFrame := int64(160*160)*4 + perEntryOverhead
	SetRenderCacheBudget(3 * perFrame)
	for i := 0; i < v.NumFrames(); i++ {
		m.DetectFrameFull(v, i, 160)
	}
	frames, bytes, _, _ := renderStats()
	if frames != 3 {
		t.Fatalf("cache holds %d frames, want 3 under budget", frames)
	}
	if bytes > 3*perFrame {
		t.Fatalf("cache bytes %d exceed budget %d", bytes, 3*perFrame)
	}

	// The retained frames are the most recently used: re-detecting the last
	// three frames must be all hits.
	_, _, hits0, _ := renderStats()
	for i := v.NumFrames() - 3; i < v.NumFrames(); i++ {
		m.DetectFrameFull(v, i, 160)
	}
	_, _, hits1, misses := renderStats()
	if hits1-hits0 != 3 {
		t.Fatalf("re-detecting recent frames hit %d times, want 3 (misses %d)", hits1-hits0, misses)
	}

	// Frame 0 was evicted: detecting it again must miss.
	_, _, _, missesBefore := renderStats()
	m.DetectFrameFull(v, 0, 160)
	_, _, _, missesAfter := renderStats()
	if missesAfter-missesBefore != 1 {
		t.Fatalf("evicted frame did not miss (misses delta %d)", missesAfter-missesBefore)
	}
}

// TestRenderCacheEvictVideo checks per-corpus eviction leaves other corpora
// cached.
func TestRenderCacheEvictVideo(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	a := cacheTestVideo(t, "render-evict-a", 53)
	b := cacheTestVideo(t, "render-evict-b", 54)
	m := YOLOv4Sim()
	m.DetectFrameFull(a, 0, 160)
	m.DetectFrameFull(b, 0, 160)

	if frames, _, _, _ := renderStats(); frames != 2 {
		t.Fatalf("cache holds %d frames, want 2", frames)
	}
	freed := evictRenders(a)
	if freed == 0 {
		t.Fatal("evicting corpus a freed nothing")
	}
	frames, _, _, _ := renderStats()
	if frames != 1 {
		t.Fatalf("cache holds %d frames after evicting a, want 1", frames)
	}
}

// TestRenderCacheDistinguishesNoise pins the cache key: the same frame at
// the same resolution under a different noise sigma (a noised corpus view
// from degrade.EffectiveVideo) must not be served from the clean render.
func TestRenderCacheDistinguishesNoise(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	v := cacheTestVideo(t, "render-noise", 55)
	noised := v.WithNoise(0.08)
	m := YOLOv4Sim()

	m.DetectFrameFull(v, 0, 160)
	m.DetectFrameFull(noised, 0, 160)
	if frames, _, _, _ := renderStats(); frames != 2 {
		t.Fatalf("cache holds %d frames, want 2 (clean + noised views)", frames)
	}
	_, _, hits, _ := renderStats()
	if hits != 0 {
		t.Fatalf("noised view hit the clean render (hits = %d)", hits)
	}
}

// TestSetRenderCacheBudgetZeroDisables verifies budget 0 drops entries and
// bypasses the cache.
func TestSetRenderCacheBudgetZeroDisables(t *testing.T) {
	ResetCaches()
	prevBudget := RenderCacheBudget()
	t.Cleanup(func() {
		SetRenderCacheBudget(prevBudget)
		ResetCaches()
	})

	v := cacheTestVideo(t, "render-disable", 56)
	m := YOLOv4Sim()
	m.DetectFrameFull(v, 0, 160)
	if frames, _, _, _ := renderStats(); frames != 1 {
		t.Fatalf("warm-up did not cache (frames = %d)", frames)
	}
	SetRenderCacheBudget(0)
	if frames, bytes, _, _ := renderStats(); frames != 0 || bytes != 0 {
		t.Fatalf("disabling kept %d frames / %d bytes", frames, bytes)
	}
	m.DetectFrameFull(v, 0, 160)
	if frames, _, _, _ := renderStats(); frames != 0 {
		t.Fatal("disabled cache still stored a frame")
	}
}
