package detect

import (
	"reflect"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// TestQuantizedCloseToFloat pins the quantized pipeline's accuracy: over a
// real corpus at a high and a low resolution, per-frame class counts agree
// with the float pipeline on the overwhelming majority of frames. The
// pipelines are not bit-equal — quantization moves marginal detections
// near the confidence threshold — but the disagreement must stay small or
// the A/B toggle would not be an apples-to-apples comparison.
func TestQuantizedCloseToFloat(t *testing.T) {
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	const n = 60
	for _, p := range []int{608, 160} {
		var absErr, total int
		for i := 0; i < n; i++ {
			SetQuantized(false)
			fc := CountClass(m.DetectFrame(v, i, p), scene.Car)
			SetQuantized(true)
			qc := CountClass(m.DetectFrame(v, i, p), scene.Car)
			SetQuantized(false)
			d := qc - fc
			if d < 0 {
				d = -d
			}
			absErr += d
			total += fc
		}
		if total == 0 {
			t.Fatalf("p=%d: float pipeline found no cars in %d frames", p, n)
		}
		if float64(absErr) > 0.1*float64(total) {
			t.Errorf("p=%d: quantized deviates on %d counts of %d total", p, absErr, total)
		}
	}
}

// TestQuantizedDetectsStrongObject pins that an unambiguous object is
// detected identically by both pipelines, including blob geometry within
// a pixel.
func TestQuantizedDetectsStrongObject(t *testing.T) {
	cfg := deltaTestConfig(1)
	v := scene.NewVideo(cfg, []scene.Frame{{Index: 0, Objects: []scene.Object{
		{ID: 1, Class: scene.Car, BBox: raster.RectWH(200, 300, 80, 40), Intensity: 0.3},
	}}})
	m := YOLOv4Sim()
	for _, p := range []int{608, 320, 160} {
		SetQuantized(false)
		fd := m.DetectFrame(v, 0, p)
		SetQuantized(true)
		qd := m.DetectFrame(v, 0, p)
		SetQuantized(false)
		if CountClass(fd, scene.Car) != 1 || CountClass(qd, scene.Car) != 1 {
			t.Fatalf("p=%d: strong car found %d (float) / %d (quant) times",
				p, CountClass(fd, scene.Car), CountClass(qd, scene.Car))
		}
		fb, qb := fd[0].BBox, qd[0].BBox
		for _, d := range []int{fb.MinX - qb.MinX, fb.MinY - qb.MinY, fb.MaxX - qb.MaxX, fb.MaxY - qb.MaxY} {
			if d < -1 || d > 1 {
				t.Fatalf("p=%d: blob drifted beyond 1px: float %+v quant %+v", p, fb, qb)
			}
		}
	}
}

// TestQuantizedDeterministicAcrossParallelism pins that the quantized
// patch path produces identical detections at kernel parallelism 1, 2, 4
// and 8: integer accumulation has no worker-count-dependent rounding.
func TestQuantizedDeterministicAcrossParallelism(t *testing.T) {
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	withQuantized(t, true)
	prev := raster.Parallelism()
	t.Cleanup(func() { raster.SetParallelism(prev) })

	raster.SetParallelism(1)
	var ref [][]Detection
	for i := 0; i < 8; i++ {
		ref = append(ref, m.DetectFrame(v, i, 608))
	}
	for _, workers := range []int{2, 4, 8} {
		raster.SetParallelism(workers)
		for i := 0; i < 8; i++ {
			if got := m.DetectFrame(v, i, 608); !reflect.DeepEqual(got, ref[i]) {
				t.Fatalf("frame %d differs at parallelism %d", i, workers)
			}
		}
	}
}
