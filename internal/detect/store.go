package detect

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"smokescreen/internal/scene"
)

// Disk-backed persistence for detector output series. Computing the full
// output series of a corpus at ten resolutions costs minutes of simulated
// inference; the series are deterministic functions of (corpus seed,
// model, class, resolution), so they can be safely persisted and re-used
// across processes. cmd/smokebench exposes this via -cache.
//
// File format (little-endian):
//
//	magic "SOUT" | u16 version | name | seed | W | H | N | model | class | p
//	| kind byte | payload
//
// kind 0 (full): N varint counts. kind 1 (sparse): varint m, then m x
// (varint frame index, varint count) — partially evaluated series from
// lazy OutputsAt calls are persisted too. Counts are small non-negative
// integers, so a 19k-frame series costs ~20 KB.

const (
	storeMagic   = "SOUT"
	storeVersion = 1
)

// storeFileName derives a stable file name for a cache key.
func storeFileName(v *scene.Video, model string, class scene.Class, p int) string {
	return fmt.Sprintf("%s-%x-%s-%s-%d.sout", v.Config.Name, v.Config.Seed, model, class, p)
}

// SaveOutputs persists every fully-computed output series currently in the
// in-memory cache for the given corpus into dir (created if needed). It
// returns the number of series written.
func SaveOutputs(v *scene.Video, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	outputMu.Lock()
	type entry struct {
		key    outputKey
		series []float64       // full series (nil when sparse)
		vals   map[int]float64 // sparse values (nil when full)
	}
	var entries []entry
	full := map[outputKey]bool{}
	for key, series := range outputCache {
		if key.video == v {
			entries = append(entries, entry{key: key, series: series})
			full[key] = true
		}
	}
	outputMu.Unlock()
	sparseMu.Lock()
	for key, sp := range sparseCache {
		if key.video != v || full[key] {
			continue
		}
		sp.mu.Lock()
		vals := make(map[int]float64, len(sp.vals))
		for i, x := range sp.vals {
			vals[i] = x
		}
		sp.mu.Unlock()
		if len(vals) > 0 {
			entries = append(entries, entry{key: key, vals: vals})
		}
	}
	sparseMu.Unlock()

	written := 0
	for _, e := range entries {
		path := filepath.Join(dir, storeFileName(v, e.key.model, e.key.class, e.key.p))
		if err := writeSeries(path, v, e.key, e.series, e.vals); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// WarmOutputs loads every persisted series in dir that matches the corpus
// into the in-memory cache, returning the number loaded. Mismatched or
// corrupt files are skipped (a stale cache must never poison results), and
// reported through the returned skipped count.
func WarmOutputs(v *scene.Video, dir string) (loaded, skipped int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	for _, entry := range entries {
		if entry.IsDir() || filepath.Ext(entry.Name()) != ".sout" {
			continue
		}
		key, series, vals, readErr := readSeries(filepath.Join(dir, entry.Name()), v)
		if readErr != nil {
			skipped++
			continue
		}
		if series != nil {
			outputMu.Lock()
			if _, ok := outputCache[key]; !ok {
				outputCache[key] = series
				loaded++
			}
			outputMu.Unlock()
			continue
		}
		sparseMu.Lock()
		sp, ok := sparseCache[key]
		if !ok {
			sp = &sparse{vals: make(map[int]float64)}
			sparseCache[key] = sp
		}
		sparseMu.Unlock()
		sp.mu.Lock()
		for i, x := range vals {
			sp.vals[i] = x
		}
		sp.mu.Unlock()
		loaded++
	}
	return loaded, skipped, nil
}

func writeSeries(path string, v *scene.Video, key outputKey, series []float64, vals map[int]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	buf := make([]byte, 0, 128)
	buf = append(buf, storeMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, storeVersion)
	buf = appendStoreString(buf, v.Config.Name)
	buf = binary.AppendUvarint(buf, v.Config.Seed)
	buf = binary.AppendUvarint(buf, uint64(v.Config.Width))
	buf = binary.AppendUvarint(buf, uint64(v.Config.Height))
	buf = binary.AppendUvarint(buf, uint64(v.NumFrames()))
	buf = appendStoreString(buf, key.model)
	buf = append(buf, byte(key.class))
	buf = binary.AppendUvarint(buf, uint64(key.p))
	if series != nil {
		buf = append(buf, 0) // kind: full
	} else {
		buf = append(buf, 1) // kind: sparse
		buf = binary.AppendUvarint(buf, uint64(len(vals)))
	}
	if _, err := w.Write(buf); err != nil {
		f.Close()
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeCount := func(x float64) error {
		if x < 0 || x != float64(uint64(x)) {
			return fmt.Errorf("detect: series value %v is not a count", x)
		}
		n := binary.PutUvarint(scratch[:], uint64(x))
		_, err := w.Write(scratch[:n])
		return err
	}
	if series != nil {
		for _, x := range series {
			if err := writeCount(x); err != nil {
				f.Close()
				return err
			}
		}
	} else {
		// Deterministic order keeps files reproducible.
		idx := make([]int, 0, len(vals))
		for i := range vals {
			idx = append(idx, i)
		}
		sortInts(idx)
		for _, i := range idx {
			n := binary.PutUvarint(scratch[:], uint64(i))
			if _, err := w.Write(scratch[:n]); err != nil {
				f.Close()
				return err
			}
			if err := writeCount(vals[i]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func readSeries(path string, v *scene.Video) (outputKey, []float64, map[int]float64, error) {
	var key outputKey
	f, err := os.Open(path)
	if err != nil {
		return key, nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	head := make([]byte, len(storeMagic)+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return key, nil, nil, err
	}
	if string(head[:4]) != storeMagic {
		return key, nil, nil, errors.New("detect: bad store magic")
	}
	if binary.LittleEndian.Uint16(head[4:]) != storeVersion {
		return key, nil, nil, errors.New("detect: unsupported store version")
	}
	name, err := readStoreString(r)
	if err != nil {
		return key, nil, nil, err
	}
	fields := [4]uint64{}
	for i := range fields {
		if fields[i], err = binary.ReadUvarint(r); err != nil {
			return key, nil, nil, err
		}
	}
	seed, width, height, n := fields[0], int(fields[1]), int(fields[2]), int(fields[3])
	if name != v.Config.Name || seed != v.Config.Seed || width != v.Config.Width ||
		height != v.Config.Height || n != v.NumFrames() {
		return key, nil, nil, errors.New("detect: store does not match the corpus")
	}
	model, err := readStoreString(r)
	if err != nil {
		return key, nil, nil, err
	}
	classByte, err := r.ReadByte()
	if err != nil {
		return key, nil, nil, err
	}
	if classByte >= scene.NumClasses {
		return key, nil, nil, errors.New("detect: corrupt class")
	}
	p64, err := binary.ReadUvarint(r)
	if err != nil {
		return key, nil, nil, err
	}
	kind, err := r.ReadByte()
	if err != nil {
		return key, nil, nil, err
	}
	key = outputKey{video: v, model: model, class: scene.Class(classByte), p: int(p64)}
	switch kind {
	case 0:
		series := make([]float64, n)
		for i := range series {
			x, err := binary.ReadUvarint(r)
			if err != nil {
				return key, nil, nil, fmt.Errorf("detect: truncated series at %d: %w", i, err)
			}
			series[i] = float64(x)
		}
		if _, err := r.ReadByte(); err != io.EOF {
			return key, nil, nil, errors.New("detect: trailing data in store file")
		}
		return key, series, nil, nil
	case 1:
		m, err := binary.ReadUvarint(r)
		if err != nil || m > uint64(n) {
			return key, nil, nil, errors.New("detect: corrupt sparse count")
		}
		vals := make(map[int]float64, m)
		for j := uint64(0); j < m; j++ {
			idx, err := binary.ReadUvarint(r)
			if err != nil || idx >= uint64(n) {
				return key, nil, nil, errors.New("detect: corrupt sparse index")
			}
			x, err := binary.ReadUvarint(r)
			if err != nil {
				return key, nil, nil, errors.New("detect: truncated sparse series")
			}
			vals[int(idx)] = float64(x)
		}
		if _, err := r.ReadByte(); err != io.EOF {
			return key, nil, nil, errors.New("detect: trailing data in store file")
		}
		return key, nil, vals, nil
	default:
		return key, nil, nil, errors.New("detect: unknown store kind")
	}
}

func appendStoreString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readStoreString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<12 {
		return "", errors.New("detect: corrupt string length")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return "", err
	}
	return string(out), nil
}
