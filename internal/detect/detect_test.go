package detect

import (
	"math"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

func TestClassifyBlob(t *testing.T) {
	cases := []struct {
		name string
		bbox raster.Rect
		area int
		want scene.Class
	}{
		{"wide box car", raster.RectWH(0, 0, 40, 20), 760, scene.Car},
		{"tall ellipse person", raster.RectWH(0, 0, 10, 26), 204, scene.Person}, // fill ~0.78
		{"solid tall sliver is a clipped car", raster.RectWH(0, 0, 4, 30), 120, scene.Car},
		{"tiny roundish face", raster.RectWH(0, 0, 4, 4), 12, scene.Face},
		{"squarish solid medium car", raster.RectWH(0, 0, 10, 10), 92, scene.Car},
		{"squarish sparse medium", raster.RectWH(0, 0, 8, 8), 20, scene.Person},
	}
	for _, c := range cases {
		if got := classifyBlob(c.bbox, c.area); got != c.want {
			t.Fatalf("%s: classified %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSingleClassModelClassifiesTarget(t *testing.T) {
	mt := MTCNNSim()
	if got := mt.classify(raster.RectWH(0, 0, 40, 20), 700); got != scene.Face {
		t.Fatalf("MTCNN classified %v, want face", got)
	}
}

func TestChebyshevGap(t *testing.T) {
	a := fRect{0, 0, 10, 10}
	cases := []struct {
		b    fRect
		want float64
	}{
		{fRect{5, 5, 15, 15}, 0},   // overlapping
		{fRect{12, 0, 20, 10}, 2},  // 2 apart horizontally
		{fRect{0, 13, 10, 20}, 3},  // 3 apart vertically
		{fRect{14, 12, 20, 20}, 4}, // diagonal: max(4, 2)
	}
	for _, c := range cases {
		if got := chebyshevGap(a, c.b); got != c.want {
			t.Fatalf("gap(%+v) = %v, want %v", c.b, got, c.want)
		}
	}
	if got := chebyshevGap(a, fRect{12, 0, 20, 10}); got != chebyshevGap(fRect{12, 0, 20, 10}, a) {
		t.Fatalf("gap not symmetric: %v", got)
	}
}

func TestDetectFrameDeterministic(t *testing.T) {
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	for i := 0; i < 20; i++ {
		a := m.DetectFrame(v, i, 160)
		b := m.DetectFrame(v, i, 160)
		if len(a) != len(b) {
			t.Fatalf("frame %d: nondeterministic count", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("frame %d: detection %d differs", i, j)
			}
		}
	}
}

func TestDetectFrameInvalidResolutionPanics(t *testing.T) {
	v := dataset.MustLoad("small")
	defer func() {
		if recover() == nil {
			t.Fatal("invalid resolution did not panic")
		}
	}()
	YOLOv4Sim().DetectFrame(v, 0, 100)
}

func TestHighResolutionRecall(t *testing.T) {
	// At native resolution on the daytime corpus, most ground-truth cars
	// must be found (merged overlaps allowed), and the count never exceeds
	// the ground truth by much.
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	var gt, det float64
	for i := 0; i < 400; i++ {
		gt += float64(v.Frame(i).Count(scene.Car))
		det += float64(CountClass(m.DetectFrame(v, i, m.NativeInput), scene.Car))
	}
	if gt == 0 {
		t.Fatal("corpus has no cars")
	}
	recall := det / gt
	if recall < 0.7 || recall > 1.15 {
		t.Fatalf("native-resolution car recall = %v", recall)
	}
}

func TestLowResolutionDegrades(t *testing.T) {
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	count := func(p int) float64 {
		var sum float64
		for i := 0; i < 300; i++ {
			sum += float64(CountClass(m.DetectFrame(v, i, p), scene.Car))
		}
		return sum
	}
	native := count(m.NativeInput)
	tiny := count(32)
	if tiny >= native*0.5 {
		t.Fatalf("32px count %v not well below native %v", tiny, native)
	}
}

func TestMergingAtLowResolution(t *testing.T) {
	// Two cars bumper-to-bumper: separable at native scale, fused when the
	// gap shrinks below MergeGap model pixels.
	cfg := scene.Config{
		Name: "merge-test", Width: 640, Height: 640, NumFrames: 1, Seed: 9,
		Lighting: scene.Lighting{BackgroundTop: 0.6, BackgroundBottom: 0.7, NoiseSigma: 0.01},
		CarRate:  0, CarLifetime: 10, CarMinW: 40, CarMaxW: 41, CarContrast: 0.3,
		PersonRate: 0, PersonLifetime: 10,
		BusyFactor: 1, RegimeLength: 10, LaneYs: []int{320},
	}
	v, err := scene.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inject two cars with a 4-native-pixel gap by hand.
	frame := v.Frame(0)
	frame.Objects = []scene.Object{
		{ID: 1, Class: scene.Car, BBox: raster.RectWH(200, 300, 80, 40), Intensity: 0.3},
		{ID: 2, Class: scene.Car, BBox: raster.RectWH(284, 300, 80, 40), Intensity: 0.3},
	}
	m := YOLOv4Sim()
	// At 608 the gap is ~3.8 model pixels: above MergeGap, two cars.
	if got := CountClass(m.DetectFrame(v, 0, 608), scene.Car); got != 2 {
		t.Fatalf("native resolution merged a 4px gap: %d cars", got)
	}
	// At 160 (scale 0.25) the gap is 1 model pixel, under MergeGap, and
	// the cars are still comfortably detectable -> one blob.
	if got := CountClass(m.DetectFrame(v, 0, 160), scene.Car); got != 1 {
		t.Fatalf("low resolution did not merge: %d cars", got)
	}
}

func TestDuplicateResonanceAtAnomalousResolution(t *testing.T) {
	// YOLOv4 on night-street at 384 must overcount relative to both 608
	// and 320 — the paper's Figure 7 anomaly.
	v := dataset.MustLoad("night-street")
	m := YOLOv4Sim()
	count := func(p int) float64 {
		var sum float64
		for i := 0; i < 800; i++ {
			sum += float64(CountClass(m.DetectFrame(v, i, p), scene.Car))
		}
		return sum
	}
	at608 := count(608)
	at384 := count(384)
	at320 := count(320)
	if at384 <= at608*1.05 {
		t.Fatalf("no overcount at 384: %v vs %v at 608", at384, at608)
	}
	if at384 <= at320*1.05 {
		t.Fatalf("384 (%v) not worse than 320 (%v)", at384, at320)
	}
}

func TestPatchPathAgreesWithFullFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("full-frame reference is slow")
	}
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	for _, p := range []int{320, 160} {
		var patchSum, fullSum, absDiff float64
		const n = 60
		for i := 0; i < n; i++ {
			pc := float64(CountClass(m.DetectFrame(v, i, p), scene.Car))
			fc := float64(CountClass(m.DetectFrameFull(v, i, p), scene.Car))
			patchSum += pc
			fullSum += fc
			absDiff += math.Abs(pc - fc)
		}
		if patchSum == 0 && fullSum == 0 {
			t.Fatalf("p=%d: both paths found nothing", p)
		}
		// The two paths share physics but differ in noise realisation and
		// background handling; mean counts must agree within 25% and the
		// mean per-frame difference must stay below one object.
		if math.Abs(patchSum-fullSum) > 0.25*math.Max(patchSum, fullSum) {
			t.Fatalf("p=%d: patch mean %v vs full-frame mean %v", p, patchSum/n, fullSum/n)
		}
		if absDiff/n > 1.0 {
			t.Fatalf("p=%d: mean per-frame deviation %v", p, absDiff/n)
		}
	}
}

func TestFalsePositivesBounded(t *testing.T) {
	// FP counts must be tiny relative to real objects on both corpora.
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()
	var fp int
	for i := 0; i < 500; i++ {
		fp += len(m.falsePositives(v, i, 608, effectiveNoise(float64(v.Config.Lighting.NoiseSigma), 1), m.threshold(effectiveNoise(float64(v.Config.Lighting.NoiseSigma), 1))))
	}
	if fp > 50 {
		t.Fatalf("%d false positives in 500 frames", fp)
	}
}

func TestCountClass(t *testing.T) {
	ds := []Detection{
		{Class: scene.Car}, {Class: scene.Person}, {Class: scene.Car},
	}
	if CountClass(ds, scene.Car) != 2 || CountClass(ds, scene.Person) != 1 || CountClass(ds, scene.Face) != 0 {
		t.Fatal("CountClass miscounted")
	}
}

func TestDebugEvalRuns(t *testing.T) {
	v := dataset.MustLoad("small")
	lines := DebugEval(YOLOv4Sim(), v, 3, 160)
	if v.Frame(3).Count(scene.Car)+v.Frame(3).Count(scene.Person) > 0 && len(lines) == 0 {
		t.Fatal("DebugEval returned nothing for a populated frame")
	}
}
