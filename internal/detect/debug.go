package detect

import (
	"fmt"
	"math"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// DebugEval exposes per-object candidate evaluation for calibration
// debugging. Not part of the public surface.
func DebugEval(m *Model, v *scene.Video, i, p int) []string {
	cfg := &v.Config
	sx := float64(p) / float64(cfg.Width)
	sy := float64(p) / float64(cfg.Height)
	sigmaEff := effectiveNoise(float64(cfg.Lighting.NoiseSigma), sx)
	tau := m.threshold(sigmaEff)
	var out []string
	frame := v.Frame(i)
	for idx := range frame.Objects {
		obj := &frame.Objects[idx]
		c := m.evalPatch(v, i, p, obj, sx, sy, sigmaEff, tau)
		out = append(out, fmt.Sprintf("obj %v bbox=%v int=%.2f -> detected=%v class=%v conf=%.3f blob=%v tau=%.4f",
			obj.Class, obj.BBox, obj.Intensity, c.detected, c.class, c.conf, c.blob, tau))
		out = append(out, debugComponents(v, i, p, obj, sx, sy, sigmaEff, tau)...)
	}
	return out
}

// debugComponents re-runs the patch pipeline and dumps every component.
func debugComponents(v *scene.Video, frameIdx, p int, obj *scene.Object, sx, sy, sigmaEff, tau float64) []string {
	cfg := &v.Config
	marginX := int(math.Ceil(2/sx)) + 3
	marginY := int(math.Ceil(2/sy)) + 3
	region := raster.Rect{
		MinX: obj.BBox.MinX - marginX,
		MinY: obj.BBox.MinY - marginY,
		MaxX: obj.BBox.MaxX + marginX,
		MaxY: obj.BBox.MaxY + marginY,
	}.Intersect(raster.RectWH(0, 0, cfg.Width, cfg.Height))
	nativePatch := v.RenderRegion(frameIdx, region)
	tw := maxInt(3, int(math.Round(float64(region.W())*sx)))
	th := maxInt(3, int(math.Round(float64(region.H())*sy)))
	patch := raster.Downsample(nativePatch, tw, th)
	patch.AddNoise(noiseSeed(cfg.Seed, frameIdx, p, obj.ID), float32(sigmaEff))
	bgPatch := raster.Downsample(v.BackgroundRegion(region), tw, th)
	diff := diffPlane(patch, bgPatch)
	smooth := diff.blur3()
	putPlane(diff)
	scr := smooth.absMask(tau)
	comps := connectedComponents(scr.mask, scr.contrast, tw, th)
	putPlane(smooth)
	putMaskScratch(scr)
	expected := raster.Rect{
		MinX: int(math.Floor((float64(obj.BBox.MinX) - float64(region.MinX)) * sx)),
		MinY: int(math.Floor((float64(obj.BBox.MinY) - float64(region.MinY)) * sy)),
		MaxX: int(math.Ceil((float64(obj.BBox.MaxX) - float64(region.MinX)) * sx)),
		MaxY: int(math.Ceil((float64(obj.BBox.MaxY) - float64(region.MinY)) * sy)),
	}
	out := []string{fmt.Sprintf("   region=%v tw=%d th=%d ncomps=%d expected=%v", region, tw, th, len(comps), expected)}
	for _, c := range comps {
		if c.Area < 3 {
			continue
		}
		out = append(out, fmt.Sprintf("   comp bbox=%v area=%d meanC=%.3f inter=%d", c.BBox, c.Area, c.MeanContrast(), c.BBox.Intersect(expected).Area()))
	}
	return out
}
