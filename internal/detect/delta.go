package detect

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// Temporal delta detection. A DeltaRun walks the frames of one degraded
// view in order and exploits the fact that a surveillance scene changes
// slowly: most objects persist across frames, and the static background
// is bitwise constant. The frame is partitioned into DeltaTileSize-square
// tiles; each frame gets a per-tile signature mixing in every object
// whose bbox spans the tile, in draw order. Each cached evaluation stores
// the signatures its patch region spanned when it was validated; equality
// against the current frame's tiles proves pixel-identical scene content
// (up to a 2^-64 hash collision) between the two frames directly, however
// far apart they are — frame rendering depends only on the static
// background and the objects spanning the tile, drawn in a (MinY,
// ID)-sorted order that unchanged objects preserve. Sampled (gappy) frame
// feeds therefore reuse as well as full series.
//
// Exact mode re-runs only the noise-dependent stages for an object whose
// patch region covers only clean tiles, replaying cached pre-noise pixels
// with the current frame's noise seed — byte-identical to full evaluation
// because sensor noise is the only frame-indexed input after rendering.
// Bounded mode goes further: an object that merely translated
// horizontally keeps a position-independent foreground (objects render
// opaque), so the patch difference changes only through background
// texture, lane markings, and the noise resample. When the worst-case
// mean-contrast perturbation B is within the configured tolerance and the
// cached detection outcome survives a B-sized shove of the confidence
// gate, the prior candidate is spliced at the new position without
// touching a pixel. Bounded entries keep their pre-noise pixels too, so
// an object that did not move but fails a splice gate falls back to the
// exact replay path (byte-identical, no err_b surcharge) instead of a
// full evaluation. Frames where a splice margin ran thin are counted and
// surfaced through DeltaSurcharge into the profile's err_b accounting.

// DeltaTileSize is the side of the square change-tracking tiles.
const DeltaTileSize = 32

// tileSigSeed initialises every tile signature so an empty tile has a
// well-defined, non-zero value.
const tileSigSeed = 0x9e3779b97f4a7c15

// Package-level effectiveness counters, flushed from runs on Close.
var (
	deltaTilesReused      atomic.Int64
	deltaTilesRedetected  atomic.Int64
	deltaCandidatesReused atomic.Int64
	deltaKeyframes        atomic.Int64
)

// DeltaCounterStats is a snapshot of delta-detection effectiveness.
type DeltaCounterStats struct {
	TilesReused      int64 // tiles spanned by reused (spliced/replayed) patches
	TilesRedetected  int64 // tiles spanned by fully re-evaluated patches
	CandidatesReused int64 // object evaluations answered without a full eval
	Keyframes        int64 // frames evaluated with no usable predecessor
}

// DeltaCounters returns the cumulative delta-detection counters.
func DeltaCounters() DeltaCounterStats {
	return DeltaCounterStats{
		TilesReused:      deltaTilesReused.Load(),
		TilesRedetected:  deltaTilesRedetected.Load(),
		CandidatesReused: deltaCandidatesReused.Load(),
		Keyframes:        deltaKeyframes.Load(),
	}
}

// deltaKey identifies one (video view, model, resolution) bounded-mode
// account, mirroring the granularity of the detector-output cache.
type deltaKey struct {
	video *scene.Video
	model string
	p     int
}

// deltaAccount tallies how many frames bounded mode processed for a key
// and how many of them leaned on a thin reuse margin.
type deltaAccount struct {
	frames  int64
	fragile int64
}

var (
	deltaAccMu    sync.Mutex
	deltaAccounts = map[deltaKey]*deltaAccount{}
)

// resetDelta zeroes the counters and drops every bounded-mode account.
func resetDelta() {
	deltaTilesReused.Store(0)
	deltaTilesRedetected.Store(0)
	deltaCandidatesReused.Store(0)
	deltaKeyframes.Store(0)
	deltaAccMu.Lock()
	deltaAccounts = map[deltaKey]*deltaAccount{}
	deltaAccMu.Unlock()
}

// deltaAccountEntrySize approximates the bookkeeping bytes of one
// bounded-mode account (key + two counters + map overhead).
const deltaAccountEntrySize = perEntryOverhead + 16

// evictDeltaAccounts drops the bounded-mode accounts of video v (all
// videos when v is nil) and returns the bytes released.
func evictDeltaAccounts(v *scene.Video) int64 {
	deltaAccMu.Lock()
	defer deltaAccMu.Unlock()
	var freed int64
	for k := range deltaAccounts {
		if v == nil || k.video == v {
			delete(deltaAccounts, k)
			freed += deltaAccountEntrySize
		}
	}
	return freed
}

// deltaAccountStats reports the live bounded-mode account table size.
func deltaAccountStats() (tables int, bytes int64) {
	deltaAccMu.Lock()
	defer deltaAccMu.Unlock()
	return len(deltaAccounts), int64(len(deltaAccounts)) * deltaAccountEntrySize
}

// DeltaSurcharge returns the fraction of bounded-mode frames for (v,
// model, p) whose reuse decisions leaned on a thin margin — the err_b
// surcharge the profile layer adds to its error bound when bounded delta
// detection produced the detector outputs. Zero when bounded mode never
// ran for the key.
func DeltaSurcharge(v *scene.Video, model string, p int) float64 {
	deltaAccMu.Lock()
	defer deltaAccMu.Unlock()
	a := deltaAccounts[deltaKey{video: v, model: model, p: p}]
	if a == nil || a.frames == 0 {
		return 0
	}
	return float64(a.fragile) / float64(a.frames)
}

// objectSig hashes everything that affects an object's rendered pixels.
func objectSig(o *scene.Object) uint64 {
	ell := uint64(0)
	if o.Elliptic {
		ell = 1
	}
	return mix(
		uint64(o.ID),
		uint64(o.Class)|ell<<8,
		uint64(uint32(o.BBox.MinX))<<32|uint64(uint32(o.BBox.MinY)),
		uint64(uint32(o.BBox.MaxX))<<32|uint64(uint32(o.BBox.MaxY)),
		uint64(math.Float32bits(o.Intensity)),
	)
}

// frameTileSigs fills dst with per-tile signatures of the frame: the seed
// value mixed, in stored (draw) order, with the signature of every object
// whose bbox spans the tile. Objects fully outside the frame contribute
// nothing, matching the renderer's clipping. spill dilates each bbox
// horizontally by the video view's pixel reach (motion blur smears an
// object's contrast up to that many columns beyond its bbox), so tiles
// whose pixels a view transform can touch are attributed to the object.
func frameTileSigs(dst []uint64, f *scene.Frame, tilesW int, w, h, spill int) {
	for i := range dst {
		dst[i] = tileSigSeed
	}
	frameRect := raster.RectWH(0, 0, w, h)
	for idx := range f.Objects {
		o := &f.Objects[idx]
		box := o.BBox
		box.MinX -= spill
		box.MaxX += spill
		box = box.Intersect(frameRect)
		if box.Empty() {
			continue
		}
		sig := objectSig(o)
		tx0 := box.MinX / DeltaTileSize
		tx1 := (box.MaxX - 1) / DeltaTileSize
		ty0 := box.MinY / DeltaTileSize
		ty1 := (box.MaxY - 1) / DeltaTileSize
		for ty := ty0; ty <= ty1; ty++ {
			row := ty * tilesW
			for tx := tx0; tx <= tx1; tx++ {
				dst[row+tx] = mix(dst[row+tx], sig)
			}
		}
	}
}

// deltaEntry caches one object's last evaluation for reuse on a later
// frame. regionSigs snapshots the tile signatures the region spanned when
// the entry was validated: signature equality against any later frame's
// tiles proves the region's scene content is pixel-identical, so reuse is
// not limited to consecutive frames — sampled (gappy) frame feeds reuse
// just as well as full series.
type deltaEntry struct {
	frame      int          // frame the entry was last validated on
	obj        scene.Object // object state at that frame
	region     raster.Rect  // evaluated patch region
	regionSigs []uint64     // region's tile signatures at that frame
	interior   bool         // region carries its full margins (no frame clip)
	isolated   bool         // no other object's bbox intersected the region
	quant      bool         // evaluated on the quantized pipeline
	cand       candidate
	info       patchInfo
	kept       keptPatches // pre-noise pixels (exact mode only)
}

// DeltaRun evaluates consecutive frames of one (video, model, resolution)
// triple with temporal delta detection. It is single-goroutine state;
// callers wanting parallelism run one DeltaRun per frame block.
type DeltaRun struct {
	m    *Model
	v    *scene.Video
	p    int
	mode DeltaMode
	tol  float64

	sx, sy   float64
	sigmaEff float64
	tau      float64

	// spill is the video view's horizontal pixel reach (blur smear);
	// viewPixels records whether the view transforms pixels at all, which
	// disables bounded translation splices (their background-delta model
	// assumes raw pixels).
	spill      int
	viewPixels bool

	tilesW    int
	prevFrame int
	curSigs   []uint64
	entries   map[int]*deltaEntry

	tilesReused     int64
	tilesRedetected int64
	candsReused     int64
	framesProcessed int64
	fragileFrames   int64
	keyframes       int64
}

// NewDeltaRun returns a DeltaRun for v at resolution p, or nil when delta
// detection is off (callers fall back to DetectFrame). Panics on an
// invalid resolution, like DetectFrame.
func (m *Model) NewDeltaRun(v *scene.Video, p int) *DeltaRun {
	mode := DeltaDetectMode()
	if mode == DeltaOff {
		return nil
	}
	if !m.ValidResolution(p) {
		panic(fmt.Sprintf("detect: %s cannot run at resolution %d", m.Name, p))
	}
	cfg := &v.Config
	sx := float64(p) / float64(cfg.Width)
	sy := float64(p) / float64(cfg.Height)
	sigmaEff := effectiveNoise(float64(cfg.Lighting.NoiseSigma), sx)
	tilesW := (cfg.Width + DeltaTileSize - 1) / DeltaTileSize
	tilesH := (cfg.Height + DeltaTileSize - 1) / DeltaTileSize
	vw := v.View()
	return &DeltaRun{
		m:          m,
		v:          v,
		p:          p,
		mode:       mode,
		tol:        DeltaTolerance(),
		sx:         sx,
		sy:         sy,
		sigmaEff:   sigmaEff,
		tau:        m.threshold(sigmaEff),
		spill:      vw.Spill(),
		viewPixels: vw.PixelTransforms(),
		tilesW:     tilesW,
		prevFrame: -1,
		curSigs:   make([]uint64, tilesW*tilesH),
		entries:   map[int]*deltaEntry{},
	}
}

// DetectFrame runs the model on frame i, reusing prior work where the
// delta mode admits it. Reuse is validated against the entry's stored
// region tile signatures, which prove pixel-identical scene content
// between the entry's frame and frame i directly — so sampled (gappy)
// frame feeds reuse as well as consecutive ones; non-consecutive jumps
// are only counted as keyframes for observability. Entries persist for
// the life of the run (objects that left the scene keep a small entry
// until Close releases them).
func (r *DeltaRun) DetectFrame(i int) []Detection {
	countInvocation()
	m, v := r.m, r.v
	cfg := &v.Config
	frame := v.Frame(i)

	frameTileSigs(r.curSigs, frame, r.tilesW, cfg.Width, cfg.Height, r.spill)
	if !(r.prevFrame >= 0 && i == r.prevFrame+1) {
		r.keyframes++
	}

	quant := Quantized()
	fragile := false
	cands := make([]candidate, 0, len(frame.Objects))
	for idx := range frame.Objects {
		obj := &frame.Objects[idx]
		if !m.CanDetect(obj.Class) {
			continue
		}
		c, ok := r.tryReuse(i, frame, obj, quant, &fragile)
		if !ok {
			c = r.evalAndStore(i, frame, obj, quant)
		}
		cands = append(cands, c)
	}

	r.prevFrame = i
	r.framesProcessed++
	if fragile {
		r.fragileFrames++
	}

	detections := m.postProcess(v, i, r.p, cands)
	detections = append(detections, m.falsePositives(v, i, r.p, r.sigmaEff, r.tau)...)
	return detections
}

// Close flushes the run's counters into the package totals (and, in
// bounded mode, the per-key fragility account) and releases cached pixels.
func (r *DeltaRun) Close() {
	if r == nil {
		return
	}
	deltaTilesReused.Add(r.tilesReused)
	deltaTilesRedetected.Add(r.tilesRedetected)
	deltaCandidatesReused.Add(r.candsReused)
	deltaKeyframes.Add(r.keyframes)
	if r.mode == DeltaBounded && r.framesProcessed > 0 {
		k := deltaKey{video: r.v, model: r.m.Name, p: r.p}
		deltaAccMu.Lock()
		a := deltaAccounts[k]
		if a == nil {
			a = &deltaAccount{}
			deltaAccounts[k] = a
		}
		a.frames += r.framesProcessed
		a.fragile += r.fragileFrames
		deltaAccMu.Unlock()
	}
	r.dropEntries()
	r.entries = nil
}

func (r *DeltaRun) dropEntries() {
	for id, e := range r.entries {
		e.kept.release()
		delete(r.entries, id)
	}
}

// tileSpan returns the number of tiles a (clipped, non-empty) region
// touches.
func tileSpan(region raster.Rect) int64 {
	if region.Empty() {
		return 0
	}
	nx := (region.MaxX-1)/DeltaTileSize - region.MinX/DeltaTileSize + 1
	ny := (region.MaxY-1)/DeltaTileSize - region.MinY/DeltaTileSize + 1
	return int64(nx * ny)
}

// regionSigsMatch reports whether the entry's stored tile signatures for
// region equal the current frame's — i.e. the region's scene content is
// pixel-identical to what the entry was validated on.
func (r *DeltaRun) regionSigsMatch(e *deltaEntry, region raster.Rect) bool {
	if region.Empty() || len(e.regionSigs) == 0 {
		return false
	}
	tx0 := region.MinX / DeltaTileSize
	tx1 := (region.MaxX - 1) / DeltaTileSize
	ty0 := region.MinY / DeltaTileSize
	ty1 := (region.MaxY - 1) / DeltaTileSize
	k := 0
	for ty := ty0; ty <= ty1; ty++ {
		row := ty * r.tilesW
		for tx := tx0; tx <= tx1; tx++ {
			if k >= len(e.regionSigs) || e.regionSigs[k] != r.curSigs[row+tx] {
				return false
			}
			k++
		}
	}
	return k == len(e.regionSigs)
}

// captureRegionSigs snapshots the current frame's tile signatures under
// region into the entry, reusing its slice storage.
func (r *DeltaRun) captureRegionSigs(e *deltaEntry, region raster.Rect) {
	e.regionSigs = e.regionSigs[:0]
	if region.Empty() {
		return
	}
	tx0 := region.MinX / DeltaTileSize
	tx1 := (region.MaxX - 1) / DeltaTileSize
	ty0 := region.MinY / DeltaTileSize
	ty1 := (region.MaxY - 1) / DeltaTileSize
	for ty := ty0; ty <= ty1; ty++ {
		row := ty * r.tilesW
		for tx := tx0; tx <= tx1; tx++ {
			e.regionSigs = append(e.regionSigs, r.curSigs[row+tx])
		}
	}
}

// isolatedIn reports whether no other object's bbox intersects region.
func isolatedIn(frame *scene.Frame, obj *scene.Object, region raster.Rect) bool {
	for idx := range frame.Objects {
		o := &frame.Objects[idx]
		if o.ID == obj.ID {
			continue
		}
		if !o.BBox.Intersect(region).Empty() {
			return false
		}
	}
	return true
}

// markingFraction returns the worst-case fraction of the object footprint
// covered by lane-marking rows, or 0 when the footprint's row range clears
// every marking stripe.
func markingFraction(cfg *scene.Config, box raster.Rect) float64 {
	hit := false
	for _, lane := range cfg.LaneYs {
		y := lane + 18
		if y >= cfg.Height-1 {
			continue
		}
		if box.MinY < y+2 && box.MaxY > y {
			hit = true
			break
		}
	}
	if !hit {
		return 0
	}
	h := box.H()
	if h < 1 {
		h = 1
	}
	frac := 2.0 / float64(h)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// evalAndStore fully evaluates obj on frame i and caches the result (plus,
// in exact mode, the pre-noise pixels) for next-frame reuse.
func (r *DeltaRun) evalAndStore(i int, frame *scene.Frame, obj *scene.Object, quant bool) candidate {
	e := r.entries[obj.ID]
	if e == nil {
		e = &deltaEntry{}
		r.entries[obj.ID] = e
	} else {
		e.kept.release()
	}
	// Both modes keep the pre-noise pixels: exact mode replays them on
	// every clean frame, and bounded mode replays them when a still
	// object's splice gates fail (small components leave no confidence
	// headroom, common at low resolutions) — the replay is byte-identical
	// to a full evaluation at a fraction of its cost, so it never touches
	// the err_b account.
	var info patchInfo
	cand := r.m.evalPatchInfo(r.v, i, r.p, obj, r.sx, r.sy, r.sigmaEff, r.tau, &info, &e.kept)
	mx, my := patchMargins(r.sx, r.sy)
	e.frame = i
	e.obj = *obj
	e.region = info.region
	r.captureRegionSigs(e, info.region)
	e.interior = info.region.W() == obj.BBox.W()+2*mx && info.region.H() == obj.BBox.H()+2*my
	e.isolated = isolatedIn(frame, obj, info.region)
	e.quant = quant
	e.cand = cand
	e.info = info
	r.tilesRedetected += tileSpan(info.region)
	return cand
}

// tryReuse attempts to answer obj on frame i from its cached entry (any
// prior frame — signature equality, not adjacency, validates reuse). The
// bool result is false when a full evaluation is required.
func (r *DeltaRun) tryReuse(i int, frame *scene.Frame, obj *scene.Object, quant bool, fragile *bool) (candidate, bool) {
	e := r.entries[obj.ID]
	if e == nil || e.frame == i || e.quant != quant {
		return candidate{}, false
	}
	region := patchRegion(&r.v.Config, obj, r.sx, r.sy)
	if region.Empty() {
		return candidate{}, false
	}
	still := e.obj == *obj && region == e.region && r.regionSigsMatch(e, region)
	if r.mode == DeltaExact {
		if !still || !e.kept.usable(quant, obj.Class == scene.Face) {
			return candidate{}, false
		}
		return r.exactReuse(i, frame, obj, e, region), true
	}
	c, ok := r.boundedReuse(i, frame, obj, e, region, still, fragile)
	if ok || !still {
		return c, ok
	}
	// Still object whose splice gates failed: the cached pre-noise pixels
	// are provably identical to what a full evaluation would render, so
	// replay them exactly instead — byte-identical to DetectFrame and far
	// cheaper than re-rendering, with no tolerance spent.
	if e.kept.usable(quant, obj.Class == scene.Face) {
		return r.exactReuse(i, frame, obj, e, region), true
	}
	return candidate{}, false
}

// usable reports whether the kept pre-noise pixels cover a replay on the
// given pipeline.
func (k *keptPatches) usable(quant, face bool) bool {
	if quant {
		return k.patch8 != nil && (face || k.bg8 != nil)
	}
	return k.patchF != nil && (face || k.bgF != nil)
}

// exactReuse replays the noise-dependent pipeline stages over the cached
// pre-noise patch with frame i's noise seed. Because every tile the region
// touches is clean and the object is unchanged, the pre-noise pixels are
// identical to what a full evaluation would render, so the result is
// byte-identical to DetectFrame's.
func (r *DeltaRun) exactReuse(i int, frame *scene.Frame, obj *scene.Object, e *deltaEntry, region raster.Rect) candidate {
	m := r.m
	cand := candidate{
		objID: obj.ID,
		scaled: fRect{
			minX: float64(obj.BBox.MinX) * r.sx,
			minY: float64(obj.BBox.MinY) * r.sy,
			maxX: float64(obj.BBox.MaxX) * r.sx,
			maxY: float64(obj.BBox.MaxY) * r.sy,
		},
	}
	tw, th := patchDims(region, r.sx, r.sy)
	seed := noiseSeed(r.v.Config.Seed, i, r.p, obj.ID)
	var comps []component
	var maxAbs float64
	if e.quant {
		patch := raster.GetScratch8(tw, th)
		copy(patch.Pix, e.kept.patch8.Pix)
		patch.AddNoise8(seed, float32(r.sigmaEff))
		var diff *plane16
		if obj.Class == scene.Face {
			diff = diffScalar8(patch, borderMean8(patch))
		} else {
			diff = diffPlanes8(patch, e.kept.bg8)
		}
		raster.PutScratch8(patch)
		comps, maxAbs = quantComponents(diff, r.tau, true)
		putPlane16(diff)
	} else {
		patch := raster.GetScratch(tw, th)
		copy(patch.Pix, e.kept.patchF.Pix)
		patch.AddNoise(seed, float32(r.sigmaEff))
		var diff *plane
		if obj.Class == scene.Face {
			diff = diffScalar(patch, borderMean(patch))
		} else {
			diff = diffPlane(patch, e.kept.bgF)
		}
		raster.PutScratch(patch)
		smooth := diff.blur3()
		putPlane(diff)
		scr := smooth.absMask(r.tau)
		mx := float32(0)
		for _, c := range scr.contrast {
			if c > mx {
				mx = c
			}
		}
		comps = connectedComponents(scr.mask, scr.contrast, tw, th)
		putPlane(smooth)
		putMaskScratch(scr)
		maxAbs = float64(mx)
	}
	var info patchInfo
	info.region = region
	info.maxAbs = maxAbs
	m.selectCandidate(&cand, comps, obj, region, r.sx, r.sy, r.tau, &info)

	e.frame = i
	e.obj = *obj
	e.isolated = isolatedIn(frame, obj, region)
	e.cand = cand
	e.info = info
	r.tilesReused += tileSpan(region)
	r.candsReused++
	return cand
}

// deltaFragileMargin is the confidence headroom below which a bounded
// splice counts the frame as fragile for err_b accounting.
const deltaFragileMargin = 0.05

// boundedReuse splices the cached detection outcome at the object's new
// position when the worst-case contrast perturbation since the cached
// evaluation is within tolerance AND the cached outcome survives shoving
// the confidence gate by that perturbation. still=true means the object
// and its pixel context are bitwise unchanged, so only the noise resample
// perturbs the result.
func (r *DeltaRun) boundedReuse(i int, frame *scene.Frame, obj *scene.Object, e *deltaEntry, region raster.Rect, still bool, fragile *bool) (candidate, bool) {
	m := r.m
	cfg := &r.v.Config
	info := &e.info

	texAmp := float64(cfg.Lighting.TextureAmp)
	var bMean, bPix float64
	if still {
		bMean = 0
		bPix = 2 * r.sigmaEff
	} else {
		// Translation splices model the patch delta as "same object over
		// shifted raw background". A pixel-transforming view breaks that
		// model — blur mixes object and background, occlusion pins pixels,
		// quantization is non-linear in position — so only still (bitwise
		// identical, which deterministic transforms preserve) reuse is
		// admissible under such views.
		if r.viewPixels {
			return candidate{}, false
		}
		// Horizontal translation: the opaque foreground is
		// position-independent, so only the background under the footprint
		// changes — texture (±TextureAmp per pixel), lane markings where
		// the footprint rows cross a stripe — plus the noise resample.
		// Faces use a border-relative difference whose ring is body pixels
		// at an unmodelled offset; never splice them.
		if obj.Class == scene.Face ||
			obj.ID != e.obj.ID || obj.Class != e.obj.Class ||
			obj.Elliptic != e.obj.Elliptic || obj.Intensity != e.obj.Intensity ||
			obj.BBox.W() != e.obj.BBox.W() || obj.BBox.H() != e.obj.BBox.H() ||
			obj.BBox.MinY != e.obj.BBox.MinY {
			return candidate{}, false
		}
		// Both evaluations must see the object with full margins and no
		// neighbours, so the patch is exactly "object over background".
		mx, my := patchMargins(r.sx, r.sy)
		interior := region.W() == obj.BBox.W()+2*mx && region.H() == obj.BBox.H()+2*my
		if !interior || !e.interior || !e.isolated || !isolatedIn(frame, obj, region) {
			return candidate{}, false
		}
		bMean = 2*texAmp + 0.12*markingFraction(cfg, obj.BBox)
		mark := 0.0
		if markingFraction(cfg, obj.BBox) > 0 {
			mark = 0.12
		}
		bPix = 2*texAmp + mark + 2*r.sigmaEff
	}
	// Noise resample perturbation of the component mean: the blurred noise
	// contribution averages down with component area.
	area := info.compArea
	if area < 1 {
		area = 1
	}
	bMean += 1.5 * r.sigmaEff / math.Sqrt(float64(area))
	if bMean > r.tol {
		return candidate{}, false
	}

	// Outcome gates: the cached decision must survive a B-sized shove.
	switch {
	case e.cand.detected && info.confValid:
		lo := m.confidence(info.compArea, info.meanContrast-bMean, r.tau)
		if lo < m.Threshold {
			return candidate{}, false
		}
		if lo-m.Threshold < deltaFragileMargin {
			*fragile = true
		}
	case !e.cand.detected && info.hasComp && info.confValid:
		hi := m.confidence(info.compArea, info.meanContrast+bMean, r.tau)
		if hi >= m.Threshold {
			return candidate{}, false
		}
		if m.Threshold-hi < deltaFragileMargin {
			*fragile = true
		}
	case !e.cand.detected && !info.hasComp:
		// Blank patch: nothing crossed the threshold anywhere. Require the
		// peak contrast plus the worst-case per-pixel perturbation to stay
		// under tau.
		if info.maxAbs+bPix >= r.tau {
			return candidate{}, false
		}
		if r.tau-info.maxAbs-bPix < 0.1*r.tau {
			*fragile = true
		}
	default:
		// A sub-MinBlobArea component whose area could grow past the gate:
		// no cheap bound, re-evaluate.
		return candidate{}, false
	}

	// Splice the cached outcome at the new position.
	cand := candidate{
		objID:    obj.ID,
		class:    e.cand.class,
		conf:     e.cand.conf,
		detected: e.cand.detected,
		scaled: fRect{
			minX: float64(obj.BBox.MinX) * r.sx,
			minY: float64(obj.BBox.MinY) * r.sy,
			maxX: float64(obj.BBox.MaxX) * r.sx,
			maxY: float64(obj.BBox.MaxY) * r.sy,
		},
	}
	if cand.detected {
		offX := int(math.Round(float64(region.MinX) * r.sx))
		offY := int(math.Round(float64(region.MinY) * r.sy))
		cand.blob = raster.Rect{
			MinX: info.compBBox.MinX + offX,
			MinY: info.compBBox.MinY + offY,
			MaxX: info.compBBox.MaxX + offX,
			MaxY: info.compBBox.MaxY + offY,
		}
	}
	if !still {
		// The kept pre-noise pixels describe the pre-move region; a later
		// still frame must not replay them at the new position.
		e.kept.release()
	}
	e.frame = i
	e.obj = *obj
	e.region = region
	r.captureRegionSigs(e, region)
	e.isolated = isolatedIn(frame, obj, region)
	e.cand = cand
	r.tilesReused += tileSpan(region)
	r.candsReused++
	return cand, true
}
