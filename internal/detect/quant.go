package detect

import (
	"sync"

	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// Quantized patch pipeline. When SetQuantized(true) is in effect the patch
// path rasterises in float (rendering is cheap and exact), quantizes once
// at the patch boundary, and runs every per-pixel stage — downsample,
// sensor noise, background difference, 3x3 denoise, thresholding — on
// uint8/int16 integer planes with widened accumulators. The signed
// difference fits int16 exactly (|a-b| ≤ 255), the 3x3 sums fit int16
// (≤ 9·255 = 2295), and thresholding compares integer sums against
// floor(tau·255·count), which reproduces the float path's strict
// v > tau semantics on the quantized values. Components, selection,
// post-processing and the false-positive process are shared with the
// float path unchanged.

// plane16 is a signed 16-bit pixel buffer: the quantized analog of plane.
type plane16 struct {
	w, h int
	v    []int16
}

var plane16Pool = sync.Pool{New: func() any { return &plane16{} }}

func getPlane16(w, h int) *plane16 {
	p := plane16Pool.Get().(*plane16)
	p.w, p.h = w, h
	if cap(p.v) < w*h {
		p.v = make([]int16, w*h)
	} else {
		p.v = p.v[:w*h]
	}
	return p
}

func putPlane16(p *plane16) {
	if p != nil {
		plane16Pool.Put(p)
	}
}

// diffPlanes8 returns a - b elementwise in a pooled int16 plane.
func diffPlanes8(a, b *raster.Plane8) *plane16 {
	if a.W != b.W || a.H != b.H {
		panic("detect: diffPlanes8 size mismatch")
	}
	p := getPlane16(a.W, a.H)
	for i := range a.Pix {
		p.v[i] = int16(a.Pix[i]) - int16(b.Pix[i])
	}
	return p
}

// diffScalar8 returns a - c elementwise in a pooled int16 plane.
func diffScalar8(a *raster.Plane8, c int16) *plane16 {
	p := getPlane16(a.W, a.H)
	for i := range a.Pix {
		p.v[i] = int16(a.Pix[i]) - c
	}
	return p
}

// borderMean8 is the integer analog of borderMean: the rounded mean of the
// patch's outermost pixel ring.
func borderMean8(p *raster.Plane8) int16 {
	var sum, n int
	for x := 0; x < p.W; x++ {
		sum += int(p.Pix[x]) + int(p.Pix[(p.H-1)*p.W+x])
		n += 2
	}
	for y := 1; y < p.H-1; y++ {
		sum += int(p.Pix[y*p.W]) + int(p.Pix[y*p.W+p.W-1])
		n += 2
	}
	return int16((sum + n/2) / n)
}

// runSeg is one horizontal run of masked pixels: [x0, x1) on some row,
// labelled with a provisional component index.
type runSeg struct {
	x0, x1 int32
	comp   int32
}

// quantCCScratch pools the fused blur/threshold/components working set.
type quantCCScratch struct {
	vrow  []int16
	prev  []runSeg
	cur   []runSeg
	parent []int32
	comps  []component
}

var quantCCPool = sync.Pool{New: func() any { return &quantCCScratch{} }}

// quantComponents fuses the quantized 3x3 denoise, threshold and
// connected-components stages into one pass. The blur is a separable
// integer 3x3 box sum (division deferred) and the mask test is
// |sum| > floor(tau·255·count), where count is the in-bounds window size
// of the pixel — identical semantics to running the mask stage and the
// shared pixel labeller separately. Instead of materialising mask and
// contrast planes and re-scanning them, masked pixels are gathered into
// horizontal runs as they are produced and the runs are union-found
// against the previous row's, so the labelling cost scales with the number
// of above-threshold runs (usually a handful per patch) rather than the
// patch area. Component Area and BBox are exactly those of the pixel
// labeller; SumContrast accumulates the same |sum|/(255·count) terms,
// grouped per run. When wantMax is set the returned maxAbs is the largest
// contrast anywhere in the patch (the delta-reuse gate for blank patches).
func quantComponents(p *plane16, tau float64, wantMax bool) ([]component, float64) {
	w, h := p.w, p.h
	if w == 0 || h == 0 {
		return nil, 0
	}
	sc := quantCCPool.Get().(*quantCCScratch)
	if cap(sc.vrow) < w {
		sc.vrow = make([]int16, w)
	}
	vrow := sc.vrow[:w]
	prev, cur := sc.prev[:0], sc.cur[:0]
	parent := sc.parent[:0]
	comps := sc.comps[:0]

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// union merges the stats of two roots into the smaller index, which
	// stays the component's canonical record.
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		cra, crb := &comps[ra], &comps[rb]
		cra.Area += crb.Area
		cra.SumContrast += crb.SumContrast
		cra.BBox = cra.BBox.Union(crb.BBox)
		return ra
	}

	var y int
	var pi int
	// closeRun finishes the run [x0, x1) on row y: unite it with every
	// 4-connected run of the previous row, or open a fresh component.
	closeRun := func(x0, x1 int32, sum float64) {
		for pi < len(prev) && prev[pi].x1 <= x0 {
			pi++
		}
		comp := int32(-1)
		for k := pi; k < len(prev) && prev[k].x0 < x1; k++ {
			root := find(prev[k].comp)
			if comp < 0 {
				comp = root
			} else {
				comp = union(comp, root)
			}
		}
		if comp < 0 {
			comp = int32(len(comps))
			parent = append(parent, comp)
			comps = append(comps, component{
				BBox:        raster.Rect{MinX: int(x0), MinY: y, MaxX: int(x1), MaxY: y + 1},
				Area:        int(x1 - x0),
				SumContrast: sum,
			})
		} else {
			c := &comps[comp]
			c.Area += int(x1 - x0)
			c.SumContrast += sum
			if int(x0) < c.BBox.MinX {
				c.BBox.MinX = int(x0)
			}
			if int(x1) > c.BBox.MaxX {
				c.BBox.MaxX = int(x1)
			}
			c.BBox.MaxY = y + 1
		}
		cur = append(cur, runSeg{x0: x0, x1: x1, comp: comp})
	}

	// Per-count integer thresholds and float contrast scales. Window counts
	// are cy·cx with cy, cx ∈ {1, 2, 3}: {1, 2, 3, 4, 6, 9}.
	var thr [10]int32
	var invCnt [10]float32
	for c := 1; c <= 9; c++ {
		thr[c] = int32(tau * 255 * float64(c))
		invCnt[c] = 1 / (255 * float32(c))
	}
	maxAbs := float32(0)
	for y = 0; y < h; y++ {
		cy := int32(3)
		if y == 0 {
			cy--
		}
		if y == h-1 {
			cy--
		}
		// Vertical 3-tap sums for this row; |v| ≤ 3·255 fits int16.
		base := y * w
		copy(vrow, p.v[base:base+w])
		if y > 0 {
			prow := p.v[base-w : base]
			for x := range vrow {
				vrow[x] += prow[x]
			}
		}
		if y+1 < h {
			nrow := p.v[base+w : base+2*w]
			for x := range vrow {
				vrow[x] += nrow[x]
			}
		}

		pi = 0
		inRun := false
		var runStart int32
		var runSum float64
		if w == 1 {
			sum := int32(vrow[0])
			if sum < 0 {
				sum = -sum
			}
			if sum > thr[cy] {
				cf := float32(sum) * invCnt[cy]
				if cf > maxAbs {
					maxAbs = cf
				}
				closeRun(0, 1, float64(cf))
			} else if wantMax {
				if cf := float32(sum) * invCnt[cy]; cf > maxAbs {
					maxAbs = cf
				}
			}
			prev, cur = cur, prev[:0]
			continue
		}
		thr2, inv2 := thr[2*cy], invCnt[2*cy]
		thr3, inv3 := thr[3*cy], invCnt[3*cy]
		sum := int32(vrow[0]) + int32(vrow[1])
		if sum < 0 {
			sum = -sum
		}
		if sum > thr2 {
			cf := float32(sum) * inv2
			if cf > maxAbs {
				maxAbs = cf
			}
			inRun, runStart, runSum = true, 0, float64(cf)
		} else if wantMax {
			if cf := float32(sum) * inv2; cf > maxAbs {
				maxAbs = cf
			}
		}
		for x := 1; x < w-1; x++ {
			sum = int32(vrow[x-1]) + int32(vrow[x]) + int32(vrow[x+1])
			if sum < 0 {
				sum = -sum
			}
			if sum > thr3 {
				cf := float32(sum) * inv3
				if cf > maxAbs {
					maxAbs = cf
				}
				if !inRun {
					inRun, runStart, runSum = true, int32(x), 0
				}
				runSum += float64(cf)
			} else {
				if inRun {
					closeRun(runStart, int32(x), runSum)
					inRun = false
				}
				if wantMax {
					if cf := float32(sum) * inv3; cf > maxAbs {
						maxAbs = cf
					}
				}
			}
		}
		sum = int32(vrow[w-2]) + int32(vrow[w-1])
		if sum < 0 {
			sum = -sum
		}
		if sum > thr2 {
			cf := float32(sum) * inv2
			if cf > maxAbs {
				maxAbs = cf
			}
			if !inRun {
				inRun, runStart, runSum = true, int32(w-1), 0
			}
			runSum += float64(cf)
			closeRun(runStart, int32(w), runSum)
		} else {
			if inRun {
				closeRun(runStart, int32(w-1), runSum)
			}
			if wantMax {
				if cf := float32(sum) * inv2; cf > maxAbs {
					maxAbs = cf
				}
			}
		}
		prev, cur = cur, prev[:0]
	}

	out := make([]component, 0, len(comps))
	for i := range comps {
		if parent[i] == int32(i) {
			out = append(out, comps[i])
		}
	}
	sortComponents(out)

	sc.vrow = vrow[:0]
	sc.prev, sc.cur = prev[:0], cur[:0]
	sc.parent, sc.comps = parent[:0], comps[:0]
	quantCCPool.Put(sc)
	return out, float64(maxAbs)
}

// patchComponentsQuant runs the quantized pixel stages of evalPatch:
// render and downsample (float, exact — the PR 3 prefix-sum kernel, far
// cheaper than any full-resolution integer pass) → quantize the
// model-scale patch once → integer sensor noise → integer background
// difference / border difference → fused blur+mask → shared connected
// components. Quantizing after the downsample touches tw×th pixels
// instead of the full native region and loses less precision (one
// rounding of the averaged value instead of averaging rounded values).
// When keep is non-nil the pre-noise model-scale patch (and background
// patch) are cloned into it for the delta-exact reuse path.
func (m *Model) patchComponentsQuant(v *scene.Video, frameIdx, p int, obj *scene.Object, region raster.Rect, tw, th int, sigmaEff, tau float64, wantMax bool, keep *keptPatches) ([]component, float64) {
	cfg := &v.Config
	nativeF := raster.GetScratch(region.W(), region.H())
	v.RenderRegionInto(nativeF, frameIdx, region)
	patchF := raster.GetScratch(tw, th)
	raster.DownsampleInto(patchF, nativeF)
	patch := raster.GetScratch8(tw, th)
	patch.FromImage(patchF)
	if keep != nil {
		keep.patch8 = raster.GetScratch8(tw, th)
		copy(keep.patch8.Pix, patch.Pix)
	}
	patch.AddNoise8(noiseSeed(cfg.Seed, frameIdx, p, obj.ID), float32(sigmaEff))

	var diff *plane16
	if obj.Class == scene.Face {
		diff = diffScalar8(patch, borderMean8(patch))
	} else {
		// The static background patch never needs a native-resolution
		// render: at model scale it reads straight from the per-video
		// summed-area table in O(tw*th); at native scale it is a row copy.
		switch {
		case tw == region.W() && th == region.H():
			v.BackgroundRegionInto(patchF, region)
		case tw <= region.W() && th <= region.H():
			raster.DownsampleIntegralInto(patchF, v.BackgroundIntegral(), region)
		default:
			v.BackgroundRegionInto(nativeF, region)
			raster.DownsampleInto(patchF, nativeF)
		}
		bg := raster.GetScratch8(tw, th)
		bg.FromImage(patchF)
		diff = diffPlanes8(patch, bg)
		if keep != nil {
			keep.bg8 = bg
		} else {
			raster.PutScratch8(bg)
		}
	}
	raster.PutScratch(nativeF)
	raster.PutScratch(patchF)
	raster.PutScratch8(patch)

	comps, maxAbs := quantComponents(diff, tau, wantMax)
	putPlane16(diff)
	return comps, maxAbs
}
