package detect

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Runtime A/B toggles for the two hot-path overhauls of the detection
// pipeline: the quantized uint8 raster path and temporal delta detection.
// Both default OFF, so the float pipeline with per-frame evaluation —
// the behaviour every profile artifact so far was produced with — stays
// bit-identical unless a caller (core.WithQuantizedRasters /
// core.WithDeltaDetect, or the smokescreend flags) opts in.

// quantizedRasters selects the uint8 pixel pipeline (raster.Plane8 with
// widened-accumulator kernels) for patch evaluation instead of float32.
var quantizedRasters atomic.Bool

// SetQuantized toggles the quantized uint8 raster path for patch
// detection. Like outputs.SetSharing, flip it only around a
// ResetCaches: cached detector outputs do not record which pipeline
// produced them.
func SetQuantized(on bool) { quantizedRasters.Store(on) }

// Quantized reports whether the quantized raster path is enabled.
func Quantized() bool { return quantizedRasters.Load() }

// DeltaMode selects the temporal delta-detection strategy applied when
// frames are evaluated in sequence (outputs feeds consecutive frames of a
// degraded view through a DeltaRun).
type DeltaMode int32

const (
	// DeltaOff evaluates every frame independently (the historical path).
	DeltaOff DeltaMode = iota
	// DeltaExact re-detects any object whose patch region overlaps a tile
	// with a nonzero inter-frame delta and reuses the cached pre-noise
	// pixels otherwise. Results are byte-identical to DeltaOff.
	DeltaExact
	// DeltaBounded additionally splices prior-frame detections for objects
	// whose worst-case contrast perturbation is within the configured
	// tolerance; the admitted deviation is surfaced through the profile's
	// err_b accounting (DeltaSurcharge).
	DeltaBounded
)

// String renders the mode the way the -delta-detect flag spells it.
func (m DeltaMode) String() string {
	switch m {
	case DeltaOff:
		return "off"
	case DeltaExact:
		return "exact"
	case DeltaBounded:
		return "bounded"
	default:
		return fmt.Sprintf("deltamode(%d)", int32(m))
	}
}

// ParseDeltaMode converts a -delta-detect flag value to a DeltaMode.
func ParseDeltaMode(s string) (DeltaMode, error) {
	switch s {
	case "off":
		return DeltaOff, nil
	case "exact":
		return DeltaExact, nil
	case "bounded":
		return DeltaBounded, nil
	}
	return DeltaOff, fmt.Errorf("detect: unknown delta-detect mode %q (want off|exact|bounded)", s)
}

var deltaMode atomic.Int32

// SetDeltaMode selects the temporal delta-detection mode. Flip it only
// around a ResetCaches, for the same reason as SetQuantized.
func SetDeltaMode(m DeltaMode) { deltaMode.Store(int32(m)) }

// DeltaDetectMode returns the current delta-detection mode.
func DeltaDetectMode() DeltaMode { return DeltaMode(deltaMode.Load()) }

// deltaToleranceBits holds the bounded-mode contrast-perturbation cap as
// float64 bits; the default admits the perturbation bounds of every
// built-in corpus (night-street ≈ 0.06, UA-DETRAC ≈ 0.08 at native σ).
var deltaToleranceBits atomic.Uint64

const defaultDeltaTolerance = 0.1

func init() { deltaToleranceBits.Store(math.Float64bits(defaultDeltaTolerance)) }

// SetDeltaTolerance caps the worst-case mean-contrast perturbation
// (texture + lane-marking + noise-resample terms, in intensity units)
// under which bounded mode may splice a prior-frame detection. Lower
// values reuse less; zero disables bounded splicing entirely.
func SetDeltaTolerance(t float64) {
	if t < 0 || math.IsNaN(t) {
		t = 0
	}
	deltaToleranceBits.Store(math.Float64bits(t))
}

// DeltaTolerance returns the bounded-mode perturbation cap.
func DeltaTolerance() float64 { return math.Float64frombits(deltaToleranceBits.Load()) }
