package detect

import (
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/scene"
)

func TestModelByName(t *testing.T) {
	for _, name := range []string{"yolov4", "yolov4-sim", "mask-rcnn", "maskrcnn", "mtcnn"} {
		if _, err := ModelByName(name); err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := ModelByName("resnet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPaperInputConstraints(t *testing.T) {
	yolo := YOLOv4Sim()
	if yolo.NativeInput != 608 || yolo.InputMultiple != 32 {
		t.Fatalf("YOLOv4 input spec %d/%d, paper uses 608 in multiples of 32", yolo.NativeInput, yolo.InputMultiple)
	}
	mrcnn := MaskRCNNSim()
	if mrcnn.NativeInput != 640 || mrcnn.InputMultiple != 64 {
		t.Fatalf("Mask R-CNN input spec %d/%d, paper uses 640 in multiples of 64", mrcnn.NativeInput, mrcnn.InputMultiple)
	}
	if yolo.Threshold != 0.7 || mrcnn.Threshold != 0.7 {
		t.Fatal("detection thresholds should be 0.7")
	}
	if MTCNNSim().Threshold != 0.8 {
		t.Fatal("MTCNN threshold should be 0.8")
	}
}

func TestValidResolution(t *testing.T) {
	m := YOLOv4Sim()
	cases := []struct {
		p    int
		want bool
	}{
		{608, true}, {32, true}, {384, true},
		{0, false}, {-32, false}, {640, false}, {100, false}, {609, false},
	}
	for _, c := range cases {
		if got := m.ValidResolution(c.p); got != c.want {
			t.Fatalf("ValidResolution(%d) = %v", c.p, got)
		}
	}
}

func TestResolutions(t *testing.T) {
	m := YOLOv4Sim()
	rs := m.Resolutions(10)
	if len(rs) != 10 {
		t.Fatalf("got %d resolutions", len(rs))
	}
	if rs[0] != m.NativeInput {
		t.Fatalf("first resolution = %d, want native %d", rs[0], m.NativeInput)
	}
	for i, p := range rs {
		if !m.ValidResolution(p) {
			t.Fatalf("resolution %d invalid", p)
		}
		if i > 0 && p >= rs[i-1] {
			t.Fatalf("resolutions not descending: %v", rs)
		}
	}
	if got := m.Resolutions(0); got != nil {
		t.Fatalf("Resolutions(0) = %v", got)
	}
	// Asking for more than exist returns all, still descending.
	all := m.Resolutions(1000)
	if len(all) != m.NativeInput/m.InputMultiple {
		t.Fatalf("Resolutions(1000) returned %d", len(all))
	}
}

func TestCanDetect(t *testing.T) {
	if !YOLOv4Sim().CanDetect(scene.Car) || !YOLOv4Sim().CanDetect(scene.Face) {
		t.Fatal("unrestricted model should detect everything")
	}
	mt := MTCNNSim()
	if !mt.CanDetect(scene.Face) || mt.CanDetect(scene.Car) {
		t.Fatal("MTCNN should detect faces only")
	}
}

func TestDupProbabilityShape(t *testing.T) {
	m := YOLOv4Sim()
	night := dataset.MustLoad("night-street")
	day := dataset.MustLoad("ua-detrac")

	size := (m.DupSizeLo + m.DupSizeHi) / 2
	peak := m.dupProbability(night, m.DupRes, size)
	if peak != m.DupAmp {
		t.Fatalf("peak probability = %v, want %v", peak, m.DupAmp)
	}
	// Triangular falloff with resolution distance.
	near := m.dupProbability(night, m.DupRes+32, size)
	if near <= 0 || near >= peak {
		t.Fatalf("falloff at +32 = %v", near)
	}
	if got := m.dupProbability(night, m.DupRes+m.DupResWidth, size); got != 0 {
		t.Fatalf("probability at band edge = %v, want 0", got)
	}
	// Outside the size band.
	if got := m.dupProbability(night, m.DupRes, m.DupSizeHi+1); got != 0 {
		t.Fatalf("probability outside size band = %v", got)
	}
	// Daytime attenuation: the paper saw the anomaly on night-street only.
	dayProb := m.dupProbability(day, m.DupRes, size)
	if dayProb >= peak/5 {
		t.Fatalf("daytime probability %v not attenuated vs %v", dayProb, peak)
	}
	// Two-stage models have none.
	if got := MaskRCNNSim().dupProbability(night, 384, size); got != 0 {
		t.Fatalf("Mask R-CNN duplicate probability = %v", got)
	}
}

func TestConfidenceMonotone(t *testing.T) {
	m := YOLOv4Sim()
	// Larger blobs and higher contrast must never decrease confidence.
	prev := 0.0
	for area := 1; area <= 400; area += 7 {
		c := m.confidence(area, 0.2, 0.04)
		if c < prev-1e-12 {
			t.Fatalf("confidence decreased at area %d", area)
		}
		prev = c
	}
	prev = 0.0
	for contrast := 0.01; contrast < 0.5; contrast += 0.01 {
		c := m.confidence(100, contrast, 0.04)
		if c < prev-1e-12 {
			t.Fatalf("confidence decreased at contrast %v", contrast)
		}
		prev = c
	}
}

func TestThresholdFloor(t *testing.T) {
	m := YOLOv4Sim()
	if got := m.threshold(0.0001); got != m.MinContrast {
		t.Fatalf("threshold floor = %v, want %v", got, m.MinContrast)
	}
	high := m.threshold(0.2)
	if high <= m.MinContrast {
		t.Fatal("threshold should exceed the floor at high noise")
	}
}

func TestEffectiveNoise(t *testing.T) {
	if got := effectiveNoise(0.04, 0.5); got != 0.02 {
		t.Fatalf("effectiveNoise = %v, want 0.02", got)
	}
	if got := effectiveNoise(0.04, 0.01); got != 0.004 {
		t.Fatalf("effectiveNoise floor = %v, want 0.004", got)
	}
}
