package detect

import (
	"reflect"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// deltaTestConfig is a valid 640x640 corpus config for hand-built frames.
func deltaTestConfig(frames int) scene.Config {
	return scene.Config{
		Name: "delta-test", Width: 640, Height: 640, NumFrames: frames, Seed: 77,
		Lighting: scene.Lighting{
			BackgroundTop: 0.6, BackgroundBottom: 0.7,
			TextureAmp: 0.01, NoiseSigma: 0.01,
		},
		CarRate: 0, CarLifetime: 10, CarMinW: 40, CarMaxW: 41, CarContrast: 0.3,
		PersonRate: 0, PersonLifetime: 10,
		BusyFactor: 1, RegimeLength: 10, LaneYs: []int{320},
	}
}

// staticAndMovingVideo builds a corpus with one static car (reusable every
// frame) and one fast car far below it (dirtying its own tiles only).
func staticAndMovingVideo(n int) *scene.Video {
	cfg := deltaTestConfig(n)
	frames := make([]scene.Frame, n)
	for i := range frames {
		frames[i] = scene.Frame{Index: i, Objects: []scene.Object{
			{ID: 1, Class: scene.Car, BBox: raster.RectWH(100, 200, 60, 30), Intensity: 0.35},
			{ID: 2, Class: scene.Car, BBox: raster.RectWH(40+i*12, 520, 60, 30), Intensity: 0.4},
		}}
	}
	return scene.NewVideo(cfg, frames)
}

func withDeltaMode(t *testing.T, m DeltaMode) {
	t.Helper()
	prev := DeltaDetectMode()
	SetDeltaMode(m)
	t.Cleanup(func() { SetDeltaMode(prev) })
}

func withQuantized(t *testing.T, on bool) {
	t.Helper()
	prev := Quantized()
	SetQuantized(on)
	t.Cleanup(func() { SetQuantized(prev) })
}

// TestDeltaExactMatchesOff pins the tentpole contract: exact mode is
// byte-identical to evaluating every frame independently, on both the
// float and quantized pipelines, while actually reusing work.
func TestDeltaExactMatchesOff(t *testing.T) {
	const n, p = 10, 320
	v := staticAndMovingVideo(n)
	m := YOLOv4Sim()
	for _, quant := range []bool{false, true} {
		withQuantized(t, quant)

		want := make([][]Detection, n)
		for i := 0; i < n; i++ {
			want[i] = m.DetectFrame(v, i, p)
		}

		withDeltaMode(t, DeltaExact)
		run := m.NewDeltaRun(v, p)
		got := make([][]Detection, n)
		for i := 0; i < n; i++ {
			got[i] = run.DetectFrame(i)
		}
		reused := run.candsReused
		run.Close()

		if !reflect.DeepEqual(want, got) {
			t.Fatalf("quant=%v: exact delta detections differ from per-frame evaluation", quant)
		}
		// The static car's tiles are clean on every non-keyframe, so its
		// evaluation must have been replayed from cached pixels.
		if reused < int64(n-1) {
			t.Fatalf("quant=%v: candidates reused = %d, want >= %d", quant, reused, n-1)
		}
		SetDeltaMode(DeltaOff)
	}
}

// TestDeltaKeyframesOnGaps pins that a non-consecutive (even backward)
// frame feed matches per-frame evaluation exactly — reuse is validated by
// tile-signature equality against the entry's frame, not adjacency — and
// that the jumps are still counted as keyframes for observability.
func TestDeltaKeyframesOnGaps(t *testing.T) {
	const p = 320
	v := staticAndMovingVideo(10)
	m := YOLOv4Sim()
	withDeltaMode(t, DeltaExact)
	run := m.NewDeltaRun(v, p)
	defer run.Close()
	for _, i := range []int{0, 5, 6, 2} {
		got := run.DetectFrame(i)
		SetDeltaMode(DeltaOff)
		want := m.DetectFrame(v, i, p)
		SetDeltaMode(DeltaExact)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("frame %d after gap feed differs from direct evaluation", i)
		}
	}
	if run.keyframes != 3 {
		t.Fatalf("keyframes = %d, want 3 (frames 0, 5 and 2)", run.keyframes)
	}
}

// TestDeltaBoundedSplicesMovingObject pins bounded mode's headline win: a
// strong, isolated, horizontally translating car is spliced rather than
// re-evaluated, per-frame counts match the off path, and the fragility
// surcharge is accounted.
func TestDeltaBoundedSplicesMovingObject(t *testing.T) {
	const n, p = 12, 320
	cfg := deltaTestConfig(n)
	frames := make([]scene.Frame, n)
	for i := range frames {
		frames[i] = scene.Frame{Index: i, Objects: []scene.Object{
			{ID: 1, Class: scene.Car, BBox: raster.RectWH(80+i*3, 300, 64, 32), Intensity: 0.35},
		}}
	}
	v := scene.NewVideo(cfg, frames)
	m := YOLOv4Sim()

	want := make([]int, n)
	for i := 0; i < n; i++ {
		want[i] = CountClass(m.DetectFrame(v, i, p), scene.Car)
	}

	withDeltaMode(t, DeltaBounded)
	t.Cleanup(func() { resetDelta() })
	run := m.NewDeltaRun(v, p)
	for i := 0; i < n; i++ {
		if got := CountClass(run.DetectFrame(i), scene.Car); got != want[i] {
			t.Fatalf("frame %d: bounded count %d, want %d", i, got, want[i])
		}
	}
	reused := run.candsReused
	run.Close()
	if reused < int64(n-1) {
		t.Fatalf("bounded mode spliced %d candidates, want >= %d", reused, n-1)
	}
	sur := DeltaSurcharge(v, m.Name, p)
	if sur < 0 || sur > 1 {
		t.Fatalf("DeltaSurcharge = %v, want in [0,1]", sur)
	}
}

// TestDeltaBoundedOnRealCorpus runs bounded mode over a real generated
// corpus and checks it reuses work while keeping per-frame counts close to
// the off path on average.
func TestDeltaBoundedOnRealCorpus(t *testing.T) {
	const n, p = 48, 320
	v := dataset.MustLoad("small")
	m := YOLOv4Sim()

	off := make([]int, n)
	for i := 0; i < n; i++ {
		off[i] = CountClass(m.DetectFrame(v, i, p), scene.Car)
	}

	withDeltaMode(t, DeltaBounded)
	t.Cleanup(func() { resetDelta() })
	run := m.NewDeltaRun(v, p)
	var absErr, total int
	for i := 0; i < n; i++ {
		got := CountClass(run.DetectFrame(i), scene.Car)
		d := got - off[i]
		if d < 0 {
			d = -d
		}
		absErr += d
		total += off[i]
	}
	reused := run.candsReused
	run.Close()
	if reused == 0 {
		t.Fatalf("bounded mode never reused a candidate on a real corpus")
	}
	if total > 0 && float64(absErr) > 0.1*float64(total) {
		t.Fatalf("bounded mode deviates too much: sum|delta|=%d vs total %d", absErr, total)
	}
}

// TestDeltaCountersAndReset pins the stats plumbing: counters move, show
// up in Stats, and ResetCaches zeroes them along with the bounded
// accounts.
func TestDeltaCountersAndReset(t *testing.T) {
	const n, p = 6, 320
	v := staticAndMovingVideo(n)
	m := YOLOv4Sim()
	withDeltaMode(t, DeltaBounded)
	run := m.NewDeltaRun(v, p)
	for i := 0; i < n; i++ {
		run.DetectFrame(i)
	}
	run.Close()

	s := Stats()
	if s.DeltaTilesRedetected == 0 {
		t.Fatalf("DeltaTilesRedetected = 0 after a run")
	}
	if s.DeltaTables != 1 || s.DeltaBytes != deltaAccountEntrySize {
		t.Fatalf("delta accounts = %d tables / %d bytes, want 1 / %d",
			s.DeltaTables, s.DeltaBytes, int64(deltaAccountEntrySize))
	}
	if freed := EvictVideo(v); freed < deltaAccountEntrySize {
		t.Fatalf("EvictVideo freed %d bytes, want >= %d", freed, int64(deltaAccountEntrySize))
	}
	if got := DeltaSurcharge(v, m.Name, p); got != 0 {
		t.Fatalf("DeltaSurcharge after evict = %v, want 0", got)
	}
	ResetCaches()
	if dc := DeltaCounters(); dc != (DeltaCounterStats{}) {
		t.Fatalf("counters after ResetCaches = %+v, want zero", dc)
	}
}

// renderTile renders the pixels of one tile of frame i.
func renderTile(v *scene.Video, i, tx, ty int) *raster.Image {
	region := raster.RectWH(tx*DeltaTileSize, ty*DeltaTileSize, DeltaTileSize, DeltaTileSize).
		Intersect(raster.RectWH(0, 0, v.Config.Width, v.Config.Height))
	img := raster.New(region.W(), region.H())
	v.RenderRegionInto(img, i, region)
	return img
}

// checkCleanTilesIdentical verifies the delta soundness invariant between
// two consecutive frames of v: every tile whose signature is unchanged
// holds bit-identical pre-noise pixels.
func checkCleanTilesIdentical(t *testing.T, v *scene.Video, i int) (clean, dirty int) {
	t.Helper()
	cfg := &v.Config
	tilesW := (cfg.Width + DeltaTileSize - 1) / DeltaTileSize
	tilesH := (cfg.Height + DeltaTileSize - 1) / DeltaTileSize
	prev := make([]uint64, tilesW*tilesH)
	cur := make([]uint64, tilesW*tilesH)
	frameTileSigs(prev, v.Frame(i), tilesW, cfg.Width, cfg.Height, 0)
	frameTileSigs(cur, v.Frame(i+1), tilesW, cfg.Width, cfg.Height, 0)
	for ty := 0; ty < tilesH; ty++ {
		for tx := 0; tx < tilesW; tx++ {
			if prev[ty*tilesW+tx] != cur[ty*tilesW+tx] {
				dirty++
				continue
			}
			clean++
			a := renderTile(v, i, tx, ty)
			b := renderTile(v, i+1, tx, ty)
			for k := range a.Pix {
				if a.Pix[k] != b.Pix[k] {
					t.Fatalf("clean tile (%d,%d) between frames %d/%d differs at pixel %d",
						tx, ty, i, i+1, k)
				}
			}
		}
	}
	return clean, dirty
}

// TestTileSignatureSoundness checks the clean-tile invariant on a real
// generated corpus, where objects arrive, move, overlap and leave.
func TestTileSignatureSoundness(t *testing.T) {
	v := dataset.MustLoad("small")
	var clean, dirty int
	for _, i := range []int{0, 7, 100, 333} {
		c, d := checkCleanTilesIdentical(t, v, i)
		clean += c
		dirty += d
	}
	if clean == 0 || dirty == 0 {
		t.Fatalf("degenerate coverage: %d clean, %d dirty tiles", clean, dirty)
	}
}

// FuzzTileDelta fuzzes the clean-tile invariant with crafted two-frame
// object motion: whatever the fuzzer does to positions, sizes and
// intensities, a tile with an unchanged signature must hold identical
// pixels.
func FuzzTileDelta(f *testing.F) {
	f.Add(uint8(2), int16(100), int16(200), uint8(60), uint8(30), int16(12), int16(0))
	f.Add(uint8(1), int16(-20), int16(600), uint8(120), uint8(40), int16(0), int16(5))
	f.Add(uint8(3), int16(300), int16(300), uint8(16), uint8(16), int16(640), int16(-640))
	f.Fuzz(func(t *testing.T, nObj uint8, x, y int16, w, h uint8, dx, dy int16) {
		n := int(nObj%4) + 1
		mk := func(frame int) scene.Frame {
			objs := make([]scene.Object, 0, n)
			for k := 0; k < n; k++ {
				ox := int(x) + k*37 + frame*int(dx)
				oy := int(y) + k*53 + frame*int(dy)
				ow := int(w%120) + 4
				oh := int(h%80) + 4
				objs = append(objs, scene.Object{
					ID: k + 1, Class: scene.Car,
					BBox:      raster.RectWH(ox, oy, ow, oh),
					Intensity: 0.2 + float32(k)*0.1,
				})
			}
			// The generator stores objects sorted by (MinY, ID); the
			// renderer draws in stored order. Mirror that contract.
			for a := 1; a < len(objs); a++ {
				for b := a; b > 0; b-- {
					if objs[b].BBox.MinY < objs[b-1].BBox.MinY ||
						(objs[b].BBox.MinY == objs[b-1].BBox.MinY && objs[b].ID < objs[b-1].ID) {
						objs[b], objs[b-1] = objs[b-1], objs[b]
					} else {
						break
					}
				}
			}
			return scene.Frame{Index: frame, Objects: objs}
		}
		cfg := deltaTestConfig(2)
		v := scene.NewVideo(cfg, []scene.Frame{mk(0), mk(1)})
		checkCleanTilesIdentical(t, v, 0)
	})
}
