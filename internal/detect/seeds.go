package detect

import "smokescreen/internal/stats"

// Seed derivation for the detector's stochastic components. Everything is
// keyed on (corpus seed, frame, resolution, object) so a given frame at a
// given resolution always produces the same detections — the property that
// makes cached model outputs valid across estimator trials.

const (
	seedDomainNoise = 0x6e6f - iota // arbitrary distinct domain labels
	seedDomainDup
	seedDomainFP
)

func mix(vals ...uint64) uint64 {
	z := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		z ^= v
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// noiseSeed keys per-patch sensor noise.
func noiseSeed(corpusSeed uint64, frame, p, objID int) uint64 {
	return mix(corpusSeed, seedDomainNoise, uint64(frame), uint64(p), uint64(objID))
}

// frameNoiseSeed keys full-frame sensor noise (reference path).
func frameNoiseSeed(corpusSeed uint64, frame, p int) uint64 {
	return mix(corpusSeed, seedDomainNoise, uint64(frame), uint64(p), 0xffffffff)
}

// dupSeed keys the duplicate-resonance coin flip.
func dupSeed(corpusSeed uint64, frame, p, objID int) uint64 {
	return mix(corpusSeed, seedDomainDup, uint64(frame), uint64(p), uint64(objID))
}

// fpStream returns the per-(frame, resolution) stream that drives the
// clutter false-positive process.
func fpStream(corpusSeed uint64, frame, p int) *stats.Stream {
	return stats.NewStream(mix(corpusSeed, seedDomainFP, uint64(frame), uint64(p)))
}

// hash01 maps a seed to a uniform value in [0, 1).
func hash01(seed uint64) float64 {
	return float64(mix(seed)>>11) / (1 << 53)
}
