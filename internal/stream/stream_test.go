package stream

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"

	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

// streamRun drives loops camera sessions through a receiver over an
// in-process pipe and returns the receiver's error. cancel, when
// non-nil, is invoked with (status-so-far, cancelFunc, serverConn) via
// the OnWindow hook wiring done by the caller.
func streamRun(t *testing.T, recv *Receiver, nodes []*camera.Node, ctx context.Context, cancelPipe func(err error)) error {
	t.Helper()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	var camWG sync.WaitGroup
	camWG.Add(1)
	go func() {
		defer camWG.Done()
		conn := transport.New(client)
		for i, node := range nodes {
			if _, err := node.StreamCtx(ctx, conn, stats.NewStream(uint64(100+i))); err != nil {
				if cancelPipe != nil {
					cancelPipe(err)
				}
				return
			}
		}
		client.Close() // clean end-of-stream
	}()
	err := recv.Run(ctx, transport.New(server))
	server.Close() // unblock the camera if the receiver bailed first
	camWG.Wait()
	return err
}

func smallNode(t *testing.T, v *scene.Video, f float64, p int) *camera.Node {
	t.Helper()
	return &camera.Node{
		Video:   v,
		Model:   detect.YOLOv4Sim(),
		Setting: degrade.Setting{SampleFraction: f, Resolution: p},
		Energy:  camera.DefaultEnergyModel(),
	}
}

func TestWindowedProfilesSoakTumbling(t *testing.T) {
	// The acceptance soak, in-process: one camera session over the small
	// corpus at span 100 produces 12 tumbling windows (>= 10), each with
	// a bounded-duration estimate, and Verify cross-checks every
	// window's incremental state against full regeneration.
	v := dataset.MustLoad("small")
	var windows []WindowResult
	recv, err := New(Config{
		Model:      detect.YOLOv4Sim(),
		Class:      scene.Car,
		WindowSpan: 100,
		Sources:    []*scene.Video{v},
		Verify:     true,
		OnWindow:   func(res WindowResult) { windows = append(windows, res) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamRun(t, recv, []*camera.Node{smallNode(t, v, 0.2, 160)}, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 12 {
		t.Fatalf("emitted %d windows, want 12", len(windows))
	}
	totalFrames := 0
	for i, res := range windows {
		if res.Seq != i || res.Lo != i*100 || res.Hi != i*100+100 {
			t.Fatalf("window %d bounds %+v", i, res)
		}
		if res.Estimate.N != 100 || res.Estimate.Sample != res.Frames {
			t.Fatalf("window %d estimate %+v with %d frames", i, res.Estimate, res.Frames)
		}
		if res.Frames <= 0 || res.Frames > 100 {
			t.Fatalf("window %d holds %d frames", i, res.Frames)
		}
		if res.Estimate.ErrBound < 0 || res.Estimate.ErrBound > 1 {
			t.Fatalf("window %d bound %v", i, res.Estimate.ErrBound)
		}
		totalFrames += res.Frames
	}
	st := recv.Status()
	if !st.Done || st.Windows != 12 || st.Sessions != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.Frames != totalFrames || st.Frames != 240 {
		t.Fatalf("status frames %d, windows carried %d (want 240)", st.Frames, totalFrames)
	}
	if st.LastWindow == nil || st.LastWindow.Seq != 11 {
		t.Fatalf("last window %+v", st.LastWindow)
	}
}

func TestSlidingWindowsVerifyAgainstFullRegeneration(t *testing.T) {
	// Overlapping windows (stride < span): frames persist across window
	// emissions instead of being re-detected, and every window still
	// matches a from-scratch recomputation bit-for-bit.
	v := dataset.MustLoad("small")
	var windows []WindowResult
	recv, err := New(Config{
		Model:        detect.YOLOv4Sim(),
		Class:        scene.Car,
		WindowSpan:   200,
		WindowStride: 100,
		Sources:      []*scene.Video{v},
		Verify:       true,
		OnWindow:     func(res WindowResult) { windows = append(windows, res) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamRun(t, recv, []*camera.Node{smallNode(t, v, 0.1, 160)}, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	// Windows [0,200), [100,300), ... [1000,1200): 11 of them.
	if len(windows) != 11 {
		t.Fatalf("emitted %d windows, want 11", len(windows))
	}
	for i, res := range windows {
		if res.Lo != i*100 || res.Hi != i*100+200 || res.Estimate.N != 200 {
			t.Fatalf("window %d bounds %+v", i, res)
		}
	}
}

func TestMultiSessionLoopExtendsTimeline(t *testing.T) {
	// A camera that loops its corpus models unbounded video: stream
	// positions keep growing across sessions and windows keep coming.
	v := dataset.MustLoad("small")
	recv, err := New(Config{
		Model:      detect.YOLOv4Sim(),
		Class:      scene.Car,
		WindowSpan: 300,
		Sources:    []*scene.Video{v},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*camera.Node{smallNode(t, v, 0.05, 160), smallNode(t, v, 0.05, 160)}
	if err := streamRun(t, recv, nodes, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	st := recv.Status()
	if st.Sessions != 2 {
		t.Fatalf("sessions = %d", st.Sessions)
	}
	// 2400 positions at span 300: all 8 windows complete at clean end.
	if st.Windows != 8 {
		t.Fatalf("windows = %d, want 8", st.Windows)
	}
	if st.LastWindow.Hi != 2400 {
		t.Fatalf("last window %+v", st.LastWindow)
	}
}

func TestDeltaExactIncrementalMatchesFullRegeneration(t *testing.T) {
	// With temporal delta detection on (exact mode), the replay backend
	// produces outputs through DeltaRun reuse; Verify pins them
	// bit-identical to independent per-frame detection plus a fresh
	// estimator — the incremental==full acceptance equivalence.
	detect.SetDeltaMode(detect.DeltaExact)
	detect.ResetCaches()
	defer func() {
		detect.SetDeltaMode(detect.DeltaOff)
		detect.ResetCaches()
	}()
	v := dataset.MustLoad("small")
	recv, err := New(Config{
		Model:      detect.YOLOv4Sim(),
		Class:      scene.Car,
		WindowSpan: 150,
		Sources:    []*scene.Video{v},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamRun(t, recv, []*camera.Node{smallNode(t, v, 0.15, 160)}, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if st := recv.Status(); st.Windows != 8 {
		t.Fatalf("windows = %d, want 8", st.Windows)
	}
}

func TestDriftEventOnInjectedShift(t *testing.T) {
	// Loop 1 streams the profiled corpus; loop 2 streams a same-length
	// corpus whose traffic regime shifted (tripled car rate) — the
	// scene-change the drift detector exists to flag. Windows from loop
	// 1 must stay under the threshold, and the shift must raise
	// DriftEvents. The threshold sits above the within-corpus window
	// variation (short windows of a regime-structured corpus diverge
	// ~0.3-0.55 from the corpus-wide histogram; see DESIGN.md §12 on
	// calibration).
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	baseline, err := CorpusBaseline(context.Background(), v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	shiftedCfg := dataset.SmallConfig()
	shiftedCfg.Name = "small-shifted"
	shiftedCfg.CarRate *= 3
	shifted, err := scene.Generate(shiftedCfg)
	if err != nil {
		t.Fatal(err)
	}
	var windows []WindowResult
	var drifts []DriftEvent
	recv, err := New(Config{
		Model:          m,
		Class:          scene.Car,
		WindowSpan:     300,
		Sources:        []*scene.Video{v, shifted},
		Baseline:       baseline,
		DriftThreshold: 0.65,
		OnWindow:       func(res WindowResult) { windows = append(windows, res) },
		OnDrift:        func(ev DriftEvent) { drifts = append(drifts, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*camera.Node{smallNode(t, v, 0.4, 160), smallNode(t, shifted, 0.4, 160)}
	if err := streamRun(t, recv, nodes, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 8 {
		t.Fatalf("emitted %d windows, want 8", len(windows))
	}
	for _, res := range windows[:4] {
		if res.Drifted {
			t.Fatalf("clean window %d flagged as drifted (divergence %.3f)", res.Seq, res.Divergence)
		}
	}
	if len(drifts) == 0 {
		divs := make([]float64, 0, len(windows))
		for _, res := range windows {
			divs = append(divs, res.Divergence)
		}
		t.Fatalf("injected shift raised no drift events; window divergences: %v", divs)
	}
	for _, ev := range drifts {
		if ev.Lo < 1200 {
			t.Fatalf("drift event %+v on a clean-corpus window", ev)
		}
		if ev.Divergence <= ev.Threshold {
			t.Fatalf("drift event below threshold: %+v", ev)
		}
	}
	if st := recv.Status(); st.Drifts != len(drifts) || st.LastDrift == nil {
		t.Fatalf("status drift accounting %+v vs %d events", recv.Status(), len(drifts))
	}
}

func TestCancelMidStreamDropsPartialWindow(t *testing.T) {
	// Cancelling after the third window must stop the run with the
	// context's error and emit nothing further — the partially filled
	// fourth window is never persisted.
	v := dataset.MustLoad("small")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted []WindowResult
	recv, err := New(Config{
		Model:      detect.YOLOv4Sim(),
		Class:      scene.Car,
		WindowSpan: 100,
		Sources:    []*scene.Video{v},
		OnWindow: func(res WindowResult) {
			emitted = append(emitted, res)
			if len(emitted) == 3 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = streamRun(t, recv, []*camera.Node{smallNode(t, v, 0.3, 160)}, ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run returned %v, want context.Canceled", err)
	}
	if len(emitted) != 3 {
		t.Fatalf("emitted %d windows after cancellation, want 3", len(emitted))
	}
	st := recv.Status()
	if !st.Done || st.Windows != 3 {
		t.Fatalf("status %+v", st)
	}
	if st.LastWindow.Seq != 2 {
		t.Fatalf("last window %+v leaked past cancellation", st.LastWindow)
	}
}

func TestWirePixelsBackend(t *testing.T) {
	// The wire backend detects on the transmitted rasters themselves; no
	// replay source is needed.
	v := dataset.MustLoad("small")
	recv, err := New(Config{
		Model:      detect.YOLOv4Sim(),
		Class:      scene.Car,
		WindowSpan: 400,
		WirePixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamRun(t, recv, []*camera.Node{smallNode(t, v, 0.05, 160)}, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	st := recv.Status()
	if st.Windows != 3 || st.Frames != 60 {
		t.Fatalf("status %+v", st)
	}
}

func TestStreamTotalsAdvance(t *testing.T) {
	before := Totals()
	v := dataset.MustLoad("small")
	recv, err := New(Config{
		Model:      detect.YOLOv4Sim(),
		Class:      scene.Car,
		WindowSpan: 600,
		Sources:    []*scene.Video{v},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamRun(t, recv, []*camera.Node{smallNode(t, v, 0.02, 160)}, context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	after := Totals()
	if after.Frames-before.Frames != 24 {
		t.Fatalf("frame totals advanced by %d, want 24", after.Frames-before.Frames)
	}
	if after.Windows-before.Windows != 2 {
		t.Fatalf("window totals advanced by %d, want 2", after.Windows-before.Windows)
	}
}

func TestConfigValidation(t *testing.T) {
	m := detect.YOLOv4Sim()
	v := dataset.MustLoad("small")
	cases := []Config{
		{Class: scene.Car, WindowSpan: 10, Sources: []*scene.Video{v}},             // no model
		{Model: m, WindowSpan: 0, Sources: []*scene.Video{v}},                      // no span
		{Model: m, WindowSpan: 10, WindowStride: 20, Sources: []*scene.Video{v}},   // stride > span
		{Model: m, WindowSpan: 10},                                                 // replay without sources
		{Model: m, WindowSpan: 10, WirePixels: true, Verify: true},                 // verify needs replay
		{Model: m, WindowSpan: 10, Sources: []*scene.Video{v}, DriftThreshold: -1}, // bad threshold
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestBaselineDivergence(t *testing.T) {
	b, err := NewBaseline([]float64{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Divergence([]float64{0, 0, 1, 1}); d != 0 {
		t.Fatalf("identical distribution diverges %v", d)
	}
	if d := b.Divergence([]float64{2, 2}); d != 1 {
		t.Fatalf("disjoint distribution diverges %v, want 1", d)
	}
	if d := b.Divergence([]float64{0, 0, 0, 0}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("half-moved distribution diverges %v, want 0.5", d)
	}
	if b.Mean != 0.5 {
		t.Fatalf("baseline mean %v", b.Mean)
	}
	if _, err := NewBaseline(nil); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
