// Package stream turns the plan/execute pipeline from batch into a
// long-running service: the paper's system model has cameras
// *continuously* pushing degraded frames to the central video query
// processor, and this package is the central side of that arrangement.
//
// A Receiver consumes camera sessions over the transport framing
// (MsgConfig → MsgBackground → MsgFrame… → MsgEnd, repeated — a camera
// that loops its corpus models unbounded video) and maintains windowed
// profiles in the Privid style: aggregates are answered per window of W
// consecutive stream positions rather than over the endless whole, each
// carrying the any-time Hoeffding-Serfling bound of
// estimate.StreamingEstimator. Window refresh is incremental — on
// advance, departed frames' contributions are evicted
// (estimate.Window.Advance) and arriving frames folded in, with
// detector outputs produced by the PR 6 temporal delta path
// (detect.DeltaRun) so steady-state frames cost far less than full
// detection. A drift detector compares each completed window's
// detector-output distribution against a profiled corpus baseline
// (stats.DistinctFrequencies over internal/outputs columns) and emits a
// typed DriftEvent when the divergence crosses a threshold — the
// live-vs-profile diagnosis question posed by causal physical error
// discovery.
//
// Cancellation contract: Run checks its context at every message and
// never emits a partial window — cancelling tears down in-flight
// detection work and discards the window being filled. Callers
// cancelling a Run that is blocked in a transport read must also close
// the underlying connection (the server does; see the package tests).
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"smokescreen/internal/camera"
	"smokescreen/internal/codec"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/transport"
)

// DefaultDriftThreshold is the total-variation distance above which a
// window is flagged when the config leaves the threshold zero.
const DefaultDriftThreshold = 0.25

// Config describes one ingest stream.
type Config struct {
	// Model is the detector run centrally over the stream.
	Model *detect.Model
	// Class is the object class the windowed aggregate counts.
	Class scene.Class
	// Agg is the per-window aggregate (AVG, SUM or COUNT over per-frame
	// class counts). Zero value is AVG.
	Agg estimate.Agg
	// Params are the estimator knobs; zero value means
	// estimate.DefaultParams.
	Params estimate.Params
	// Pointwise selects the fixed-n bound instead of the default
	// any-time bound. Streams are watched and stopped adaptively, so
	// any-time is the sound default.
	Pointwise bool

	// WindowSpan is W: the bounded duration, in stream positions, each
	// windowed answer covers. Required.
	WindowSpan int
	// WindowStride is the distance between consecutive window starts.
	// Zero defaults to WindowSpan (tumbling windows); smaller values
	// produce overlapping sliding windows.
	WindowStride int

	// Sources are the corpora the camera sessions replay, in session
	// order (the last entry repeats for later sessions). The replay
	// detection backend — the default — runs the detector against the
	// source corpus at the transmitted resolution through a session-long
	// detect.DeltaRun, mirroring what central detection of the
	// transmitted pixels produces (the camera's noise seeding is pinned
	// to the local pipeline's). Required unless WirePixels is set.
	Sources []*scene.Video
	// WirePixels detects on the received rasters themselves
	// (camera.Session.Detect) instead of replaying the source corpus.
	// Costlier and incompatible with FullRefresh/Verify (re-detection
	// would require retaining every window's pixels), but exercises the
	// full wire path.
	WirePixels bool

	// Baseline, when set, enables drift detection against it.
	Baseline *Baseline
	// DriftThreshold is the total-variation distance that raises a
	// DriftEvent; zero means DefaultDriftThreshold.
	DriftThreshold float64

	// FullRefresh recomputes every completed window from scratch (fresh
	// detection per frame, fresh estimator) instead of reading the
	// incrementally maintained state — the A/B baseline for the
	// incremental-refresh benchmarks. Replay backend only.
	FullRefresh bool
	// Verify cross-checks each completed window's incremental state
	// against a from-scratch recomputation and fails the run on
	// mismatch: bit-identical in delta modes off/exact, within the
	// bounded-mode fragility surcharge otherwise. Replay backend only.
	Verify bool

	// OnWindow, when set, observes every completed window (called from
	// the Run goroutine).
	OnWindow func(WindowResult)
	// OnDrift, when set, observes every drift event (called from the Run
	// goroutine, after the window's OnWindow).
	OnDrift func(DriftEvent)
}

// WindowResult is one completed window's profile.
type WindowResult struct {
	Seq    int // window sequence number, from 0
	Lo, Hi int // stream positions covered: [Lo, Hi)
	// Estimate is the windowed aggregate with its error bound: N is the
	// window span, Sample the frames the degraded stream delivered.
	Estimate estimate.Estimate
	// Frames is the number of observed frames folded into the window.
	Frames int
	// Divergence is the drift distance against the baseline (zero when
	// drift detection is off).
	Divergence float64
	// Drifted reports whether this window raised a DriftEvent.
	Drifted bool
}

// Status is a point-in-time snapshot of a running stream.
type Status struct {
	Sessions   int  // camera sessions consumed (MsgConfig seen)
	Frames     int  // frames folded into windows
	Late       int  // frames dropped as stale (behind the window)
	Position   int  // highest stream position observed + 1
	Windows    int  // completed windows emitted
	NextWindow int  // sequence number of the window currently filling
	WindowLag  int  // positions accumulated past the last completed window
	Drifts     int  // drift events raised
	Done       bool // Run returned
	// Live is the bound over the partially filled current window; it is
	// advisory (the window has not completed) and never persisted.
	Live estimate.Estimate
	// LastWindow and LastDrift are the most recent completed window and
	// drift event; nil before the first.
	LastWindow *WindowResult
	LastDrift  *DriftEvent
}

// Process-wide counters, exported for daemon /metrics like
// transport.Totals.
var (
	totalFrames  atomic.Int64
	totalLate    atomic.Int64
	totalWindows atomic.Int64
	totalDrifts  atomic.Int64
)

// Counters is a snapshot of process-wide streaming totals.
type Counters struct {
	Frames  int64
	Late    int64
	Windows int64
	Drifts  int64
}

// Totals returns cumulative streaming counters summed over every
// Receiver in the process.
func Totals() Counters {
	return Counters{
		Frames:  totalFrames.Load(),
		Late:    totalLate.Load(),
		Windows: totalWindows.Load(),
		Drifts:  totalDrifts.Load(),
	}
}

// Receiver ingests one camera connection. Run is single-goroutine;
// Status may be called concurrently from any goroutine.
type Receiver struct {
	cfg    Config
	thresh float64

	mu sync.Mutex
	st Status
}

// New validates the config and builds a receiver.
func New(cfg Config) (*Receiver, error) {
	if cfg.Model == nil {
		return nil, errors.New("stream: config needs a model")
	}
	if cfg.WindowSpan <= 0 {
		return nil, fmt.Errorf("stream: window span %d invalid", cfg.WindowSpan)
	}
	if cfg.WindowStride < 0 || cfg.WindowStride > cfg.WindowSpan {
		return nil, fmt.Errorf("stream: window stride %d outside (0, span %d]", cfg.WindowStride, cfg.WindowSpan)
	}
	if cfg.WindowStride == 0 {
		cfg.WindowStride = cfg.WindowSpan
	}
	if cfg.Params == (estimate.Params{}) {
		cfg.Params = estimate.DefaultParams()
	}
	if cfg.WirePixels {
		if cfg.FullRefresh || cfg.Verify {
			return nil, errors.New("stream: FullRefresh/Verify need the replay backend (they re-detect window frames)")
		}
	} else if len(cfg.Sources) == 0 {
		return nil, errors.New("stream: replay backend needs at least one source video")
	}
	thresh := cfg.DriftThreshold
	if thresh == 0 {
		thresh = DefaultDriftThreshold
	}
	if thresh < 0 || thresh > 1 || math.IsNaN(thresh) {
		return nil, fmt.Errorf("stream: drift threshold %v outside [0, 1]", cfg.DriftThreshold)
	}
	return &Receiver{cfg: cfg, thresh: thresh}, nil
}

// SetBaseline installs (or replaces) the drift baseline. It must be
// called before Run starts — the server computes the corpus baseline
// after New, under the stream job's cancellable context, and installs
// it here; Run's goroutine reads the config unlocked.
func (r *Receiver) SetBaseline(b *Baseline) {
	r.cfg.Baseline = b
}

// Status returns a snapshot of the stream's progress.
func (r *Receiver) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// heldFrame remembers where a window position came from, so completed
// windows can be recomputed from scratch (FullRefresh / Verify).
type heldFrame struct {
	video *scene.Video
	idx   int
}

// ingest is Run's single-goroutine working state.
type ingest struct {
	r    *Receiver
	cfg  *Config
	conn *transport.Conn

	w        *estimate.Window
	seq      int // next window to complete
	base     int // stream position of the current session's frame 0
	session  *camera.Session
	source   *scene.Video // replay source for the current session
	res      int          // transmitted resolution
	run      *detect.DeltaRun
	held     map[int]heldFrame
	prunedLo int
}

// Run consumes camera sessions from conn until a clean end-of-stream
// (EOF between sessions), an error, or cancellation. It returns nil on
// clean end; ctx.Err() when cancelled. Cancellation and errors never
// emit the partially filled window.
func (r *Receiver) Run(ctx context.Context, conn *transport.Conn) error {
	w, err := estimate.NewWindow(r.cfg.Agg, r.cfg.WindowSpan, r.cfg.Params, !r.cfg.Pointwise)
	if err != nil {
		return err
	}
	ing := &ingest{r: r, cfg: &r.cfg, conn: conn, w: w, held: map[int]heldFrame{}}
	defer func() { ing.run.Close() }()
	defer func() {
		r.mu.Lock()
		r.st.Done = true
		r.mu.Unlock()
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		msgType, payload, err := conn.Receive()
		if err != nil {
			// A teardown that closed the connection under us is a
			// cancellation, not a wire error.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if errors.Is(err, io.EOF) {
				if ing.session != nil {
					return errors.New("stream: connection ended mid-session")
				}
				// Clean end: the stream's total length is known, so
				// every window that fits completes; a trailing partial
				// window is discarded, never persisted.
				return ing.completeThrough(ing.base)
			}
			return err
		}
		if err := ing.handle(ctx, msgType, payload); err != nil {
			return err
		}
	}
}

func (ing *ingest) handle(ctx context.Context, msgType byte, payload []byte) error {
	switch msgType {
	case transport.MsgConfig:
		if ing.session != nil {
			return errors.New("stream: config message mid-session")
		}
		cfg, err := camera.DecodeConfig(payload)
		if err != nil {
			return err
		}
		return ing.startSession(cfg)
	case transport.MsgBackground:
		if ing.session == nil {
			return errors.New("stream: background before config")
		}
		fr, err := codec.DecodeFrame(payload)
		if err != nil {
			return err
		}
		if fr.Raster == nil {
			return errors.New("stream: background message without pixels")
		}
		ing.session.Background = fr.Raster
		return nil
	case transport.MsgFrame:
		if ing.session == nil || ing.session.Background == nil {
			return errors.New("stream: frame before config/background")
		}
		fr, err := codec.DecodeFrame(payload)
		if err != nil {
			return err
		}
		if fr.Raster == nil {
			return errors.New("stream: frame message without pixels")
		}
		return ing.frame(ctx, camera.ReceivedFrame{Index: fr.Index, Raster: fr.Raster})
	case transport.MsgEnd:
		if ing.session == nil {
			return errors.New("stream: end before config")
		}
		ing.base += ing.session.Config.TotalFrames
		ing.session = nil
		return nil
	default:
		return fmt.Errorf("stream: unknown message type %d", msgType)
	}
}

// startSession begins a camera session: position fr.Index maps to stream
// position base+fr.Index, so looped sessions extend the timeline instead
// of rewinding it.
func (ing *ingest) startSession(cfg camera.Config) error {
	ing.session = &camera.Session{Config: cfg}
	if !ing.cfg.WirePixels {
		sources := ing.cfg.Sources
		src := sources[minInt(ing.seqSessions(), len(sources)-1)]
		if src.NumFrames() != cfg.TotalFrames {
			return fmt.Errorf("stream: session %q announces %d frames but replay source holds %d",
				cfg.Name, cfg.TotalFrames, src.NumFrames())
		}
		if !ing.cfg.Model.ValidResolution(cfg.Resolution) {
			return fmt.Errorf("stream: session resolution %d invalid for %s", cfg.Resolution, ing.cfg.Model.Name)
		}
		if src != ing.source || cfg.Resolution != ing.res {
			// The delta run's reuse entries are keyed to one (video,
			// resolution); a source or resolution change starts fresh.
			ing.run.Close()
			ing.source, ing.res = src, cfg.Resolution
			ing.run = ing.cfg.Model.NewDeltaRun(src, cfg.Resolution)
		}
	}
	ing.r.mu.Lock()
	ing.r.st.Sessions++
	ing.r.mu.Unlock()
	return nil
}

// seqSessions returns how many sessions have already started.
func (ing *ingest) seqSessions() int {
	ing.r.mu.Lock()
	defer ing.r.mu.Unlock()
	return ing.r.st.Sessions
}

// frame folds one received frame into the current window, completing
// any windows its arrival proves full (frames arrive in position order:
// the camera transmits its sampled plan sorted).
func (ing *ingest) frame(ctx context.Context, fr camera.ReceivedFrame) error {
	if fr.Index < 0 || fr.Index >= ing.session.Config.TotalFrames {
		return fmt.Errorf("stream: frame index %d outside session of %d frames", fr.Index, ing.session.Config.TotalFrames)
	}
	pos := ing.base + fr.Index
	// Arriving at pos means every position below it has been delivered
	// (or skipped by the plan): windows ending at or before pos are
	// complete.
	if err := ing.completeThrough(pos); err != nil {
		return err
	}
	if pos < ing.w.Lo() {
		totalLate.Add(1)
		ing.r.mu.Lock()
		ing.r.st.Late++
		ing.r.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Cancelled: skip the detector work; the partial window is
		// dropped by Run's unwind.
		return err
	}
	var count float64
	if ing.cfg.WirePixels {
		count = float64(detect.CountClass(ing.session.Detect(ing.cfg.Model, fr), ing.cfg.Class))
	} else {
		count = float64(detect.CountClass(ing.detectReplay(fr.Index), ing.cfg.Class))
	}
	if !ing.w.ObserveFrame(pos, count) {
		totalLate.Add(1)
		ing.r.mu.Lock()
		ing.r.st.Late++
		ing.r.mu.Unlock()
		return nil
	}
	ing.held[pos] = heldFrame{video: ing.source, idx: fr.Index}
	ing.prune()
	totalFrames.Add(1)
	ing.r.mu.Lock()
	ing.r.st.Frames++
	if pos+1 > ing.r.st.Position {
		ing.r.st.Position = pos + 1
	}
	ing.r.st.WindowLag = pos + 1 - ing.seq*ing.cfg.WindowStride
	ing.r.st.Live = ing.w.Current()
	ing.r.mu.Unlock()
	return nil
}

// detectReplay produces frame idx's detections through the session-long
// delta run (or plain detection when delta mode is off).
func (ing *ingest) detectReplay(idx int) []detect.Detection {
	if ing.run != nil {
		return ing.run.DetectFrame(idx)
	}
	return ing.cfg.Model.DetectFrame(ing.source, idx, ing.res)
}

// prune forgets held-frame bookkeeping for positions the window has
// evicted. Positions are monotone, so the sweep is O(1) amortised.
func (ing *ingest) prune() {
	for ; ing.prunedLo < ing.w.Lo(); ing.prunedLo++ {
		delete(ing.held, ing.prunedLo)
	}
}

// completeThrough emits every window whose upper bound is at or before
// limit.
func (ing *ingest) completeThrough(limit int) error {
	span, stride := ing.cfg.WindowSpan, ing.cfg.WindowStride
	for ing.seq*stride+span <= limit {
		lo := ing.seq * stride
		ing.w.Advance(lo)
		ing.prune()
		res := WindowResult{
			Seq:      ing.seq,
			Lo:       lo,
			Hi:       lo + span,
			Estimate: ing.w.Current(),
			Frames:   ing.w.Count(),
		}
		if ing.cfg.FullRefresh || ing.cfg.Verify {
			full := ing.recomputeWindow()
			if ing.cfg.Verify {
				if err := ing.verify(res.Estimate, full); err != nil {
					return err
				}
			}
			if ing.cfg.FullRefresh {
				res.Estimate = full
			}
		}
		if ing.cfg.Baseline != nil {
			_, values := ing.w.Snapshot()
			res.Divergence = ing.cfg.Baseline.Divergence(values)
			res.Drifted = res.Divergence > ing.r.thresh
		}
		ing.emit(res)
		ing.seq++
	}
	return nil
}

// recomputeWindow rebuilds the current window from scratch: fresh
// detection of every held frame (no temporal reuse) into a fresh
// estimator — the full-regeneration baseline incremental refresh is
// measured against.
func (ing *ingest) recomputeWindow() estimate.Estimate {
	fresh, err := estimate.NewWindow(ing.cfg.Agg, ing.cfg.WindowSpan, ing.cfg.Params, !ing.cfg.Pointwise)
	if err != nil {
		panic(err) // the receiver's own config built a window already
	}
	fresh.Advance(ing.w.Lo())
	frames, _ := ing.w.Snapshot()
	for _, pos := range frames {
		h := ing.held[pos]
		dets := ing.cfg.Model.DetectFrame(h.video, h.idx, ing.res)
		fresh.ObserveFrame(pos, float64(detect.CountClass(dets, ing.cfg.Class)))
	}
	return fresh.Current()
}

// verify checks the incremental window state against the from-scratch
// recomputation. With delta off or exact the detector outputs are
// byte-identical and integer counts make the estimator arithmetic
// exact, so equality is bitwise; bounded mode may have spliced
// detections on fragile frames, admitting a deviation up to the
// accounted fragility surcharge.
func (ing *ingest) verify(inc, full estimate.Estimate) error {
	if inc == full {
		return nil
	}
	if detect.DeltaDetectMode() == detect.DeltaBounded && ing.source != nil {
		surcharge := detect.DeltaSurcharge(ing.source, ing.cfg.Model.Name, ing.res)
		relVal := relDiff(inc.Value, full.Value)
		relErr := math.Abs(inc.ErrBound - full.ErrBound)
		if inc.Sample == full.Sample && inc.N == full.N &&
			relVal <= surcharge+1e-9 && relErr <= surcharge+1e-9 {
			return nil
		}
		return fmt.Errorf("stream: window %d incremental state %+v deviates from full regeneration %+v beyond bounded-mode surcharge %v",
			ing.seq, inc, full, surcharge)
	}
	return fmt.Errorf("stream: window %d incremental state %+v != full regeneration %+v", ing.seq, inc, full)
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d / scale
}

// emit publishes a completed window (and its drift event, if any).
func (ing *ingest) emit(res WindowResult) {
	totalWindows.Add(1)
	var ev *DriftEvent
	if res.Drifted {
		totalDrifts.Add(1)
		ev = &DriftEvent{
			Seq:          res.Seq,
			Lo:           res.Lo,
			Hi:           res.Hi,
			Divergence:   res.Divergence,
			Threshold:    ing.r.thresh,
			WindowMean:   windowMean(ing.w),
			BaselineMean: ing.cfg.Baseline.Mean,
			Frames:       res.Frames,
		}
	}
	ing.r.mu.Lock()
	st := &ing.r.st
	st.Windows++
	st.NextWindow = res.Seq + 1
	st.WindowLag = maxInt(0, st.Position-(res.Seq+1)*ing.cfg.WindowStride)
	cp := res
	st.LastWindow = &cp
	if ev != nil {
		st.Drifts++
		e := *ev
		st.LastDrift = &e
	}
	ing.r.mu.Unlock()
	if ing.cfg.OnWindow != nil {
		ing.cfg.OnWindow(res)
	}
	if ev != nil && ing.cfg.OnDrift != nil {
		ing.cfg.OnDrift(*ev)
	}
}

// windowMean returns the plain mean of the window's observations (for
// drift reporting; the estimate's Value folds in bound shrinkage).
func windowMean(w *estimate.Window) float64 {
	_, values := w.Snapshot()
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
