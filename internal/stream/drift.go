package stream

import (
	"context"
	"errors"
	"fmt"

	"smokescreen/internal/detect"
	"smokescreen/internal/outputs"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// Drift detection answers the live-system diagnosis question: does the
// detector-output distribution the stream is producing still look like
// the corpus the profile was generated over? Profiles promise error
// bounds *relative to the profiled distribution*; when the scene drifts
// (lighting change, sensor degradation, traffic regime shift), those
// promises quietly stop describing reality. The detector summarises
// each completed window as a distinct-value histogram
// (stats.DistinctFrequencies, the paper's (s_i, F_i) decomposition) and
// measures its total-variation distance from the baseline histogram.

// Baseline is the reference detector-output distribution drift is
// measured against: the (value, frequency) histogram of a profiled
// corpus, plus its mean for human-readable event reporting.
type Baseline struct {
	Values []float64 // sorted distinct per-frame outputs
	Freqs  []float64 // fraction of frames with each value
	Mean   float64
}

// NewBaseline summarises a series of per-frame detector outputs.
func NewBaseline(xs []float64) (*Baseline, error) {
	if len(xs) == 0 {
		return nil, errors.New("stream: baseline needs at least one output")
	}
	values, freqs := stats.DistinctFrequencies(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return &Baseline{Values: values, Freqs: freqs, Mean: sum / float64(len(xs))}, nil
}

// CorpusBaseline builds the baseline from the profiled corpus itself:
// the full detector-output column for (v, m, class) at resolution p,
// served by the internal/outputs store — so a daemon that already
// generated profiles pays nothing extra for the series.
func CorpusBaseline(ctx context.Context, v *scene.Video, m *detect.Model, class scene.Class, p int) (*Baseline, error) {
	series, err := outputs.Full(ctx, v, m, class, p)
	if err != nil {
		return nil, fmt.Errorf("stream: corpus baseline: %w", err)
	}
	return NewBaseline(series)
}

// Divergence returns the total-variation distance between the
// baseline's histogram and the histogram of xs, in [0, 1]: 0 for
// identical distributions, 1 for disjoint supports. TV distance is the
// natural choice for these integer-valued count histograms — it is the
// largest difference in probability the two distributions assign to any
// event, so a threshold t reads as "some detector-output event changed
// probability by more than t".
func (b *Baseline) Divergence(xs []float64) float64 {
	values, freqs := stats.DistinctFrequencies(xs)
	var tv float64
	i, j := 0, 0
	for i < len(b.Values) || j < len(values) {
		switch {
		case j >= len(values) || (i < len(b.Values) && b.Values[i] < values[j]):
			tv += b.Freqs[i]
			i++
		case i >= len(b.Values) || values[j] < b.Values[i]:
			tv += freqs[j]
			j++
		default:
			d := b.Freqs[i] - freqs[j]
			if d < 0 {
				d = -d
			}
			tv += d
			i++
			j++
		}
	}
	return tv / 2
}

// DriftEvent reports one window whose detector-output distribution
// departed from the baseline beyond the configured threshold.
type DriftEvent struct {
	Seq        int     // window sequence number
	Lo, Hi     int     // stream positions covered
	Divergence float64 // total-variation distance from the baseline
	Threshold  float64 // configured trigger
	// WindowMean and BaselineMean orient the operator: which way the
	// distribution moved.
	WindowMean   float64
	BaselineMean float64
	Frames       int // observed frames in the window
}

// String renders the event for logs.
func (e DriftEvent) String() string {
	return fmt.Sprintf("drift: window %d [%d,%d) diverged %.3f (threshold %.3f); window mean %.3f vs baseline %.3f over %d frames",
		e.Seq, e.Lo, e.Hi, e.Divergence, e.Threshold, e.WindowMean, e.BaselineMean, e.Frames)
}
