package scene

import (
	"math"
	"testing"

	"smokescreen/internal/raster"
)

// viewedVideo returns the test corpus observed through a view exercising
// every pixel transform.
func viewedVideo(t *testing.T, vw View) *Video {
	t.Helper()
	v := mustGenerate(t, testConfig())
	return v.WithView(vw)
}

// TestViewRegionIndependence is the soundness property behind region
// rendering under views: any region render of a viewed corpus must equal
// the corresponding crop of the full-frame render. Blur reads beyond the
// region, occlusion is position-keyed, quantization is pointwise — a
// region-dependent result would mean detector patches see different
// pixels than the full frames the ground truth comes from.
func TestViewRegionIndependence(t *testing.T) {
	views := map[string]View{
		"blur-odd":  {BlurLen: 7},
		"blur-even": {BlurLen: 8},
		"blur-max":  {BlurLen: MaxBlurLen},
		"quantize":  {Levels: 16},
		"occlusion": {Occlusion: 0.3},
		"combined":  {BlurLen: 9, Levels: 32, Occlusion: 0.2},
	}
	regions := []raster.Rect{
		raster.RectWH(40, 40, 200, 200),
		raster.RectWH(0, 0, 17, 13),  // frame corner: blur window clipped left
		raster.RectWH(300, 100, 20, 60),
		raster.RectWH(0, 0, 320, 180), // full frame through the region path
	}
	for name, vw := range views {
		v := viewedVideo(t, vw)
		native := v.RenderNative(3)
		for _, region := range regions {
			region = region.Intersect(raster.RectWH(0, 0, v.Config.Width, v.Config.Height))
			sub := v.RenderRegion(3, region)
			for y := 0; y < sub.H; y++ {
				for x := 0; x < sub.W; x++ {
					got := sub.At(x, y)
					want := native.At(region.MinX+x, region.MinY+y)
					if math.Float32bits(got) != math.Float32bits(want) {
						t.Fatalf("%s: region %v differs from full frame at (%d,%d): %v vs %v",
							name, region, x, y, got, want)
					}
				}
			}
		}
	}
}

// TestViewDeterministicAcrossParallelism pins the bit-identical contract
// for full viewed renders at raster parallelism 1, 2, 4 and 8.
func TestViewDeterministicAcrossParallelism(t *testing.T) {
	prev := raster.Parallelism()
	t.Cleanup(func() { raster.SetParallelism(prev) })

	render := func(workers int) *raster.Image {
		raster.SetParallelism(workers)
		v := viewedVideo(t, View{BlurLen: 9, Levels: 32, Occlusion: 0.2})
		return v.RenderNative(5)
	}
	base := render(1)
	for _, workers := range []int{2, 4, 8} {
		img := render(workers)
		for i := range base.Pix {
			if math.Float32bits(base.Pix[i]) != math.Float32bits(img.Pix[i]) {
				t.Fatalf("viewed render differs between 1 and %d workers at pixel %d", workers, i)
			}
		}
	}
}

// TestViewTransformsChangePixels: each axis actually degrades the image
// (the property tests above would pass vacuously for a no-op).
func TestViewTransformsChangePixels(t *testing.T) {
	base := mustGenerate(t, testConfig())
	raw := base.RenderNative(3)
	for name, vw := range map[string]View{
		"blur":      {BlurLen: 9},
		"quantize":  {Levels: 4},
		"occlusion": {Occlusion: 0.3},
	} {
		img := base.WithView(vw).RenderNative(3)
		diff := 0
		for i := range raw.Pix {
			if raw.Pix[i] != img.Pix[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Errorf("%s: view changed no pixels", name)
		}
	}
}

// TestViewComposition: WithView on an already-viewed video merges to the
// tighter setting on every axis and adds noise sigmas.
func TestViewComposition(t *testing.T) {
	v := mustGenerate(t, testConfig())
	a := v.WithView(View{ExtraNoise: 0.1, BlurLen: 7, Levels: 32, Occlusion: 0.1})
	b := a.WithView(View{ExtraNoise: 0.05, BlurLen: 5, Levels: 16, Occlusion: 0.3})
	got := b.View()
	want := View{ExtraNoise: 0.15000001, BlurLen: 7, Levels: 16, Occlusion: 0.3}
	if math.Abs(float64(got.ExtraNoise-want.ExtraNoise)) > 1e-6 {
		t.Errorf("composed noise %v, want ~%v", got.ExtraNoise, want.ExtraNoise)
	}
	if got.BlurLen != want.BlurLen || got.Levels != want.Levels || got.Occlusion != want.Occlusion {
		t.Errorf("composed view %+v, want %+v", got, want)
	}
	if noised := v.WithNoise(0.2); noised.View() != (View{ExtraNoise: 0.2}) {
		t.Errorf("WithNoise view %+v", noised.View())
	}
}

// TestOcclusionMaskDeterministic: the mask is a pure function of (corpus
// seed, density) — same video regenerated, same mask; density scales the
// obstruction count.
func TestOcclusionMaskDeterministic(t *testing.T) {
	m1 := viewedVideo(t, View{Occlusion: 0.3}).occlusionMask()
	m2 := viewedVideo(t, View{Occlusion: 0.3}).occlusionMask()
	count := func(m []bool) int {
		n := 0
		for _, b := range m {
			if b {
				n++
			}
		}
		return n
	}
	if count(m1) == 0 {
		t.Fatal("occlusion mask empty at density 0.3")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("occlusion mask not deterministic across generations")
		}
	}
	sparse := viewedVideo(t, View{Occlusion: 0.05}).occlusionMask()
	if count(sparse) >= count(m1) {
		t.Fatalf("density 0.05 mask (%d px) not sparser than 0.3 (%d px)", count(sparse), count(m1))
	}
}

// TestViewValidate covers the envelope checks.
func TestViewValidate(t *testing.T) {
	for name, vw := range map[string]View{
		"noise":       {ExtraNoise: 0.6},
		"blur":        {BlurLen: MaxBlurLen + 1},
		"neg blur":    {BlurLen: -1},
		"levels 1":    {Levels: 1},
		"levels 300":  {Levels: 300},
		"occlusion":   {Occlusion: 0.7},
		"neg occl":    {Occlusion: -0.1},
	} {
		if vw.Validate() == nil {
			t.Errorf("%s: invalid view accepted", name)
		}
	}
	if err := (View{ExtraNoise: 0.1, BlurLen: 9, Levels: 2, Occlusion: 0.5}).Validate(); err != nil {
		t.Errorf("valid view rejected: %v", err)
	}
}
