package scene

import "smokescreen/internal/raster"

// Background returns the static native-resolution background raster: a
// vertical luminance gradient (sky-to-road), deterministic clutter texture,
// and painted lane markings — observed through the video's pixel view, so
// that detector background subtraction cancels everything static (blur
// smear of the markings, lens dirt, quantization bands) exactly as it
// cancels the raw background on a base corpus. The raster is rendered once
// per Video and cached; a static surveillance camera sees the same
// background every frame.
func (v *Video) Background() *raster.Image {
	if !v.view.PixelTransforms() {
		return v.rawBackground()
	}
	v.bgViewOnce.Do(func() {
		raw := v.rawBackground()
		img := raster.New(raw.W, raw.H)
		full := raster.RectWH(0, 0, raw.W, raw.H)
		v.applyViewInto(img, raw, full, full)
		v.bgView = img
		v.cachedBytes.Add(int64(len(img.Pix)) * 4)
	})
	return v.bgView
}

// rawBackground renders and caches the untransformed static background.
func (v *Video) rawBackground() *raster.Image {
	v.bgOnce.Do(func() {
		cfg := &v.Config
		img := raster.New(cfg.Width, cfg.Height)
		img.GradientV(cfg.Lighting.BackgroundTop, cfg.Lighting.BackgroundBottom)
		img.Texture(cfg.Seed^0xbac4615d, cfg.Lighting.TextureAmp)
		// Lane markings: thin bright dashes along each lane's lower edge.
		for _, lane := range cfg.LaneYs {
			y := lane + 18
			if y >= cfg.Height-1 {
				continue
			}
			mark := backgroundAt(cfg, y) + 0.12
			for x := 0; x < cfg.Width; x += 48 {
				img.FillRect(raster.RectWH(x, y, 24, 2), mark)
			}
		}
		v.bg = img
		v.cachedBytes.Add(int64(len(img.Pix)) * 4)
	})
	return v.bg
}

// BackgroundIntegral returns the summed-area table of the static
// background, built once per Video. Detectors use it to produce
// downsampled background patches in O(patch) table lookups instead of
// rendering and integrating the native-resolution region per evaluation.
func (v *Video) BackgroundIntegral() *raster.IntegralImage {
	v.bgIntOnce.Do(func() {
		v.bgInt = raster.Integral(v.Background())
		v.cachedBytes.Add(int64((v.Config.Width + 1) * (v.Config.Height + 1) * 8))
	})
	return v.bgInt
}

// RenderRegion renders the given native-coordinate region of frame i
// (background plus every intersecting object) into a fresh image whose
// origin is region.Min. Sensor noise is NOT applied here: noise is added
// after downsampling, by the detector, at the effective post-resample
// amplitude. The region is clipped to the frame bounds.
func (v *Video) RenderRegion(i int, region raster.Rect) *raster.Image {
	region = v.clipRegion(region, "RenderRegion")
	img := raster.New(region.W(), region.H())
	v.renderRegionInto(img, i, region)
	return img
}

// RenderRegionInto renders like RenderRegion but into dst, which must be
// sized region.W() x region.H() after clipping to the frame bounds. Every
// destination pixel is overwritten, so dst may come from raster.GetScratch
// — this is the allocation-free variant the detection hot path uses.
func (v *Video) RenderRegionInto(dst *raster.Image, i int, region raster.Rect) {
	region = v.clipRegion(region, "RenderRegionInto")
	if dst.W != region.W() || dst.H != region.H() {
		panic("scene: RenderRegionInto size mismatch")
	}
	v.renderRegionInto(dst, i, region)
}

func (v *Video) clipRegion(region raster.Rect, who string) raster.Rect {
	cfg := &v.Config
	region = region.Intersect(raster.RectWH(0, 0, cfg.Width, cfg.Height))
	if region.Empty() {
		panic("scene: " + who + " with empty region")
	}
	return region
}

func (v *Video) renderRegionInto(img *raster.Image, i int, region raster.Rect) {
	if !v.view.PixelTransforms() {
		v.rawRegionInto(img, i, region)
		return
	}
	// Pixel-view path: render the raw composite over a horizontally padded
	// source region (the blur window's reach, clipped to the frame), then
	// apply the view transforms into the destination. The pad carries
	// exactly the out-of-region pixels the blur can pull in, so the result
	// is bit-identical however the frame is decomposed into regions.
	left, right := v.view.blurReach()
	src := region
	src.MinX = max(src.MinX-left, 0)
	src.MaxX = min(src.MaxX+right, v.Config.Width)
	scratch := raster.GetScratch(src.W(), src.H())
	v.rawRegionInto(scratch, i, src)
	v.applyViewInto(img, scratch, region, src)
	raster.PutScratch(scratch)
}

// rawRegionInto renders the untransformed composite (raw background plus
// objects) of frame i over region into img.
func (v *Video) rawRegionInto(img *raster.Image, i int, region raster.Rect) {
	copyRegionRows(img, v.rawBackground(), region)
	frame := v.Frame(i)
	for idx := range frame.Objects {
		obj := &frame.Objects[idx]
		if obj.BBox.Intersect(region).Empty() {
			continue
		}
		drawObject(img, obj, region.MinX, region.MinY)
	}
}

// BackgroundRegion returns a copy of the static background over the given
// native-coordinate region. Detectors subtract this from rendered frames:
// with a fixed surveillance camera the background (gradient, clutter
// texture, lane markings) is constant and cancels exactly, so only real
// objects and sensor noise survive the difference.
func (v *Video) BackgroundRegion(region raster.Rect) *raster.Image {
	region = v.clipRegion(region, "BackgroundRegion")
	img := raster.New(region.W(), region.H())
	v.backgroundRegionInto(img, region)
	return img
}

// BackgroundRegionInto copies like BackgroundRegion but into dst (sized to
// the clipped region), overwriting every pixel; dst may be pooled scratch.
func (v *Video) BackgroundRegionInto(dst *raster.Image, region raster.Rect) {
	region = v.clipRegion(region, "BackgroundRegionInto")
	if dst.W != region.W() || dst.H != region.H() {
		panic("scene: BackgroundRegionInto size mismatch")
	}
	v.backgroundRegionInto(dst, region)
}

func (v *Video) backgroundRegionInto(img *raster.Image, region raster.Rect) {
	copyRegionRows(img, v.Background(), region)
}

// copyRegionRows copies the native-coordinate region of src into img row
// by row; img must be sized region.W() x region.H().
func copyRegionRows(img, src *raster.Image, region raster.Rect) {
	for y := 0; y < img.H; y++ {
		srcRow := (region.MinY + y) * src.W
		copy(img.Pix[y*img.W:(y+1)*img.W], src.Pix[srcRow+region.MinX:srcRow+region.MaxX])
	}
}

// RenderNative renders the full frame i at native resolution. This is the
// reference path; the detector's fast path renders only object patches and
// is property-tested against this one.
func (v *Video) RenderNative(i int) *raster.Image {
	return v.RenderRegion(i, raster.RectWH(0, 0, v.Config.Width, v.Config.Height))
}

// drawObject paints one object into img, whose origin corresponds to
// native coordinates (offX, offY).
func drawObject(img *raster.Image, obj *Object, offX, offY int) {
	box := raster.Rect{
		MinX: obj.BBox.MinX - offX,
		MinY: obj.BBox.MinY - offY,
		MaxX: obj.BBox.MaxX - offX,
		MaxY: obj.BBox.MaxY - offY,
	}
	if obj.Elliptic {
		img.FillEllipse(box, obj.Intensity)
		return
	}
	// Cars: body box plus a darker cabin strip, giving the blob internal
	// structure like a real vehicle roofline. The cabin stays offset from
	// the body (rather than pulled toward a fixed gray) so it never
	// coincidentally matches the background and splits the blob.
	img.FillRect(box, obj.Intensity)
	cabinW := box.W() * 5 / 10
	cabinH := box.H() * 4 / 10
	if cabinW >= 2 && cabinH >= 2 {
		cabin := raster.RectWH(box.MinX+box.W()/4, box.MinY, cabinW, cabinH)
		cabinInt := obj.Intensity - 0.25
		if cabinInt < 0.02 {
			cabinInt = 0.02
		}
		img.FillRect(cabin, cabinInt)
	}
}
