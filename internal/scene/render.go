package scene

import "smokescreen/internal/raster"

// Background returns the static native-resolution background raster: a
// vertical luminance gradient (sky-to-road), deterministic clutter texture,
// and painted lane markings. The background is rendered once per Video and
// cached; a static surveillance camera sees the same background every frame.
func (v *Video) Background() *raster.Image {
	v.bgOnce.Do(func() {
		cfg := &v.Config
		img := raster.New(cfg.Width, cfg.Height)
		img.GradientV(cfg.Lighting.BackgroundTop, cfg.Lighting.BackgroundBottom)
		img.Texture(cfg.Seed^0xbac4615d, cfg.Lighting.TextureAmp)
		// Lane markings: thin bright dashes along each lane's lower edge.
		for _, lane := range cfg.LaneYs {
			y := lane + 18
			if y >= cfg.Height-1 {
				continue
			}
			mark := backgroundAt(cfg, y) + 0.12
			for x := 0; x < cfg.Width; x += 48 {
				img.FillRect(raster.RectWH(x, y, 24, 2), mark)
			}
		}
		v.bg = img
	})
	return v.bg
}

// BackgroundIntegral returns the summed-area table of the static
// background, built once per Video. Detectors use it to produce
// downsampled background patches in O(patch) table lookups instead of
// rendering and integrating the native-resolution region per evaluation.
func (v *Video) BackgroundIntegral() *raster.IntegralImage {
	v.bgIntOnce.Do(func() {
		v.bgInt = raster.Integral(v.Background())
	})
	return v.bgInt
}

// RenderRegion renders the given native-coordinate region of frame i
// (background plus every intersecting object) into a fresh image whose
// origin is region.Min. Sensor noise is NOT applied here: noise is added
// after downsampling, by the detector, at the effective post-resample
// amplitude. The region is clipped to the frame bounds.
func (v *Video) RenderRegion(i int, region raster.Rect) *raster.Image {
	region = v.clipRegion(region, "RenderRegion")
	img := raster.New(region.W(), region.H())
	v.renderRegionInto(img, i, region)
	return img
}

// RenderRegionInto renders like RenderRegion but into dst, which must be
// sized region.W() x region.H() after clipping to the frame bounds. Every
// destination pixel is overwritten, so dst may come from raster.GetScratch
// — this is the allocation-free variant the detection hot path uses.
func (v *Video) RenderRegionInto(dst *raster.Image, i int, region raster.Rect) {
	region = v.clipRegion(region, "RenderRegionInto")
	if dst.W != region.W() || dst.H != region.H() {
		panic("scene: RenderRegionInto size mismatch")
	}
	v.renderRegionInto(dst, i, region)
}

func (v *Video) clipRegion(region raster.Rect, who string) raster.Rect {
	cfg := &v.Config
	region = region.Intersect(raster.RectWH(0, 0, cfg.Width, cfg.Height))
	if region.Empty() {
		panic("scene: " + who + " with empty region")
	}
	return region
}

func (v *Video) renderRegionInto(img *raster.Image, i int, region raster.Rect) {
	v.backgroundRegionInto(img, region)
	frame := v.Frame(i)
	for idx := range frame.Objects {
		obj := &frame.Objects[idx]
		if obj.BBox.Intersect(region).Empty() {
			continue
		}
		drawObject(img, obj, region.MinX, region.MinY)
	}
}

// BackgroundRegion returns a copy of the static background over the given
// native-coordinate region. Detectors subtract this from rendered frames:
// with a fixed surveillance camera the background (gradient, clutter
// texture, lane markings) is constant and cancels exactly, so only real
// objects and sensor noise survive the difference.
func (v *Video) BackgroundRegion(region raster.Rect) *raster.Image {
	region = v.clipRegion(region, "BackgroundRegion")
	img := raster.New(region.W(), region.H())
	v.backgroundRegionInto(img, region)
	return img
}

// BackgroundRegionInto copies like BackgroundRegion but into dst (sized to
// the clipped region), overwriting every pixel; dst may be pooled scratch.
func (v *Video) BackgroundRegionInto(dst *raster.Image, region raster.Rect) {
	region = v.clipRegion(region, "BackgroundRegionInto")
	if dst.W != region.W() || dst.H != region.H() {
		panic("scene: BackgroundRegionInto size mismatch")
	}
	v.backgroundRegionInto(dst, region)
}

func (v *Video) backgroundRegionInto(img *raster.Image, region raster.Rect) {
	bg := v.Background()
	for y := 0; y < img.H; y++ {
		srcRow := (region.MinY + y) * bg.W
		copy(img.Pix[y*img.W:(y+1)*img.W], bg.Pix[srcRow+region.MinX:srcRow+region.MaxX])
	}
}

// RenderNative renders the full frame i at native resolution. This is the
// reference path; the detector's fast path renders only object patches and
// is property-tested against this one.
func (v *Video) RenderNative(i int) *raster.Image {
	return v.RenderRegion(i, raster.RectWH(0, 0, v.Config.Width, v.Config.Height))
}

// drawObject paints one object into img, whose origin corresponds to
// native coordinates (offX, offY).
func drawObject(img *raster.Image, obj *Object, offX, offY int) {
	box := raster.Rect{
		MinX: obj.BBox.MinX - offX,
		MinY: obj.BBox.MinY - offY,
		MaxX: obj.BBox.MaxX - offX,
		MaxY: obj.BBox.MaxY - offY,
	}
	if obj.Elliptic {
		img.FillEllipse(box, obj.Intensity)
		return
	}
	// Cars: body box plus a darker cabin strip, giving the blob internal
	// structure like a real vehicle roofline. The cabin stays offset from
	// the body (rather than pulled toward a fixed gray) so it never
	// coincidentally matches the background and splits the blob.
	img.FillRect(box, obj.Intensity)
	cabinW := box.W() * 5 / 10
	cabinH := box.H() * 4 / 10
	if cabinW >= 2 && cabinH >= 2 {
		cabin := raster.RectWH(box.MinX+box.W()/4, box.MinY, cabinW, cabinH)
		cabinInt := obj.Intensity - 0.25
		if cabinInt < 0.02 {
			cabinInt = 0.02
		}
		img.FillRect(cabin, cabinInt)
	}
}
