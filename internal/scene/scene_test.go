package scene

import (
	"math"
	"testing"
	"testing/quick"

	"smokescreen/internal/raster"
)

// testConfig returns a small but non-trivial corpus configuration.
func testConfig() Config {
	return Config{
		Name:           "test",
		Width:          320,
		Height:         320,
		NumFrames:      2000,
		Seed:           42,
		Lighting:       Lighting{BackgroundTop: 0.35, BackgroundBottom: 0.55, TextureAmp: 0.02, NoiseSigma: 0.02},
		CarRate:        0.05,
		CarLifetime:    60,
		CarMinW:        40,
		CarMaxW:        80,
		CarContrast:    0.3,
		PersonRate:     0.01,
		PersonLifetime: 120,
		PersonContrast: 0.25,
		FaceProb:       0.4,
		BusyFactor:     1.6,
		RegimeLength:   200,
		LaneYs:         []int{120, 180},
		SidewalkYs:     []int{60, 260},
	}
}

func mustGenerate(t testing.TB, cfg Config) *Video {
	t.Helper()
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestClassString(t *testing.T) {
	if Car.String() != "car" || Person.String() != "person" || Face.String() != "face" {
		t.Fatal("class names wrong")
	}
	if got := Class(9).String(); got != "class(9)" {
		t.Fatalf("unknown class name = %q", got)
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range []Class{Car, Person, Face} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("dog"); err == nil {
		t.Fatal("ParseClass accepted unknown class")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"width":    func(c *Config) { c.Width = 0 },
		"frames":   func(c *Config) { c.NumFrames = 0 },
		"lifetime": func(c *Config) { c.CarLifetime = 0 },
		"carW":     func(c *Config) { c.CarMaxW = c.CarMinW - 1 },
		"busy":     func(c *Config) { c.BusyFactor = 2.5 },
		"regime":   func(c *Config) { c.RegimeLength = 0 },
		"lanes":    func(c *Config) { c.LaneYs = nil },
		"face":     func(c *Config) { c.FaceProb = 1.5 },
	}
	for name, mutate := range mutations {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("%s: invalid config accepted", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, testConfig())
	b := mustGenerate(t, testConfig())
	if a.NumFrames() != b.NumFrames() {
		t.Fatal("frame counts differ")
	}
	for i := 0; i < a.NumFrames(); i++ {
		fa, fb := a.Frame(i), b.Frame(i)
		if len(fa.Objects) != len(fb.Objects) {
			t.Fatalf("frame %d object counts differ", i)
		}
		for j := range fa.Objects {
			if fa.Objects[j] != fb.Objects[j] {
				t.Fatalf("frame %d object %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg2 := testConfig()
	cfg2.Seed = 43
	a := mustGenerate(t, testConfig())
	b := mustGenerate(t, cfg2)
	same := 0
	for i := 0; i < a.NumFrames(); i++ {
		if a.Frame(i).Count(Car) == b.Frame(i).Count(Car) {
			same++
		}
	}
	if same == a.NumFrames() {
		t.Fatal("different seeds produced identical car-count series")
	}
}

func TestObjectsWithinFrame(t *testing.T) {
	v := mustGenerate(t, testConfig())
	bounds := raster.RectWH(0, 0, v.Config.Width, v.Config.Height)
	for i := 0; i < v.NumFrames(); i++ {
		for _, obj := range v.Frame(i).Objects {
			if obj.BBox.Empty() {
				t.Fatalf("frame %d has empty bbox", i)
			}
			if obj.BBox.Intersect(bounds) != obj.BBox {
				t.Fatalf("frame %d object %+v escapes the frame", i, obj.BBox)
			}
		}
	}
}

func TestMeanCountMatchesLittlesLaw(t *testing.T) {
	// Mean concurrent objects = arrival rate x mean visible lifetime.
	cfg := testConfig()
	cfg.NumFrames = 20000
	v := mustGenerate(t, cfg)
	want := cfg.CarRate * float64(cfg.CarLifetime)
	got := v.MeanCount(Car)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("mean car count = %v, Little's law predicts %v", got, want)
	}
}

func TestClassFrameFraction(t *testing.T) {
	cfg := testConfig()
	cfg.NumFrames = 20000
	v := mustGenerate(t, cfg)
	pf := v.ClassFrameFraction(Person)
	ff := v.ClassFrameFraction(Face)
	if pf <= 0 || pf >= 1 {
		t.Fatalf("person fraction = %v", pf)
	}
	if ff <= 0 || ff >= pf {
		t.Fatalf("face fraction = %v, person fraction = %v", ff, pf)
	}
	// M/G/infinity occupancy: P(>=1 person) ~ 1 - exp(-rate*lifetime).
	want := 1 - math.Exp(-cfg.PersonRate*float64(cfg.PersonLifetime))
	if math.Abs(pf-want) > 0.35*want {
		t.Fatalf("person fraction = %v, occupancy model predicts %v", pf, want)
	}
}

func TestFaceInsidePerson(t *testing.T) {
	v := mustGenerate(t, testConfig())
	for i := 0; i < v.NumFrames(); i++ {
		frame := v.Frame(i)
		for _, obj := range frame.Objects {
			if obj.Class != Face {
				continue
			}
			inside := false
			for _, p := range frame.Objects {
				if p.Class == Person && p.ID == obj.ID && p.BBox.Intersect(obj.BBox) == obj.BBox {
					inside = true
					break
				}
			}
			if !inside {
				t.Fatalf("frame %d: face %+v not inside its person", i, obj.BBox)
			}
		}
	}
}

func TestTemporalAutocorrelation(t *testing.T) {
	// Object lifetimes span frames, so adjacent car counts must correlate —
	// the video property that distinguishes frame sampling from i.i.d. rows.
	cfg := testConfig()
	cfg.NumFrames = 10000
	v := mustGenerate(t, cfg)
	counts := make([]float64, v.NumFrames())
	for i := range counts {
		counts[i] = float64(v.Frame(i).Count(Car))
	}
	if got := lag1Autocorrelation(counts); got < 0.5 {
		t.Fatalf("lag-1 autocorrelation = %v, want >= 0.5", got)
	}
}

func TestBusyRegimeCorrelatesCarsAndPersons(t *testing.T) {
	// The shared busy/quiet regime must correlate person presence with car
	// counts — the mechanism behind image-removal bias (paper Section 5.2.2).
	cfg := testConfig()
	cfg.NumFrames = 30000
	cfg.PersonRate = 0.02
	v := mustGenerate(t, cfg)
	var withSum, withN, withoutSum, withoutN float64
	for i := 0; i < v.NumFrames(); i++ {
		f := v.Frame(i)
		cars := float64(f.Count(Car))
		if f.Contains(Person) {
			withSum += cars
			withN++
		} else {
			withoutSum += cars
			withoutN++
		}
	}
	if withN == 0 || withoutN == 0 {
		t.Fatal("degenerate person presence split")
	}
	withMean := withSum / withN
	withoutMean := withoutSum / withoutN
	if withMean <= withoutMean*1.05 {
		t.Fatalf("car count with persons (%v) not above without (%v)", withMean, withoutMean)
	}
}

func TestBackgroundCachedAndDeterministic(t *testing.T) {
	v := mustGenerate(t, testConfig())
	bg1 := v.Background()
	bg2 := v.Background()
	if bg1 != bg2 {
		t.Fatal("background not cached")
	}
	v2 := mustGenerate(t, testConfig())
	other := v2.Background()
	for i := range bg1.Pix {
		if bg1.Pix[i] != other.Pix[i] {
			t.Fatal("background not deterministic across generations")
		}
	}
}

func TestRenderRegionMatchesNative(t *testing.T) {
	v := mustGenerate(t, testConfig())
	// Find a frame with at least one car.
	fi := -1
	for i := 0; i < v.NumFrames(); i++ {
		if v.Frame(i).Count(Car) > 0 {
			fi = i
			break
		}
	}
	if fi < 0 {
		t.Fatal("no frame with a car")
	}
	native := v.RenderNative(fi)
	region := raster.RectWH(40, 40, 200, 200)
	sub := v.RenderRegion(fi, region)
	for y := 0; y < sub.H; y++ {
		for x := 0; x < sub.W; x++ {
			if sub.At(x, y) != native.At(region.MinX+x, region.MinY+y) {
				t.Fatalf("region render differs at (%d,%d)", x, y)
			}
		}
	}
}

func TestRenderedObjectVisible(t *testing.T) {
	v := mustGenerate(t, testConfig())
	for i := 0; i < v.NumFrames(); i++ {
		frame := v.Frame(i)
		for _, obj := range frame.Objects {
			if obj.Class != Car || obj.BBox.W() < 20 || obj.BBox.H() < 10 {
				continue
			}
			img := v.RenderNative(i)
			cx, cy := obj.BBox.Center()
			// The painted body pixel differs from the local background.
			bgVal := backgroundAt(&v.Config, int(cy))
			// Sample at 1/4 height to avoid the cabin strip.
			bodyY := obj.BBox.MinY + obj.BBox.H()*3/4
			got := img.At(int(cx), bodyY)
			if math.Abs(float64(got-bgVal)) < 0.05 {
				t.Fatalf("frame %d car at (%v,%v) nearly invisible: %v vs bg %v", i, cx, cy, got, bgVal)
			}
			return // one solid check is enough; rendering is deterministic
		}
	}
	t.Fatal("no sufficiently large car found")
}

func TestRenderRegionPanicsOnEmpty(t *testing.T) {
	v := mustGenerate(t, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("empty region did not panic")
		}
	}()
	v.RenderRegion(0, raster.RectWH(-10, -10, 5, 5))
}

func lag1Autocorrelation(xs []float64) float64 {
	n := len(xs)
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestGeneratePropertyNoEscapes(t *testing.T) {
	// Random valid configurations must generate without panicking and keep
	// every object inside the frame.
	property := func(seed uint64, framesRaw, rateRaw, lifeRaw uint8) bool {
		cfg := testConfig()
		cfg.Seed = seed
		cfg.NumFrames = int(framesRaw)%300 + 50
		cfg.CarRate = float64(rateRaw%40)/100 + 0.01
		cfg.CarLifetime = int(lifeRaw)%100 + 5
		v, err := Generate(cfg)
		if err != nil {
			return false
		}
		bounds := raster.RectWH(0, 0, cfg.Width, cfg.Height)
		for i := 0; i < v.NumFrames(); i++ {
			for _, obj := range v.Frame(i).Objects {
				if obj.BBox.Empty() || obj.BBox.Intersect(bounds) != obj.BBox {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
