// Pixel-space corpus views: the deterministic render-time transforms
// behind the non-sampling intervention axes. A View is attached to a
// derived Video (Video.WithView); every render of that video — full
// frames, detector patches, the static background — passes through the
// same transform chain, so detectors see a consistently degraded world
// and background subtraction still cancels everything static.
//
// Transform order is fixed: motion blur (scene optics), then occlusion
// (dirt and scratches on the lens, in front of the blurred scene), then
// intensity quantization (the codec, last in any real capture chain).
// Extra sensor noise stays statistical: like the base corpus's own noise
// it is applied by detectors after downsampling at the effective
// amplitude, never baked into pixels (see Lighting.NoiseSigma).
//
// Every transform is a pure function of (view, frame pixels, native pixel
// position), so region renders are independent of the region choice: blur
// reads a horizontally padded source region carrying exactly the pixels
// its window can reach, occlusion looks up a full-frame mask by native
// coordinate, and quantization is pointwise.
package scene

import (
	"fmt"

	"smokescreen/internal/raster"
	"smokescreen/internal/stats"
)

// View is a canonical vector of pixel-space transforms applied to a corpus
// at render time. The zero View is the identity.
type View struct {
	// ExtraNoise is additional sensor noise sigma on top of the scene's
	// own, applied statistically by detectors post-downsample (the paper's
	// noise-addition intervention).
	ExtraNoise float32
	// BlurLen is the horizontal motion-blur streak length in native
	// pixels; 0 and 1 are the identity.
	BlurLen int
	// Levels is the number of uniform intensity quantization levels
	// (JPEG-style compression); 0 disables, minimum otherwise is 2.
	Levels int
	// Occlusion is the lens scratch/dirt density in [0, 0.5]: the
	// approximate fraction of obstruction events per unit of the catalog's
	// maximum (0.5 ≈ dozens of scratches and dirt spots).
	Occlusion float64
}

// occlusionShade is the intensity of lens dirt and scratches: near-black,
// as an obstruction in front of the scene blocks light rather than adding
// it. Static, so background subtraction cancels it except where it
// overlaps a moving object.
const occlusionShade = 0.05

// MaxBlurLen bounds the blur streak so its spill stays within the padding
// envelope region renders carry (and within the reach the degrade axis
// registry validates against).
const MaxBlurLen = 31

// Validate reports whether the view is within the supported envelope.
func (vw View) Validate() error {
	switch {
	case vw.ExtraNoise < 0 || vw.ExtraNoise > 0.5:
		return fmt.Errorf("scene: view noise %v out of [0, 0.5]", vw.ExtraNoise)
	case vw.BlurLen < 0 || vw.BlurLen > MaxBlurLen:
		return fmt.Errorf("scene: view blur length %d out of [0, %d]", vw.BlurLen, MaxBlurLen)
	case vw.Levels < 0 || vw.Levels == 1 || vw.Levels > 256:
		return fmt.Errorf("scene: view quantization levels %d not 0 or in [2, 256]", vw.Levels)
	case vw.Occlusion < 0 || vw.Occlusion > 0.5:
		return fmt.Errorf("scene: view occlusion density %v out of [0, 0.5]", vw.Occlusion)
	}
	return nil
}

// IsZero reports whether the view is the identity.
func (vw View) IsZero() bool { return vw == View{} }

// PixelTransforms reports whether the view changes rendered pixels (as
// opposed to only adding statistical noise).
func (vw View) PixelTransforms() bool {
	return vw.BlurLen > 1 || vw.Levels >= 2 || vw.Occlusion > 0
}

// blurReach returns how many columns the blur window extends left and
// right of each pixel (both zero when blur is off). Even lengths put the
// longer tail trailing (to the right), like a streak behind the motion.
func (vw View) blurReach() (left, right int) {
	if vw.BlurLen <= 1 {
		return 0, 0
	}
	return (vw.BlurLen - 1) / 2, vw.BlurLen / 2
}

// Spill returns the maximum distance, in native pixels, that a pixel's
// transformed value can depend on source pixels away from it. The temporal
// delta detector dilates object influence footprints by this much.
func (vw View) Spill() int {
	left, right := vw.blurReach()
	return max(left, right)
}

// WithView returns a view of the corpus observed through the given pixel
// transforms, generalizing WithNoise to the full intervention space. The
// derived Video shares the frame annotations; detectors treat it as a
// distinct corpus (all their caches key on the Video pointer), and every
// render path applies the transforms, so degradation reaches detection
// through the same pixel pipeline as everything else.
//
// Views compose: applying a view to an already-viewed video adds noise
// sigmas and keeps the tighter of each pixel transform (longer blur,
// fewer levels, denser occlusion).
func (v *Video) WithView(view View) *Video {
	if view.IsZero() {
		return v
	}
	merged := v.view
	merged.ExtraNoise += view.ExtraNoise
	if view.BlurLen > merged.BlurLen {
		merged.BlurLen = view.BlurLen
	}
	if view.Levels != 0 && (merged.Levels == 0 || view.Levels < merged.Levels) {
		merged.Levels = view.Levels
	}
	if view.Occlusion > merged.Occlusion {
		merged.Occlusion = view.Occlusion
	}
	cfg := v.Config
	cfg.Lighting.NoiseSigma += view.ExtraNoise
	return &Video{Config: cfg, frames: v.frames, view: merged}
}

// View returns the pixel-space view this video is observed through (the
// zero View for a base corpus).
func (v *Video) View() View { return v.view }

// CachedRasterBytes reports the bytes of lazily materialized per-Video
// rasters (backgrounds, integral table, occlusion mask) currently held by
// this Video value. The degrade view cache sums it over live views so
// detect.Stats can account for view-derived memory.
func (v *Video) CachedRasterBytes() int64 { return v.cachedBytes.Load() }

// applyViewInto writes the view-transformed pixels of dstRegion into dst,
// reading the raw composite from src, which must cover srcRegion — a
// horizontal superset of dstRegion expanded by the blur reach and clipped
// to the frame, on the same rows. Because the clip happens at frame
// bounds, MotionBlurHInto's edge normalization against src's bounds is
// identical to full-frame rendering, making the result independent of the
// region decomposition.
func (v *Video) applyViewInto(dst, src *raster.Image, dstRegion, srcRegion raster.Rect) {
	left, right := v.view.blurReach()
	raster.MotionBlurHInto(dst, src, left, right, dstRegion.MinX-srcRegion.MinX)
	if v.view.Occlusion > 0 {
		mask := v.occlusionMask()
		w := v.Config.Width
		for y := 0; y < dst.H; y++ {
			mrow := mask[(dstRegion.MinY+y)*w:]
			drow := dst.Pix[y*dst.W : (y+1)*dst.W]
			for x := range drow {
				if mrow[dstRegion.MinX+x] {
					drow[x] = occlusionShade
				}
			}
		}
	}
	if v.view.Levels >= 2 {
		raster.QuantizeLevels(dst, v.view.Levels)
	}
}

// occlusionMask lazily builds the full-frame lens obstruction mask:
// near-vertical scratches and round dirt spots, counts scaled by the
// view's density. The pattern is a pure function of (corpus seed, view
// occlusion density), so every render of the same viewed corpus — and
// every region of it — sees the same obstructions.
func (v *Video) occlusionMask() []bool {
	v.occOnce.Do(func() {
		cfg := &v.Config
		w, h := cfg.Width, cfg.Height
		mask := make([]bool, w*h)
		s := stats.NewStream(cfg.Seed ^ 0x0cc10ded)
		scratches := int(v.view.Occlusion*40 + 0.5)
		for k := 0; k < scratches; k++ {
			cs := s.ChildN(1, uint64(k))
			x0 := cs.Float64() * float64(w)
			slope := (cs.Float64() - 0.5) * 0.5 // near-vertical: |dx/dy| <= 0.25
			width := 1 + cs.Intn(2)
			for y := 0; y < h; y++ {
				x := int(x0 + slope*float64(y))
				for dx := 0; dx < width; dx++ {
					if x+dx >= 0 && x+dx < w {
						mask[y*w+x+dx] = true
					}
				}
			}
		}
		spots := int(v.view.Occlusion*100 + 0.5)
		for k := 0; k < spots; k++ {
			cs := s.ChildN(2, uint64(k))
			cx := cs.Float64() * float64(w)
			cy := cs.Float64() * float64(h)
			r := 1.5 + cs.Float64()*3.5
			for y := int(cy - r); y <= int(cy+r); y++ {
				if y < 0 || y >= h {
					continue
				}
				for x := int(cx - r); x <= int(cx+r); x++ {
					if x < 0 || x >= w {
						continue
					}
					dx, dy := float64(x)+0.5-cx, float64(y)+0.5-cy
					if dx*dx+dy*dy <= r*r {
						mask[y*w+x] = true
					}
				}
			}
		}
		v.occ = mask
		v.cachedBytes.Add(int64(len(mask)))
	})
	return v.occ
}
