package scene

import (
	"smokescreen/internal/raster"
	"sort"

	"smokescreen/internal/stats"
)

// track is a live object trajectory during generation.
type track struct {
	id        int
	class     Class
	x         float64 // left edge, native pixels (may be off-frame)
	y         int     // top edge
	w, h      int
	speed     float64 // pixels per frame, signed
	intensity float32
	hasFace   bool // persons only
	faceInt   float32
	age       int // frames since arrival
	faceFrom  int // face visible while faceFrom <= age < faceTo
	faceTo    int
}

// Generate simulates the corpus described by cfg and returns its
// ground-truth annotations. Generation is O(NumFrames * activeObjects) and
// deterministic given cfg.Seed.
func Generate(cfg Config) (*Video, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &Video{Config: cfg, frames: make([]Frame, cfg.NumFrames)}

	root := stats.NewStream(cfg.Seed)
	arrivals := root.Child(1)
	regimeStream := root.Child(2)
	trackStream := root.Child(3)

	busy := regimeStream.Bernoulli(0.5)
	quietFactor := 2 - cfg.BusyFactor
	switchProb := 1 / float64(cfg.RegimeLength)

	var live []*track
	nextID := 1
	// Error diffusion for face assignment: with small corpora a Bernoulli
	// draw per person can miss the configured face fraction entirely, so
	// every ceil(1/FaceProb)-th person (in expectation) carries a face.
	var faceAcc float64

	for fi := 0; fi < cfg.NumFrames; fi++ {
		// Regime evolution: a symmetric two-state chain with stationary
		// distribution 50/50 so the long-run mean rates equal the config.
		if regimeStream.Bernoulli(switchProb) {
			busy = !busy
		}
		mult := quietFactor
		if busy {
			mult = cfg.BusyFactor
		}

		// Arrivals.
		for k := arrivals.Poisson(cfg.CarRate * mult); k > 0; k-- {
			live = append(live, newCarTrack(&cfg, trackStream.Child(uint64(nextID)), nextID))
			nextID++
		}
		for k := arrivals.Poisson(cfg.PersonRate * mult); k > 0; k-- {
			faceAcc += cfg.FaceProb
			hasFace := faceAcc >= 1
			if hasFace {
				faceAcc--
			}
			live = append(live, newPersonTrack(&cfg, trackStream.Child(uint64(nextID)), nextID, hasFace))
			nextID++
		}

		// Advance and cull.
		alive := live[:0]
		for _, tr := range live {
			tr.x += tr.speed
			tr.age++
			if tr.speed > 0 && tr.x > float64(cfg.Width) {
				continue
			}
			if tr.speed < 0 && tr.x+float64(tr.w) < 0 {
				continue
			}
			alive = append(alive, tr)
		}
		live = alive

		// Materialise the frame annotation.
		frame := Frame{Index: fi}
		for _, tr := range live {
			bbox := clipToFrame(&cfg, tr)
			if bbox.Empty() {
				continue
			}
			frame.Objects = append(frame.Objects, Object{
				ID:        tr.id,
				Class:     tr.class,
				BBox:      bbox,
				Intensity: tr.intensity,
				Elliptic:  tr.class != Car,
			})
			if tr.class == Person && tr.hasFace && tr.age >= tr.faceFrom && tr.age < tr.faceTo {
				face := faceBox(bbox)
				if !face.Empty() {
					frame.Objects = append(frame.Objects, Object{
						ID:        tr.id,
						Class:     Face,
						BBox:      face,
						Intensity: tr.faceInt,
						Elliptic:  true,
					})
				}
			}
		}
		// Deterministic draw order: back-to-front by y, then by id.
		sort.Slice(frame.Objects, func(a, b int) bool {
			oa, ob := frame.Objects[a], frame.Objects[b]
			if oa.BBox.MinY != ob.BBox.MinY {
				return oa.BBox.MinY < ob.BBox.MinY
			}
			return oa.ID < ob.ID
		})
		v.frames[fi] = frame
	}
	return v, nil
}

func newCarTrack(cfg *Config, s *stats.Stream, id int) *track {
	lane := cfg.LaneYs[s.Intn(len(cfg.LaneYs))]
	w := cfg.CarMinW + s.Intn(cfg.CarMaxW-cfg.CarMinW+1)
	h := w / 2
	if h < 4 {
		h = 4
	}
	// Crossing time jitters +-20% around the configured lifetime.
	life := float64(cfg.CarLifetime) * (0.8 + 0.4*s.Float64())
	speed := (float64(cfg.Width) + float64(w)) / life
	dir := 1.0
	x := -float64(w)
	if lane%2 == 1 { // alternate lane directions like a two-way road
		dir = -1
		x = float64(cfg.Width)
	}
	sign := float32(1)
	if s.Bernoulli(0.5) {
		sign = -1
	}
	contrast := cfg.CarContrast * (0.75 + 0.5*float32(s.Float64()))
	bg := backgroundAt(cfg, lane)
	return &track{
		id:        id,
		class:     Car,
		x:         x,
		y:         lane - h/2,
		w:         w,
		h:         h,
		speed:     dir * speed,
		intensity: clampIntensity(bg + sign*contrast),
	}
}

func newPersonTrack(cfg *Config, s *stats.Stream, id int, hasFace bool) *track {
	side := cfg.LaneYs[0]
	if len(cfg.SidewalkYs) > 0 {
		side = cfg.SidewalkYs[s.Intn(len(cfg.SidewalkYs))]
	}
	w := 14 + s.Intn(11) // 14..24 native pixels wide
	h := w * 26 / 10
	life := float64(cfg.PersonLifetime) * (0.8 + 0.4*s.Float64())
	speed := (float64(cfg.Width) + float64(w)) / life
	dir := 1.0
	x := -float64(w)
	if s.Bernoulli(0.5) {
		dir = -1
		x = float64(cfg.Width)
	}
	sign := float32(1)
	if s.Bernoulli(0.6) { // clothing more often darker than pavement
		sign = -1
	}
	contrast := cfg.PersonContrast * (0.75 + 0.5*float32(s.Float64()))
	bg := backgroundAt(cfg, side)
	intensity := clampIntensity(bg + sign*contrast)
	faceFrom, faceTo := 0, int(life)+1
	if cfg.FaceDuration > 0 && cfg.FaceDuration < int(life) {
		faceFrom = (int(life) - cfg.FaceDuration) / 2
		faceTo = faceFrom + cfg.FaceDuration
	}
	return &track{
		id:        id,
		class:     Person,
		x:         x,
		y:         side - h/2,
		w:         w,
		h:         h,
		speed:     dir * speed,
		intensity: intensity,
		hasFace:   hasFace,
		faceFrom:  faceFrom,
		faceTo:    faceTo,
		// Faces render brighter than clothing (skin tone against fabric).
		faceInt: clampIntensity(intensity + 0.3),
	}
}

// clipToFrame converts a track's continuous position to an integer bbox
// clipped to the frame. Tracks partially off-frame keep their visible part.
func clipToFrame(cfg *Config, tr *track) (r raster.Rect) {
	x0 := int(tr.x)
	r = raster.Rect{MinX: x0, MinY: tr.y, MaxX: x0 + tr.w, MaxY: tr.y + tr.h}
	return r.Intersect(raster.Rect{MinX: 0, MinY: 0, MaxX: cfg.Width, MaxY: cfg.Height})
}

// faceBox returns the head region of a person bounding box: a centered
// square in the top ~20% of the body.
func faceBox(body raster.Rect) raster.Rect {
	size := body.W() * 55 / 100
	if size < 3 {
		return raster.Rect{}
	}
	cx := (body.MinX + body.MaxX) / 2
	return raster.Rect{
		MinX: cx - size/2,
		MinY: body.MinY + body.H()/20,
		MaxX: cx - size/2 + size,
		MaxY: body.MinY + body.H()/20 + size,
	}
}

// backgroundAt returns the background gradient intensity at row y.
func backgroundAt(cfg *Config, y int) float32 {
	t := float32(y) / float32(cfg.Height)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return cfg.Lighting.BackgroundTop + (cfg.Lighting.BackgroundBottom-cfg.Lighting.BackgroundTop)*t
}

func clampIntensity(v float32) float32 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}
