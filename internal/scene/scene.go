// Package scene simulates the surveillance-video worlds that substitute for
// the paper's real corpora (night-street and UA-DETRAC). A static camera
// watches a road: cars arrive by a regime-modulated Poisson process and
// drive across lanes, pedestrians walk along sidewalks, and some
// pedestrians have a visible face. Object lifetimes span many frames, so
// per-frame detector outputs carry the temporal autocorrelation real video
// has; a two-state busy/quiet regime makes "person present" and "car count"
// statistically correlated, which is what gives the paper's image-removal
// intervention its systematic bias.
//
// Scenes render to real pixel rasters (package raster); detection runs on
// the pixels. The simulator is fully deterministic given Config.Seed.
package scene

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smokescreen/internal/raster"
)

// Class identifies the kind of object a detector can report.
type Class uint8

// Object classes. Car is the analytical target in all of the paper's
// queries; Person and Face are the restricted classes of the image-removal
// intervention.
const (
	Car Class = iota
	Person
	Face
	NumClasses = 3
)

// String returns the lowercase class name used in queries and CLI flags.
func (c Class) String() string {
	switch c {
	case Car:
		return "car"
	case Person:
		return "person"
	case Face:
		return "face"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "car":
		return Car, nil
	case "person":
		return Person, nil
	case "face":
		return Face, nil
	}
	return 0, fmt.Errorf("scene: unknown class %q", s)
}

// Object is one ground-truth object instance visible in a frame. BBox is in
// native-resolution pixel coordinates.
type Object struct {
	ID        int   // stable identity across the frames of one track
	Class     Class // car / person / face
	BBox      raster.Rect
	Intensity float32 // paint intensity in [0,1]
	Elliptic  bool    // persons and faces render as ellipses, cars as boxes
}

// Frame is the ground-truth annotation of one video frame.
type Frame struct {
	Index   int
	Objects []Object
}

// Count returns the number of objects of class c in the frame.
func (f *Frame) Count(c Class) int {
	n := 0
	for i := range f.Objects {
		if f.Objects[i].Class == c {
			n++
		}
	}
	return n
}

// Contains reports whether the frame has at least one object of class c.
func (f *Frame) Contains(c Class) bool {
	for i := range f.Objects {
		if f.Objects[i].Class == c {
			return true
		}
	}
	return false
}

// Lighting describes the scene's photometric conditions. Night scenes have
// a darker, lower-contrast background and stronger sensor noise, which is
// why the same detector degrades faster with resolution on night-street
// than on UA-DETRAC.
type Lighting struct {
	BackgroundTop    float32 // gradient intensity at the top of the frame
	BackgroundBottom float32 // gradient intensity at the bottom
	TextureAmp       float32 // static background clutter amplitude
	NoiseSigma       float32 // per-frame sensor noise at native resolution
}

// Config parameterises a synthetic video corpus.
type Config struct {
	Name      string
	Width     int // native frame width in pixels
	Height    int // native frame height in pixels
	NumFrames int
	Seed      uint64
	Lighting  Lighting

	// Cars.
	CarRate     float64 // mean car arrivals per frame, averaged over regimes
	CarLifetime int     // mean frames a car remains visible
	CarMinW     int     // minimum car width at native resolution
	CarMaxW     int     // maximum car width at native resolution
	CarContrast float32 // mean |car intensity - local background|

	// Pedestrians.
	PersonRate     float64 // mean person arrivals per frame
	PersonLifetime int     // mean frames a person remains visible
	PersonContrast float32
	FaceProb       float64 // fraction of persons that carry a visible face
	// FaceDuration limits how many frames (the middle of the track) a
	// carried face is actually visible — pedestrians only face the camera
	// briefly. Zero means the whole track.
	FaceDuration int

	// Regime switching couples car and person intensity over time.
	BusyFactor   float64 // rate multiplier in the busy regime (>= 1)
	RegimeLength int     // mean regime duration in frames

	// Geometry: y-centers of car lanes and pedestrian sidewalks.
	LaneYs     []int
	SidewalkYs []int
}

// Validate reports configuration errors before generation.
func (c *Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("scene: invalid frame size %dx%d", c.Width, c.Height)
	case c.NumFrames <= 0:
		return fmt.Errorf("scene: NumFrames must be positive, got %d", c.NumFrames)
	case c.CarLifetime <= 0 || c.PersonLifetime <= 0:
		return fmt.Errorf("scene: lifetimes must be positive")
	case c.CarMinW <= 0 || c.CarMaxW < c.CarMinW:
		return fmt.Errorf("scene: invalid car width range [%d,%d]", c.CarMinW, c.CarMaxW)
	case c.BusyFactor < 1 || c.BusyFactor > 2:
		return fmt.Errorf("scene: BusyFactor must be in [1,2], got %v", c.BusyFactor)
	case c.RegimeLength <= 0:
		return fmt.Errorf("scene: RegimeLength must be positive")
	case len(c.LaneYs) == 0:
		return fmt.Errorf("scene: at least one lane required")
	case c.FaceProb < 0 || c.FaceProb > 1:
		return fmt.Errorf("scene: FaceProb out of [0,1]")
	}
	return nil
}

// Video is a generated corpus: per-frame ground-truth annotations plus a
// lazily rendered static background. Rendering individual frames is done
// on demand (RenderNative / RenderRegion) because materialising tens of
// thousands of full rasters would defeat the point of degradation.
type Video struct {
	Config Config

	frames []Frame

	// view is the pixel-space transform vector this Video is observed
	// through; the zero View for a base corpus. See view.go.
	view View

	bgOnce sync.Once
	bg     *raster.Image

	bgViewOnce sync.Once
	bgView     *raster.Image

	bgIntOnce sync.Once
	bgInt     *raster.IntegralImage

	occOnce sync.Once
	occ     []bool

	// cachedBytes accounts the lazily materialized rasters above, read by
	// CachedRasterBytes for the detect cache statistics.
	cachedBytes atomic.Int64
}

// WithNoise returns a view of the corpus captured with extra sensor noise
// added on top of the scene's own: the noise-addition intervention the
// paper lists alongside sampling, resolution and removal (Section 2.1).
// It is shorthand for WithView with only ExtraNoise set.
func (v *Video) WithNoise(extraSigma float32) *Video {
	if extraSigma <= 0 {
		return v
	}
	return v.WithView(View{ExtraNoise: extraSigma})
}

// NewVideo wraps hand-built frame annotations in a Video. Generate is the
// production constructor; NewVideo exists for tests and fuzz targets that
// need precise control over object placement (e.g. exercising the temporal
// delta detector with crafted motion). The Config is trusted: callers
// wanting validation should run cfg.Validate first.
func NewVideo(cfg Config, frames []Frame) *Video {
	return &Video{Config: cfg, frames: frames}
}

// NumFrames returns the corpus length N, the paper's population size.
func (v *Video) NumFrames() int { return len(v.frames) }

// Frame returns the ground-truth annotation of frame i.
func (v *Video) Frame(i int) *Frame {
	return &v.frames[i]
}

// ClassFrameFraction returns the fraction of frames containing at least
// one object of class c — the statistic the paper reports for "person"
// and "face" (e.g. 14.18% of night-street frames contain a person).
func (v *Video) ClassFrameFraction(c Class) float64 {
	n := 0
	for i := range v.frames {
		if v.frames[i].Contains(c) {
			n++
		}
	}
	return float64(n) / float64(len(v.frames))
}

// MeanCount returns the mean per-frame ground-truth count of class c.
func (v *Video) MeanCount(c Class) float64 {
	var sum int
	for i := range v.frames {
		sum += v.frames[i].Count(c)
	}
	return float64(sum) / float64(len(v.frames))
}
