package fleetd

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"smokescreen/internal/server"
	"smokescreen/internal/store"
)

// This file is the fleet's test and load bench: an in-process harness
// that stands up N real nodes on loopback listeners — real sockets, so
// forwarding, keep-alive pooling, and connection-refused failover behave
// exactly as across machines — plus a synthetic generator whose per-node
// invocation counters prove the dedup invariants (the hot-key herd must
// cost exactly one generation fleet-wide). cmd/smokeload and the
// BenchmarkFleetServe* family drive load scenarios through it.

// GenCounter records which node started generating which key. It is the
// harness's ground truth for the dedup invariants.
type GenCounter struct {
	mu     sync.Mutex
	perKey map[string]int
	byNode map[string]map[string]int
}

func NewGenCounter() *GenCounter {
	return &GenCounter{perKey: make(map[string]int), byNode: make(map[string]map[string]int)}
}

func (c *GenCounter) note(node, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.perKey[key]++
	if c.byNode[node] == nil {
		c.byNode[node] = make(map[string]int)
	}
	c.byNode[node][key]++
}

// Key returns how many generations of key started, fleet-wide.
func (c *GenCounter) Key(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perKey[key]
}

// Total returns how many generations started, fleet-wide.
func (c *GenCounter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.perKey {
		n += v
	}
	return n
}

// NodeFor returns a node that started generating key ("" if none did).
func (c *GenCounter) NodeFor(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for node, keys := range c.byNode {
		if keys[key] > 0 {
			return node
		}
	}
	return ""
}

// SyntheticGenerator is a deterministic stand-in for SystemGenerator:
// keys are content addresses of the canonical request, payloads are
// byte-identical for equal requests on every node, and Generate can hold
// for a clock-driven delay so scenarios can observe (and interrupt)
// in-flight work.
type SyntheticGenerator struct {
	// NodeName labels this generator's invocations in Counter.
	NodeName string
	// Counter receives invocation records; nil disables counting.
	Counter *GenCounter
	// Delay holds each generation open (0 = instant); canceled contexts
	// interrupt the hold.
	Delay time.Duration
	// Clock drives Delay; nil means SystemClock.
	Clock Clock
	// PayloadBytes sizes the artifact (default 4096).
	PayloadBytes int
}

// SyntheticKey returns the store key a SyntheticGenerator derives for a
// query with defaulted knobs — scenarios use it to place keys on a ring
// without constructing a generator.
func SyntheticKey(queryText string) string {
	req := server.GenRequest{Query: queryText}
	req.Normalize()
	return syntheticKey(req)
}

func syntheticKey(req server.GenRequest) string {
	canonical := fmt.Sprintf("synthetic\n%s|%d|%g|%g|%g", req.Query, req.Seed, req.Step, req.MaxFraction, req.EarlyStop)
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// Key implements server.Generator.
func (g *SyntheticGenerator) Key(req server.GenRequest) (string, string, error) {
	req.Normalize()
	return syntheticKey(req), req.Query, nil
}

// Generate implements server.Generator.
func (g *SyntheticGenerator) Generate(ctx context.Context, req server.GenRequest) ([]byte, error) {
	req.Normalize()
	key := syntheticKey(req)
	if g.Counter != nil {
		g.Counter.note(g.NodeName, key)
	}
	if g.Delay > 0 {
		clock := g.Clock
		if clock == nil {
			clock = SystemClock
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-clock.After(g.Delay):
		}
	}
	size := g.PayloadBytes
	if size <= 0 {
		size = 4096
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"key":%q,"query":%q,"seed":%d,"data":"`, key, req.Query, req.Seed)
	// Deterministic filler: a hash chain seeded by the key, so equal
	// requests produce byte-identical payloads on every node.
	block := sha256.Sum256([]byte(key))
	for buf.Len() < size {
		buf.WriteString(hex.EncodeToString(block[:]))
		block = sha256.Sum256(block[:])
	}
	buf.Truncate(size)
	buf.WriteString(`"}`)
	return buf.Bytes(), nil
}

// HarnessConfig assembles an in-process fleet.
type HarnessConfig struct {
	// Nodes is the fleet size (default 3).
	Nodes int
	// VNodes/Replicas parameterize the ring (package defaults if <= 0).
	VNodes   int
	Replicas int
	// LeaseTTL/ClaimPoll tune lease coordination (Node defaults if <= 0).
	LeaseTTL  time.Duration
	ClaimPoll time.Duration
	// GenDelay holds each synthetic generation open.
	GenDelay time.Duration
	// PayloadBytes sizes synthetic artifacts.
	PayloadBytes int
	// Workers/QueueDepth/RequestTimeout template each node's inner server.
	Workers        int
	QueueDepth     int
	RequestTimeout time.Duration
	// Dir is the root for per-node store directories. Required; the
	// caller owns cleanup (tests pass t.TempDir()).
	Dir string
	// Clock drives leases and the load scenarios' latency measurements;
	// nil means SystemClock.
	Clock Clock
	// Logf receives every node's log lines; nil discards them.
	Logf func(format string, args ...any)
}

// HarnessNode is one fleet member plus its listener.
type HarnessNode struct {
	Name  string // host:port — the node's ring identity
	URL   string
	Node  *Node
	Store *store.Store

	srv *http.Server
	ln  net.Listener
	// serveDone closes when the node's Serve loop returns, so teardown
	// can observe the serving goroutine actually finish instead of
	// leaving it to die after the test.
	serveDone chan struct{}
	alive     bool
}

// Harness is a running in-process fleet.
type Harness struct {
	Counter *GenCounter
	clock   Clock
	client  *http.Client

	mu    sync.Mutex
	nodes []*HarnessNode
}

// StartHarness binds cfg.Nodes loopback listeners, builds a node per
// listener (shared ring, per-node store under cfg.Dir), and serves them.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleetd: harness requires a store directory")
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := &Harness{
		Counter: NewGenCounter(),
		clock:   cfg.Clock,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}},
	}
	listeners := make([]net.Listener, 0, cfg.Nodes)
	names := make([]string, 0, cfg.Nodes)
	fail := func(err error) (*Harness, error) {
		for _, ln := range listeners {
			_ = ln.Close()
		}
		h.Close()
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("fleetd: harness listener: %w", err))
		}
		listeners = append(listeners, ln)
		names = append(names, ln.Addr().String())
	}
	for i, name := range names {
		st, err := store.Open(filepath.Join(cfg.Dir, fmt.Sprintf("n%d", i)))
		if err != nil {
			return fail(err)
		}
		node, err := NewNode(Config{
			Self:      name,
			Nodes:     names,
			VNodes:    cfg.VNodes,
			Replicas:  cfg.Replicas,
			LeaseTTL:  cfg.LeaseTTL,
			ClaimPoll: cfg.ClaimPoll,
			Store:     st,
			Generator: &SyntheticGenerator{
				NodeName:     name,
				Counter:      h.Counter,
				Delay:        cfg.GenDelay,
				Clock:        cfg.Clock,
				PayloadBytes: cfg.PayloadBytes,
			},
			Server: server.Config{
				Workers:        cfg.Workers,
				QueueDepth:     cfg.QueueDepth,
				RequestTimeout: cfg.RequestTimeout,
				Logf: func(format string, args ...any) {
					cfg.Logf("["+name+"] "+format, args...)
				},
			},
			Clock: cfg.Clock,
			Logf:  cfg.Logf,
		})
		if err != nil {
			return fail(err)
		}
		hn := &HarnessNode{
			Name:      name,
			URL:       "http://" + name,
			Node:      node,
			Store:     st,
			srv:       &http.Server{Handler: node.Handler()},
			ln:        listeners[i],
			serveDone: make(chan struct{}),
			alive:     true,
		}
		go func() {
			defer close(hn.serveDone)
			_ = hn.srv.Serve(hn.ln)
		}()
		h.nodes = append(h.nodes, hn)
	}
	return h, nil
}

// Nodes returns the fleet's members in listener order.
func (h *Harness) Nodes() []*HarnessNode {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*HarnessNode(nil), h.nodes...)
}

// Alive returns the members still serving.
func (h *Harness) Alive() []*HarnessNode {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*HarnessNode
	for _, hn := range h.nodes {
		if hn.alive {
			out = append(out, hn)
		}
	}
	return out
}

// Ring returns the (shared) placement ring.
func (h *Harness) Ring() *Ring { return h.nodes[0].Node.Ring() }

// URLFor returns the base URL serving name ("" if unknown or dead).
func (h *Harness) URLFor(name string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, hn := range h.nodes {
		if hn.Name == name && hn.alive {
			return hn.URL
		}
	}
	return ""
}

// Kill terminates the named node abruptly: running generations' contexts
// are canceled, held leases are NOT released (they expire), and the
// listener drops every connection — the closest an in-process harness
// gets to kill -9.
func (h *Harness) Kill(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, hn := range h.nodes {
		if hn.Name == name && hn.alive {
			hn.alive = false
			hn.Node.Kill()
			_ = hn.srv.Close()
			<-hn.serveDone
			return true
		}
	}
	return false
}

// Close drains and stops every live node.
func (h *Harness) Close() {
	h.mu.Lock()
	nodes := append([]*HarnessNode(nil), h.nodes...)
	h.mu.Unlock()
	for _, hn := range nodes {
		if !hn.alive {
			continue
		}
		hn.alive = false
		_ = hn.Node.Close()
		_ = hn.srv.Close()
		<-hn.serveDone
	}
	if h.client != nil {
		h.client.CloseIdleConnections()
	}
}

// Get fetches a profile by key through the given base URL.
func (h *Harness) Get(ctx context.Context, baseURL, key string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/profiles/"+key, nil)
	if err != nil {
		return 0, nil, err
	}
	return h.do(req)
}

// Post submits a generation request through the given base URL.
func (h *Harness) Post(ctx context.Context, baseURL string, genReq server.GenRequest) (int, []byte, error) {
	body := mustJSON(genReq)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/profiles", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return h.do(req)
}

func (h *Harness) do(req *http.Request) (int, []byte, error) {
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// ScrapeNode fetches and parses one live node's /metrics.
func (h *Harness) ScrapeNode(ctx context.Context, baseURL string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	status, body, err := h.do(req)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("fleetd: metrics scrape returned %d", status)
	}
	return ParseMetrics(bytes.NewReader(body))
}

// ScrapeFleet sums every live node's metrics by name.
func (h *Harness) ScrapeFleet(ctx context.Context) (map[string]int64, error) {
	totals := make(map[string]int64)
	for _, hn := range h.Alive() {
		m, err := h.ScrapeNode(ctx, hn.URL)
		if err != nil {
			return nil, err
		}
		for name, v := range m {
			totals[name] += v
		}
	}
	return totals, nil
}

// ParseMetrics reads the daemon's text exposition format ("name value"
// lines) into a map.
func ParseMetrics(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			continue // non-integer sample; fleet metrics are all integers
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
