package fleetd

import (
	"encoding/json"
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// TestRingDeterministicPlacement pins concrete placements. These goldens
// are what "identical across processes" means operationally: the hash is
// pure SHA-256 of the node and key strings, so any process — today's or
// a future build's — that computes different owners for these keys has
// broken fleet routing, and this test fails before a deploy does.
func TestRingDeterministicPlacement(t *testing.T) {
	ring, err := NewRing([]string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070"}, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"key-0": "10.0.0.3:7070",
		"key-1": "10.0.0.1:7070",
		"key-2": "10.0.0.2:7070",
		"key-3": "10.0.0.2:7070",
		"key-4": "10.0.0.2:7070",
	}
	for key, want := range golden {
		if got := ring.Owner(key); got != want {
			t.Errorf("Owner(%q) = %s, want %s", key, got, want)
		}
	}
}

// TestRingNodeOrderIrrelevant: the ring is a function of the node SET.
func TestRingNodeOrderIrrelevant(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2", "n2"}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(500) {
		ra, rb := a.Replicas(key), b.Replicas(key)
		if len(ra) != len(rb) {
			t.Fatalf("replica count diverged for %s", key)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("placement depends on node order: %s -> %v vs %v", key, ra, rb)
			}
		}
	}
}

// TestRingMarshalRoundTrip: a ring shipped over /v1/ring rebuilds to
// identical placement.
func TestRingMarshalRoundTrip(t *testing.T) {
	orig, err := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Ring
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.VNodes() != orig.VNodes() || decoded.ReplicaCount() != orig.ReplicaCount() {
		t.Fatalf("parameters diverged: %d/%d vs %d/%d", decoded.VNodes(), decoded.ReplicaCount(), orig.VNodes(), orig.ReplicaCount())
	}
	for _, key := range testKeys(1000) {
		ra, rb := orig.Replicas(key), decoded.Replicas(key)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("placement diverged after round trip: %s -> %v vs %v", key, ra, rb)
			}
		}
	}
}

// TestRingRebalanceBound: adding one node to an N-node ring moves about
// 1/(N+1) of key ownership — the property that makes consistent hashing
// worth its complexity over mod-N. The bound is generous (2x the ideal
// share) because vnode placement is random-ish, but mod-N style hashing
// would move ~N/(N+1) of the keys and fail by a mile.
func TestRingRebalanceBound(t *testing.T) {
	const keys = 4000
	for _, n := range []int{3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d.fleet:7070", i)
		}
		before, err := NewRing(nodes, DefaultVNodes, 2)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(append(append([]string(nil), nodes...), "node-new.fleet:7070"), DefaultVNodes, 2)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, key := range testKeys(keys) {
			if before.Owner(key) != after.Owner(key) {
				moved++
			}
		}
		ideal := float64(keys) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("N=%d: adding a node moved %d/%d keys, want <= ~%.0f (2x ideal 1/(N+1) share)", n, moved, keys, 2*ideal)
		}
		// And every moved key must move TO the new node: consistent
		// hashing never shuffles ownership between existing nodes.
		for _, key := range testKeys(keys) {
			if before.Owner(key) != after.Owner(key) && after.Owner(key) != "node-new.fleet:7070" {
				t.Fatalf("key %s moved between existing nodes: %s -> %s", key, before.Owner(key), after.Owner(key))
			}
		}
	}
}

// TestRingReplicasDistinct: replica sets contain no duplicates and the
// owner leads.
func TestRingReplicasDistinct(t *testing.T) {
	ring, err := NewRing([]string{"a", "b", "c"}, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(300) {
		reps := ring.Replicas(key)
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %v", reps)
		}
		if reps[0] != ring.Owner(key) {
			t.Fatalf("owner %s does not lead replicas %v", ring.Owner(key), reps)
		}
		seen := map[string]bool{}
		for _, r := range reps {
			if seen[r] {
				t.Fatalf("duplicate replica in %v", reps)
			}
			seen[r] = true
		}
	}
}

// TestRingBalance: vnodes keep per-node key share within a sane band.
func TestRingBalance(t *testing.T) {
	ring, err := NewRing([]string{"a", "b", "c", "d"}, DefaultVNodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 8000
	for _, key := range testKeys(keys) {
		counts[ring.Owner(key)]++
	}
	mean := float64(keys) / 4
	for node, c := range counts {
		if float64(c) < 0.5*mean || float64(c) > 1.7*mean {
			t.Errorf("node %s owns %d keys; mean %.0f — imbalance beyond vnode tolerance", node, c, mean)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Fatal("empty node set must be rejected")
	}
	if _, err := NewRing([]string{"  "}, 0, 0); err == nil {
		t.Fatal("blank node name must be rejected")
	}
	ring, err := NewRing([]string{"only"}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ring.ReplicaCount() != 1 {
		t.Fatalf("replicas must clamp to node count, got %d", ring.ReplicaCount())
	}
	if !ring.Contains("only") || ring.Contains("other") {
		t.Fatal("Contains misreports membership")
	}
}

func TestParseNodes(t *testing.T) {
	got := ParseNodes(" a:1, ,b:2,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("ParseNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseNodes = %v, want %v", got, want)
		}
	}
}
