package fleetd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"smokescreen/internal/server"
)

// Load scenarios for the in-process fleet. Each drives the harness the
// way production traffic would — through the nodes' HTTP listeners — and
// returns a LoadResult whose counters come from the generator's ground
// truth and the fleet's own /metrics, so the same runs serve as tests
// (assert the invariants), benchmarks (publish the rates), and the smoke
// script (eyeball the JSON).

// LoadResult is one scenario's outcome.
type LoadResult struct {
	Scenario string `json:"scenario"`
	// Requests/Errors count client-visible operations; an error is a
	// transport failure or an unexpected status.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// DurationMillis is the scenario's wall time.
	DurationMillis float64 `json:"duration_ms"`
	// P50Millis/P99Millis are client-observed latency percentiles.
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	// RequestsPerSec is Requests / Duration.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// Generations counts generator invocations fleet-wide during the
	// scenario (the herd invariant: one per key).
	Generations int `json:"generations"`
	// Fleet-layer counters summed across live nodes (deltas over the
	// scenario).
	Forwards      int64 `json:"forwards"`
	Coalesced     int64 `json:"coalesced"`
	LocalRequests int64 `json:"local_requests"`
	Repairs       int64 `json:"repairs"`
	LeaseExpiries int64 `json:"lease_expiries"`
	LeaseWaits    int64 `json:"lease_waits"`
}

// loadRun accumulates per-request latencies thread-safely.
type loadRun struct {
	mu        sync.Mutex
	latencies []time.Duration
	errors    int64
}

func (lr *loadRun) record(d time.Duration, ok bool) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.latencies = append(lr.latencies, d)
	if !ok {
		lr.errors++
	}
}

func (lr *loadRun) percentile(p float64) time.Duration {
	if len(lr.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lr.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// snapshot captures per-node counters a scenario reports deltas of.
// Per-node (not summed) so that a node killed mid-scenario drops out of
// BOTH sides of the delta instead of making fleet totals go backwards.
func (h *Harness) snapshot(ctx context.Context) (map[string]map[string]int64, int) {
	per := make(map[string]map[string]int64)
	for _, hn := range h.Alive() {
		m, err := h.ScrapeNode(ctx, hn.URL)
		if err != nil {
			continue
		}
		per[hn.Name] = m
	}
	return per, h.Counter.Total()
}

func (h *Harness) finish(ctx context.Context, res *LoadResult, lr *loadRun, start time.Time, before map[string]map[string]int64, gensBefore int) {
	elapsed := h.clock.Now().Sub(start)
	res.DurationMillis = float64(elapsed) / float64(time.Millisecond)
	res.Errors = lr.errors
	res.P50Millis = float64(lr.percentile(0.50)) / float64(time.Millisecond)
	res.P99Millis = float64(lr.percentile(0.99)) / float64(time.Millisecond)
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Requests) / elapsed.Seconds()
	}
	res.Generations = h.Counter.Total() - gensBefore
	after, _ := h.snapshot(ctx)
	delta := func(name string) int64 {
		var d int64
		for node, m := range after {
			d += m[name] - before[node][name]
		}
		return d
	}
	res.Forwards = delta("smokescreend_fleet_forwards_total")
	res.Coalesced = delta("smokescreend_fleet_forwards_coalesced_total")
	res.LocalRequests = delta("smokescreend_fleet_local_requests_total")
	res.Repairs = delta("smokescreend_fleet_repairs_total")
	res.LeaseExpiries = delta("smokescreend_fleet_lease_expiries_total")
	res.LeaseWaits = delta("smokescreend_fleet_lease_waits_total")
}

// RunHotKeyHerd slams every node with concurrent sync POSTs for ONE key.
// The fleet must collapse the herd to a single generation: routing-layer
// singleflight on the forwarding nodes, the lease on the replicas, and
// the jobSet on the generating node each absorb a layer of duplication.
func (h *Harness) RunHotKeyHerd(ctx context.Context, clients int, queryText string) (LoadResult, error) {
	if clients <= 0 {
		clients = 32
	}
	nodes := h.Alive()
	if len(nodes) == 0 {
		return LoadResult{}, fmt.Errorf("fleetd: no live nodes")
	}
	before, gensBefore := h.snapshot(ctx)
	res := LoadResult{Scenario: "herd", Requests: int64(clients)}
	lr := &loadRun{}
	start := h.clock.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t0 := h.clock.Now()
			status, _, err := h.Post(ctx, nodes[c%len(nodes)].URL, server.GenRequest{Query: queryText})
			lr.record(h.clock.Now().Sub(t0), err == nil && status == http.StatusOK)
		}(c)
	}
	wg.Wait()
	h.finish(ctx, &res, lr, start, before, gensBefore)
	return res, nil
}

// RunSteady drives a mixed steady-state workload: a population of keys
// is generated once, then clients issue mostly GETs with periodic
// re-POSTs (all store hits after the first). This is the service's
// throughput shape: forwarded vs local hits in ring proportion.
func (h *Harness) RunSteady(ctx context.Context, clients, keys, requestsPerClient int, queryPrefix string) (LoadResult, error) {
	if clients <= 0 {
		clients = 8
	}
	if keys <= 0 {
		keys = 16
	}
	if requestsPerClient <= 0 {
		requestsPerClient = 50
	}
	nodes := h.Alive()
	if len(nodes) == 0 {
		return LoadResult{}, fmt.Errorf("fleetd: no live nodes")
	}
	queries := make([]string, keys)
	keyIDs := make([]string, keys)
	for i := range queries {
		queries[i] = fmt.Sprintf("%s-%d", queryPrefix, i)
		keyIDs[i] = SyntheticKey(queries[i])
	}
	before, gensBefore := h.snapshot(ctx)
	res := LoadResult{Scenario: "steady"}
	lr := &loadRun{}
	start := h.clock.Now()

	// Warm phase: generate the population (counted as requests too).
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := h.clock.Now()
			status, _, err := h.Post(ctx, nodes[i%len(nodes)].URL, server.GenRequest{Query: queries[i]})
			lr.record(h.clock.Now().Sub(t0), err == nil && status == http.StatusOK)
		}(i)
	}
	wg.Wait()
	res.Requests += int64(keys)

	// Steady phase: 1 POST per 8 GETs, deterministic key walk per client.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < requestsPerClient; j++ {
				i := (c*requestsPerClient + j) % keys
				url := nodes[(c+j)%len(nodes)].URL
				t0 := h.clock.Now()
				var status int
				var err error
				if j%8 == 7 {
					status, _, err = h.Post(ctx, url, server.GenRequest{Query: queries[i]})
				} else {
					status, _, err = h.Get(ctx, url, keyIDs[i])
				}
				lr.record(h.clock.Now().Sub(t0), err == nil && status == http.StatusOK)
			}
		}(c)
	}
	wg.Wait()
	res.Requests += int64(clients * requestsPerClient)
	h.finish(ctx, &res, lr, start, before, gensBefore)
	return res, nil
}

// pickKillTarget finds a query whose primary replica is NOT the lease
// authority for its generation unit, so killing the generating node
// leaves the authority alive to arbitrate the takeover — the expiry path
// under test. It also wants a surviving second replica.
func (h *Harness) pickKillTarget() (queryText, victim, survivor string, err error) {
	ring := h.Ring()
	for i := 0; i < 4096; i++ {
		q := fmt.Sprintf("kill-%d", i)
		key := SyntheticKey(q)
		reps := ring.Replicas(key)
		if len(reps) < 2 {
			continue
		}
		if auth := ring.Owner("gen/" + key); auth != reps[0] {
			return q, reps[0], reps[1], nil
		}
	}
	return "", "", "", fmt.Errorf("fleetd: no kill target found (ring too small?)")
}

// RunKillDuringGeneration proves lease expiry: a sync POST lands on the
// key's primary replica, the node is killed mid-generation (its lease is
// never released), and a re-POST to a survivor completes once the lease
// expires and the survivor takes the unit over. Requires a GenDelay long
// enough to land the kill (>= ~10x ClaimPoll).
func (h *Harness) RunKillDuringGeneration(ctx context.Context) (LoadResult, error) {
	queryText, victim, survivor, err := h.pickKillTarget()
	if err != nil {
		return LoadResult{}, err
	}
	victimURL, survivorURL := h.URLFor(victim), h.URLFor(survivor)
	if victimURL == "" || survivorURL == "" {
		return LoadResult{}, fmt.Errorf("fleetd: kill target nodes not live")
	}
	key := SyntheticKey(queryText)
	before, gensBefore := h.snapshot(ctx)
	res := LoadResult{Scenario: "kill", Requests: 2}
	lr := &loadRun{}
	start := h.clock.Now()

	// First POST: blocks in the victim's (slow) generation.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		_, _, _ = h.Post(ctx, victimURL, server.GenRequest{Query: queryText})
		// Outcome deliberately ignored: this request is supposed to die
		// with its node.
	}()

	// Wait for the victim to start generating, then kill it.
	for h.Counter.Key(key) == 0 {
		select {
		case <-ctx.Done():
			return res, ctx.Err()
		case <-h.clock.After(2 * time.Millisecond):
		}
	}
	if got := h.Counter.NodeFor(key); got != victim {
		// Placement said the primary generates; if routing ever changes
		// this scenario must be rethought, so fail loudly.
		return res, fmt.Errorf("fleetd: expected %s to generate %s, got %s", victim, key, got)
	}
	h.Kill(victim)
	<-firstDone

	// Recovery POST: must complete on the survivor after lease expiry.
	t0 := h.clock.Now()
	status, _, err := h.Post(ctx, survivorURL, server.GenRequest{Query: queryText})
	lr.record(h.clock.Now().Sub(t0), err == nil && status == http.StatusOK)
	if err != nil {
		h.finish(ctx, &res, lr, start, before, gensBefore)
		return res, fmt.Errorf("fleetd: recovery POST failed: %w", err)
	}
	if status != http.StatusOK {
		h.finish(ctx, &res, lr, start, before, gensBefore)
		return res, fmt.Errorf("fleetd: recovery POST returned %d", status)
	}
	h.finish(ctx, &res, lr, start, before, gensBefore)
	return res, nil
}

// RunCancelPropagation proves cross-node cancellation: an async POST is
// forwarded to a replica, the resulting job is DELETEd through a
// DIFFERENT node (proxied by job-id prefix), and the job reaches the
// canceled state. Requires a GenDelay long enough to cancel into.
func (h *Harness) RunCancelPropagation(ctx context.Context) (LoadResult, error) {
	nodes := h.Alive()
	if len(nodes) < 2 {
		return LoadResult{}, fmt.Errorf("fleetd: cancel scenario needs >= 2 live nodes")
	}
	queryText := "cancel-target"
	before, gensBefore := h.snapshot(ctx)
	res := LoadResult{Scenario: "cancel"}
	lr := &loadRun{}
	start := h.clock.Now()

	t0 := h.clock.Now()
	status, body, err := h.Post(ctx, nodes[0].URL, server.GenRequest{Query: queryText, Async: true})
	lr.record(h.clock.Now().Sub(t0), err == nil && status == http.StatusAccepted)
	res.Requests++
	if err != nil || status != http.StatusAccepted {
		h.finish(ctx, &res, lr, start, before, gensBefore)
		return res, fmt.Errorf("fleetd: async POST returned %d (%v)", status, err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		h.finish(ctx, &res, lr, start, before, gensBefore)
		return res, fmt.Errorf("fleetd: async POST returned no job id: %v", err)
	}

	// Cancel through the LAST node — for a >= 2-node fleet at least one
	// of (POST entry, DELETE entry) is not the job's owner, so the proxy
	// path is exercised.
	cancelURL := nodes[len(nodes)-1].URL
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, cancelURL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		return res, err
	}
	t0 = h.clock.Now()
	status, _, err = h.do(req)
	lr.record(h.clock.Now().Sub(t0), err == nil && status == http.StatusOK)
	res.Requests++
	if err != nil || status != http.StatusOK {
		h.finish(ctx, &res, lr, start, before, gensBefore)
		return res, fmt.Errorf("fleetd: cross-node DELETE returned %d (%v)", status, err)
	}

	// Poll (through yet another entry point) until the job is terminal.
	pollURL := nodes[len(nodes)/2].URL
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, pollURL+"/v1/jobs/"+job.ID, nil)
		if err != nil {
			return res, err
		}
		status, body, err := h.do(req)
		res.Requests++
		if err != nil || status != http.StatusOK {
			h.finish(ctx, &res, lr, start, before, gensBefore)
			return res, fmt.Errorf("fleetd: cross-node job poll returned %d (%v)", status, err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return res, err
		}
		switch st.State {
		case "canceled":
			h.finish(ctx, &res, lr, start, before, gensBefore)
			return res, nil
		case "done", "failed":
			h.finish(ctx, &res, lr, start, before, gensBefore)
			return res, fmt.Errorf("fleetd: job ended %q, want canceled", st.State)
		}
		select {
		case <-ctx.Done():
			return res, ctx.Err()
		case <-h.clock.After(5 * time.Millisecond):
		}
	}
}
