package fleetd

import "sync"

// flightGroup coalesces duplicate concurrent work by key — the routing
// layer's singleflight. The server already coalesces generations per
// node (jobSet) and the outputs store per frame; this closes the last
// gap: N concurrent forwards (or repairs) of one key from one node cost
// one upstream request, and every waiter shares the result.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters int // followers parked on done; guarded by the group's mu
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do runs fn once per key among concurrent callers. The leader executes
// fn; followers block until it finishes and receive the same result.
// followed reports whether this call rode on another's flight.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, followed bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}
