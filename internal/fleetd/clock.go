package fleetd

import "time"

// Clock is the package's only source of time. Lease expiry, claim-wait
// backoff and renewal pacing all flow through an injected Clock so tests
// drive expiry deterministically with a fake clock instead of sleeping —
// the smokevet ctxflow analyzer rejects direct time.Now/time.After use in
// this package to keep it that way.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers one value after d elapses.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock. Its two methods are the sanctioned
// wall-clock reads in fleetd; everything else goes through the interface.
type realClock struct{}

func (realClock) Now() time.Time {
	return time.Now() //smokevet:ignore ctxflow: realClock is the injected Clock's production implementation — the sole sanctioned wall-clock read in fleetd
}

func (realClock) After(d time.Duration) <-chan time.Time {
	return time.After(d) //smokevet:ignore ctxflow: realClock is the injected Clock's production implementation — the sole sanctioned timer source in fleetd
}

// SystemClock is the wall clock; Config.Clock defaults to it.
var SystemClock Clock = realClock{}
