package fleetd

import (
	"sync"
	"sync/atomic"
	"time"
)

// The lease table is the internal/outputs claim/wait protocol lifted
// behind a transport. In-process, outputs claims a frame with a map entry
// and a channel and waiters block until the claimant closes it; across
// nodes a crashed claimant can never close anything, so the claim carries
// a TTL instead: holders renew while they work, waiters poll with the
// holder's remaining TTL as the backoff hint, and a dead node's leases
// expire on their own — the next claim takes the unit over and the work
// is re-run. Store writes are content-addressed and idempotent, so the
// worst case of any lease race is duplicate work, never a wrong artifact.

// lease is one held unit.
type lease struct {
	owner   string
	expires time.Time
	gen     uint64 // increments on every grant; diagnostic only
}

// LeaseStatus is the wire form of a claim/renew/release outcome.
type LeaseStatus struct {
	Unit string `json:"unit"`
	// Granted reports whether the caller now holds (claim/renew) or
	// released (release) the unit.
	Granted bool `json:"granted"`
	// Holder is the current holder after the operation ("" if none).
	Holder string `json:"holder,omitempty"`
	// TTLMillis is the holder's remaining TTL after the operation; a
	// denied claimant uses it as the wait hint before re-claiming.
	TTLMillis int64  `json:"ttl_ms"`
	Gen       uint64 `json:"gen"`
}

// leaseTable is one node's lease authority state: the leases whose units
// hash to this node on the ring.
type leaseTable struct {
	clock Clock

	mu     sync.Mutex
	leases map[string]*lease

	claims   atomic.Int64 // grants (fresh, takeover, or holder re-claim)
	denials  atomic.Int64 // claims refused because another owner holds
	expiries atomic.Int64 // expired leases observed (taken over or reaped)
	renewals atomic.Int64 // successful renews
	releases atomic.Int64 // successful releases
}

func newLeaseTable(clock Clock) *leaseTable {
	return &leaseTable{clock: clock, leases: make(map[string]*lease)}
}

// claim grants unit to owner for ttl. A claim by the current holder
// extends the lease (so every goroutine of one node shares the claim,
// exactly as every goroutine of one process shares an outputs claim); an
// expired lease is taken over; a live lease held elsewhere is denied with
// the holder's remaining TTL as the retry hint.
func (lt *leaseTable) claim(unit, owner string, ttl time.Duration) LeaseStatus {
	now := lt.clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[unit]
	if ok && now.Before(l.expires) && l.owner != owner {
		lt.denials.Add(1)
		return LeaseStatus{Unit: unit, Granted: false, Holder: l.owner, TTLMillis: int64(l.expires.Sub(now) / time.Millisecond), Gen: l.gen}
	}
	var gen uint64 = 1
	if ok {
		if !now.Before(l.expires) && l.owner != owner {
			// Takeover of a dead holder's lease: the expiry path the
			// node-kill test pins.
			lt.expiries.Add(1)
		}
		gen = l.gen + 1
	}
	lt.leases[unit] = &lease{owner: owner, expires: now.Add(ttl), gen: gen}
	lt.claims.Add(1)
	return LeaseStatus{Unit: unit, Granted: true, Holder: owner, TTLMillis: int64(ttl / time.Millisecond), Gen: gen}
}

// renew extends a lease the caller still holds. A renew of an expired or
// reassigned lease is denied — the holder has lost the unit and must
// re-claim (and re-check the store) rather than assume it still owns the
// generation.
func (lt *leaseTable) renew(unit, owner string, ttl time.Duration) LeaseStatus {
	now := lt.clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[unit]
	if !ok {
		return LeaseStatus{Unit: unit, Granted: false}
	}
	if !now.Before(l.expires) {
		// Expired before anyone re-claimed it: reap it now so the table
		// does not accumulate dead units.
		lt.expiries.Add(1)
		delete(lt.leases, unit)
		return LeaseStatus{Unit: unit, Granted: false}
	}
	if l.owner != owner {
		return LeaseStatus{Unit: unit, Granted: false, Holder: l.owner, TTLMillis: int64(l.expires.Sub(now) / time.Millisecond), Gen: l.gen}
	}
	l.expires = now.Add(ttl)
	lt.renewals.Add(1)
	return LeaseStatus{Unit: unit, Granted: true, Holder: owner, TTLMillis: int64(ttl / time.Millisecond), Gen: l.gen}
}

// release drops a lease the caller holds; releasing a lease held by
// someone else (or nobody) is a refused no-op, so a slow node that lost
// its lease to expiry can never release the new holder's claim.
func (lt *leaseTable) release(unit, owner string) LeaseStatus {
	now := lt.clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[unit]
	if !ok {
		return LeaseStatus{Unit: unit, Granted: false}
	}
	if l.owner != owner {
		if !now.Before(l.expires) {
			lt.expiries.Add(1)
			delete(lt.leases, unit)
		}
		return LeaseStatus{Unit: unit, Granted: false, Holder: l.owner, Gen: l.gen}
	}
	delete(lt.leases, unit)
	lt.releases.Add(1)
	return LeaseStatus{Unit: unit, Granted: true, Gen: l.gen}
}

// active returns the number of unexpired leases held right now.
func (lt *leaseTable) active() int {
	now := lt.clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	n := 0
	for _, l := range lt.leases {
		if now.Before(l.expires) {
			n++
		}
	}
	return n
}
