package fleetd

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually stepped Clock. After-channels fire when
// Advance moves the clock past their deadline; nothing in a fake-clock
// test ever sleeps on the wall clock.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []chan time.Time
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !now.Before(w.at) {
			due = append(due, w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	for _, ch := range due {
		ch <- now
	}
}

func TestLeaseClaimDenyExtend(t *testing.T) {
	clock := newFakeClock()
	lt := newLeaseTable(clock)

	st := lt.claim("gen/k1", "node-a", time.Second)
	if !st.Granted || st.Holder != "node-a" || st.Gen != 1 {
		t.Fatalf("fresh claim: %+v", st)
	}
	// Another owner is denied while the lease is live, with the
	// remaining TTL as the wait hint.
	clock.Advance(400 * time.Millisecond)
	st = lt.claim("gen/k1", "node-b", time.Second)
	if st.Granted {
		t.Fatalf("live lease must deny another owner: %+v", st)
	}
	if st.Holder != "node-a" || st.TTLMillis != 600 {
		t.Fatalf("denial hint: %+v, want holder node-a ttl 600", st)
	}
	// The holder re-claiming extends — node-level sharing, exactly as
	// every goroutine of one process shares an in-process claim.
	st = lt.claim("gen/k1", "node-a", time.Second)
	if !st.Granted || st.Gen != 2 {
		t.Fatalf("holder re-claim must extend: %+v", st)
	}
	if got := lt.denials.Load(); got != 1 {
		t.Fatalf("denials = %d, want 1", got)
	}
	if got := lt.expiries.Load(); got != 0 {
		t.Fatalf("expiries = %d, want 0", got)
	}
}

func TestLeaseExpiryTakeover(t *testing.T) {
	clock := newFakeClock()
	lt := newLeaseTable(clock)

	lt.claim("gen/k1", "node-a", time.Second)
	if lt.active() != 1 {
		t.Fatalf("active = %d, want 1", lt.active())
	}
	// node-a dies: no renewal, the clock walks past the TTL.
	clock.Advance(1001 * time.Millisecond)
	if lt.active() != 0 {
		t.Fatalf("expired lease still counted active")
	}
	st := lt.claim("gen/k1", "node-b", time.Second)
	if !st.Granted || st.Holder != "node-b" {
		t.Fatalf("takeover of expired lease: %+v", st)
	}
	if st.Gen != 2 {
		t.Fatalf("takeover gen = %d, want 2", st.Gen)
	}
	if got := lt.expiries.Load(); got != 1 {
		t.Fatalf("expiries = %d, want 1 (the takeover)", got)
	}
	// The dead node coming back cannot release the new holder's lease.
	st = lt.release("gen/k1", "node-a")
	if st.Granted {
		t.Fatalf("stale owner released the new holder's lease: %+v", st)
	}
	// And its renew is denied.
	st = lt.renew("gen/k1", "node-a", time.Second)
	if st.Granted {
		t.Fatalf("stale owner renewed the new holder's lease: %+v", st)
	}
}

func TestLeaseRenewSchedule(t *testing.T) {
	clock := newFakeClock()
	lt := newLeaseTable(clock)

	lt.claim("gen/k1", "node-a", 900*time.Millisecond)
	// Renew at TTL/3 cadence: the lease never expires while renewed.
	for i := 0; i < 5; i++ {
		clock.Advance(300 * time.Millisecond)
		st := lt.renew("gen/k1", "node-a", 900*time.Millisecond)
		if !st.Granted {
			t.Fatalf("renewal %d failed: %+v", i, st)
		}
	}
	if got := lt.renewals.Load(); got != 5 {
		t.Fatalf("renewals = %d, want 5", got)
	}
	// Stop renewing; the lease dies one TTL later and the renew both
	// fails and reaps it.
	clock.Advance(901 * time.Millisecond)
	st := lt.renew("gen/k1", "node-a", 900*time.Millisecond)
	if st.Granted {
		t.Fatalf("renew of expired lease granted: %+v", st)
	}
	if got := lt.expiries.Load(); got != 1 {
		t.Fatalf("expiries = %d, want 1 (the reap)", got)
	}
	if lt.active() != 0 {
		t.Fatalf("reaped lease still active")
	}
}

func TestLeaseRelease(t *testing.T) {
	clock := newFakeClock()
	lt := newLeaseTable(clock)

	lt.claim("gen/k1", "node-a", time.Second)
	st := lt.release("gen/k1", "node-a")
	if !st.Granted {
		t.Fatalf("holder release refused: %+v", st)
	}
	// The unit is immediately claimable by anyone.
	st = lt.claim("gen/k1", "node-b", time.Second)
	if !st.Granted {
		t.Fatalf("claim after release refused: %+v", st)
	}
	// Releasing an unheld unit is a refused no-op.
	st = lt.release("gen/other", "node-a")
	if st.Granted {
		t.Fatalf("release of unheld unit granted: %+v", st)
	}
	if got := lt.releases.Load(); got != 1 {
		t.Fatalf("releases = %d, want 1", got)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const waiters = 16
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	var wg sync.WaitGroup
	results := make([]any, waiters)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, followed := g.do("k", func() (any, error) {
			close(started)
			<-release
			calls++
			return "payload", nil
		})
		if err != nil || followed {
			t.Errorf("leader: err=%v followed=%v", err, followed)
		}
		results[0] = v
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, followed := g.do("k", func() (any, error) {
				t.Error("follower executed the flight fn")
				return nil, nil
			})
			if err != nil || !followed {
				t.Errorf("follower %d: err=%v followed=%v", i, err, followed)
			}
			results[i] = v
		}(i)
	}
	// Every follower must be parked on the leader's flight before the
	// leader completes, or a late follower would start its own flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		parked := 0
		if f := g.flights["k"]; f != nil {
			parked = f.waiters
		}
		g.mu.Unlock()
		if parked == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers parked", parked)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("flight fn ran %d times, want 1", calls)
	}
	for i, v := range results {
		if v != "payload" {
			t.Fatalf("result %d = %v, want payload", i, v)
		}
	}
	// After completion the key flies again.
	_, _, followed := g.do("k", func() (any, error) { return "again", nil })
	if followed {
		t.Fatal("fresh flight reported followed")
	}
}
