package fleetd

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"smokescreen/internal/server"
	"smokescreen/internal/store"
)

// fleetFromHeader marks fleet-internal hops. A request carrying it is
// handled locally, never re-forwarded — forwarding chains are at most one
// hop deep (client -> router -> replica) plus one denied-claimant hop to
// the lease holder, so ownership races can never ping-pong a request
// around the ring.
const fleetFromHeader = "X-Smokescreen-Fleet-From"

const (
	// maxRequestBytes bounds a POST /v1/profiles body.
	maxRequestBytes = 1 << 20
	// maxTransferBytes bounds forwarded responses and envelope transfers.
	maxTransferBytes = 256 << 20
	// peerTimeout bounds one fleet-internal envelope or lease exchange.
	peerTimeout = 15 * time.Second
)

// Config assembles a fleet Node.
type Config struct {
	// Self is this node's name as it appears in Nodes. Required.
	Self string
	// Nodes is the full fleet membership (base URLs or host:port).
	// Required; every node must be configured with the identical set.
	Nodes []string
	// VNodes and Replicas parameterize the ring (package defaults if <= 0).
	VNodes   int
	Replicas int
	// LeaseTTL is how long a generation lease lives without renewal
	// (default 3s). Holders renew at TTL/3; a killed node's lease expires
	// after at most one TTL and a survivor takes the unit over.
	LeaseTTL time.Duration
	// ClaimPoll caps how long a denied claimant waits before re-checking
	// the store and re-claiming (default 100ms).
	ClaimPoll time.Duration
	// Store is this node's local artifact store. Required.
	Store *store.Store
	// Generator resolves and runs generations. Required.
	Generator server.Generator
	// Server templates the inner per-node daemon (Workers, QueueDepth,
	// RequestTimeout, ...). Store, Generator, JobIDPrefix, and BaseContext
	// are owned by the Node and overwritten.
	Server server.Config
	// Clock drives lease TTLs and claim-poll waits; nil means SystemClock.
	// Tests inject a fake clock to step lease expiry deterministically.
	Clock Clock
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// Transport overrides the forwarding transport; nil builds a pooled
	// keep-alive http.Transport.
	Transport http.RoundTripper
}

// fleetMetrics are the node's fleet-layer counters, rendered after the
// inner daemon's block on /metrics as smokescreend_fleet_*.
type fleetMetrics struct {
	forwards             atomic.Int64 // routed-away requests (per flight)
	forwardFailovers     atomic.Int64 // extra replica attempts after a peer error
	forwardsCoalesced    atomic.Int64 // requests that rode an in-flight forward
	forwardErrors        atomic.Int64 // forwards with no reachable replica
	localRequests        atomic.Int64 // profile requests served by this replica
	repairs              atomic.Int64 // read-repairs completed
	repairFailures       atomic.Int64 // peer envelopes that failed validation
	replicaWrites        atomic.Int64 // successful write fan-out pushes
	replicaWriteFailures atomic.Int64 // failed pushes (healed later by read-repair)
	leaseWaits           atomic.Int64 // denied claims that waited for the holder
	leaseLocalFallbacks  atomic.Int64 // lease authority unreachable; local-only dedup
}

// Node is one smokescreend fleet member: the single-process server
// wrapped with ring routing, replica fan-out, read-repair, and lease
// coordination. Mount Handler on this node's listener.
type Node struct {
	cfg   Config
	self  string
	ring  *Ring
	clock Clock
	logf  func(format string, args ...any)

	localStore *store.Store
	backend    *replicatedStore
	inner      *server.Server
	innerH     http.Handler
	gen        server.Generator

	leases   *leaseTable
	client   *http.Client
	forwards *flightGroup
	metrics  fleetMetrics

	// jobNodes maps job-id prefixes to node names so any node can proxy
	// GET/DELETE /v1/jobs/{id} to the node that minted the id.
	jobNodes map[string]string

	leaseTTL  time.Duration
	claimPoll time.Duration

	// baseCtx parents every generation; Kill cancels it to simulate this
	// node dying mid-work (leases are deliberately not released).
	baseCtx    context.Context
	baseCancel context.CancelFunc
	killed     atomic.Bool
}

// nodePrefix derives a node's job-id prefix: 8 hex chars of the node
// name's SHA-256, so ids are globally unique and any node can map a
// forwarded job handle back to its minting node without shared state.
func nodePrefix(node string) string {
	sum := sha256.Sum256([]byte(node))
	return hex.EncodeToString(sum[:4]) + "-"
}

// NewNode validates the config, builds the ring and the inner server,
// and returns a ready node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil || cfg.Generator == nil {
		return nil, fmt.Errorf("fleetd: Config requires Store and Generator")
	}
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	self := strings.TrimRight(strings.TrimSpace(cfg.Self), "/")
	if !ring.Contains(self) {
		return nil, fmt.Errorf("fleetd: self %q is not in the node set %v", self, ring.Nodes())
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.ClaimPoll <= 0 {
		cfg.ClaimPoll = 100 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	parent := cfg.Server.BaseContext
	if parent == nil {
		//smokevet:ignore ctxflow: the node is a compatibility root — it mints the fleet's job root only when the embedder supplies none
		parent = context.Background()
	}
	baseCtx, baseCancel := context.WithCancel(parent)

	n := &Node{
		cfg:        cfg,
		self:       self,
		ring:       ring,
		clock:      cfg.Clock,
		logf:       func(format string, args ...any) { cfg.Logf("fleet %s: "+format, append([]any{self}, args...)...) },
		localStore: cfg.Store,
		gen:        cfg.Generator,
		leases:     newLeaseTable(cfg.Clock),
		forwards:   newFlightGroup(),
		jobNodes:   make(map[string]string, len(ring.Nodes())),
		leaseTTL:   cfg.LeaseTTL,
		claimPoll:  cfg.ClaimPoll,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
	}
	for _, node := range ring.Nodes() {
		p := nodePrefix(node)
		if other, dup := n.jobNodes[p]; dup {
			baseCancel()
			return nil, fmt.Errorf("fleetd: job-id prefix collision between %q and %q", other, node)
		}
		n.jobNodes[p] = node
	}

	transport := cfg.Transport
	if transport == nil {
		// Pooled keep-alive connections: forwarding a herd must not burn a
		// TCP handshake per request.
		transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	n.client = &http.Client{Transport: transport}

	n.backend = newReplicatedStore(cfg.Store, n)
	innerCfg := cfg.Server
	innerCfg.Store = n.backend
	innerCfg.Generator = cfg.Generator
	innerCfg.JobIDPrefix = nodePrefix(self)
	innerCfg.BaseContext = baseCtx
	if innerCfg.Logf == nil {
		innerCfg.Logf = cfg.Logf
	}
	inner, err := server.New(innerCfg)
	if err != nil {
		baseCancel()
		return nil, err
	}
	n.inner = inner
	n.innerH = inner.Handler()
	return n, nil
}

// Self returns this node's normalized name.
func (n *Node) Self() string { return n.self }

// Ring returns the node's (immutable) placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// Kill simulates this node dying abruptly: every running generation's
// context is canceled and lease keepers stop WITHOUT releasing — held
// leases expire on their own TTL, which is exactly the takeover path
// survivors exercise. The caller also closes the node's listener; Kill
// itself performs no graceful drain.
func (n *Node) Kill() {
	n.killed.Store(true)
	n.baseCancel()
}

// Drain stops intake and waits for in-flight work, bounded by ctx.
func (n *Node) Drain(ctx context.Context) error {
	err := n.inner.Drain(ctx)
	n.baseCancel()
	return err
}

// Close drains with the inner server's grace period.
func (n *Node) Close() error {
	err := n.inner.Close()
	n.baseCancel()
	return err
}

// Handler returns the node's HTTP handler: the fleet routing layer over
// the inner daemon's API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/profiles/{key}", n.handleGetProfile)
	mux.HandleFunc("POST /v1/profiles", n.handlePostProfile)
	mux.HandleFunc("GET /v1/jobs/{id}", n.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", n.handleJob)
	mux.HandleFunc("POST /v1/leases", n.handleLeases)
	mux.HandleFunc("GET /v1/ring", n.handleRing)
	mux.HandleFunc("GET /v1/internal/profiles/{key}", n.handleEnvelopeGet)
	mux.HandleFunc("PUT /v1/internal/profiles/{key}", n.handleEnvelopePut)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	// Everything else (healthz, streams, ...) is the inner daemon's.
	mux.Handle("/", n.innerH)
	return mux
}

// nodeURL renders a node name as a base URL.
func (n *Node) nodeURL(node string) string {
	if strings.Contains(node, "://") {
		return node
	}
	return "http://" + node
}

func fleetWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func fleetWriteError(w http.ResponseWriter, status int, err error) {
	fleetWriteJSON(w, status, map[string]string{"error": err.Error()})
}

// fleetWriteErrorCode mirrors the inner server's coded error shape, so
// clients see one contract whether they hit a node or the daemon.
func fleetWriteErrorCode(w http.ResponseWriter, status int, code string, err error) {
	fleetWriteJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// writeProfileBytes mirrors the inner server's profile response shape.
func (n *Node) writeProfileBytes(w http.ResponseWriter, key string, payload []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Smokescreen-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// ---------------------------------------------------------------------------
// Forwarding

// fwdResult is one forwarded response, shareable across a flight.
type fwdResult struct {
	status int
	header http.Header
	body   []byte
}

// forwardHeaders are the response headers worth relaying to clients.
var forwardHeaders = []string{"Content-Type", "X-Smokescreen-Key", "Retry-After"}

func pickHeaders(h http.Header) http.Header {
	out := make(http.Header, len(forwardHeaders))
	for _, name := range forwardHeaders {
		if v := h.Get(name); v != "" {
			out.Set(name, v)
		}
	}
	return out
}

// fetch performs one fleet-internal request against a peer.
func (n *Node) fetch(ctx context.Context, method, target, path string, body []byte) (*fwdResult, error) {
	req, err := http.NewRequestWithContext(ctx, method, n.nodeURL(target)+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(fleetFromHeader, n.self)
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
	if err != nil {
		return nil, err
	}
	return &fwdResult{status: resp.StatusCode, header: pickHeaders(resp.Header), body: b}, nil
}

// forwardFlight routes a request to the key's replicas with failover,
// coalescing concurrent identical forwards onto one upstream request.
// Failover is on transport errors only: an HTTP error status is a real
// answer from a live replica and is relayed as-is.
func (n *Node) forwardFlight(ctx context.Context, flightKey, method, path string, body []byte, targets []string) (*fwdResult, error) {
	val, err, followed := n.forwards.do(flightKey, func() (any, error) {
		n.metrics.forwards.Add(1)
		var lastErr error
		for _, target := range targets {
			if target == n.self {
				continue
			}
			if lastErr != nil {
				n.metrics.forwardFailovers.Add(1)
			}
			res, err := n.fetch(ctx, method, target, path, body)
			if err != nil {
				lastErr = err
				continue
			}
			return res, nil
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("fleetd: no replica to forward %s to", path)
		}
		return nil, lastErr
	})
	if followed {
		n.metrics.forwardsCoalesced.Add(1)
	}
	if err != nil {
		return nil, err
	}
	return val.(*fwdResult), nil
}

func writeFwd(w http.ResponseWriter, res *fwdResult) {
	for name, vals := range res.header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// proxy relays a request verbatim to one target, streaming the response
// back. It returns an error only before anything was written, so callers
// can fall back to another path.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, target string, body []byte) error {
	url := n.nodeURL(target) + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set(fleetFromHeader, n.self)
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for name, vals := range pickHeaders(resp.Header) {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, maxTransferBytes))
	return nil
}

// ---------------------------------------------------------------------------
// Profile routing

func (n *Node) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if n.ring.IsReplica(key, n.self) || r.Header.Get(fleetFromHeader) != "" {
		n.metrics.localRequests.Add(1)
		n.innerH.ServeHTTP(w, r)
		return
	}
	res, err := n.forwardFlight(r.Context(), "GET|"+key, http.MethodGet, "/v1/profiles/"+key, nil, n.ring.Replicas(key))
	if err != nil {
		n.metrics.forwardErrors.Add(1)
		fleetWriteError(w, http.StatusBadGateway, fmt.Errorf("fleetd: forwarding to replicas: %w", err))
		return
	}
	writeFwd(w, res)
}

func (n *Node) handlePostProfile(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		fleetWriteError(w, http.StatusBadRequest, fmt.Errorf("fleetd: reading request: %w", err))
		return
	}
	req, err := server.DecodeGenRequest(bytes.NewReader(raw))
	if err != nil {
		// Strict decoding on the fleet edge, not just the inner server:
		// a version-skewed field must be rejected before the request is
		// re-marshalled for forwarding, or the field would be silently
		// dropped and a different (wrong) artifact generated and cached.
		var unknown *server.UnknownFieldError
		if errors.As(err, &unknown) {
			fleetWriteErrorCode(w, http.StatusBadRequest, "unknown_field", err)
			return
		}
		fleetWriteError(w, http.StatusBadRequest, fmt.Errorf("fleetd: %w", err))
		return
	}
	if req.Query == "" {
		fleetWriteError(w, http.StatusBadRequest, errors.New("fleetd: request requires a query"))
		return
	}
	req.Normalize()
	key, _, err := n.gen.Key(req)
	if err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	// Canonical wire form: every hop and every flight of this request
	// coalesces on identical bytes.
	body, err := json.Marshal(req)
	if err != nil {
		fleetWriteError(w, http.StatusInternalServerError, err)
		return
	}

	forwarded := r.Header.Get(fleetFromHeader) != ""
	if !n.ring.IsReplica(key, n.self) && !forwarded {
		mode := "|sync"
		if req.Async {
			mode = "|async"
		}
		res, err := n.forwardFlight(r.Context(), "POST|"+key+mode, http.MethodPost, "/v1/profiles", body, n.ring.Replicas(key))
		if err != nil {
			n.metrics.forwardErrors.Add(1)
			fleetWriteError(w, http.StatusBadGateway, fmt.Errorf("fleetd: forwarding to replicas: %w", err))
			return
		}
		writeFwd(w, res)
		return
	}
	n.servePost(w, r, key, req, body, !forwarded)
}

// servePost handles a POST on a replica of key: claim the generation
// lease fleet-wide, then let the inner daemon's job queue do the work.
// canHop permits one extra forward to the current lease holder; it is
// false for requests that already hopped, so ownership races degrade to
// polling instead of ping-ponging.
func (n *Node) servePost(w http.ResponseWriter, r *http.Request, key string, req server.GenRequest, body []byte, canHop bool) {
	n.metrics.localRequests.Add(1)
	unit := "gen/" + key
	authority := n.ring.Owner(unit)
	for {
		// Fast path — including read-repair: a denied claimant usually
		// exits the wait loop here once the holder's fan-out lands.
		if payload, err := n.backend.Get(key); err == nil {
			n.writeProfileBytes(w, key, payload)
			return
		}
		st, err := n.leaseCall(r.Context(), authority, leaseRequest{Op: "claim", Unit: unit, Owner: n.self, TTLMillis: int64(n.leaseTTL / time.Millisecond)})
		if err != nil {
			// The lease authority is unreachable. Refusing to generate
			// would turn one dead node into a fleet-wide outage for the
			// keys it arbitrates; generating without the lease only risks
			// duplicate work, and the content-addressed store makes that
			// benign. Degrade to this node's own jobSet dedup.
			n.metrics.leaseLocalFallbacks.Add(1)
			n.logf("lease authority %s unreachable for %s (%v); generating with local dedup only", authority, unit, err)
			n.delegatePost(w, r, body)
			return
		}
		if st.Granted {
			keeper := n.keepLease(authority, unit)
			n.delegatePost(w, r, body)
			keeper.stopKeeper()
			if !n.killed.Load() {
				releaseCtx, cancel := context.WithTimeout(n.baseCtx, peerTimeout)
				_, _ = n.leaseCall(releaseCtx, authority, leaseRequest{Op: "release", Unit: unit, Owner: n.self})
				cancel()
			}
			return
		}
		// Denied: someone else is generating this key right now.
		if canHop && !req.Async && st.Holder != "" && st.Holder != n.self {
			// Ride the holder's in-flight job: its jobSet coalesces us and
			// its sync wait returns the artifact the moment it lands.
			if err := n.proxy(w, r, st.Holder, body); err == nil {
				return
			}
			// Holder unreachable (likely dead) — fall through and wait for
			// its lease to expire, then take the unit over.
		}
		n.metrics.leaseWaits.Add(1)
		wait := n.claimPoll
		if hint := time.Duration(st.TTLMillis) * time.Millisecond; hint > 0 && hint < wait {
			wait = hint
		}
		select {
		case <-n.clock.After(wait):
		case <-r.Context().Done():
			return // client gave up; the holder finishes for future requesters
		case <-n.baseCtx.Done():
			fleetWriteError(w, http.StatusServiceUnavailable, errors.New("fleetd: node shutting down"))
			return
		}
	}
}

// delegatePost replays the canonical request body into the inner daemon.
func (n *Node) delegatePost(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	n.innerH.ServeHTTP(w, r2)
}

// ---------------------------------------------------------------------------
// Leases over HTTP

// leaseRequest is the POST /v1/leases body.
type leaseRequest struct {
	// Op is "claim", "renew", or "release".
	Op    string `json:"op"`
	Unit  string `json:"unit"`
	Owner string `json:"owner"`
	// TTLMillis is the requested lease duration; <= 0 takes the
	// authority's configured default.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// applyLease runs a lease operation against this node's own table.
func (n *Node) applyLease(req leaseRequest) (LeaseStatus, error) {
	if req.Unit == "" || req.Owner == "" {
		return LeaseStatus{}, errors.New("fleetd: lease request requires unit and owner")
	}
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = n.leaseTTL
	}
	switch req.Op {
	case "claim":
		return n.leases.claim(req.Unit, req.Owner, ttl), nil
	case "renew":
		return n.leases.renew(req.Unit, req.Owner, ttl), nil
	case "release":
		return n.leases.release(req.Unit, req.Owner), nil
	default:
		return LeaseStatus{}, fmt.Errorf("fleetd: unknown lease op %q", req.Op)
	}
}

// leaseCall runs a lease operation against the unit's authority — local
// table when this node is the authority, HTTP otherwise.
func (n *Node) leaseCall(ctx context.Context, authority string, req leaseRequest) (LeaseStatus, error) {
	if authority == n.self {
		return n.applyLease(req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return LeaseStatus{}, err
	}
	res, err := n.fetch(ctx, http.MethodPost, authority, "/v1/leases", body)
	if err != nil {
		return LeaseStatus{}, err
	}
	if res.status != http.StatusOK {
		return LeaseStatus{}, fmt.Errorf("fleetd: lease authority %s returned %d: %s", authority, res.status, bytes.TrimSpace(res.body))
	}
	var st LeaseStatus
	if err := json.Unmarshal(res.body, &st); err != nil {
		return LeaseStatus{}, fmt.Errorf("fleetd: decoding lease status: %w", err)
	}
	return st, nil
}

func (n *Node) handleLeases(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes)).Decode(&req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, fmt.Errorf("fleetd: decoding lease request: %w", err))
		return
	}
	if req.Unit == "" {
		fleetWriteError(w, http.StatusBadRequest, errors.New("fleetd: lease request requires a unit"))
		return
	}
	authority := n.ring.Owner(req.Unit)
	if authority != n.self && r.Header.Get(fleetFromHeader) == "" {
		// Any node answers lease calls by forwarding to the authority, so
		// clients (and the smoke script) need not compute ring placement.
		if err := n.proxy(w, r, authority, mustJSON(req)); err != nil {
			fleetWriteError(w, http.StatusBadGateway, fmt.Errorf("fleetd: lease authority %s unreachable: %w", authority, err))
		}
		return
	}
	st, err := n.applyLease(req)
	if err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	fleetWriteJSON(w, http.StatusOK, st)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // only reachable for unmarshalable Go values, not inputs
	}
	return b
}

// leaseKeeper renews one held lease in the background until stopped.
type leaseKeeper struct {
	stop chan struct{}
	done chan struct{}
}

func (k *leaseKeeper) stopKeeper() {
	close(k.stop)
	<-k.done
}

// keepLease renews (authority, unit) at TTL/3 until stopped or the node
// is killed. A kill stops renewal WITHOUT release: the lease expires on
// its own and a survivor takes the unit over — the fleet's equivalent of
// a crashed process dropping its in-process claims.
func (n *Node) keepLease(authority, unit string) *leaseKeeper {
	k := &leaseKeeper{stop: make(chan struct{}), done: make(chan struct{})}
	interval := n.leaseTTL / 3
	if interval <= 0 {
		interval = n.leaseTTL
	}
	go func() {
		defer close(k.done)
		for {
			select {
			case <-k.stop:
				return
			case <-n.baseCtx.Done():
				return
			case <-n.clock.After(interval):
				ctx, cancel := context.WithTimeout(n.baseCtx, peerTimeout)
				st, err := n.leaseCall(ctx, authority, leaseRequest{Op: "renew", Unit: unit, Owner: n.self, TTLMillis: int64(n.leaseTTL / time.Millisecond)})
				cancel()
				if err != nil {
					n.logf("renewing lease %s with %s: %v", unit, authority, err)
					continue // transient; the lease survives until TTL
				}
				if !st.Granted {
					// The lease was lost (expired and reassigned). The
					// generation keeps running — the store write is
					// idempotent — but there is nothing left to renew.
					n.logf("lost lease %s to %s; finishing as duplicate work", unit, st.Holder)
					return
				}
			}
		}
	}()
	return k
}

// ---------------------------------------------------------------------------
// Ring introspection, envelope transfer, job routing, metrics

// ringStatus is the GET /v1/ring body.
type ringStatus struct {
	Self     string   `json:"self"`
	Nodes    []string `json:"nodes"`
	VNodes   int      `json:"vnodes"`
	Replicas int      `json:"replicas"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	fleetWriteJSON(w, http.StatusOK, ringStatus{
		Self:     n.self,
		Nodes:    n.ring.Nodes(),
		VNodes:   n.ring.VNodes(),
		Replicas: n.ring.ReplicaCount(),
	})
}

// handleEnvelopeGet serves a key's raw store envelope from the LOCAL
// store only — no read-repair, no forwarding. Peers use it as the source
// of repair bytes, so it must reflect exactly what this node has.
func (n *Node) handleEnvelopeGet(w http.ResponseWriter, r *http.Request) {
	env, err := n.localStore.GetEnvelope(r.PathValue("key"))
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(env)
	case errors.Is(err, store.ErrNotFound):
		fleetWriteError(w, http.StatusNotFound, err)
	default:
		var corrupt *store.CorruptError
		if errors.As(err, &corrupt) {
			fleetWriteError(w, http.StatusGone, err)
			return
		}
		fleetWriteError(w, http.StatusInternalServerError, err)
	}
}

// handleEnvelopePut ingests a replica push. PutEnvelope re-validates the
// checksum before the atomic write, so a corrupted transfer is rejected
// here rather than landed.
func (n *Node) handleEnvelopePut(w http.ResponseWriter, r *http.Request) {
	env, err := io.ReadAll(io.LimitReader(r.Body, maxTransferBytes))
	if err != nil {
		fleetWriteError(w, http.StatusBadRequest, fmt.Errorf("fleetd: reading envelope: %w", err))
		return
	}
	if _, err := n.localStore.PutEnvelope(r.PathValue("key"), env); err != nil {
		var corrupt *store.CorruptError
		if errors.As(err, &corrupt) {
			fleetWriteError(w, http.StatusBadRequest, err)
			return
		}
		fleetWriteError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// fetchEnvelope pulls a key's envelope from a peer (read-repair source).
func (n *Node) fetchEnvelope(peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(n.baseCtx, peerTimeout)
	defer cancel()
	res, err := n.fetch(ctx, http.MethodGet, peer, "/v1/internal/profiles/"+key, nil)
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, fmt.Errorf("fleetd: peer %s has no usable envelope for %s (%d)", peer, key, res.status)
	}
	return res.body, nil
}

// pushEnvelope fans a freshly written envelope out to a peer replica.
func (n *Node) pushEnvelope(peer, key string, env []byte) error {
	ctx, cancel := context.WithTimeout(n.baseCtx, peerTimeout)
	defer cancel()
	res, err := n.fetchWithBody(ctx, http.MethodPut, peer, "/v1/internal/profiles/"+key, env)
	if err != nil {
		return err
	}
	if res.status/100 != 2 {
		return fmt.Errorf("fleetd: peer %s rejected envelope for %s (%d): %s", peer, key, res.status, bytes.TrimSpace(res.body))
	}
	return nil
}

// fetchWithBody is fetch with an octet-stream body (envelope pushes).
func (n *Node) fetchWithBody(ctx context.Context, method, target, path string, body []byte) (*fwdResult, error) {
	req, err := http.NewRequestWithContext(ctx, method, n.nodeURL(target)+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(fleetFromHeader, n.self)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
	if err != nil {
		return nil, err
	}
	return &fwdResult{status: resp.StatusCode, header: pickHeaders(resp.Header), body: b}, nil
}

// nodeForJobID maps a job id back to the node whose prefix minted it
// ("" when the id carries no known prefix — e.g. a bare single-node id).
func (n *Node) nodeForJobID(id string) string {
	i := strings.IndexByte(id, '-')
	if i < 0 {
		return ""
	}
	return n.jobNodes[id[:i+1]]
}

// handleJob serves GET/DELETE /v1/jobs/{id}: locally when this node
// minted the id, otherwise proxied to the minting node — a client may
// poll any node with a job handle it got from a forwarded 202.
func (n *Node) handleJob(w http.ResponseWriter, r *http.Request) {
	owner := n.nodeForJobID(r.PathValue("id"))
	if owner == "" || owner == n.self || r.Header.Get(fleetFromHeader) != "" {
		n.innerH.ServeHTTP(w, r)
		return
	}
	if err := n.proxy(w, r, owner, nil); err != nil {
		fleetWriteError(w, http.StatusBadGateway, fmt.Errorf("fleetd: job owner %s unreachable: %w", owner, err))
	}
}

// handleMetrics renders the inner daemon's block, then appends the
// fleet layer's own counters and gauges.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.innerH.ServeHTTP(w, r)
	samples := map[string]int64{
		"smokescreend_fleet_forwards_total":               n.metrics.forwards.Load(),
		"smokescreend_fleet_forward_failovers_total":      n.metrics.forwardFailovers.Load(),
		"smokescreend_fleet_forwards_coalesced_total":     n.metrics.forwardsCoalesced.Load(),
		"smokescreend_fleet_forward_errors_total":         n.metrics.forwardErrors.Load(),
		"smokescreend_fleet_local_requests_total":         n.metrics.localRequests.Load(),
		"smokescreend_fleet_repairs_total":                n.metrics.repairs.Load(),
		"smokescreend_fleet_repair_failures_total":        n.metrics.repairFailures.Load(),
		"smokescreend_fleet_replica_writes_total":         n.metrics.replicaWrites.Load(),
		"smokescreend_fleet_replica_write_failures_total": n.metrics.replicaWriteFailures.Load(),
		"smokescreend_fleet_lease_claims_total":           n.leases.claims.Load(),
		"smokescreend_fleet_lease_denials_total":          n.leases.denials.Load(),
		"smokescreend_fleet_lease_expiries_total":         n.leases.expiries.Load(),
		"smokescreend_fleet_lease_renewals_total":         n.leases.renewals.Load(),
		"smokescreend_fleet_lease_releases_total":         n.leases.releases.Load(),
		"smokescreend_fleet_lease_waits_total":            n.metrics.leaseWaits.Load(),
		"smokescreend_fleet_lease_local_fallbacks_total":  n.metrics.leaseLocalFallbacks.Load(),
		"smokescreend_fleet_leases_active":                int64(n.leases.active()),
		"smokescreend_fleet_ring_nodes":                   int64(len(n.ring.Nodes())),
		"smokescreend_fleet_ring_vnodes":                  int64(n.ring.VNodes()),
		"smokescreend_fleet_ring_replicas":                int64(n.ring.ReplicaCount()),
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, samples[name])
	}
}
