// Package fleetd scales the single-process profile service
// (internal/server, DESIGN.md §7) to a horizontally sharded fleet of
// smokescreend nodes. It owns the three distributed-systems pieces the
// single daemon never needed:
//
//   - Placement. A consistent-hash ring with virtual nodes maps every
//     canonical profile key to an ordered replica set of node base URLs.
//     Placement is a pure function of (node set, vnode count), so every
//     node — and every process restart — computes identical routing with
//     no coordination traffic.
//   - Replication. Each artifact is stored on R replicas: the generating
//     node fans the checksummed store envelope out to its peers after the
//     local write, and a replica that finds its copy missing or corrupt
//     on read repairs it with a verified byte copy fetched from another
//     replica (store.PutEnvelope re-validates the checksum before the
//     atomic write, so a torn or tampered transfer can never land).
//   - Generation dedup. The in-process claim/wait protocol the outputs
//     column store uses per frame (internal/outputs) is lifted behind
//     HTTP as TTL leases on generation units: before generating, a
//     replica claims the unit's lease from the unit's ring owner, and
//     concurrent requests across the whole fleet coalesce onto one
//     generation. Leases are clock-injected and expire without renewal,
//     so a node killed mid-generation releases its work to a survivor.
//
// Nodes forward requests for keys they do not replicate over pooled
// keep-alive connections, coalescing duplicate in-flight remote fetches
// through a routing-layer singleflight so a thundering herd on one hot
// key costs one upstream request per node, not one per client.
package fleetd

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per physical node. 64 vnodes
// keeps the max/mean key imbalance under ~20% for small fleets while the
// ring stays tiny (N*64 points).
const DefaultVNodes = 64

// DefaultReplicas is the replication factor R: each artifact lives on the
// key's owner plus R-1 successors.
const DefaultReplicas = 2

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// Ring is an immutable consistent-hash ring over node base URLs. Build
// with NewRing; an unmarshalled Ring is rebuilt from the same node set
// and is placement-identical (TestRingMarshalRoundTrip pins this).
type Ring struct {
	nodes    []string // sorted, unique
	vnodes   int
	replicas int
	points   []ringPoint // sorted by hash
}

// NewRing builds a ring. nodes are de-duplicated and sorted, so the same
// node *set* always yields the same ring regardless of spelling order;
// vnodes and replicas take the package defaults when <= 0. replicas is
// clamped to the node count.
func NewRing(nodes []string, vnodes, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleetd: ring requires at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		n = strings.TrimRight(strings.TrimSpace(n), "/")
		if n == "" {
			return nil, fmt.Errorf("fleetd: ring has an empty node name")
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	if replicas > len(uniq) {
		replicas = len(uniq)
	}
	r := &Ring{
		nodes:    uniq,
		vnodes:   vnodes,
		replicas: replicas,
		points:   make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for i, node := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashPoint(node, v),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically unlikely) break on node index so the
		// sort — and therefore placement — stays deterministic.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// ParseNodes splits a comma-separated node list (the -fleet-nodes flag /
// SMOKESCREEND_FLEET_NODES form), dropping empty elements.
func ParseNodes(s string) []string {
	var nodes []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			nodes = append(nodes, part)
		}
	}
	return nodes
}

// hashPoint places one virtual node: the first 8 bytes of
// SHA-256("node\n<vnode>") as a big-endian integer. SHA-256 keeps vnode
// spread uniform and, unlike maphash or FNV-of-pointer tricks, is the
// same in every process — the property fleet routing depends on.
func hashPoint(node string, vnode int) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{'\n'})
	h.Write([]byte(strconv.Itoa(vnode)))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// hashKey maps an arbitrary key (profile keys, lease unit names) onto the
// ring's hash space.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the sorted node set. Callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// ReplicaCount returns the replication factor R.
func (r *Ring) ReplicaCount() int { return r.replicas }

// Lookup returns the first n distinct nodes clockwise from key's hash:
// the key's owner followed by its successor replicas. n is clamped to the
// node count.
func (r *Ring) Lookup(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Owner returns the key's primary node.
func (r *Ring) Owner(key string) string { return r.Lookup(key, 1)[0] }

// Replicas returns the key's full replica set (owner first).
func (r *Ring) Replicas(key string) []string { return r.Lookup(key, r.replicas) }

// IsReplica reports whether node is in key's replica set.
func (r *Ring) IsReplica(key, node string) bool {
	for _, n := range r.Replicas(key) {
		if n == node {
			return true
		}
	}
	return false
}

// Contains reports whether node is a ring member.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// ringJSON is the wire/introspection form of a ring (the /v1/ring body).
// Only the generating parameters travel; points are rebuilt on decode, so
// a marshalled ring can never smuggle in divergent placement.
type ringJSON struct {
	Nodes    []string `json:"nodes"`
	VNodes   int      `json:"vnodes"`
	Replicas int      `json:"replicas"`
}

// MarshalJSON implements json.Marshaler.
func (r *Ring) MarshalJSON() ([]byte, error) {
	return json.Marshal(ringJSON{Nodes: r.nodes, VNodes: r.vnodes, Replicas: r.replicas})
}

// UnmarshalJSON implements json.Unmarshaler by rebuilding the ring.
func (r *Ring) UnmarshalJSON(data []byte) error {
	var rj ringJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return fmt.Errorf("fleetd: decoding ring: %w", err)
	}
	rebuilt, err := NewRing(rj.Nodes, rj.VNodes, rj.Replicas)
	if err != nil {
		return err
	}
	*r = *rebuilt
	return nil
}
