package fleetd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"smokescreen/internal/server"
	"smokescreen/internal/store"
)

// startFleet stands up a 3-node in-process fleet tuned for tests: short
// leases so expiry paths run in milliseconds, and a generation delay
// long enough to observe in-flight work.
func startFleet(t *testing.T, cfg HarnessConfig) *Harness {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 250 * time.Millisecond
	}
	if cfg.ClaimPoll == 0 {
		cfg.ClaimPoll = 10 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Logf == nil && testing.Verbose() {
		cfg.Logf = t.Logf
	}
	h, err := StartHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestFleetHotKeyHerd is the tentpole invariant: a thundering herd on
// one key across every node costs exactly ONE generation fleet-wide.
func TestFleetHotKeyHerd(t *testing.T) {
	h := startFleet(t, HarnessConfig{GenDelay: 50 * time.Millisecond})
	ctx := testCtx(t)

	res, err := h.RunHotKeyHerd(ctx, 48, "herd-query")
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("herd had %d errors of %d requests", res.Errors, res.Requests)
	}
	if res.Generations != 1 {
		t.Fatalf("herd cost %d generations, want exactly 1", res.Generations)
	}
	if got := h.Counter.Key(SyntheticKey("herd-query")); got != 1 {
		t.Fatalf("invocation counter for the hot key = %d, want 1", got)
	}
	// All 48 responses must carry the same artifact; spot-check via GET
	// through every node.
	key := SyntheticKey("herd-query")
	var want []byte
	for _, hn := range h.Alive() {
		status, body, err := h.Get(ctx, hn.URL, key)
		if err != nil || status != http.StatusOK {
			t.Fatalf("GET via %s: %d %v", hn.Name, status, err)
		}
		if want == nil {
			want = body
		} else if string(body) != string(want) {
			t.Fatalf("nodes serve different bytes for one key")
		}
	}
}

// TestFleetForwardingAndReplication: a POST through a non-replica node
// is forwarded, the artifact lands on every replica's disk, and GETs
// through any node return it.
func TestFleetForwardingAndReplication(t *testing.T) {
	h := startFleet(t, HarnessConfig{})
	ctx := testCtx(t)
	ring := h.Ring()

	// Find a query whose replica set excludes some node (guaranteed with
	// 3 nodes, R=2).
	var queryText, outsider string
	for i := 0; i < 256 && outsider == ""; i++ {
		q := fmt.Sprintf("fwd-%d", i)
		key := SyntheticKey(q)
		for _, hn := range h.Alive() {
			if !ring.IsReplica(key, hn.Name) {
				queryText, outsider = q, hn.Name
				break
			}
		}
	}
	if outsider == "" {
		t.Fatal("no non-replica node found")
	}
	key := SyntheticKey(queryText)

	status, body, err := h.Post(ctx, h.URLFor(outsider), server.GenRequest{Query: queryText})
	if err != nil {
		t.Fatal(err)
	}
	_ = body
	if status != http.StatusOK {
		t.Fatalf("forwarded POST returned %d", status)
	}

	// The outsider forwarded (counter) and did NOT generate.
	m, err := h.ScrapeNode(ctx, h.URLFor(outsider))
	if err != nil {
		t.Fatal(err)
	}
	if m["smokescreend_fleet_forwards_total"] == 0 {
		t.Fatal("outsider served a POST for a key it does not replicate without forwarding")
	}
	if h.Counter.NodeFor(key) == outsider {
		t.Fatal("outsider generated a key it does not replicate")
	}

	// Every replica holds the artifact on its own disk (write fan-out).
	for _, hn := range h.Nodes() {
		if !ring.IsReplica(key, hn.Name) {
			continue
		}
		if _, err := hn.Store.GetEnvelope(key); err != nil {
			t.Fatalf("replica %s missing envelope after fan-out: %v", hn.Name, err)
		}
	}

	// GET through every node returns the artifact.
	for _, hn := range h.Alive() {
		status, _, err := h.Get(ctx, hn.URL, key)
		if err != nil || status != http.StatusOK {
			t.Fatalf("GET via %s: %d %v", hn.Name, status, err)
		}
	}
}

// TestFleetKillDuringGeneration is the lease-expiry acceptance test: the
// generating node dies mid-work holding its lease; a survivor takes the
// unit over after TTL and completes the generation.
func TestFleetKillDuringGeneration(t *testing.T) {
	h := startFleet(t, HarnessConfig{GenDelay: 400 * time.Millisecond})
	ctx := testCtx(t)

	res, err := h.RunKillDuringGeneration(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two generation starts: the victim's (killed) and the survivor's.
	if res.Generations != 2 {
		t.Fatalf("kill scenario cost %d generations, want 2 (victim + survivor)", res.Generations)
	}
	if res.LeaseExpiries == 0 {
		t.Fatal("survivor completed without a lease expiry — the takeover path did not run")
	}
}

// TestFleetReadRepair corrupts one replica's on-disk envelope; a fleet
// GET through that replica returns the good bytes AND rewrites the
// corrupt shard from a peer. Concurrent GETs coalesce onto one repair.
func TestFleetReadRepair(t *testing.T) {
	h := startFleet(t, HarnessConfig{})
	ctx := testCtx(t)
	ring := h.Ring()

	queryText := "repair-me"
	key := SyntheticKey(queryText)
	reps := ring.Replicas(key)
	status, want, err := h.Post(ctx, h.Alive()[0].URL, server.GenRequest{Query: queryText})
	if err != nil || status != http.StatusOK {
		t.Fatalf("seed POST: %d %v", status, err)
	}

	// Corrupt the SECOND replica's copy on disk (bit-flip inside the
	// payload so the checksum fails).
	var victim *HarnessNode
	for _, hn := range h.Nodes() {
		if hn.Name == reps[1] {
			victim = hn
		}
	}
	if victim == nil {
		t.Fatalf("replica %s not found in harness", reps[1])
	}
	env, err := victim.Store.GetEnvelope(key)
	if err != nil {
		t.Fatal(err)
	}
	path := victim.Store.EnvelopePath(key)
	bad := append([]byte(nil), env...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the replica's cached payload: the corruption models bit rot
	// found after a restart, not a hot cache papering over it.
	victim.Store.Invalidate(key)
	if _, err := victim.Store.GetEnvelope(key); err == nil {
		t.Fatal("corruption did not take")
	}

	// Concurrent GETs straight at the corrupted replica: all must get
	// the good bytes.
	const readers = 12
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, err := h.Get(ctx, victim.URL, key)
			if err != nil {
				errs <- err
				return
			}
			if status != http.StatusOK {
				errs <- fmt.Errorf("GET returned %d", status)
				return
			}
			if string(body) != string(want) {
				errs <- fmt.Errorf("repaired read returned wrong bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The corrupt shard was rewritten with verified bytes.
	healed, err := victim.Store.GetEnvelope(key)
	if err != nil {
		t.Fatalf("shard not healed: %v", err)
	}
	if string(healed) != string(env) {
		t.Fatal("healed envelope differs from the original")
	}
	m, err := h.ScrapeNode(ctx, victim.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := m["smokescreend_fleet_repairs_total"]; got < 1 {
		t.Fatalf("repairs_total = %d, want >= 1", got)
	}
	if h.Counter.Key(key) != 1 {
		t.Fatalf("repair triggered regeneration: %d generations", h.Counter.Key(key))
	}
}

// TestFleetCancelPropagation: an async job started through one node is
// canceled through another; the cancel crosses the fleet by job-id
// prefix routing.
func TestFleetCancelPropagation(t *testing.T) {
	h := startFleet(t, HarnessConfig{GenDelay: 2 * time.Second})
	ctx := testCtx(t)

	res, err := h.RunCancelPropagation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("cancel scenario had %d errors", res.Errors)
	}
}

// TestFleetRingEndpoint: every node reports the identical ring.
func TestFleetRingEndpoint(t *testing.T) {
	h := startFleet(t, HarnessConfig{})
	ctx := testCtx(t)

	var first ringStatus
	for i, hn := range h.Alive() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, hn.URL+"/v1/ring", nil)
		if err != nil {
			t.Fatal(err)
		}
		status, body, err := h.do(req)
		if err != nil || status != http.StatusOK {
			t.Fatalf("GET /v1/ring via %s: %d %v", hn.Name, status, err)
		}
		var rs ringStatus
		if err := json.Unmarshal(body, &rs); err != nil {
			t.Fatal(err)
		}
		if rs.Self != hn.Name {
			t.Fatalf("node %s reports self %s", hn.Name, rs.Self)
		}
		if rs.VNodes != DefaultVNodes || rs.Replicas != DefaultReplicas {
			t.Fatalf("ring parameters: %+v", rs)
		}
		if i == 0 {
			first = rs
		} else if fmt.Sprint(rs.Nodes) != fmt.Sprint(first.Nodes) {
			t.Fatalf("node sets differ: %v vs %v", rs.Nodes, first.Nodes)
		}
	}
}

// TestFleetMetricsExposition: the fleet block renders on every node with
// the gauges the dashboards key on, alongside the inner daemon's block.
func TestFleetMetricsExposition(t *testing.T) {
	h := startFleet(t, HarnessConfig{})
	ctx := testCtx(t)

	// Generate one artifact so counters move.
	if status, _, err := h.Post(ctx, h.Alive()[0].URL, server.GenRequest{Query: "metrics-seed"}); err != nil || status != http.StatusOK {
		t.Fatalf("seed POST: %d %v", status, err)
	}

	for _, hn := range h.Alive() {
		m, err := h.ScrapeNode(ctx, hn.URL)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{
			"smokescreend_fleet_forwards_total",
			"smokescreend_fleet_forwards_coalesced_total",
			"smokescreend_fleet_repairs_total",
			"smokescreend_fleet_replica_writes_total",
			"smokescreend_fleet_lease_claims_total",
			"smokescreend_fleet_lease_expiries_total",
			"smokescreend_fleet_leases_active",
			"smokescreend_fleet_ring_nodes",
			"smokescreend_fleet_ring_vnodes",
			"smokescreend_fleet_ring_replicas",
			// And the inner daemon's block must still be present.
			"smokescreend_http_requests_total",
			"smokescreend_store_puts_total",
		} {
			if _, ok := m[name]; !ok {
				t.Errorf("node %s: metric %s missing", hn.Name, name)
			}
		}
		if m["smokescreend_fleet_ring_nodes"] != 3 {
			t.Errorf("ring_nodes = %d, want 3", m["smokescreend_fleet_ring_nodes"])
		}
	}
	totals, err := h.ScrapeFleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if totals["smokescreend_fleet_replica_writes_total"] < 1 {
		t.Errorf("no replica writes recorded after a generation")
	}
}

// TestFleetSteadyMixed exercises the steady-state scenario end to end.
func TestFleetSteadyMixed(t *testing.T) {
	h := startFleet(t, HarnessConfig{})
	ctx := testCtx(t)

	res, err := h.RunSteady(ctx, 4, 8, 24, "steady")
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("steady run had %d errors of %d requests", res.Errors, res.Requests)
	}
	if res.Generations != 8 {
		t.Fatalf("steady run cost %d generations for 8 keys, want 8", res.Generations)
	}
	if res.Forwards == 0 {
		t.Fatal("no forwards in a mixed run — routing layer inert?")
	}
	if res.LocalRequests == 0 {
		t.Fatal("no local requests in a mixed run")
	}
}

// TestNodeConfigValidation pins constructor errors.
func TestNodeConfigValidation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gen := &SyntheticGenerator{}
	if _, err := NewNode(Config{Nodes: []string{"a"}, Self: "a"}); err == nil {
		t.Fatal("missing store/generator must be rejected")
	}
	if _, err := NewNode(Config{Nodes: []string{"a", "b"}, Self: "c", Store: st, Generator: gen}); err == nil {
		t.Fatal("self outside the node set must be rejected")
	}
	n, err := NewNode(Config{Nodes: []string{"a", "b"}, Self: "a", Store: st, Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Self() != "a" {
		t.Fatalf("Self = %q", n.Self())
	}
}

// TestFleetVersionSkewUnknownField: a request from a newer client
// carrying a field this build does not know must be rejected with a
// typed 400 on every node — including the non-replica forwarding edge —
// never silently truncated into a different (wrong, and then cached
// forever) artifact.
func TestFleetVersionSkewUnknownField(t *testing.T) {
	h := startFleet(t, HarnessConfig{})
	ctx := testCtx(t)

	skewed := []byte(`{"query": "skew-query", "tier_overrides": {"full": 0.5}}`)
	for _, hn := range h.Alive() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, hn.URL+"/v1/profiles", bytes.NewReader(skewed))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		status, body, err := h.do(req)
		if err != nil {
			t.Fatalf("POST via %s: %v", hn.Name, err)
		}
		if status != http.StatusBadRequest {
			t.Fatalf("POST via %s: status %d, want 400", hn.Name, status)
		}
		var resp struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("POST via %s: non-JSON error body %q", hn.Name, body)
		}
		if resp.Code != "unknown_field" {
			t.Fatalf("POST via %s: code %q, want unknown_field (body %s)", hn.Name, resp.Code, body)
		}
	}
	// Nothing was generated or cached under the skewed request's key.
	if got := h.Counter.Total(); got != 0 {
		t.Fatalf("skewed requests triggered %d generations, want 0", got)
	}
	// The same request without the unknown field is accepted: the strict
	// decoder rejects skew, not the request shape.
	status, _, err := h.Post(ctx, h.Alive()[0].URL, server.GenRequest{Query: "skew-query"})
	if err != nil || status != http.StatusOK {
		t.Fatalf("clean request rejected: %d %v", status, err)
	}
}
