package fleetd

import (
	"errors"
	"fmt"

	"smokescreen/internal/store"
)

// replicatedStore is the node's server.Backend: a local content-addressed
// store fronted by R-way fleet replication.
//
//   - Put writes locally first (the generation's durability point), then
//     fans the envelope out to the key's other replicas. Fan-out is
//     best-effort: an unreachable replica costs a counter and a log line,
//     not the generation — read-repair heals it on that replica's next
//     read of the key.
//   - Get serves locally when it can. A miss or a *CorruptError on a key
//     this node replicates triggers read-repair: fetch the envelope from
//     a peer replica, re-validate every byte (store.PutEnvelope), publish
//     it locally with the same atomic rename as a first-hand write, and
//     serve the verified payload. Concurrent readers of one broken key
//     coalesce onto a single repair flight.
//
// Keys this node does not replicate never reach this store — the routing
// layer forwards those requests to a replica before the local server (and
// therefore this Backend) sees them.
type replicatedStore struct {
	local   *store.Store
	node    *Node
	repairs *flightGroup
}

var _ interface {
	Get(string) ([]byte, error)
	Put(string, []byte) error
	Stats() store.Stats
} = (*replicatedStore)(nil)

func newReplicatedStore(local *store.Store, node *Node) *replicatedStore {
	return &replicatedStore{local: local, node: node, repairs: newFlightGroup()}
}

// Get implements server.Backend with read-repair.
func (rs *replicatedStore) Get(key string) ([]byte, error) {
	payload, err := rs.local.Get(key)
	if err == nil {
		return payload, nil
	}
	var corrupt *store.CorruptError
	if !errors.Is(err, store.ErrNotFound) && !errors.As(err, &corrupt) {
		return nil, err
	}
	repaired, rerr := rs.repair(key)
	if rerr != nil {
		// No replica could supply a good copy; surface the local error —
		// ErrNotFound drives generation, CorruptError tells the caller to
		// re-POST, exactly as on a single node.
		return nil, err
	}
	if corrupt != nil {
		rs.node.logf("store: repaired corrupt artifact %s from a peer replica", key)
	}
	return repaired, nil
}

// repair fetches key's envelope from a peer replica and installs it
// locally. Concurrent callers share one flight.
func (rs *replicatedStore) repair(key string) ([]byte, error) {
	val, err, followed := rs.repairs.do(key, func() (any, error) {
		for _, peer := range rs.node.ring.Replicas(key) {
			if peer == rs.node.self {
				continue
			}
			env, err := rs.node.fetchEnvelope(peer, key)
			if err != nil {
				continue
			}
			payload, err := rs.local.PutEnvelope(key, env)
			if err != nil {
				// The transfer failed validation: a torn or tampered copy
				// must not land, and this peer cannot help.
				rs.node.metrics.repairFailures.Add(1)
				rs.node.logf("store: peer %s served an invalid envelope for %s: %v", peer, key, err)
				continue
			}
			rs.node.metrics.repairs.Add(1)
			return payload, nil
		}
		return nil, fmt.Errorf("fleetd: no replica could supply %s", key)
	})
	if err != nil {
		return nil, err
	}
	payload := val.([]byte)
	if followed {
		// Followers get their own copy; the leader's slice is shared.
		payload = append([]byte(nil), payload...)
	}
	return payload, nil
}

// Put implements server.Backend: local write, then replica fan-out.
func (rs *replicatedStore) Put(key string, payload []byte) error {
	if err := rs.local.Put(key, payload); err != nil {
		return err
	}
	env, err := rs.local.GetEnvelope(key)
	if err != nil {
		// The write just succeeded; failing to read it back is a local
		// disk problem. Replicas will read-repair from us later.
		rs.node.metrics.replicaWriteFailures.Add(1)
		rs.node.logf("store: reading back %s for replication: %v", key, err)
		return nil
	}
	for _, peer := range rs.node.ring.Replicas(key) {
		if peer == rs.node.self {
			continue
		}
		if err := rs.node.pushEnvelope(peer, key, env); err != nil {
			rs.node.metrics.replicaWriteFailures.Add(1)
			rs.node.logf("store: replicating %s to %s: %v (read-repair will heal it)", key, peer, err)
			continue
		}
		rs.node.metrics.replicaWrites.Add(1)
	}
	return nil
}

// Stats implements server.Backend with the local store's counters.
func (rs *replicatedStore) Stats() store.Stats { return rs.local.Stats() }
