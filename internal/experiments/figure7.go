package experiments

import (
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/stats"
)

func init() {
	register("figure7", Figure7)
	register("figure8", Figure8)
}

// Figure7 reproduces the paper's Figure 7: YOLOv4 computing the average
// number of cars on night-street across a fine resolution sweep. The true
// relative error at 384x384 is abnormally *larger* than at the lower
// 320x320 — the anchor-scale resonance — and the degradation profile
// (bound with correction set) exposes it, so an administrator would not
// unknowingly pick the bad resolution.
func Figure7(cfg Config) (*Report, error) {
	w := Workload{Dataset: "night-street", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return nil, err
	}
	resolutions := []int{608, 544, 480, 448, 416, 384, 352, 320, 288, 256, 224, 192}
	if cfg.Quick {
		resolutions = []int{608, 416, 384, 320}
	}

	report := &Report{
		ID:    "figure7",
		Title: "YOLOv4 night-street AVG anomaly at 384x384 (Figure 7)",
	}
	table := &Table{
		Title:  fmt.Sprintf("Figure 7 — %s, f=0.5", w),
		Header: []string{"resolution", "true err", "bound w/o corr", "bound w/ corr"},
	}
	corrFrac := 0.06
	var err384, err320 float64
	for ri, p := range resolutions {
		row, err := evalSetting(spec, degrade.Setting{SampleFraction: 0.5, Resolution: p}, corrFrac, cfg, uint64(0x700+ri))
		if err != nil {
			return nil, err
		}
		if p == 384 {
			err384 = row.TrueErr
		}
		if p == 320 {
			err320 = row.TrueErr
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%dx%d", p, p), fmtF(row.TrueErr), fmtF(row.Uncorrected), fmtF(row.Corrected),
		})
	}
	report.Tables = append(report.Tables, table)
	if err384 > err320 {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"Anomaly reproduced: true error at 384x384 (%.4f) exceeds 320x320 (%.4f) despite the higher fidelity",
			err384, err320))
	} else {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"WARNING: anomaly NOT reproduced: 384x384 err %.4f vs 320x320 err %.4f", err384, err320))
	}
	return report, nil
}

// Figure8 reproduces the paper's Figure 8: the distribution of per-frame
// predicted car counts on night-street under YOLOv4 at 608x608 (ground
// truth), 384x384 and 320x320. The 320 distribution tracks the truth; the
// 384 distribution is shifted right by the duplicate detections, which is
// what makes Figure 7's error spike.
func Figure8(cfg Config) (*Report, error) {
	w := Workload{Dataset: "night-street", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return nil, err
	}
	resolutions := []int{608, 384, 320}

	// Histogram per resolution.
	var frames []int
	n := spec.Video.NumFrames()
	if cfg.Quick {
		stream := stats.NewStream(cfg.Seed).Child(0xf18)
		frames = stream.SampleWithoutReplacement(n, n/10)
	} else {
		frames = make([]int, n)
		for i := range frames {
			frames[i] = i
		}
	}
	hists := make([]map[int]int, len(resolutions))
	maxCount := 0
	for ri, p := range resolutions {
		hists[ri] = map[int]int{}
		series := seriesAt(spec.Video, spec.Model, spec.Class, p, frames)
		for _, v := range series {
			c := int(v)
			hists[ri][c]++
			if c > maxCount {
				maxCount = c
			}
		}
	}

	report := &Report{
		ID:    "figure8",
		Title: "Predicted car-count distribution on night-street, YOLOv4 (Figure 8)",
	}
	table := &Table{
		Title:  "Figure 8 — frames per predicted car count",
		Header: []string{"cars in frame", "608x608 (truth)", "384x384", "320x320"},
	}
	for c := 0; c <= maxCount; c++ {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%d", hists[0][c]),
			fmt.Sprintf("%d", hists[1][c]),
			fmt.Sprintf("%d", hists[2][c]),
		})
	}
	report.Tables = append(report.Tables, table)

	mean := func(h map[int]int) float64 {
		var sum, total float64
		for c, k := range h {
			sum += float64(c) * float64(k)
			total += float64(k)
		}
		return sum / total
	}
	m608, m384, m320 := mean(hists[0]), mean(hists[1]), mean(hists[2])
	report.Notes = append(report.Notes, fmt.Sprintf(
		"Mean predicted cars: 608=%.3f, 384=%.3f, 320=%.3f — 384 deviates from the truth more than 320 (rightward shift: %v)",
		m608, m384, m320, m384 > m608 && absDiff(m384, m608) > absDiff(m320, m608)))
	return report, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
