package experiments

import (
	"fmt"
	"net"

	"smokescreen/internal/camera"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

func init() { register("bandwidth", Bandwidth) }

// Bandwidth quantifies the benefit side of the degradation tradeoff — the
// paper's Section 1 system goals (low bandwidth, energy limits) that
// motivate intentional degradation in the first place. For a ladder of
// intervention settings, a simulated camera streams the degraded frames
// over a byte-accounted wire, and the table reports bytes on the wire,
// camera energy, and the analytical error bound the estimator attaches to
// that setting — the two axes of Figure 1, measured.
func Bandwidth(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "bandwidth",
		Title: "Bandwidth/energy savings vs analytical error bound (extension)",
	}
	v, m, spec, err := bandwidthWorkload()
	if err != nil {
		return nil, err
	}

	settings := []degrade.Setting{
		{SampleFraction: 0.1, Resolution: 320},
		{SampleFraction: 0.1, Resolution: 160},
		{SampleFraction: 0.05, Resolution: 160},
		{SampleFraction: 0.05, Resolution: 96, Restricted: []scene.Class{scene.Face}},
		{SampleFraction: 0.02, Resolution: 96, Restricted: []scene.Class{scene.Face}},
	}
	if cfg.Quick {
		settings = settings[:3]
	}

	corr, err := profile.ConstructCorrection(spec, 0.1, stats.NewStream(cfg.Seed).Child(0xbd0))
	if err != nil {
		return nil, err
	}

	table := &Table{
		Title:  "Bandwidth — small corpus, YOLOv4Sim, AVG cars",
		Header: []string{"setting", "frames", "bytes", "energy (J)", "bound"},
	}
	var baseline float64
	for si, setting := range settings {
		reportRow, err := streamSetting(v, m, setting, cfg.Seed+uint64(si))
		if err != nil {
			return nil, err
		}
		est, err := spec.EstimateSetting(setting, corr.Correction, stats.NewStream(cfg.Seed).ChildN(0xbd1, uint64(si)))
		if err != nil {
			return nil, err
		}
		if si == 0 {
			baseline = float64(reportRow.BytesTransmitted)
		}
		table.Rows = append(table.Rows, []string{
			setting.String(),
			fmt.Sprintf("%d", reportRow.FramesTransmitted),
			fmt.Sprintf("%d", reportRow.BytesTransmitted),
			fmt.Sprintf("%.3f", reportRow.TotalJoules()),
			fmtF(est.ErrBound),
		})
		if si == len(settings)-1 && baseline > 0 {
			report.Notes = append(report.Notes, fmt.Sprintf(
				"Most degraded setting ships %.1f%% fewer bytes than the least degraded one",
				100*(1-float64(reportRow.BytesTransmitted)/baseline)))
		}
	}
	report.Tables = append(report.Tables, table)
	return report, nil
}

func bandwidthWorkload() (*scene.Video, *detect.Model, *profile.Spec, error) {
	w := Workload{Dataset: "small", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return nil, nil, nil, err
	}
	return spec.Video, spec.Model, spec, nil
}

// streamSetting runs one camera session over an in-process pipe and
// returns the camera's accounting.
func streamSetting(v *scene.Video, m *detect.Model, setting degrade.Setting, seed uint64) (camera.Report, error) {
	node := &camera.Node{Video: v, Model: m, Setting: setting, Energy: camera.DefaultEnergyModel()}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	type result struct {
		report camera.Report
		err    error
	}
	done := make(chan result, 1)
	go func() {
		report, err := node.Stream(transport.New(client), stats.NewStream(seed))
		done <- result{report, err}
	}()
	if _, err := camera.Receive(transport.New(server), nil); err != nil {
		return camera.Report{}, err
	}
	r := <-done
	return r.report, r.err
}
