package experiments

import (
	"fmt"
	"math"

	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/stats"
)

func init() { register("ablations", Ablations) }

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. the single-sample-size confidence construction and the
//     Hoeffding-Serfling inequality inside Algorithm 1, against the EBGS
//     any-time empirical-Bernstein construction it improves on;
//  2. early stopping + model-output reuse during fraction sweeps, in
//     model invocations saved;
//  3. the correction-set elbow heuristic against fixed sizes;
//  4. the noise-addition intervention (this reproduction's extension of
//     the paper's Section 2.1 list) on the tradeoff curve;
//  5. sampling-based extremum estimation (Algorithm 2) against the
//     summary-based alternative from the paper's related work: a
//     Greenwald-Khanna sketch is more rank-accurate but must observe every
//     frame — the access/accuracy tradeoff that motivates sampling.
func Ablations(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "ablations",
		Title: "Design-choice ablations",
	}
	if err := ablationBoundConstruction(cfg, report); err != nil {
		return nil, err
	}
	if err := ablationReuse(cfg, report); err != nil {
		return nil, err
	}
	if err := ablationElbow(cfg, report); err != nil {
		return nil, err
	}
	if err := ablationNoise(cfg, report); err != nil {
		return nil, err
	}
	if err := ablationSketch(cfg, report); err != nil {
		return nil, err
	}
	return report, nil
}

// ablationBoundConstruction isolates the two ingredients of Algorithm 1.
// "EB + any-time" is the EBGS baseline; "HS + single-n" is Smokescreen.
// The middle column (HS + any-time schedule) shows how much each
// ingredient contributes.
func ablationBoundConstruction(cfg Config, report *Report) error {
	w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	population := spec.TruePopulation()
	N := len(population)
	root := stats.NewStream(cfg.Seed).Child(0xab1)

	table := &Table{
		Title:  "Ablation 1 — Algorithm 1 ingredients (mean error bound over trials)",
		Header: []string{"n", "EB + any-time (EBGS)", "HS + any-time", "HS + single-n (ours)"},
	}
	sizes := []int{50, 150, 500, 1500}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	for _, n := range sizes {
		var ebgsSum, hsAnytimeSum, oursSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			sample := samplePrefix(population, n, root.ChildN(uint64(n), uint64(trial)))
			s := stats.Summarize(sample)

			ebgsEst, err := estimate.BaselineEstimate(estimate.EBGS, estimate.AVG, sample, N, spec.Params)
			if err != nil {
				return err
			}
			ebgsSum += capBound(ebgsEst.ErrBound)

			// HS half width at the any-time risk schedule: the schedule
			// spends delta*(p-1)/p / n^p at step n (p = 1.1), exactly like
			// EBGS, but with the Hoeffding-Serfling inequality.
			const pSched = 1.1
			dn := spec.Params.Delta * (pSched - 1) / pSched / math.Pow(float64(n), pSched)
			I := stats.HoeffdingSerflingHalfWidth(s.Range(), n, N, dn)
			ub := math.Abs(s.Mean) + I
			lb := math.Max(0, math.Abs(s.Mean)-I)
			if lb > 0 {
				hsAnytimeSum += (ub - lb) / (ub + lb)
			} else {
				hsAnytimeSum += 1
			}

			ours, err := estimate.Smokescreen(estimate.AVG, sample, N, spec.Params)
			if err != nil {
				return err
			}
			oursSum += ours.ErrBound
		}
		t := float64(cfg.Trials)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n), fmtF(ebgsSum / t), fmtF(hsAnytimeSum / t), fmtF(oursSum / t),
		})
	}
	report.Tables = append(report.Tables, table)
	return nil
}

// ablationReuse measures model invocations for a 10-step fraction sweep
// with nested reuse (the implementation) against the naive alternative of
// a fresh independent sample per fraction.
func ablationReuse(cfg Config, report *Report) error {
	w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	fractions := plan.CandidateFractions(0.004, 0.04)
	if cfg.Quick {
		fractions = plan.CandidateFractions(0.004, 0.02)
	}
	root := stats.NewStream(cfg.Seed).Child(0xab2)

	// Reused (nested) sweep.
	detect.ResetCaches()
	before := detect.Invocations()
	if _, err := profile.SweepFractions(spec, profile.SweepOptions{Fractions: fractions}, root.Child(1)); err != nil {
		return err
	}
	reused := detect.Invocations() - before

	// Naive sweep: independent sample per fraction.
	detect.ResetCaches()
	before = detect.Invocations()
	for fi, f := range fractions {
		if _, err := spec.EstimateSetting(degrade.Setting{SampleFraction: f}, nil, root.ChildN(2, uint64(fi))); err != nil {
			return err
		}
	}
	naive := detect.Invocations() - before
	detect.ResetCaches()

	table := &Table{
		Title:  fmt.Sprintf("Ablation 2 — model invocations for a %d-fraction sweep", len(fractions)),
		Header: []string{"strategy", "invocations"},
		Rows: [][]string{
			{"independent samples", fmt.Sprintf("%d", naive)},
			{"nested reuse (ours)", fmt.Sprintf("%d", reused)},
			{"savings", fmtPct(100 * (1 - float64(reused)/float64(naive)))},
		},
	}
	report.Tables = append(report.Tables, table)
	return nil
}

// ablationElbow compares the elbow-chosen correction size against fixed
// alternatives on the repaired bound of a representative non-random
// setting.
func ablationElbow(cfg Config, report *Report) error {
	w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	root := stats.NewStream(cfg.Seed).Child(0xab3)
	construction, err := profile.ConstructCorrection(spec, 0.2, root.Child(1))
	if err != nil {
		return err
	}
	setting := degrade.Setting{SampleFraction: 0.1, Resolution: 256}
	trials := cfg.Trials
	if trials > 10 {
		trials = 10
	}
	n := spec.Video.NumFrames()

	table := &Table{
		Title:  fmt.Sprintf("Ablation 3 — correction sizing under %v (elbow chose %.0f%%)", setting, construction.Fraction*100),
		Header: []string{"correction fraction", "repaired bound", "correction frames"},
	}
	candidates := []float64{0.01, construction.Fraction, 0.10, 0.20}
	if cfg.Quick {
		candidates = []float64{0.01, construction.Fraction}
	}
	for _, frac := range candidates {
		m := int(frac*float64(n) + 0.5)
		var sum float64
		for trial := 0; trial < trials; trial++ {
			s := root.ChildN(2, uint64(m), uint64(trial))
			corr, err := profile.BuildCorrectionAt(spec, m, s.Child(1))
			if err != nil {
				return err
			}
			degraded, err := spec.UncorrectedEstimate(setting, s.Child(2))
			if err != nil {
				return err
			}
			bound, err := corr.Repair(spec.Agg, degraded, spec.Params)
			if err != nil {
				return err
			}
			sum += capBound(bound)
		}
		label := fmt.Sprintf("%.2f", frac)
		if frac == construction.Fraction {
			label += " (elbow)"
		}
		table.Rows = append(table.Rows, []string{label, fmtF(sum / float64(trials)), fmt.Sprintf("%d", m)})
	}
	report.Tables = append(report.Tables, table)
	return nil
}

// ablationSketch contrasts Algorithm 2 (MAX via sampled 0.99-quantile)
// with a full-access Greenwald-Khanna summary at matching rank accuracy.
func ablationSketch(cfg Config, report *Report) error {
	w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.MAX}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	population := spec.TruePopulation()
	N := len(population)
	root := stats.NewStream(cfg.Seed).Child(0xab5)

	table := &Table{
		Title:  "Ablation 5 — sampling (Algorithm 2) vs full-access GK summary for MAX",
		Header: []string{"method", "frames observed", "mean rank error", "mean bound / epsilon"},
	}
	trials := cfg.Trials
	if trials > 20 {
		trials = 20
	}

	// Sampling at the paper's MAX sweep end (f = 0.02).
	n := int(0.02 * float64(N))
	var sampErr, sampBound float64
	for trial := 0; trial < trials; trial++ {
		sample := samplePrefix(population, n, root.ChildN(1, uint64(trial)))
		est, err := estimate.Smokescreen(estimate.MAX, sample, N, spec.Params)
		if err != nil {
			return err
		}
		trueErr, err := estimate.TrueError(estimate.MAX, est.Value, population, spec.Params)
		if err != nil {
			return err
		}
		sampErr += trueErr
		sampBound += est.ErrBound
	}
	table.Rows = append(table.Rows, []string{
		"Algorithm 2 (f=0.02)",
		fmt.Sprintf("%d", n),
		fmtF(sampErr / float64(trials)),
		fmtF(sampBound / float64(trials)),
	})

	// GK sketch: deterministic, observes the whole corpus.
	sketch, err := stats.NewGKSketch(0.005)
	if err != nil {
		return err
	}
	sketch.InsertAll(population)
	gkValue := sketch.Quantile(spec.Params.R)
	gkErr, err := estimate.TrueError(estimate.MAX, gkValue, population, spec.Params)
	if err != nil {
		return err
	}
	table.Rows = append(table.Rows, []string{
		"GK sketch (eps=0.005)",
		fmt.Sprintf("%d (every frame)", N),
		fmtF(gkErr),
		fmtF(0.005 / spec.Params.R), // the sketch's rank guarantee, rank-relative
	})
	report.Tables = append(report.Tables, table)
	report.Notes = append(report.Notes, fmt.Sprintf(
		"The summary is more rank-accurate but requires access to all %d frames; sampling touches %d (%.0fx fewer) — the access/accuracy tradeoff that justifies the paper's sampling-based design", N, n, float64(N)/float64(n)))
	return nil
}

// ablationNoise profiles the noise-addition intervention: the true error
// and repaired bound as capture noise grows.
func ablationNoise(cfg Config, report *Report) error {
	w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	sigmas := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if cfg.Quick {
		sigmas = []float64{0, 0.2}
	}
	table := &Table{
		Title:  "Ablation 4 — noise-addition intervention (f=0.2, correction 4%)",
		Header: []string{"added noise sigma", "true err", "bound w/o corr", "bound w/ corr"},
	}
	for si, sigma := range sigmas {
		setting := degrade.Setting{SampleFraction: 0.2, NoiseSigma: sigma}
		row, err := evalSetting(spec, setting, 0.04, cfg, uint64(0xab4+si))
		if err != nil {
			return err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.2f", sigma), fmtF(row.TrueErr), fmtF(row.Uncorrected), fmtF(row.Corrected),
		})
	}
	report.Tables = append(report.Tables, table)
	return nil
}
