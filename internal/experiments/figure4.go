package experiments

import (
	"fmt"
	"math"

	"smokescreen/internal/estimate"
	"smokescreen/internal/parallel"
	"smokescreen/internal/stats"
)

func init() {
	register("figure4", Figure4)
	register("figure5", Figure5)
}

// panelPoint aggregates one (workload, fraction) cell over all trials.
type panelPoint struct {
	Fraction float64
	// TrueErr and Bound are per-method trial means; keys are method names
	// ("Smokescreen" plus baselines).
	TrueErr map[string]float64
	Bound   map[string]float64
	// CLTFailPct is the percentage of trials with CLT bound < true error.
	CLTFailPct float64
}

// panel is the full fraction sweep of one workload.
type panel struct {
	Workload Workload
	Points   []panelPoint
	Methods  []string // presentation order
}

// runPanel evaluates Smokescreen and every applicable baseline across the
// workload's Figure 4 fraction sweep. points <= 0 selects the figure's
// default density; the claims experiment passes a denser grid so tradeoff
// choices are not quantised away.
func runPanel(w Workload, cfg Config, points int) (*panel, error) {
	spec, err := w.Spec()
	if err != nil {
		return nil, err
	}
	if points <= 0 {
		points = 8
		if cfg.Quick {
			points = 4
		}
	}
	fractions := sweepFractions(sweepEnd(w), points)
	population := spec.TruePopulation()
	N := len(population)

	methods := []string{"Smokescreen"}
	var baselines []estimate.Baseline
	if w.Agg.IsExtremum() {
		baselines = estimate.ExtremumBaselines()
	} else {
		baselines = estimate.MeanBaselines()
	}
	for _, b := range baselines {
		methods = append(methods, b.String())
	}

	out := &panel{Workload: w, Methods: methods}
	root := stats.NewStream(cfg.Seed).Child(uint64(len(w.Dataset))).Child(uint64(w.Agg))
	for _, f := range fractions {
		n := int(float64(N)*f + 0.5)
		if n < 2 {
			n = 2
		}
		pt := panelPoint{
			Fraction: f,
			TrueErr:  map[string]float64{},
			Bound:    map[string]float64{},
		}
		// Trials are independent: each derives its sample from a stream
		// child keyed by the trial index, lands its sums in its own slot,
		// and the slots are reduced in trial order below — so the float
		// accumulation order (and hence every report digit) matches the
		// sequential loop exactly.
		type trialSums struct {
			trueErr, bound map[string]float64
			cltFail        bool
		}
		trials, err := parallel.Map(cfg.Trials, cfg.Parallelism, func(trial int) (trialSums, error) {
			sums := trialSums{trueErr: map[string]float64{}, bound: map[string]float64{}}
			sample := samplePrefix(population, n, root.ChildN(uint64(n), uint64(trial)))

			ours, err := estimate.Smokescreen(w.Agg, sample, N, spec.Params)
			if err != nil {
				return sums, err
			}
			trueErr, err := estimate.TrueError(w.Agg, ours.Value, population, spec.Params)
			if err != nil {
				return sums, err
			}
			sums.trueErr["Smokescreen"] = trueErr
			sums.bound["Smokescreen"] = ours.ErrBound

			for _, b := range baselines {
				be, err := estimate.BaselineEstimate(b, w.Agg, sample, N, spec.Params)
				if err != nil {
					return sums, err
				}
				bTrueErr, err := estimate.TrueError(w.Agg, be.Value, population, spec.Params)
				if err != nil {
					return sums, err
				}
				sums.trueErr[b.String()] = capBound(bTrueErr)
				sums.bound[b.String()] = capBound(be.ErrBound)
				if b == estimate.CLT && be.ErrBound < bTrueErr {
					sums.cltFail = true
				}
			}
			return sums, nil
		})
		if err != nil {
			return nil, err
		}
		cltFails := 0
		for _, s := range trials {
			for _, m := range methods {
				pt.TrueErr[m] += s.trueErr[m]
				pt.Bound[m] += s.bound[m]
			}
			if s.cltFail {
				cltFails++
			}
		}
		for _, m := range methods {
			pt.TrueErr[m] /= float64(cfg.Trials)
			pt.Bound[m] /= float64(cfg.Trials)
		}
		pt.CLTFailPct = 100 * float64(cltFails) / float64(cfg.Trials)
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Figure4 reproduces the paper's Figure 4: the true relative error of the
// estimated query result and the error bound computed by Smokescreen and
// every baseline, across the sample-fraction sweep, for four aggregate
// types on two datasets.
func Figure4(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "figure4",
		Title: "True error and error bounds vs sample fraction (Smokescreen vs baselines)",
	}
	for _, w := range paperWorkloads() {
		p, err := runPanel(w, cfg, 0)
		if err != nil {
			return nil, err
		}
		// The paper's panels plot a dashed true-error curve and a solid
		// bound curve per method; the table carries both columns.
		table := &Table{Title: fmt.Sprintf("Figure 4 — %s", w)}
		table.Header = []string{"fraction", "true err (ours)", "bound (ours)"}
		for _, m := range p.Methods[1:] {
			table.Header = append(table.Header, "true err ("+m+")", "bound ("+m+")")
		}
		for _, pt := range p.Points {
			row := []string{
				fmt.Sprintf("%.4g", pt.Fraction),
				fmtF(pt.TrueErr["Smokescreen"]),
				fmtF(pt.Bound["Smokescreen"]),
			}
			for _, m := range p.Methods[1:] {
				row = append(row, fmtF(pt.TrueErr[m]), fmtF(pt.Bound[m]))
			}
			table.Rows = append(table.Rows, row)
		}
		report.Tables = append(report.Tables, table)

		// Sanity note: the bound must dominate the true error at every
		// point for our method (the paper's blue solid above blue dashed).
		for _, pt := range p.Points {
			if pt.Bound["Smokescreen"] < pt.TrueErr["Smokescreen"] {
				report.Notes = append(report.Notes, fmt.Sprintf(
					"WARNING: %s at f=%.4g: mean bound %.4f below mean true error %.4f",
					w, pt.Fraction, pt.Bound["Smokescreen"], pt.TrueErr["Smokescreen"]))
			}
		}
	}
	return report, nil
}

// Figure5 reproduces the paper's Figure 5: the percentage of trials in
// which the CLT bound is smaller than the true error, on UA-DETRAC, across
// the fraction sweeps of the mean-type aggregates.
func Figure5(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "figure5",
		Title: "CLT bound failure rate on UA-DETRAC (bound < true error)",
	}
	for _, agg := range []estimate.Agg{estimate.AVG, estimate.SUM, estimate.COUNT} {
		w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: agg}
		p, err := runPanel(w, cfg, 0)
		if err != nil {
			return nil, err
		}
		table := &Table{
			Title:  fmt.Sprintf("Figure 5 — %s", w),
			Header: []string{"fraction", "CLT failure rate", "nominal"},
		}
		maxFail := 0.0
		for _, pt := range p.Points {
			maxFail = math.Max(maxFail, pt.CLTFailPct)
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%.4g", pt.Fraction),
				fmtPct(pt.CLTFailPct),
				"5.0%",
			})
		}
		report.Tables = append(report.Tables, table)
		report.Notes = append(report.Notes, fmt.Sprintf(
			"%s: CLT exceeds its 5%% nominal failure rate up to %.1f%%", w, maxFail))
	}
	return report, nil
}
