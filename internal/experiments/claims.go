package experiments

import (
	"fmt"
	"math"

	"smokescreen/internal/estimate"
)

func init() { register("claims", Claims) }

// Claims quantifies the paper's two headline numbers on our reproduction:
//
//   - bound tightness: "our upper bound estimation of analytical error is
//     up to 155% tighter" — the maximum, over the Figure 4 sweep, of
//     (baseline bound / Smokescreen bound - 1), against the best *safe*
//     baseline at each point (CLT is excluded: it is not a valid bound);
//   - tradeoff accuracy: "Smokescreen enables 88% more accurate
//     tradeoffs" — for an error preference threshold, compare the sample
//     fraction chosen from our bound curve against the one chosen from the
//     best safe baseline curve, measuring each choice's excess over the
//     fraction the *true* error curve would have allowed.
func Claims(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "claims",
		Title: "Headline claims: bound tightness and tradeoff accuracy",
	}

	tightness := &Table{
		Title:  "Bound tightness vs best safe baseline (max over the Figure 4 sweep)",
		Header: []string{"workload", "max tightness gain", "at fraction"},
	}
	tradeoffs := &Table{
		Title:  "Tradeoff accuracy (averaged over feasible error-preference thresholds)",
		Header: []string{"workload", "thresholds", "mean excess ours", "mean excess baseline", "improvement"},
	}

	var globalMaxGain float64
	var improvements []float64
	// A dense fraction grid (the paper's 1%-interval candidate design,
	// Section 3.3.2) so tradeoff choices are not quantised to a handful of
	// sweep points.
	points := 40
	if cfg.Quick {
		points = 10
	}
	for _, w := range paperWorkloads() {
		p, err := runPanel(w, cfg, points)
		if err != nil {
			return nil, err
		}

		// Tightness: best safe baseline per point.
		maxGain, maxAt := 0.0, 0.0
		for _, pt := range p.Points {
			ours := pt.Bound["Smokescreen"]
			if ours <= 0 {
				continue
			}
			best := math.Inf(1)
			for _, m := range p.Methods[1:] {
				if m == estimate.CLT.String() {
					continue // not a valid bound (Figure 5)
				}
				if b := pt.Bound[m]; b < best {
					best = b
				}
			}
			gain := (best/ours - 1) * 100
			if gain > maxGain {
				maxGain, maxAt = gain, pt.Fraction
			}
		}
		globalMaxGain = math.Max(globalMaxGain, maxGain)
		tightness.Rows = append(tightness.Rows, []string{
			w.String(), fmtPct(maxGain), fmt.Sprintf("%.4g", maxAt),
		})

		// Tradeoff accuracy: average over a range of error-preference
		// thresholds for which BOTH curves have a feasible (in-sweep)
		// choice — at any single threshold the comparison degenerates when
		// one curve saturates at the sweep edge. The threshold range spans
		// our tightest achievable bound to the best baseline's tightest.
		oursCurve := func(pt panelPoint) float64 { return pt.Bound["Smokescreen"] }
		baseCurve := func(pt panelPoint) float64 {
			best := math.Inf(1)
			for _, m := range p.Methods[1:] {
				if m == estimate.CLT.String() {
					continue
				}
				if b := pt.Bound[m]; b < best {
					best = b
				}
			}
			return best
		}
		trueCurve := func(pt panelPoint) float64 { return pt.TrueErr["Smokescreen"] }

		lastPt := p.Points[len(p.Points)-1]
		lo := oursCurve(lastPt) * 1.01 // tightest preference our curve can meet
		hi := baseCurve(lastPt) * 3    // well into the baseline's feasible range
		if !(lo > 0) || !(hi > lo) {
			continue
		}
		var wImps []float64
		var exOursSum, exBaseSum float64
		const thresholds = 12
		for ti := 0; ti < thresholds; ti++ {
			threshold := lo * math.Pow(hi/lo, float64(ti)/float64(thresholds-1))
			fTrue := chooseFraction(p, threshold, trueCurve)
			fOurs := chooseFraction(p, threshold, oursCurve)
			fBase := chooseFraction(p, threshold, baseCurve)
			if fTrue <= 0 || fOurs <= 0 {
				continue
			}
			maxF := lastPt.Fraction
			if fBase <= 0 {
				fBase = maxF // baseline never satisfies: forced to the loosest setting
			}
			excessOurs := (fOurs - fTrue) / fTrue
			excessBase := (fBase - fTrue) / fTrue
			if excessBase <= 0 {
				continue
			}
			exOursSum += excessOurs
			exBaseSum += excessBase
			wImps = append(wImps, (excessBase-excessOurs)/excessBase*100)
		}
		if len(wImps) == 0 {
			continue
		}
		var wMean float64
		for _, v := range wImps {
			wMean += v
		}
		wMean /= float64(len(wImps))
		improvements = append(improvements, wMean)
		tradeoffs.Rows = append(tradeoffs.Rows, []string{
			w.String(),
			fmt.Sprintf("%d", len(wImps)),
			fmtPct(exOursSum / float64(len(wImps)) * 100),
			fmtPct(exBaseSum / float64(len(wImps)) * 100),
			fmtPct(wMean),
		})
	}
	report.Tables = append(report.Tables, tightness, tradeoffs)

	meanImprovement := 0.0
	for _, v := range improvements {
		meanImprovement += v
	}
	if len(improvements) > 0 {
		meanImprovement /= float64(len(improvements))
	}
	report.Notes = append(report.Notes,
		fmt.Sprintf("Bound tightness gain up to %.1f%% over the best safe baseline (paper: up to 154.7%%)", globalMaxGain),
		fmt.Sprintf("Tradeoffs %.1f%% more accurate on average than the best safe baseline (paper: 88%%)", meanImprovement),
	)
	return report, nil
}

// chooseFraction returns the smallest profiled fraction whose curve value
// is within the threshold, or 0 when none qualifies.
func chooseFraction(p *panel, threshold float64, curve func(panelPoint) float64) float64 {
	best := 0.0
	for _, pt := range p.Points {
		if curve(pt) <= threshold && (best == 0 || pt.Fraction < best) {
			best = pt.Fraction
		}
	}
	return best
}
