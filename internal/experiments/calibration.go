package experiments

import (
	"fmt"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func init() { register("calibration", Calibration) }

// Calibration validates the synthetic corpora against the statistics the
// paper reports for its real datasets (Section 5.1): frame counts, and
// the detector-measured fractions of frames containing a person (YOLOv4
// at threshold 0.7) and a face (MTCNN at threshold 0.8). This is the
// ground on which every other experiment stands; EXPERIMENTS.md records
// it first.
func Calibration(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "calibration",
		Title: "Corpus calibration against the paper's Section 5.1 statistics",
	}
	table := &Table{
		Title: "Calibration — synthetic corpora vs paper",
		Header: []string{
			"dataset", "frames", "paper frames",
			"person frames", "paper person", "face frames", "paper face",
			"mean cars/frame",
		},
	}
	for _, name := range []string{"night-street", "ua-detrac"} {
		info, err := dataset.Describe(name)
		if err != nil {
			return nil, err
		}
		v, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		personFrac, faceFrac := presenceFractions(v, cfg)

		w := Workload{Dataset: name, Model: "yolov4", Agg: 0}
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		meanCars := resolutionMean(spec, spec.Model.NativeInput, cfg)

		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", v.NumFrames()),
			fmt.Sprintf("%d", info.PaperFrames),
			fmtPct(personFrac * 100), fmtPct(info.PaperPersonFraction * 100),
			fmtPct(faceFrac * 100), fmtPct(info.PaperFaceFraction * 100),
			fmtF(meanCars),
		})
	}
	report.Tables = append(report.Tables, table)
	report.Notes = append(report.Notes,
		"Person/face fractions are detector-measured (YOLOv4 at 0.7, MTCNN at 0.8), matching the paper's protocol")
	return report, nil
}

// presenceFractions measures the detector-reported person and face frame
// fractions. Quick mode samples a tenth of the corpus.
func presenceFractions(v *scene.Video, cfg Config) (person, face float64) {
	n := v.NumFrames()
	var frames []int
	if cfg.Quick {
		frames = stats.NewStream(cfg.Seed).Child(0xca1).SampleWithoutReplacement(n, n/10)
	} else {
		frames = make([]int, n)
		for i := range frames {
			frames[i] = i
		}
	}
	yolo := detect.YOLOv4Sim()
	mtcnn := detect.MTCNNSim()
	persons := seriesAt(v, yolo, scene.Person, yolo.NativeInput, frames)
	faces := seriesAt(v, mtcnn, scene.Face, mtcnn.NativeInput, frames)
	var pc, fc int
	for i := range frames {
		if persons[i] > 0 {
			pc++
		}
		if faces[i] > 0 {
			fc++
		}
	}
	return float64(pc) / float64(len(frames)), float64(fc) / float64(len(frames))
}
