//go:build !race

package experiments

// raceEnabled is the no-race-detector default; see race_test.go.
const raceEnabled = false
